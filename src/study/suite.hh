/**
 * @file
 * Suite-level helpers for the benchmark harnesses: scaled default
 * trace lengths (env-tunable), a trace cache so parameter sweeps reuse
 * generated workloads, and group aggregation in the paper's four
 * classes.
 */

#ifndef STEMS_STUDY_SUITE_HH
#define STEMS_STUDY_SUITE_HH

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "trace/access.hh"
#include "trace/stream.hh"
#include "workloads/workload.hh"

namespace stems::study {

/**
 * Default workload parameters for benches. Honours two environment
 * knobs: STEMS_REFS_PER_CPU (absolute) and STEMS_SCALE (multiplier on
 * the default), so `STEMS_SCALE=4 ./fig04_blocksize` quadruples trace
 * length.
 */
workloads::WorkloadParams defaultParams(uint64_t refs_per_cpu = 100000);

/**
 * Fingerprint of everything that determines a workload's interleaved
 * reference stream: suite name, generation parameters, the interleave
 * schedule, and a generator version that is bumped whenever workload
 * or interleaver code changes behaviour. Stored in .stmt headers so
 * stale spill files from incompatible generators are rejected instead
 * of silently replayed.
 */
uint64_t generatorConfigHash(const std::string &name,
                             const workloads::WorkloadParams &p);

/**
 * Generates-once, reuses-thereafter trace storage for sweeps.
 *
 * The cache's unit of storage is a trace::StreamSet — per-CPU stream
 * views behind one ownership model. Freshly-generated workloads are
 * owned vectors; spill replay hands out a zero-copy mapped backing
 * (trace::MappedTrace) when possible, so replaying a cell never
 * materialises the trace at all. Zero-copy consumers
 * (study::runSystem, study::runL1Study, sim::runTiming) take the set
 * through viewSet(); streams()/get() are the legacy materialising
 * wrappers and copy a mapped backing out on first use. The merged
 * (interleaved) trace is materialised lazily only for callers that
 * need a flat trace.
 *
 * Thread-safe: concurrent calls for the same key block until the
 * first caller finishes generating; returned references stay valid for
 * the cache's lifetime. With a spill directory set, generation is
 * replaced by record/replay through trace::writeTraceStreams /
 * MappedTrace::open (stdio fallback under STEMS_NO_MMAP=1) so
 * expensive workloads are generated once across processes. Spill
 * files embed generatorConfigHash(); mismatching, truncated, corrupt
 * or old-format files are rejected up front — before any view is
 * handed out — and regenerated.
 */
class TraceCache
{
  public:
    TraceCache() = default;

    /**
     * Record/replay traces as <dir>/<key>.stmt: a lookup first tries
     * to read the file; on miss it generates and writes it. Best
     * effort — unreadable, stale or missing files fall back to live
     * generation. Call before the first lookup; creates @p dir if
     * needed.
     */
    void setSpillDir(const std::string &dir);

    /**
     * Stream views for suite entry @p name under @p p (cached) — the
     * primary entry for zero-copy consumers. The returned set stays
     * valid for the cache's lifetime.
     */
    const trace::StreamSet &
    viewSet(const std::string &name, const workloads::WorkloadParams &p);

    /**
     * Build (generate-or-replay) the set for @p name ahead of its
     * consumer, without counting a cache lookup — the background
     * streamer's entry. Safe to race with viewSet().
     */
    void prepare(const std::string &name,
                 const workloads::WorkloadParams &p);

    /** Whether the set for @p name is already built (non-blocking). */
    bool ready(const std::string &name,
               const workloads::WorkloadParams &p);

    /** Per-CPU streams, materialised (legacy callers; cached). */
    const std::vector<trace::Trace> &
    streams(const std::string &name, const workloads::WorkloadParams &p);

    /** Interleaved trace for @p name under @p p (cached, lazy). */
    const trace::Trace &get(const std::string &name,
                            const workloads::WorkloadParams &p);

  private:
    struct Slot
    {
        std::once_flag setOnce;
        std::once_flag streamsOnce;
        std::once_flag mergedOnce;
        trace::StreamSet set;
        std::atomic<bool> prepared{false};
        std::vector<trace::Trace> streams;  //!< mapped-set materialisation
        trace::Trace merged;
    };

    Slot &slot(const std::string &name,
               const workloads::WorkloadParams &p);

    const trace::StreamSet &viewSetImpl(const std::string &name,
                                        const workloads::WorkloadParams &p,
                                        bool count_lookup);

    std::string spillDir;
    std::mutex mu;                      //!< guards slots map shape
    std::map<std::string, Slot> slots;  //!< node-stable storage
};

/** The paper's four workload groups, in figure order. */
const std::vector<std::string> &groupNames();

/** Names of suite entries belonging to @p group. */
std::vector<std::string> workloadsInGroup(const std::string &group);

} // namespace stems::study

#endif // STEMS_STUDY_SUITE_HH
