/**
 * @file
 * Suite-level helpers for the benchmark harnesses: scaled default
 * trace lengths (env-tunable), a trace cache so parameter sweeps reuse
 * generated workloads, and group aggregation in the paper's four
 * classes.
 */

#ifndef STEMS_STUDY_SUITE_HH
#define STEMS_STUDY_SUITE_HH

#include <map>
#include <string>
#include <vector>

#include "trace/access.hh"
#include "workloads/workload.hh"

namespace stems::study {

/**
 * Default workload parameters for benches. Honours two environment
 * knobs: STEMS_REFS_PER_CPU (absolute) and STEMS_SCALE (multiplier on
 * the default), so `STEMS_SCALE=4 ./fig04_blocksize` quadruples trace
 * length.
 */
workloads::WorkloadParams defaultParams(uint64_t refs_per_cpu = 100000);

/** Generates-once, reuses-thereafter trace storage for sweeps. */
class TraceCache
{
  public:
    /** Trace for suite entry @p name under @p p (cached). */
    const trace::Trace &get(const std::string &name,
                            const workloads::WorkloadParams &p);

  private:
    std::map<std::string, trace::Trace> traces;
};

/** The paper's four workload groups, in figure order. */
const std::vector<std::string> &groupNames();

/** Names of suite entries belonging to @p group. */
std::vector<std::string> workloadsInGroup(const std::string &group);

} // namespace stems::study

#endif // STEMS_STUDY_SUITE_HH
