/**
 * @file
 * Suite-level helpers for the benchmark harnesses: scaled default
 * trace lengths (env-tunable), a trace cache so parameter sweeps reuse
 * generated workloads, and group aggregation in the paper's four
 * classes.
 */

#ifndef STEMS_STUDY_SUITE_HH
#define STEMS_STUDY_SUITE_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "trace/access.hh"
#include "workloads/workload.hh"

namespace stems::study {

/**
 * Default workload parameters for benches. Honours two environment
 * knobs: STEMS_REFS_PER_CPU (absolute) and STEMS_SCALE (multiplier on
 * the default), so `STEMS_SCALE=4 ./fig04_blocksize` quadruples trace
 * length.
 */
workloads::WorkloadParams defaultParams(uint64_t refs_per_cpu = 100000);

/**
 * Generates-once, reuses-thereafter trace storage for sweeps.
 *
 * Thread-safe: concurrent get() calls for the same key block until the
 * first caller finishes generating; returned references stay valid for
 * the cache's lifetime. With a spill directory set, generation is
 * replaced by record/replay through trace::writeTrace / readTrace so
 * expensive workloads are generated once across processes.
 */
class TraceCache
{
  public:
    TraceCache() = default;

    /**
     * Record/replay traces as <dir>/<key>.stmt: a get() first tries to
     * read the file; on miss it generates and writes it. Best effort —
     * unreadable or missing files fall back to live generation. Call
     * before the first get(); creates @p dir if needed.
     */
    void setSpillDir(const std::string &dir);

    /** Trace for suite entry @p name under @p p (cached). */
    const trace::Trace &get(const std::string &name,
                            const workloads::WorkloadParams &p);

  private:
    struct Slot
    {
        std::once_flag once;
        trace::Trace trace;
    };

    std::string spillDir;
    std::mutex mu;                      //!< guards slots map shape
    std::map<std::string, Slot> slots;  //!< node-stable storage
};

/** The paper's four workload groups, in figure order. */
const std::vector<std::string> &groupNames();

/** Names of suite entries belonging to @p group. */
std::vector<std::string> workloadsInGroup(const std::string &group);

} // namespace stems::study

#endif // STEMS_STUDY_SUITE_HH
