/**
 * @file
 * The trace-based L1 coverage study used by Sections 4.2-4.5
 * (Figures 6-10 and the AGT sizing result). Per-CPU shadow L1 caches
 * consume the interleaved trace; remote writes broadcast 64 B
 * invalidations (the coherence behaviour that matters at L1 for
 * generation lifetimes); an SMS unit per CPU trains on its cache's
 * access and departure streams and streams predictions back into it.
 *
 * Coverage is reported against a baseline (no-prefetch) pass over the
 * same trace, matching the paper's definition: coverage = fraction of
 * baseline L1 read misses eliminated; overpredictions = prefetched
 * blocks evicted or invalidated unused, as a fraction of baseline
 * misses (so bars can exceed 100%).
 */

#ifndef STEMS_STUDY_L1STUDY_HH
#define STEMS_STUDY_L1STUDY_HH

#include <cstdint>

#include "core/sectored.hh"
#include "core/sms.hh"
#include "mem/cache.hh"
#include "trace/access.hh"
#include "trace/stream.hh"

namespace stems::study {

/** Which training structure drives prediction (Figure 8). */
enum class TrainerKind { AGT, LogicalSectored, DecoupledSectored };

inline const char *
trainerName(TrainerKind k)
{
    switch (k) {
      case TrainerKind::AGT: return "AGT";
      case TrainerKind::LogicalSectored: return "LS";
      case TrainerKind::DecoupledSectored: return "DS";
    }
    return "?";
}

/** Configuration of one L1 coverage experiment. */
struct L1StudyConfig
{
    uint32_t ncpu = 16;
    mem::CacheConfig l1{64 * 1024, 2, 64, mem::ReplKind::LRU};
    core::SmsConfig sms;  //!< geometry/index/PHT/AGT parameters
    TrainerKind trainer = TrainerKind::AGT;
    core::DsConfig ds;    //!< used when trainer == DecoupledSectored
    bool prefetch = true; //!< false = baseline measurement
};

/** Outcome of one L1 coverage experiment. */
struct L1StudyResult
{
    uint64_t instructions = 0;
    uint64_t readAccesses = 0;
    uint64_t readMisses = 0;       //!< demand read misses (with pf)
    uint64_t coveredReads = 0;     //!< read hits on prefetched blocks
    uint64_t overpredictions = 0;  //!< prefetched blocks dropped unused
    uint64_t peakAccumOccupancy = 0;  //!< max AGT accumulation demand
    uint64_t peakFilterOccupancy = 0; //!< max AGT filter demand

    /** Coverage vs a baseline miss count. */
    double
    coverage(uint64_t baseline_misses) const
    {
        return baseline_misses
                   ? double(coveredReads) / double(baseline_misses)
                   : 0.0;
    }

    /** Uncovered misses vs baseline (can exceed 1 with pollution). */
    double
    uncovered(uint64_t baseline_misses) const
    {
        return baseline_misses
                   ? double(readMisses) / double(baseline_misses)
                   : 0.0;
    }

    double
    overprediction(uint64_t baseline_misses) const
    {
        return baseline_misses
                   ? double(overpredictions) / double(baseline_misses)
                   : 0.0;
    }
};

/** Run one pass of the trace through the shadow-L1 pipeline. */
L1StudyResult runL1Study(const trace::Trace &t, const L1StudyConfig &cfg);

/**
 * Zero-materialization form: drive the shadow pipeline from a
 * StreamSet in canonical interleaved order for workload seed @p seed
 * (identical to the order the merged trace materialises), so the
 * merged copy is never built. Results are byte-identical to the
 * merged-trace overload.
 */
L1StudyResult runL1Study(const trace::StreamSet &set,
                         const L1StudyConfig &cfg, uint64_t seed);

} // namespace stems::study

#endif // STEMS_STUDY_L1STUDY_HH
