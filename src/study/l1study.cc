#include "study/l1study.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "trace/interleaver.hh"

namespace stems::study {

namespace {

/** One CPU's shadow pipeline for the AGT / LS variants. */
struct ShadowNode
{
    std::unique_ptr<mem::Cache> cache;
    std::unique_ptr<core::SmsUnit> unit;  //!< null in baseline runs
};

/**
 * The study proper, templated over how accesses are delivered:
 * @p drive is called once with a per-access sink and must invoke it
 * for every reference in interleaved order (cpu field already
 * stamped with the stream index).
 */
template <typename DriveFn>
L1StudyResult
runL1StudyImpl(DriveFn &&drive, const L1StudyConfig &cfg)
{
    L1StudyResult res;

    const bool ds_mode = cfg.trainer == TrainerKind::DecoupledSectored;

    std::vector<ShadowNode> nodes;
    std::vector<core::DecoupledSectoredCache *> ds;  // borrowed ptrs
    std::vector<std::unique_ptr<core::SmsUnit>> dsUnits;
    std::vector<std::unique_ptr<core::DecoupledSectoredCache>> dsOwned;

    if (!ds_mode) {
        nodes.resize(cfg.ncpu);
        for (uint32_t c = 0; c < cfg.ncpu; ++c) {
            nodes[c].cache = std::make_unique<mem::Cache>(
                cfg.l1, "shadow-l1." + std::to_string(c));
            if (cfg.prefetch) {
                std::unique_ptr<core::PatternTrainer> trainer;
                if (cfg.trainer == TrainerKind::LogicalSectored) {
                    // tags as if the cache were sectored at region size
                    core::SectoredTagConfig ls;
                    ls.assoc = cfg.l1.assoc;
                    ls.sets = static_cast<uint32_t>(
                        cfg.l1.sizeBytes /
                        (uint64_t{cfg.sms.geometry.regionSize()} *
                         cfg.l1.assoc));
                    if (ls.sets == 0)
                        ls.sets = 1;
                    trainer = std::make_unique<core::LogicalSectoredTags>(
                        cfg.sms.geometry, ls);
                }
                mem::Cache *cache = nodes[c].cache.get();
                core::IssueFn issue = [cache](uint32_t, uint64_t addr,
                                              bool) {
                    cache->fillPrefetch(addr);
                };
                nodes[c].unit = std::make_unique<core::SmsUnit>(
                    c, cfg.sms, issue, std::move(trainer));
                nodes[c].cache->setListener(nodes[c].unit.get());
            }
        }
    } else {
        for (uint32_t c = 0; c < cfg.ncpu; ++c) {
            auto cache = std::make_unique<core::DecoupledSectoredCache>(
                cfg.ds);
            ds.push_back(cache.get());
            if (cfg.prefetch) {
                core::DecoupledSectoredCache *raw = cache.get();
                core::IssueFn issue = [raw](uint32_t, uint64_t addr,
                                            bool) {
                    raw->fillPrefetch(addr);
                };
                core::SmsConfig sms_cfg = cfg.sms;
                // DS defines regions by its sector size
                sms_cfg.geometry = core::RegionGeometry(
                    cfg.ds.sectorSize, cfg.ds.blockSize);
                dsUnits.push_back(std::make_unique<core::SmsUnit>(
                    c, sms_cfg, issue, std::move(cache)));
            } else {
                // baseline DS: keep the cache alive without a unit
                dsUnits.push_back(nullptr);
                dsOwned.push_back(std::move(cache));
            }
        }
    }

    const uint64_t block_mask = ~uint64_t{cfg.l1.blockSize - 1};

    drive([&](const trace::MemAccess &a) {
        res.instructions += a.ninst + 1;

        // remote stores invalidate other CPUs' copies (64 B coherence)
        if (a.isWrite) {
            const uint64_t blk = a.addr & block_mask;
            for (uint32_t o = 0; o < cfg.ncpu; ++o) {
                if (o == a.cpu)
                    continue;
                if (!ds_mode)
                    nodes[o].cache->invalidate(blk);
                else
                    ds[o]->invalidateBlock(blk);
            }
        }

        mem::AccessResult r;
        if (!ds_mode) {
            r = nodes[a.cpu].cache->access(a.addr, a.isWrite);
            if (nodes[a.cpu].unit)
                nodes[a.cpu].unit->onAccess(a.pc, a.addr);
        } else {
            r = ds[a.cpu]->access(a.pc, a.addr, a.isWrite);
        }

        if (!a.isWrite) {
            ++res.readAccesses;
            if (!r.hit)
                ++res.readMisses;
            if (r.prefetchHit)
                ++res.coveredReads;
        }
    });

    if (!ds_mode) {
        for (auto &n : nodes) {
            res.overpredictions += n.cache->stats().prefetchUnused;
            if (n.unit) {
                auto *agt = dynamic_cast<core::ActiveGenerationTable *>(
                    &n.unit->trainer());
                if (agt) {
                    res.peakAccumOccupancy = std::max(
                        res.peakAccumOccupancy,
                        agt->stats().peakAccumOccupancy);
                    res.peakFilterOccupancy = std::max(
                        res.peakFilterOccupancy,
                        agt->stats().peakFilterOccupancy);
                }
            }
        }
    } else {
        for (auto *c : ds)
            res.overpredictions += c->stats().prefetchUnused;
    }
    return res;
}

} // anonymous namespace

L1StudyResult
runL1Study(const trace::Trace &t, const L1StudyConfig &cfg)
{
    return runL1StudyImpl(
        [&t](auto &&sink) {
            for (const auto &a : t)
                sink(a);
        },
        cfg);
}

L1StudyResult
runL1Study(const trace::StreamSet &set, const L1StudyConfig &cfg,
           uint64_t seed)
{
    return runL1StudyImpl(
        [&set, seed](auto &&sink) {
            trace::InterleavedView view = trace::canonicalView(set, seed);
            const trace::MemAccess *span;
            uint32_t spanCpu;
            size_t n;
            while ((n = view.nextSpan(span, spanCpu)) != 0) {
                for (size_t k = 0; k < n; ++k) {
                    trace::MemAccess a = span[k];
                    a.cpu = spanCpu;
                    sink(a);
                }
            }
        },
        cfg);
}

} // namespace stems::study
