#include "study/suite.hh"

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "trace/io.hh"

namespace stems::study {

workloads::WorkloadParams
defaultParams(uint64_t refs_per_cpu)
{
    workloads::WorkloadParams p;
    p.ncpu = 16;
    p.seed = 1;
    p.refsPerCpu = refs_per_cpu;
    if (const char *env = std::getenv("STEMS_REFS_PER_CPU"))
        p.refsPerCpu = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("STEMS_SCALE")) {
        double scale = std::strtod(env, nullptr);
        if (scale > 0)
            p.refsPerCpu = static_cast<uint64_t>(
                static_cast<double>(p.refsPerCpu) * scale);
    }
    if (p.refsPerCpu < 1000)
        p.refsPerCpu = 1000;
    return p;
}

void
TraceCache::setSpillDir(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort
    spillDir = dir;
}

const trace::Trace &
TraceCache::get(const std::string &name,
                const workloads::WorkloadParams &p)
{
    std::ostringstream key;
    key << name << "_" << p.ncpu << "_" << p.refsPerCpu << "_" << p.seed;

    Slot *slot;
    {
        std::lock_guard<std::mutex> lock(mu);
        slot = &slots[key.str()];
    }
    std::call_once(slot->once, [&] {
        const std::string file = spillDir.empty()
            ? std::string()
            : spillDir + "/" + key.str() + ".stmt";
        if (!file.empty()) {
            try {
                if (trace::readTrace(file, slot->trace))
                    return;  // replayed from disk
            } catch (const std::exception &) {
                // unreadable spill files fall back to live generation
            }
            slot->trace.clear();
        }
        const workloads::SuiteEntry *entry = workloads::findWorkload(name);
        if (!entry)
            throw std::invalid_argument("unknown workload: " + name);
        auto w = entry->make();
        slot->trace = workloads::makeTrace(*w, p);
        if (!file.empty())
            trace::writeTrace(slot->trace, file);  // record, best effort
    });
    return slot->trace;
}

const std::vector<std::string> &
groupNames()
{
    static const std::vector<std::string> groups = {
        "OLTP", "DSS", "Web", "Scientific",
    };
    return groups;
}

std::vector<std::string>
workloadsInGroup(const std::string &group)
{
    std::vector<std::string> out;
    for (const auto &e : workloads::paperSuite()) {
        if (suiteClassName(e.cls) == group)
            out.push_back(e.name);
    }
    return out;
}

} // namespace stems::study
