#include "study/suite.hh"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace stems::study {

workloads::WorkloadParams
defaultParams(uint64_t refs_per_cpu)
{
    workloads::WorkloadParams p;
    p.ncpu = 16;
    p.seed = 1;
    p.refsPerCpu = refs_per_cpu;
    if (const char *env = std::getenv("STEMS_REFS_PER_CPU"))
        p.refsPerCpu = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("STEMS_SCALE")) {
        double scale = std::strtod(env, nullptr);
        if (scale > 0)
            p.refsPerCpu = static_cast<uint64_t>(
                static_cast<double>(p.refsPerCpu) * scale);
    }
    if (p.refsPerCpu < 1000)
        p.refsPerCpu = 1000;
    return p;
}

const trace::Trace &
TraceCache::get(const std::string &name,
                const workloads::WorkloadParams &p)
{
    std::ostringstream key;
    key << name << "/" << p.ncpu << "/" << p.refsPerCpu << "/" << p.seed;
    auto it = traces.find(key.str());
    if (it != traces.end())
        return it->second;

    const workloads::SuiteEntry *entry = workloads::findWorkload(name);
    if (!entry)
        throw std::invalid_argument("unknown workload: " + name);
    auto w = entry->make();
    auto [pos, ok] = traces.emplace(key.str(),
                                    workloads::makeTrace(*w, p));
    return pos->second;
}

const std::vector<std::string> &
groupNames()
{
    static const std::vector<std::string> groups = {
        "OLTP", "DSS", "Web", "Scientific",
    };
    return groups;
}

std::vector<std::string>
workloadsInGroup(const std::string &group)
{
    std::vector<std::string> out;
    for (const auto &e : workloads::paperSuite()) {
        if (suiteClassName(e.cls) == group)
            out.push_back(e.name);
    }
    return out;
}

} // namespace stems::study
