#include "study/suite.hh"

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "obs/counters.hh"
#include "obs/obs.hh"
#include "trace/interleaver.hh"
#include "trace/io.hh"
#include "trace/lock.hh"
#include "util/flat_map.hh"

namespace stems::study {

namespace {

/**
 * Bump when workload generators or the interleave schedule change
 * behaviour: on-disk spill traces recorded by older generators are
 * then rejected and regenerated instead of silently replayed.
 */
constexpr uint64_t kGeneratorVersion = 2;

uint64_t
hashCombine(uint64_t h, uint64_t x)
{
    return util::Mix64{}(h ^ (x + 0x9e3779b97f4a7c15ULL));
}

} // anonymous namespace

uint64_t
generatorConfigHash(const std::string &name,
                    const workloads::WorkloadParams &p)
{
    uint64_t h = kGeneratorVersion;
    for (char c : name)
        h = hashCombine(h, static_cast<unsigned char>(c));
    h = hashCombine(h, p.ncpu);
    h = hashCombine(h, p.refsPerCpu);
    h = hashCombine(h, p.seed);
    return h ? h : 1;  // 0 means "no hash" on disk
}

workloads::WorkloadParams
defaultParams(uint64_t refs_per_cpu)
{
    workloads::WorkloadParams p;
    p.ncpu = 16;
    p.seed = 1;
    p.refsPerCpu = refs_per_cpu;
    if (const char *env = std::getenv("STEMS_REFS_PER_CPU"))
        p.refsPerCpu = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("STEMS_SCALE")) {
        double scale = std::strtod(env, nullptr);
        if (scale > 0)
            p.refsPerCpu = static_cast<uint64_t>(
                static_cast<double>(p.refsPerCpu) * scale);
    }
    if (p.refsPerCpu < 1000)
        p.refsPerCpu = 1000;
    return p;
}

void
TraceCache::setSpillDir(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort
    spillDir = dir;
}

TraceCache::Slot &
TraceCache::slot(const std::string &name,
                 const workloads::WorkloadParams &p)
{
    std::ostringstream key;
    key << name << "_" << p.ncpu << "_" << p.refsPerCpu << "_" << p.seed;
    std::lock_guard<std::mutex> lock(mu);
    return slots[key.str()];
}

const trace::StreamSet &
TraceCache::viewSetImpl(const std::string &name,
                        const workloads::WorkloadParams &p,
                        bool count_lookup)
{
    Slot &s = slot(name, p);
    bool ran = false;
    std::call_once(s.setOnce, [&] {
        ran = true;
        // the miss is counted inside the once so it stays slot-tied
        // (exactly one per distinct key) no matter which caller — a
        // consumer or the background streamer — gets here first
        obs::count(&obs::Counters::traceCacheMisses);
        const uint64_t hash = generatorConfigHash(name, p);
        const std::string file = spillDir.empty()
            ? std::string()
            : spillDir + "/" + name + "_" + std::to_string(p.ncpu) +
                "_" + std::to_string(p.refsPerCpu) + "_" +
                std::to_string(p.seed) + ".stmt";

        // replay: v4 spills hold one section per stream, so the fast
        // path maps the file and hands out zero-copy views; the stdio
        // path (STEMS_NO_MMAP=1, or mapping failed) materialises the
        // sections instead. Either way the file is fully validated —
        // header, section table, size, checksum — before any view
        // escapes, so corruption is a replay miss, never a SIGBUS.
        auto tryReplay = [&]() -> bool {
            obs::Span span("trace_replay", {{"workload", name}});
            try {
                if (auto m = trace::MappedTrace::open(file, hash)) {
                    if (m->numStreams() != p.ncpu)
                        return false;
                    obs::count(&obs::Counters::traceBytesMapped,
                               m->bytes());
                    s.set = trace::StreamSet::mapped(std::move(m));
                    obs::count(&obs::Counters::traceSpillReplays);
                    return true;
                }
                std::vector<trace::Trace> streams;
                if (!trace::readTraceStreams(file, streams, hash) ||
                    streams.size() != p.ncpu)
                    return false;
                s.set = trace::StreamSet::owned(std::move(streams));
                obs::count(&obs::Counters::traceSpillReplays);
                return true;
            } catch (const std::exception &) {
                // unreadable spill files fall back to live generation
                return false;
            }
        };

        auto generate = [&] {
            obs::Span span("trace_generate", {{"workload", name}});
            const workloads::SuiteEntry *entry =
                workloads::findWorkload(name);
            if (!entry)
                throw std::invalid_argument("unknown workload: " + name);
            auto w = entry->make();
            s.set = trace::StreamSet::owned(w->generateStreams(p));
        };

        auto build = [&] {
            if (file.empty()) {
                generate();
                return;
            }
            if (tryReplay())
                return;
            // concurrent generators (dispatch workers sharing the
            // spill dir) serialize here so each trace is generated
            // exactly once: the lock winner records, the losers wake
            // up and replay
            trace::FileLock lock(file + ".lock");
            if (lock.held() && tryReplay())
                return;
            generate();
            // record, best effort (atomic rename, so lockless
            // fast-path readers never see a torn file)
            trace::writeTraceStreams(*s.set.vectors(), file, hash);
        };
        build();
        s.prepared.store(true, std::memory_order_release);
    });
    // hits for every later lookup — deterministic across thread
    // counts; prepare() passes count_lookup=false so the background
    // streamer never perturbs the hit count
    if (count_lookup && !ran)
        obs::count(&obs::Counters::traceCacheHits);
    return s.set;
}

const trace::StreamSet &
TraceCache::viewSet(const std::string &name,
                    const workloads::WorkloadParams &p)
{
    return viewSetImpl(name, p, true);
}

void
TraceCache::prepare(const std::string &name,
                    const workloads::WorkloadParams &p)
{
    viewSetImpl(name, p, false);
}

bool
TraceCache::ready(const std::string &name,
                  const workloads::WorkloadParams &p)
{
    std::ostringstream key;
    key << name << "_" << p.ncpu << "_" << p.refsPerCpu << "_" << p.seed;
    std::lock_guard<std::mutex> lock(mu);
    auto it = slots.find(key.str());
    return it != slots.end() &&
        it->second.prepared.load(std::memory_order_acquire);
}

const std::vector<trace::Trace> &
TraceCache::streams(const std::string &name,
                    const workloads::WorkloadParams &p)
{
    Slot &s = slot(name, p);
    const trace::StreamSet &set = viewSetImpl(name, p, true);
    if (const auto *v = set.vectors())
        return *v;
    // mapped backing: legacy callers need real vectors, copy out once
    std::call_once(s.streamsOnce, [&] { s.streams = set.materialize(); });
    return s.streams;
}

const trace::Trace &
TraceCache::get(const std::string &name,
                const workloads::WorkloadParams &p)
{
    Slot &s = slot(name, p);
    const std::vector<trace::Trace> &st = streams(name, p);
    std::call_once(s.mergedOnce, [&] {
        s.merged = trace::canonicalInterleaver(p.seed).merge(st);
    });
    return s.merged;
}

const std::vector<std::string> &
groupNames()
{
    static const std::vector<std::string> groups = {
        "OLTP", "DSS", "Web", "Scientific",
    };
    return groups;
}

std::vector<std::string>
workloadsInGroup(const std::string &group)
{
    std::vector<std::string> out;
    for (const auto &e : workloads::paperSuite()) {
        if (suiteClassName(e.cls) == group)
            out.push_back(e.name);
    }
    return out;
}

} // namespace stems::study
