#include "study/memstudy.hh"

#include <memory>

#include "core/oracle.hh"
#include "prefetch/prefetcher.hh"
#include "trace/interleaver.hh"

namespace stems::study {

namespace {

/** Adapts a cache's departure stream onto an OracleTracker. */
class OracleListener : public mem::CacheListener
{
  public:
    explicit OracleListener(const core::RegionGeometry &geom)
        : tracker(geom)
    {}

    void evicted(uint64_t addr, bool, bool) override
    {
        tracker.onBlockRemoved(addr);
    }

    void invalidated(uint64_t addr, bool) override
    {
        tracker.onBlockRemoved(addr);
    }

    core::OracleTracker tracker;
};

/**
 * The study proper, templated over how accesses are delivered:
 * @p drive is called once with a per-access sink and must invoke it
 * for every reference in interleaved order. Instantiated for the
 * merged-trace and zero-copy stream-view front ends below.
 */
template <typename DriveFn>
SystemStudyResult
runSystemImpl(DriveFn &&drive, const SystemStudyConfig &cfg,
              const PfAttach &attach)
{
    SystemStudyResult res;
    mem::MemorySystem sys(cfg.sys);
    const uint32_t ncpu = cfg.sys.ncpu;

    AttachedPrefetcher *pf = attach ? attach(sys) : nullptr;

    // oracle trackers, one per (cpu, level, region size)
    const size_t nsizes = cfg.oracleRegionSizes.size();
    std::vector<std::unique_ptr<OracleListener>> oracleL1, oracleL2;
    for (size_t s = 0; s < nsizes; ++s) {
        core::RegionGeometry geom(cfg.oracleRegionSizes[s],
                                  cfg.sys.l1.blockSize);
        for (uint32_t c = 0; c < ncpu; ++c) {
            oracleL1.push_back(std::make_unique<OracleListener>(geom));
            sys.addL1Listener(c, oracleL1.back().get());
            oracleL2.push_back(std::make_unique<OracleListener>(geom));
            sys.addL2Listener(c, oracleL2.back().get());
        }
    }
    auto l1OracleAt = [&](size_t s, uint32_t c) -> OracleListener & {
        return *oracleL1[s * ncpu + c];
    };
    auto l2OracleAt = [&](size_t s, uint32_t c) -> OracleListener & {
        return *oracleL2[s * ncpu + c];
    };

    // density trackers
    std::vector<std::unique_ptr<DensityTracker>> densL1, densL2;
    if (cfg.trackDensity) {
        core::RegionGeometry geom(cfg.densityRegionSize,
                                  cfg.sys.l1.blockSize);
        for (uint32_t c = 0; c < ncpu; ++c) {
            densL1.push_back(std::make_unique<DensityTracker>(geom));
            sys.addL1Listener(c, densL1.back().get());
            densL2.push_back(std::make_unique<DensityTracker>(geom));
            sys.addL2Listener(c, densL2.back().get());
        }
    }

    drive([&](const trace::MemAccess &a) {
        res.instructions += a.ninst + 1;
        mem::AccessOutcome out = sys.access(a);

        if (!a.isWrite) {
            if (out.l1PrefetchHit)
                ++res.l1Covered;
            if (out.l2PrefetchHit)
                ++res.l2Covered;
        }

        const bool l1_miss = out.level != mem::HitLevel::L1;
        for (size_t s = 0; s < nsizes; ++s) {
            l1OracleAt(s, a.cpu).tracker.onAccess(a.addr);
            if (l1_miss)
                l2OracleAt(s, a.cpu).tracker.onAccess(a.addr);
        }
        if (l1_miss)
            ++res.l1Misses;
        const bool offchip = out.level == mem::HitLevel::Remote ||
            out.level == mem::HitLevel::Memory;
        if (offchip)
            ++res.l2Misses;
        if (cfg.trackDensity) {
            // Figure 5 histograms *misses* per generation density
            if (l1_miss)
                densL1[a.cpu]->onAccess(a.addr);
            if (offchip)
                densL2[a.cpu]->onAccess(a.addr);
        }
    });

    if (pf)
        pf->drain();

    // harvest
    res.l1ReadAccesses = sys.l1ReadAccesses();
    res.l1ReadMisses = sys.l1ReadMisses();
    res.l2ReadMisses = sys.l2ReadMisses();
    for (uint32_t c = 0; c < ncpu; ++c) {
        res.l1Overpred += sys.l1(c).stats().prefetchUnused;
        res.l2Overpred += sys.l2(c).stats().prefetchUnused;
    }
    const mem::DirectoryStats &ds = sys.directory().finalize();
    res.trueSharing = ds.trueSharing;
    res.falseSharing = ds.falseSharing;
    res.readCohMisses = ds.readCohMisses;
    res.memWritebacks = sys.memoryWritebacks();

    res.oracleL1Gens.assign(nsizes, 0);
    res.oracleL2Gens.assign(nsizes, 0);
    for (size_t s = 0; s < nsizes; ++s) {
        for (uint32_t c = 0; c < ncpu; ++c) {
            res.oracleL1Gens[s] += l1OracleAt(s, c).tracker.generations();
            res.oracleL2Gens[s] += l2OracleAt(s, c).tracker.generations();
        }
    }
    if (cfg.trackDensity) {
        for (uint32_t c = 0; c < ncpu; ++c) {
            densL1[c]->finalize();
            densL2[c]->finalize();
            for (size_t b = 0; b < kDensityBuckets; ++b) {
                res.l1Density[b] += densL1[c]->accessHist()[b];
                res.l2Density[b] += densL2[c]->accessHist()[b];
            }
        }
    }
    return res;
}

} // anonymous namespace

SystemStudyResult
runSystem(const trace::Trace &t, const SystemStudyConfig &cfg)
{
    // classic PfKind wiring, expressed through the attach hook
    std::unique_ptr<core::SmsController> sms;
    std::unique_ptr<prefetch::PrefetchController> ghb;
    return runSystem(t, cfg,
                     [&](mem::MemorySystem &sys) -> AttachedPrefetcher * {
        if (cfg.pf == PfKind::Sms) {
            sms = std::make_unique<core::SmsController>(sys, cfg.sms);
        } else if (cfg.pf == PfKind::Ghb) {
            ghb = std::make_unique<prefetch::PrefetchController>(
                sys, [&cfg] {
                    return std::make_unique<prefetch::GhbPcDc>(cfg.ghb);
                });
        }
        return nullptr;
    });
}

SystemStudyResult
runSystem(const trace::Trace &t, const SystemStudyConfig &cfg,
          const PfAttach &attach)
{
    return runSystemImpl(
        [&t](auto &&sink) {
            for (const auto &a : t)
                sink(a);
        },
        cfg, attach);
}

namespace {

/** Drive @p sink over @p view in span order, cpu field restamped. */
template <typename Sink>
void
driveView(trace::InterleavedView &view, Sink &&sink)
{
    const trace::MemAccess *span;
    uint32_t spanCpu;
    size_t n;
    while ((n = view.nextSpan(span, spanCpu)) != 0) {
        for (size_t k = 0; k < n; ++k) {
            trace::MemAccess a = span[k];
            a.cpu = spanCpu;
            sink(a);
        }
    }
}

} // anonymous namespace

SystemStudyResult
runSystem(const std::vector<trace::Trace> &streams,
          const SystemStudyConfig &cfg, uint64_t seed,
          const PfAttach &attach)
{
    return runSystemImpl(
        [&streams, seed](auto &&sink) {
            trace::InterleavedView view =
                trace::canonicalView(streams, seed);
            driveView(view, sink);
        },
        cfg, attach);
}

SystemStudyResult
runSystem(const trace::StreamSet &set, const SystemStudyConfig &cfg,
          uint64_t seed, const PfAttach &attach)
{
    return runSystemImpl(
        [&set, seed](auto &&sink) {
            trace::InterleavedView view = trace::canonicalView(set, seed);
            driveView(view, sink);
        },
        cfg, attach);
}

} // namespace stems::study
