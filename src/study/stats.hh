/**
 * @file
 * Small-sample statistics for the performance experiments: means,
 * geometric means, and 95% confidence intervals over per-seed paired
 * measurements (the paper's sampling methodology reports 95% CIs on
 * the change in performance).
 */

#ifndef STEMS_STUDY_STATS_HH
#define STEMS_STUDY_STATS_HH

#include <cmath>
#include <cstddef>
#include <vector>

namespace stems::study {

/** Arithmetic mean. @pre !v.empty() */
inline double
mean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** Geometric mean. @pre all positive */
inline double
geomean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

/** Sample standard deviation (n-1). */
inline double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    double m = mean(v);
    double s = 0;
    for (double x : v)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size() - 1));
}

/** Two-sided 95% Student t critical value for @p df degrees. */
inline double
tCritical95(size_t df)
{
    static const double table[] = {
        0,     12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306, 2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120, 2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064, 2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df == 0)
        return 0.0;
    if (df < sizeof(table) / sizeof(table[0]))
        return table[df];
    return 1.96;
}

/** Half-width of the 95% CI of the mean of @p v. */
inline double
ci95(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    return tCritical95(v.size() - 1) * stddev(v) /
        std::sqrt(static_cast<double>(v.size()));
}

} // namespace stems::study

#endif // STEMS_STUDY_STATS_HH
