/**
 * @file
 * Full-system trace study on the multiprocessor memory hierarchy:
 * drives a MemorySystem (optionally with SMS or GHB attached) over an
 * interleaved trace and collects the measurements behind Figures 4, 5
 * and 11 — per-level miss rates, oracle opportunity at a set of
 * region sizes, access-density histograms, off-chip coverage, and the
 * true/false sharing split.
 */

#ifndef STEMS_STUDY_MEMSTUDY_HH
#define STEMS_STUDY_MEMSTUDY_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/sms.hh"
#include "mem/memsys.hh"
#include "prefetch/attach.hh"
#include "prefetch/ghb.hh"
#include "study/density.hh"
#include "trace/access.hh"
#include "trace/stream.hh"

namespace stems::study {

/**
 * The attach seam (see prefetch/attach.hh): the experiment engine's
 * registry returns these so runSystem — and sim::runTiming — can host
 * any deployment, not just the built-in PfKind set.
 */
using AttachedPrefetcher = prefetch::AttachedPrefetcher;
using PfAttach = prefetch::PfAttach;

/** Which prefetcher (if any) to deploy in a system run. */
enum class PfKind { None, Sms, Ghb };

/** Configuration of one full-system run. */
struct SystemStudyConfig
{
    mem::MemSysConfig sys;
    PfKind pf = PfKind::None;
    core::SmsConfig sms;
    prefetch::GhbConfig ghb;
    /** Track oracle generations at these region sizes (L1 and L2). */
    std::vector<uint32_t> oracleRegionSizes;
    bool trackDensity = false;
    uint32_t densityRegionSize = 2048;
};

/** Everything a system run measures. */
struct SystemStudyResult
{
    uint64_t instructions = 0;
    uint64_t l1ReadAccesses = 0;
    uint64_t l1ReadMisses = 0;
    uint64_t l2ReadMisses = 0;   //!< off-chip read misses
    uint64_t l1Misses = 0;       //!< all demand L1 misses (incl writes)
    uint64_t l2Misses = 0;       //!< all demand off-chip misses
    uint64_t l1Covered = 0;      //!< reads hitting L1-prefetched blocks
    uint64_t l2Covered = 0;      //!< first uses of L2-prefetched blocks
    uint64_t l1Overpred = 0;
    uint64_t l2Overpred = 0;
    uint64_t trueSharing = 0;
    uint64_t falseSharing = 0;
    uint64_t readCohMisses = 0;
    uint64_t memWritebacks = 0;
    std::vector<uint64_t> oracleL1Gens;  //!< parallel to region sizes
    std::vector<uint64_t> oracleL2Gens;
    std::array<uint64_t, kDensityBuckets> l1Density{};
    std::array<uint64_t, kDensityBuckets> l2Density{};

    double
    l1MissesPerKilo() const
    {
        return instructions
                   ? 1000.0 * double(l1ReadMisses) / double(instructions)
                   : 0.0;
    }

    double
    l2MissesPerKilo() const
    {
        return instructions
                   ? 1000.0 * double(l2ReadMisses) / double(instructions)
                   : 0.0;
    }
};

/** Run one trace through a configured system. */
SystemStudyResult runSystem(const trace::Trace &t,
                            const SystemStudyConfig &cfg);

/**
 * Run one trace through a configured system with a caller-supplied
 * prefetcher deployment (cfg.pf is ignored). The handle returned by
 * @p attach is drained after the trace completes, before harvest.
 */
SystemStudyResult runSystem(const trace::Trace &t,
                            const SystemStudyConfig &cfg,
                            const PfAttach &attach);

/**
 * Zero-copy form: drive the system from per-CPU streams iterated in
 * canonical interleaved order (the same order workloads::makeTrace
 * materialises for workload seed @p seed), without building the merged
 * trace. Results are identical to the merged-trace overloads.
 */
SystemStudyResult runSystem(const std::vector<trace::Trace> &streams,
                            const SystemStudyConfig &cfg, uint64_t seed,
                            const PfAttach &attach = {});

/**
 * Zero-materialization form: same canonical interleave, driven from a
 * StreamSet whose backing may be an mmap'd spill (consumed pages are
 * dropped behind the cursor). Results are byte-identical to the other
 * overloads by construction.
 */
SystemStudyResult runSystem(const trace::StreamSet &set,
                            const SystemStudyConfig &cfg, uint64_t seed,
                            const PfAttach &attach = {});

} // namespace stems::study

#endif // STEMS_STUDY_MEMSTUDY_HH
