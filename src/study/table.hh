/**
 * @file
 * Column-aligned ASCII table printing for the benchmark harnesses
 * (one table/series per paper figure).
 */

#ifndef STEMS_STUDY_TABLE_HH
#define STEMS_STUDY_TABLE_HH

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace stems::study {

/** Simple right-padded table with a header row. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers)
        : headers(std::move(headers))
    {}

    void
    addRow(std::vector<std::string> cells)
    {
        rows.push_back(std::move(cells));
    }

    void
    print(std::ostream &os = std::cout) const
    {
        std::vector<size_t> width(headers.size());
        for (size_t c = 0; c < headers.size(); ++c)
            width[c] = headers[c].size();
        for (const auto &r : rows)
            for (size_t c = 0; c < r.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], r[c].size());

        auto emit = [&](const std::vector<std::string> &r) {
            for (size_t c = 0; c < width.size(); ++c) {
                std::string cell = c < r.size() ? r[c] : "";
                os << std::left << std::setw(
                       static_cast<int>(width[c]) + 2) << cell;
            }
            os << '\n';
        };
        emit(headers);
        std::string rule;
        for (size_t c = 0; c < width.size(); ++c)
            rule += std::string(width[c], '-') + "  ";
        os << rule << '\n';
        for (const auto &r : rows)
            emit(r);
    }

    /** Format a ratio as a percentage, one decimal. */
    static std::string
    pct(double v)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(1) << v * 100.0 << "%";
        return os.str();
    }

    /** Fixed-point format. */
    static std::string
    fixed(double v, int prec = 2)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(prec) << v;
        return os.str();
    }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace stems::study

#endif // STEMS_STUDY_TABLE_HH
