/**
 * @file
 * Memory access density tracking (Figure 5): the distribution of
 * blocks touched per spatial region generation, bucketed exactly as
 * the paper charts it (1, 2-3, 4-7, 8-15, 16-23, 24-31, 32 blocks of
 * a 2 kB region).
 */

#ifndef STEMS_STUDY_DENSITY_HH
#define STEMS_STUDY_DENSITY_HH

#include <array>
#include <cstdint>

#include "core/region.hh"
#include "mem/cache.hh"
#include "util/flat_map.hh"

namespace stems::study {

/** The paper's seven density buckets. */
constexpr size_t kDensityBuckets = 7;

/** Bucket labels matching Figure 5's legend. */
inline const char *
densityBucketName(size_t b)
{
    static const char *names[kDensityBuckets] = {
        "1 Block", "2-3 Blocks", "4-7 Blocks", "8-15 Blocks",
        "16-23 Blocks", "24-31 Blocks", "32 Blocks",
    };
    return b < kDensityBuckets ? names[b] : "?";
}

/** Bucket index for a generation that touched @p count blocks. */
inline size_t
densityBucket(uint32_t count)
{
    if (count <= 1)
        return 0;
    if (count <= 3)
        return 1;
    if (count <= 7)
        return 2;
    if (count <= 15)
        return 3;
    if (count <= 23)
        return 4;
    if (count <= 31)
        return 5;
    return 6;
}

/**
 * Tracks generations at one cache level and histograms both the
 * number of generations per density bucket and — what Figure 5
 * plots — the number of *accesses* (misses at that level) coming from
 * generations of each density.
 */
class DensityTracker : public mem::CacheListener
{
  public:
    explicit DensityTracker(const core::RegionGeometry &geom) : geom(geom)
    {}

    /** Observe one demand access at this level. */
    void
    onAccess(uint64_t addr)
    {
        Gen &g = active[geom.regionId(addr)];
        g.pattern.set(geom.offsetOf(addr));
        ++g.accesses;
    }

    void
    evicted(uint64_t addr, bool, bool) override
    {
        end(addr);
    }

    void
    invalidated(uint64_t addr, bool) override
    {
        end(addr);
    }

    /** Flush live generations into the histogram. */
    void
    finalize()
    {
        for (auto &[rid, g] : active)
            account(g);
        active.clear();
    }

    /** Accesses from generations of each density bucket. */
    const std::array<uint64_t, kDensityBuckets> &
    accessHist() const
    {
        return accessHist_;
    }

    /** Generation counts per density bucket. */
    const std::array<uint64_t, kDensityBuckets> &
    generationHist() const
    {
        return genHist_;
    }

  private:
    struct Gen
    {
        core::SpatialPattern pattern;
        uint64_t accesses = 0;
    };

    void
    account(const Gen &g)
    {
        size_t b = densityBucket(g.pattern.count());
        ++genHist_[b];
        accessHist_[b] += g.accesses;
    }

    void
    end(uint64_t addr)
    {
        auto it = active.find(geom.regionId(addr));
        if (it == active.end())
            return;
        if (!it->second.pattern.test(geom.offsetOf(addr)))
            return;
        account(it->second);
        active.erase(it);
    }

    core::RegionGeometry geom;
    util::FlatMap<uint64_t, Gen> active;
    std::array<uint64_t, kDensityBuckets> accessHist_{};
    std::array<uint64_t, kDensityBuckets> genHist_{};
};

} // namespace stems::study

#endif // STEMS_STUDY_DENSITY_HH
