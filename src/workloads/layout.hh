/**
 * @file
 * Shared address-space layout and code-site (synthetic PC) helpers for
 * the workload generators. Distinct subsystems live in disjoint,
 * page-aligned arenas so generated addresses never alias.
 */

#ifndef STEMS_WORKLOADS_LAYOUT_HH
#define STEMS_WORKLOADS_LAYOUT_HH

#include <cstdint>

namespace stems::workloads::layout {

constexpr uint32_t kPageSize = 8192;  //!< DBMS page = OS page (paper)

// arenas (64 GB apart; addresses are synthetic physical addresses)
constexpr uint64_t kBufferPoolBase = 0x01'00000000ULL;  //!< DBMS pages
constexpr uint64_t kIndexBase = 0x02'00000000ULL;       //!< B+Tree nodes
constexpr uint64_t kLogBase = 0x03'00000000ULL;         //!< DBMS log
constexpr uint64_t kHashBase = 0x04'00000000ULL;        //!< join hash
constexpr uint64_t kHeapBase = 0x05'00000000ULL;        //!< misc heap
constexpr uint64_t kConnBase = 0x06'00000000ULL;        //!< connections
constexpr uint64_t kFileCacheBase = 0x07'00000000ULL;   //!< web files
constexpr uint64_t kGridBase = 0x08'00000000ULL;        //!< sci arrays
constexpr uint64_t kPacketBase = 0x09'00000000ULL;      //!< RX rings/flows
constexpr uint64_t kLsmBase = 0x0A'00000000ULL;         //!< LSM runs/bufs
constexpr uint64_t kPrivateBase = 0x0F'00000000ULL;     //!< per-cpu heaps
constexpr uint64_t kPrivateStride = 0x10000000ULL;      //!< 256 MB / cpu

/** Base of CPU @p cpu's private arena (txn scratch, stacks). */
constexpr uint64_t
privateArea(uint32_t cpu)
{
    return kPrivateBase + uint64_t{cpu} * kPrivateStride;
}

/**
 * Build a stable synthetic PC for code site @p site of module
 * @p module. Modules are assigned per workload/substrate below.
 */
constexpr uint64_t
pcSite(uint32_t module, uint32_t site)
{
    return 0x400000ULL + uint64_t{module} * 0x1000 + uint64_t{site} * 4;
}

// module ids (one per instrumented kernel)
constexpr uint32_t kModBtree = 1;
constexpr uint32_t kModPage = 2;
constexpr uint32_t kModOltp = 3;
constexpr uint32_t kModDss = 4;
constexpr uint32_t kModWeb = 5;
constexpr uint32_t kModEm3d = 6;
constexpr uint32_t kModOcean = 7;
constexpr uint32_t kModSparse = 8;
constexpr uint32_t kModLog = 9;
constexpr uint32_t kModHash = 10;
constexpr uint32_t kModGraph = 11;
constexpr uint32_t kModHashJoin = 12;
constexpr uint32_t kModPacket = 13;
constexpr uint32_t kModLsm = 14;

} // namespace stems::workloads::layout

#endif // STEMS_WORKLOADS_LAYOUT_HH
