/**
 * @file
 * Workload generator interface and the paper's application suite
 * (Table 1): OLTP on two DBMS flavours, four TPC-H-style DSS queries,
 * two web servers, and three scientific kernels. Generators are
 * miniature instrumented systems — they run real data-structure
 * traversals (buffer-pool pages, B+Trees, hash joins, packet parsing,
 * stencils) and emit the resulting (PC, address) reference streams.
 */

#ifndef STEMS_WORKLOADS_WORKLOAD_HH
#define STEMS_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/access.hh"
#include "trace/interleaver.hh"

namespace stems::workloads {

/** Workload class grouping used by the paper's figures. */
enum class SuiteClass { OLTP, DSS, Web, Scientific };

inline const char *
suiteClassName(SuiteClass c)
{
    switch (c) {
      case SuiteClass::OLTP: return "OLTP";
      case SuiteClass::DSS: return "DSS";
      case SuiteClass::Web: return "Web";
      case SuiteClass::Scientific: return "Scientific";
    }
    return "?";
}

/** Generation parameters shared by all workloads. */
struct WorkloadParams
{
    uint32_t ncpu = 16;
    uint64_t refsPerCpu = 125000;  //!< memory references per CPU stream
    uint64_t seed = 1;             //!< master seed (fully deterministic)
};

/** A workload generator producing one reference stream per CPU. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Paper-style label, e.g. "OLTP-DB2", "Qry17", "sparse". */
    virtual std::string name() const = 0;

    virtual SuiteClass suiteClass() const = 0;

    /**
     * Generate per-CPU reference streams (index = cpu). Deterministic
     * in @p p.seed.
     */
    virtual std::vector<trace::Trace>
    generateStreams(const WorkloadParams &p) = 0;
};

/** Generate and interleave a workload into one global trace. */
trace::Trace makeTrace(Workload &w, const WorkloadParams &p);

/** One entry of the registered application suite. */
struct SuiteEntry
{
    std::string name;
    SuiteClass cls;
    std::function<std::unique_ptr<Workload>()> make;
};

/** The paper's 11-application suite, in Table 1 order. */
const std::vector<SuiteEntry> &paperSuite();

/**
 * Scenarios grown beyond Table 1 (graph traversal, ...). Kept apart
 * from paperSuite() so figure reproductions stay paper-faithful.
 */
const std::vector<SuiteEntry> &extensionSuite();

/** paperSuite() followed by extensionSuite(). */
const std::vector<SuiteEntry> &fullSuite();

/** Look up a suite entry by name in the full suite (nullptr if absent). */
const SuiteEntry *findWorkload(const std::string &name);

} // namespace stems::workloads

#endif // STEMS_WORKLOADS_WORKLOAD_HH
