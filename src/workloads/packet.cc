#include "workloads/packet.hh"

#include "workloads/emitter.hh"
#include "workloads/layout.hh"

namespace stems::workloads {

std::vector<trace::Trace>
PacketWorkload::generateStreams(const WorkloadParams &p)
{
    const uint64_t pc_poll = layout::pcSite(layout::kModPacket, 0);
    const uint64_t pc_desc = layout::pcSite(layout::kModPacket, 1);
    const uint64_t pc_hdr = layout::pcSite(layout::kModPacket, 2);
    const uint64_t pc_pay = layout::pcSite(layout::kModPacket, 3);
    const uint64_t pc_flow = layout::pcSite(layout::kModPacket, 4);
    const uint64_t pc_cnt = layout::pcSite(layout::kModPacket, 5);
    const uint64_t pc_upd = layout::pcSite(layout::kModPacket, 6);
    const uint64_t pc_wb = layout::pcSite(layout::kModPacket, 7);

    // per-CPU arenas: RX ring, recycled packet-buffer pool, and the
    // owned slice of the flow state table (remote flows reach into
    // another CPU's slice, making the table a sharing surface)
    constexpr uint64_t kCpuStride = 0x10000000ULL;
    const uint32_t nbufs = prm.ringSlots * 2;
    auto ringBase = [&](uint32_t cpu) {
        return layout::kPacketBase + uint64_t{cpu} * kCpuStride;
    };
    auto descAddr = [&](uint32_t cpu, uint32_t slot) {
        return ringBase(cpu) + uint64_t{slot} * 16;
    };
    auto bufAddr = [&](uint32_t cpu, uint32_t buf, uint32_t block) {
        return ringBase(cpu) + 0x400000 +
            (uint64_t{buf} * prm.bufferBlocks + block) * 64;
    };
    auto flowAddr = [&](uint32_t cpu, uint32_t idx) {
        return ringBase(cpu) + 0x4000000 + uint64_t{idx} * 64;
    };

    std::vector<trace::Trace> streams(p.ncpu);
    for (uint32_t cpu = 0; cpu < p.ncpu; ++cpu) {
        trace::Rng rng(p.seed * 0xFACE7 + cpu + 1);
        StreamEmitter e(streams[cpu], rng);
        uint32_t cursor = 0;

        while (e.count() < p.refsPerCpu) {
            // poll the ring doorbell, then drain one burst
            e.load(pc_poll, descAddr(cpu, prm.ringSlots), 6);
            const uint32_t burst = 1 +
                static_cast<uint32_t>(rng.below(prm.maxBurst));
            for (uint32_t b = 0;
                 b < burst && e.count() < p.refsPerCpu; ++b) {
                const uint32_t slot = cursor % prm.ringSlots;
                ++cursor;
                // descriptor: sequential scan around the ring
                e.load(pc_desc, descAddr(cpu, slot), 2);
                // the buffer the descriptor points at (recycled pool)
                const uint32_t buf =
                    (cursor * 2654435761u + b) % nbufs;
                // header parse: leading blocks, dependent on the
                // descriptor read
                for (uint32_t h = 0; h < prm.headerBlocks; ++h)
                    e.load(pc_hdr, bufAddr(cpu, buf, h), 2,
                           h == 0 ? 1 : 0);
                // deep-payload packets walk further into the buffer
                if (rng.chance(prm.payloadFraction)) {
                    for (uint32_t blk = prm.headerBlocks;
                         blk < prm.bufferBlocks &&
                         e.count() < p.refsPerCpu; ++blk)
                        e.load(pc_pay, bufAddr(cpu, buf, blk), 1);
                }
                // per-flow state: hash the 5-tuple, walk the probe
                // chain (dependent), bump the flow counters (RMW)
                uint32_t owner = cpu;
                if (p.ncpu > 1 && rng.chance(prm.remoteFraction))
                    owner = static_cast<uint32_t>(rng.below(p.ncpu));
                const uint32_t fidx = static_cast<uint32_t>(
                    rng.below(prm.flowsPerCpu));
                const uint32_t chain = 1 +
                    static_cast<uint32_t>(rng.below(prm.maxChain));
                for (uint32_t j = 0;
                     j < chain && e.count() < p.refsPerCpu; ++j)
                    e.load(pc_flow,
                           flowAddr(owner,
                                    (fidx + j) % prm.flowsPerCpu),
                           2, 1);
                const uint64_t hit =
                    flowAddr(owner, (fidx + chain - 1) %
                                        prm.flowsPerCpu);
                e.load(pc_cnt, hit + 32, 1, 1);
                e.store(pc_upd, hit + 32, 1, 1);
                // return the descriptor to the NIC
                e.store(pc_wb, descAddr(cpu, slot), 1);
            }
        }
        streams[cpu].resize(p.refsPerCpu);
    }
    return streams;
}

} // namespace stems::workloads
