/**
 * @file
 * Graph-traversal workload: a parallel level-synchronous BFS-style
 * sweep over a CSR graph. Each CPU owns a vertex partition and
 * repeatedly expands its frontier: sequential reads of the row-offset
 * and neighbour arrays (spatially dense within a vertex), followed by
 * dependent, irregular gathers of per-vertex state — the
 * pointer-chasing miss behaviour that defeats stride/delta prefetchers
 * but leaves stable per-code-site spatial footprints for SMS.
 *
 * Not part of the paper's Table 1; registered in the extension suite
 * to grow scenario diversity for the experiment engine.
 */

#ifndef STEMS_WORKLOADS_GRAPH_HH
#define STEMS_WORKLOADS_GRAPH_HH

#include "workloads/workload.hh"

namespace stems::workloads {

/** Shape of the synthetic graph. */
struct GraphParams
{
    uint32_t vertices = 65536;    //!< total vertex count
    uint32_t avgDegree = 8;       //!< mean out-degree
    double remoteFraction = 0.2;  //!< edges crossing CPU partitions
    double hubFraction = 0.05;    //!< vertices with 4x degree (skew)
};

/** CSR breadth-first traversal generator. */
class GraphWorkload : public Workload
{
  public:
    explicit GraphWorkload(GraphParams params = {}) : prm(params) {}

    std::string name() const override { return "graph"; }
    SuiteClass suiteClass() const override
    {
        return SuiteClass::Scientific;
    }

    std::vector<trace::Trace>
    generateStreams(const WorkloadParams &p) override;

  private:
    GraphParams prm;
};

} // namespace stems::workloads

#endif // STEMS_WORKLOADS_GRAPH_HH
