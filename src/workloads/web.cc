#include "workloads/web.hh"

#include <vector>

#include "workloads/emitter.hh"
#include "workloads/layout.hh"

namespace stems::workloads {

WebFlavor
WebWorkload::apache()
{
    WebFlavor f;
    f.name = "Apache";
    f.pcModuleBase = 160;
    f.workerModel = true;
    f.kernelFraction = 0.25;
    f.batchRequests = 1;
    return f;
}

WebFlavor
WebWorkload::zeus()
{
    WebFlavor f;
    f.name = "Zeus";
    f.pcModuleBase = 176;
    f.workerModel = false;
    f.kernelFraction = 0.18;
    f.batchRequests = 4;  // event loop services several ready fds
    return f;
}

std::vector<trace::Trace>
WebWorkload::generateStreams(const WorkloadParams &p)
{
    const uint32_t m = flavor.pcModuleBase;
    // code sites
    const uint64_t pc_sock = layout::pcSite(m, 0);
    const uint64_t pc_conn_rd = layout::pcSite(m, 1);
    const uint64_t pc_conn_wr = layout::pcSite(m, 2);
    const uint64_t pc_hdr = layout::pcSite(m, 3);
    const uint64_t pc_meta = layout::pcSite(m, 4);
    const uint64_t pc_file = layout::pcSite(m, 5);
    const uint64_t pc_tx = layout::pcSite(m, 6);
    const uint64_t pc_send = layout::pcSite(m, 7);
    const uint64_t pc_stat_rd = layout::pcSite(m, 8);
    const uint64_t pc_stat_wr = layout::pcSite(m, 9);
    const uint64_t pc_log = layout::pcSite(m, 10);
    const uint64_t pc_thread = layout::pcSite(m, 11);

    // deterministic per-file sizes (in 64 B blocks) and offsets
    trace::Rng size_rng(p.seed * 31 + 7);
    std::vector<uint32_t> file_blocks(flavor.files);
    std::vector<uint64_t> file_offset(flavor.files);
    uint64_t cursor = 0;
    for (uint32_t f = 0; f < flavor.files; ++f) {
        // sizes 2 kB .. 64 kB, skewed small (SPECweb file mix)
        uint32_t cls = static_cast<uint32_t>(size_rng.below(4));
        uint32_t blocks = 32u << cls;  // 2k, 4k, 8k, 16k... bytes/64
        file_blocks[f] = blocks / (1u << size_rng.below(3));
        file_offset[f] = cursor;
        cursor += uint64_t{file_blocks[f]} * 64;
        cursor = (cursor + 4095) & ~uint64_t{4095};
    }
    trace::Zipf file_zipf(flavor.files, flavor.fileZipf);

    // fixed header-field offsets: sparse but identical every request
    static const uint32_t hdr_off[] = {0, 8, 16, 40, 72, 96, 160, 224};

    std::vector<trace::Trace> streams(p.ncpu);
    const uint32_t conns_per_cpu = flavor.connections / p.ncpu;

    for (uint32_t cpu = 0; cpu < p.ncpu; ++cpu) {
        trace::Rng rng(p.seed * 0x3eb + cpu + 1);
        StreamEmitter e(streams[cpu], rng);
        const uint64_t scratch = layout::privateArea(cpu);
        uint64_t log_cursor = 0;

        while (e.count() < p.refsPerCpu) {
            // one event-loop turn services batchRequests requests
            for (uint32_t b = 0; b < flavor.batchRequests; ++b) {
                // --- accept/poll: kernel socket bookkeeping ---
                uint64_t sock = rng.below(flavor.connections);
                e.load(pc_sock,
                       layout::kConnBase + 0x01000000 + sock * 128, 12,
                       0, true);

                // --- connection struct (this CPU's partition) ---
                uint64_t conn = cpu * conns_per_cpu +
                    rng.below(conns_per_cpu);
                uint64_t caddr = layout::kConnBase +
                    conn * flavor.connBytes;
                e.load(pc_conn_rd, caddr + 0, 5);
                e.load(pc_conn_rd, caddr + 24, 2, 1);
                e.load(pc_conn_rd, caddr + 64, 2);
                e.store(pc_conn_wr, caddr + 32, 3);
                if (flavor.workerModel) {
                    // thread handoff bookkeeping (Apache worker MPM)
                    e.store(pc_thread, scratch + 0x8000 +
                            rng.below(16) * 64, 4);
                    e.store(pc_conn_wr, caddr + 192, 2);
                }

                // --- parse the request header (fixed sparse layout) ---
                uint64_t rx = scratch + 0x10000 +
                    rng.below(64) * 4096;  // rx buffer ring
                for (size_t h = 0; h < std::size(hdr_off); ++h) {
                    e.load(pc_hdr, rx + hdr_off[h], 3,
                           h == 0 ? 0 : 1,
                           rng.chance(flavor.kernelFraction));
                }

                // --- static file: metadata then content ---
                uint64_t file = file_zipf.sample(rng);
                e.load(pc_meta, layout::kHeapBase + file * 128, 4);
                uint64_t fbase = layout::kFileCacheBase +
                    file_offset[file];
                uint32_t nb = file_blocks[file];
                for (uint32_t blk = 0; blk < nb; ++blk) {
                    e.load(pc_file, fbase + uint64_t{blk} * 64, 2);
                    if ((blk & 3) == 3) {
                        // copy into the tx buffer, then kernel send
                        e.store(pc_tx, scratch + 0x50000 +
                                (blk % 64) * 64, 2, 1);
                    }
                    if ((blk & 15) == 15) {
                        e.store(pc_send, scratch + 0x60000 +
                                (blk % 32) * 64, 8, 0, true);
                    }
                }

                // --- shared statistics counters (write-shared) ---
                uint64_t stat = layout::kHeapBase + 0x01000000 +
                    rng.below(16) * 8;
                e.load(pc_stat_rd, stat, 2);
                e.store(pc_stat_wr, stat, 1, 1);

                // --- access log append (shared buffered stream) ---
                e.store(pc_log, layout::kHeapBase + 0x02000000 +
                        (log_cursor % (1 << 22)), 3);
                log_cursor += 128;
            }
        }
        streams[cpu].resize(p.refsPerCpu);
    }
    return streams;
}

} // namespace stems::workloads
