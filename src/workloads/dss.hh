/**
 * @file
 * TPC-H-flavoured decision support queries on the miniature DBMS,
 * categorized as in the paper (after DBmbench [23]): Qry1 is
 * scan-dominated (with heavy temp-table stores — the store-buffer
 * pressure Section 4.7 discusses), Qry2 and Qry16 are join-dominated
 * (hash join build + probe), Qry17 mixes scan and join.
 *
 * The crucial structural property: scans visit each page exactly once
 * per query, so most misses are cold — predictable by PC-correlated
 * indices but invisible to address-correlated ones (Section 4.2).
 */

#ifndef STEMS_WORKLOADS_DSS_HH
#define STEMS_WORKLOADS_DSS_HH

#include "workloads/workload.hh"

namespace stems::workloads {

/** Shape of one DSS query. */
struct DssQuerySpec
{
    std::string name = "Qry1";
    uint32_t pcModuleBase = 80;
    double scanShare = 1.0;      //!< fraction of quanta that scan
    bool tempTableWrites = false;//!< Qry1's temp-table copy
    double probeMatchRate = 0.3; //!< join probe hit rate
    uint64_t buildRows = 65536;  //!< build-side table rows
    uint32_t aggGroups = 8;      //!< aggregate groups (private)
};

/** DSS query workload generator. */
class DssWorkload : public Workload
{
  public:
    explicit DssWorkload(DssQuerySpec spec) : spec(std::move(spec)) {}

    static DssQuerySpec qry1();
    static DssQuerySpec qry2();
    static DssQuerySpec qry16();
    static DssQuerySpec qry17();

    std::string name() const override { return spec.name; }
    SuiteClass suiteClass() const override { return SuiteClass::DSS; }

    std::vector<trace::Trace>
    generateStreams(const WorkloadParams &p) override;

  private:
    DssQuerySpec spec;
};

} // namespace stems::workloads

#endif // STEMS_WORKLOADS_DSS_HH
