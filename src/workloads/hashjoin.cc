#include "workloads/hashjoin.hh"

#include <vector>

#include "workloads/emitter.hh"
#include "workloads/layout.hh"

namespace stems::workloads {

namespace {

/** Next power of two >= @p n (n > 0). */
uint32_t
ceilPow2(uint32_t n)
{
    uint32_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // anonymous namespace

std::vector<trace::Trace>
HashJoinWorkload::generateStreams(const WorkloadParams &p)
{
    const uint64_t pc_bscan = layout::pcSite(layout::kModHashJoin, 0);
    const uint64_t pc_bprobe = layout::pcSite(layout::kModHashJoin, 1);
    const uint64_t pc_insert = layout::pcSite(layout::kModHashJoin, 2);
    const uint64_t pc_pscan = layout::pcSite(layout::kModHashJoin, 3);
    const uint64_t pc_walk = layout::pcSite(layout::kModHashJoin, 4);
    const uint64_t pc_payload = layout::pcSite(layout::kModHashJoin, 5);
    const uint64_t pc_output = layout::pcSite(layout::kModHashJoin, 6);

    // scale the build side to the trace budget (~3.3 refs per insert)
    // so short traces still reach the probe phase that dominates a
    // real join's runtime
    const uint64_t rowBudget = p.refsPerCpu / 12;
    uint32_t rows = prm.buildRowsPerCpu ? prm.buildRowsPerCpu : 1;
    if (rowBudget > 0 && rows > rowBudget)
        rows = static_cast<uint32_t>(rowBudget);
    if (rows == 0)
        rows = 1;
    // open addressing at ~50% load factor: FlatMap-style slot array
    const uint32_t slots = ceilPow2(2 * rows);
    const uint32_t mask = slots - 1;

    constexpr uint64_t kSlotBytes = 16;    //!< key + row id
    constexpr uint64_t kBuildBytes = 32;   //!< build tuple
    constexpr uint64_t kProbeBytes = 32;   //!< probe tuple
    constexpr uint64_t kPayloadBytes = 64; //!< gathered row payload

    // per-partition sub-arenas inside the join arena, 256 MB apart so
    // partitions never alias
    constexpr uint64_t kPartStride = 0x10000000ULL;
    auto tableBase = [&](uint32_t cpu) {
        return layout::kHashBase + uint64_t{cpu} * kPartStride;
    };
    auto buildBase = [&](uint32_t cpu) {
        return tableBase(cpu) + 0x4000000ULL;
    };
    auto payloadBase = [&](uint32_t cpu) {
        return tableBase(cpu) + 0x8000000ULL;
    };

    // build every partition's table once, shared by all CPUs
    // (deterministic): slot occupancy drives each probe chain's length
    trace::Rng build(p.seed * 0x4A5B + 11);
    std::vector<std::vector<uint32_t>> slotRow(
        p.ncpu, std::vector<uint32_t>(slots, 0));  // row id + 1, 0 = empty
    std::vector<std::vector<uint32_t>> rowSlot(
        p.ncpu, std::vector<uint32_t>(rows, 0));   // final slot of row
    std::vector<std::vector<uint32_t>> rowStart(
        p.ncpu, std::vector<uint32_t>(rows, 0));   // hash slot of row
    for (uint32_t cpu = 0; cpu < p.ncpu; ++cpu) {
        for (uint32_t r = 0; r < rows; ++r) {
            uint32_t s = static_cast<uint32_t>(build.next64()) & mask;
            rowStart[cpu][r] = s;
            while (slotRow[cpu][s] != 0)
                s = (s + 1) & mask;
            slotRow[cpu][s] = r + 1;
            rowSlot[cpu][r] = s;
        }
    }

    auto slotAddr = [&](uint32_t cpu, uint32_t s) {
        return tableBase(cpu) + uint64_t{s} * kSlotBytes;
    };
    auto buildAddr = [&](uint32_t cpu, uint32_t r) {
        return buildBase(cpu) + uint64_t{r} * kBuildBytes;
    };
    auto payloadAddr = [&](uint32_t cpu, uint32_t r) {
        return payloadBase(cpu) + uint64_t{r} * kPayloadBytes;
    };

    std::vector<trace::Trace> streams(p.ncpu);
    for (uint32_t cpu = 0; cpu < p.ncpu; ++cpu) {
        trace::Rng rng(p.seed * 0x4A5B0 + cpu + 1);
        StreamEmitter e(streams[cpu], rng);
        const uint64_t probeRel =
            layout::privateArea(cpu) + 0x1000000ULL;
        const uint64_t outRun = layout::privateArea(cpu) + 0x2000000ULL;

        // build phase: sequential scan of the build relation, linear
        // probing into the partition's slot array (replayed from the
        // shared occupancy model), insert at the chain's end
        for (uint32_t r = 0; r < rows && e.count() < p.refsPerCpu;
             ++r) {
            e.load(pc_bscan, buildAddr(cpu, r), 2);
            for (uint32_t s = rowStart[cpu][r];;
                 s = (s + 1) & mask) {
                e.load(pc_bprobe, slotAddr(cpu, s), 1, 1);
                if (s == rowSlot[cpu][r])
                    break;
            }
            e.store(pc_insert, slotAddr(cpu, rowSlot[cpu][r]), 1, 1);
        }

        // probe phase: sequential probe-relation scan, chain walk in
        // the target partition, dependent payload gather on a match
        uint64_t probe = 0, matches = 0;
        while (e.count() < p.refsPerCpu) {
            e.load(pc_pscan, probeRel + probe++ * kProbeBytes, 2);
            uint32_t target = cpu;
            if (rng.chance(prm.remoteFraction))
                target = static_cast<uint32_t>(rng.below(p.ncpu));
            uint32_t s = static_cast<uint32_t>(rng.next64()) & mask;
            const bool match = rng.chance(prm.matchFraction);
            uint32_t found = 0;
            for (uint32_t hop = 0; hop < prm.maxChain; ++hop) {
                e.load(pc_walk, slotAddr(target, s), 1, 1);
                const uint32_t occupant = slotRow[target][s];
                if (occupant == 0)
                    break;  // empty slot ends the chain: no match
                if (match) {
                    found = occupant;  // key comparison succeeded
                    break;
                }
                s = (s + 1) & mask;  // collision: keep walking
            }
            if (found != 0) {
                e.load(pc_payload, payloadAddr(target, found - 1), 2,
                       1);
                e.store(pc_output, outRun + matches++ * kPayloadBytes,
                        2);
            }
        }
        streams[cpu].resize(p.refsPerCpu);
    }
    return streams;
}

} // namespace stems::workloads
