#include "workloads/oltp.hh"

#include <memory>

#include "workloads/btree.hh"
#include "workloads/bufferpool.hh"

namespace stems::workloads {

OltpFlavor
OltpWorkload::db2()
{
    OltpFlavor f;
    f.name = "OLTP-DB2";
    f.pcModuleBase = 32;
    f.warehouses = 64;
    f.customersPerDistrict = 40;
    f.customerTupleBytes = 512;
    f.stockTupleBytes = 192;
    f.warehouseZipf = 0.85;
    return f;
}

OltpFlavor
OltpWorkload::oracle()
{
    OltpFlavor f;
    f.name = "OLTP-Oracle";
    f.pcModuleBase = 48;
    f.warehouses = 96;
    f.customersPerDistrict = 56;
    f.customerTupleBytes = 384;
    f.stockTupleBytes = 160;
    f.warehouseZipf = 1.0;  // hotter contention (16 heavy clients)
    f.itemZipf = 0.85;
    f.maxOrderLines = 10;
    return f;
}

namespace {

/** Shared database state built once per generation. */
struct OltpDb
{
    BufferPool pool;
    Table warehouse;
    Table district;
    Table customer;
    Table stock;
    Table orders;
    Table orderLine;
    Table history;
    BPlusTree custIdx;
    BPlusTree stockIdx;
    BPlusTree orderIdx;
    uint64_t logCursor = 0;
    uint64_t nextOrderId = 1;
    uint64_t pcLogWrite;
    uint64_t pcLogFlush;
    uint64_t pcScratch;
    uint64_t pcKernel;

    explicit OltpDb(const OltpFlavor &f)
        : pool(layout::kBufferPoolBase, 64 * 1024),
          warehouse(pool, "warehouse", f.warehouses, 320,
                    f.pcModuleBase + 0),
          district(pool, "district", f.warehouses * f.districtsPerWh, 320,
                   f.pcModuleBase + 1),
          customer(pool, "customer",
                   f.warehouses * f.districtsPerWh *
                       f.customersPerDistrict,
                   f.customerTupleBytes, f.pcModuleBase + 2),
          stock(pool, "stock", f.warehouses * f.items / 16,
                f.stockTupleBytes, f.pcModuleBase + 3),
          orders(pool, "orders", 64 * 1024, 128, f.pcModuleBase + 4),
          orderLine(pool, "order_line", 512 * 1024, 64,
                    f.pcModuleBase + 5),
          history(pool, "history", 64 * 1024, 64, f.pcModuleBase + 6),
          custIdx(layout::kIndexBase, f.pcModuleBase + 8),
          stockIdx(layout::kIndexBase + 0x10000000ULL,
                   f.pcModuleBase + 9),
          orderIdx(layout::kIndexBase + 0x20000000ULL,
                   f.pcModuleBase + 10)
    {
        pcLogWrite = layout::pcSite(layout::kModLog, f.pcModuleBase + 0);
        pcLogFlush = layout::pcSite(layout::kModLog, f.pcModuleBase + 1);
        pcScratch = layout::pcSite(f.pcModuleBase + 7, 0);
        pcKernel = layout::pcSite(f.pcModuleBase + 7, 1);

        for (uint64_t r = 0; r < customer.rows(); ++r)
            custIdx.insert(r * 7919 % (customer.rows() * 8), r);
        for (uint64_t r = 0; r < stock.rows(); ++r)
            stockIdx.insert(r, r);
        for (uint64_t r = 0; r < orders.rows(); ++r)
            orderIdx.insert(r, r);
    }

    /** Append @p blocks of redo log (shared tail, all CPUs). */
    void
    logAppend(StreamEmitter &e, uint32_t blocks, bool flush)
    {
        for (uint32_t b = 0; b < blocks; ++b) {
            e.store(pcLogWrite,
                    layout::kLogBase + (logCursor % (1 << 24)), 3);
            logCursor += 64;
        }
        if (flush) {
            // the log force is OS work (write syscall into the page
            // cache); attribute it to system time
            e.store(pcLogFlush,
                    layout::kLogBase + (logCursor % (1 << 24)), 8, 0,
                    true);
        }
    }
};

/** Keys used when the index was loaded (see OltpDb constructor). */
uint64_t
custKeyOf(uint64_t row, uint64_t rows)
{
    return row * 7919 % (rows * 8);
}

} // anonymous namespace

std::vector<trace::Trace>
OltpWorkload::generateStreams(const WorkloadParams &p)
{
    OltpDb db(flavor);
    trace::Zipf wh_zipf(flavor.warehouses, flavor.warehouseZipf);
    trace::Zipf item_zipf(db.stock.rows(), flavor.itemZipf);

    std::vector<trace::Trace> streams(p.ncpu);
    for (uint32_t cpu = 0; cpu < p.ncpu; ++cpu) {
        trace::Rng rng(p.seed * 0x1234567 + cpu + 1);
        StreamEmitter e(streams[cpu], rng);
        const uint64_t scratch = layout::privateArea(cpu);

        while (e.count() < p.refsPerCpu) {
            const uint64_t w = wh_zipf.sample(rng);
            const uint64_t d =
                w * flavor.districtsPerWh + rng.below(flavor.districtsPerWh);
            const double mix = rng.uniform();

            // client request arrives: a little kernel-side work
            if (rng.chance(flavor.kernelFraction)) {
                e.load(db.pcKernel, scratch + 0x40000 +
                       rng.below(64) * 64, 10, 0, true);
            }
            // transaction-local scratch (stack, locals)
            e.store(db.pcScratch, scratch + rng.below(32) * 64, 4);

            if (mix < 0.45) {
                // --- NewOrder ---
                db.warehouse.readRow(e, w, 2);
                db.district.updateRow(e, d, 1);  // d_next_o_id++
                uint32_t lines = static_cast<uint32_t>(
                    rng.range(4, flavor.maxOrderLines));
                for (uint32_t l = 0; l < lines; ++l) {
                    // stock is clustered by warehouse; items are
                    // Zipf-popular within the warehouse's partition
                    uint64_t per_wh = db.stock.rows() / flavor.warehouses;
                    uint64_t item = w * per_wh +
                        item_zipf.sample(rng) % per_wh;
                    auto row = db.stockIdx.search(item, &e);
                    if (row)
                        db.stock.updateRow(e, *row, 1);
                    db.orderLine.appendRow(e);
                }
                db.orders.appendRow(e);
                db.logAppend(e, 2 + lines / 4, true);
            } else if (mix < 0.88) {
                // --- Payment ---
                db.warehouse.updateRow(e, w, 1);  // w_ytd += amount
                db.district.updateRow(e, d, 1);
                uint64_t crow =
                    d * flavor.customersPerDistrict +
                    rng.below(flavor.customersPerDistrict);
                auto row = db.custIdx.search(
                    custKeyOf(crow, db.customer.rows()), &e);
                db.customer.updateRow(e, row ? *row : crow, 2);
                db.history.appendRow(e);
                db.logAppend(e, 1, true);
            } else {
                // --- OrderStatus (read only) ---
                uint64_t crow =
                    d * flavor.customersPerDistrict +
                    rng.below(flavor.customersPerDistrict);
                auto row = db.custIdx.search(
                    custKeyOf(crow, db.customer.rows()), &e);
                db.customer.readRow(e, row ? *row : crow, 4);
                uint64_t order = rng.below(db.orders.rows());
                auto orow = db.orderIdx.search(order, &e);
                if (orow) {
                    db.orders.readRow(e, *orow, 2);
                    // read this order's lines (sequentially placed)
                    uint64_t first = (*orow * 8) % db.orderLine.rows();
                    for (uint32_t l = 0; l < 6; ++l) {
                        db.orderLine.readRow(
                            e, (first + l) % db.orderLine.rows(), 1);
                    }
                }
            }
        }
        // trim to the exact budget so all streams have equal length
        streams[cpu].resize(p.refsPerCpu);
    }
    return streams;
}

} // namespace stems::workloads
