#include "workloads/bufferpool.hh"

namespace stems::workloads {

Table::Table(BufferPool &pool, std::string name, uint64_t rows,
             uint32_t tuple_bytes, uint32_t pc_module)
    : pool(pool), name_(std::move(name)), rows_(rows),
      tupleBytes_(tuple_bytes)
{
    rowsPerPage = PageLayout::tuplesPerPage(tuple_bytes);
    if (rowsPerPage == 0)
        throw std::invalid_argument(name_ + ": tuple too wide for page");
    npages = (rows + rowsPerPage - 1) / rowsPerPage;
    if (npages == 0)
        npages = 1;
    firstPage_ = pool.allocPages(npages);
    insertCursor = 0;

    // distinct, stable code sites per access type
    pcHeader = layout::pcSite(pc_module, 0);
    pcSlot = layout::pcSite(pc_module, 1);
    pcTuple = layout::pcSite(pc_module, 2);
    pcTupleWrite = layout::pcSite(pc_module, 3);
    pcScanHeader = layout::pcSite(pc_module, 4);
    pcScanSlot = layout::pcSite(pc_module, 5);
    pcScanTuple = layout::pcSite(pc_module, 6);
    pcAppendTuple = layout::pcSite(pc_module, 7);
    pcAppendSlot = layout::pcSite(pc_module, 8);
}

uint64_t
Table::tupleAddr(uint64_t row) const
{
    uint64_t page = pageOf(row);
    return pool.pageAddr(page) +
        PageLayout::tupleOffset(slotOf(row), tupleBytes_);
}

void
Table::readRow(StreamEmitter &e, uint64_t row, uint32_t fields)
{
    const uint64_t page_addr = pool.pageAddr(pageOf(row));
    const uint32_t slot = slotOf(row);

    // header first (LSN / page id checks), then the slot entry that
    // locates the tuple, then the tuple fields — the slot read depends
    // on the header, the tuple reads depend on the slot (pointer-ish)
    e.load(pcHeader, page_addr + PageLayout::lsnOffset(), 6);
    e.load(pcSlot, page_addr + PageLayout::slotOffset(slot), 3, 1);
    const uint64_t tuple = tupleAddr(row);
    for (uint32_t f = 0; f < fields; ++f) {
        uint32_t field_off = (f * 136) % tupleBytes_;
        e.load(pcTuple, tuple + field_off, 4, f == 0 ? 1 : 0);
    }
    // next-key validation: peek at the neighbouring tuple (clustered
    // storage engines read the adjacent slot to bound the key)
    if (slot + 1 < rowsPerPage) {
        e.load(pcTuple, page_addr + PageLayout::tupleOffset(
                   slot + 1, tupleBytes_), 2, 1);
    }
}

void
Table::updateRow(StreamEmitter &e, uint64_t row, uint32_t fields)
{
    readRow(e, row, 1);
    const uint64_t page_addr = pool.pageAddr(pageOf(row));
    const uint64_t tuple = tupleAddr(row);
    for (uint32_t f = 0; f < fields; ++f) {
        uint32_t field_off = (8 + f * 136) % tupleBytes_;
        e.store(pcTupleWrite, tuple + field_off, 3);
    }
    // dirty pages update the header LSN
    e.store(pcHeader, page_addr + PageLayout::lsnOffset(), 2);
}

void
Table::scanPage(StreamEmitter &e, uint64_t page_index)
{
    const uint64_t page_addr = pool.pageAddr(firstPage_ + page_index);
    e.load(pcScanHeader, page_addr + PageLayout::lsnOffset(), 8);
    // scanners read the slot count from the footer before the tuples
    e.load(pcScanSlot, page_addr + PageLayout::slotOffset(0), 3, 1);
    uint64_t remaining = rows_ - page_index * rowsPerPage;
    uint32_t n = static_cast<uint32_t>(
        remaining < rowsPerPage ? remaining : rowsPerPage);
    for (uint32_t s = 0; s < n; ++s) {
        e.load(pcScanTuple,
               page_addr + PageLayout::tupleOffset(s, tupleBytes_), 5);
    }
}

void
Table::appendRow(StreamEmitter &e)
{
    // sequential fill: cursor walks slots/pages, wrapping at the end
    const uint64_t row = insertCursor;
    insertCursor = (insertCursor + 1) % rows_;
    const uint64_t page_addr = pool.pageAddr(pageOf(row));
    const uint32_t slot = slotOf(row);
    e.store(pcAppendTuple,
            page_addr + PageLayout::tupleOffset(slot, tupleBytes_), 4);
    e.store(pcAppendSlot, page_addr + PageLayout::slotOffset(slot), 2);
    e.store(pcHeader, page_addr + PageLayout::lsnOffset(), 2);
}

} // namespace stems::workloads
