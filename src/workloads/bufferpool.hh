/**
 * @file
 * Miniature DBMS storage substrate: slotted 8 kB pages in a buffer
 * pool, and fixed-schema tables packed onto those pages. Page layout
 * follows the structure the paper calls out (Figure 1): a page header
 * (log serial number etc.) at the front, a tuple slot index in the
 * footer, and fixed-size tuples in between — the header and slot
 * index are touched before any tuple access, which is precisely the
 * recurring spatial structure SMS learns.
 */

#ifndef STEMS_WORKLOADS_BUFFERPOOL_HH
#define STEMS_WORKLOADS_BUFFERPOOL_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "workloads/emitter.hh"
#include "workloads/layout.hh"

namespace stems::workloads {

/** Slotted-page layout arithmetic for one 8 kB page. */
struct PageLayout
{
    static constexpr uint32_t kHeaderBytes = 128; //!< LSN, ids, free ptr
    static constexpr uint32_t kSlotBytes = 4;     //!< one slot entry

    /** Byte offset of the page header LSN field. */
    static constexpr uint32_t lsnOffset() { return 0; }

    /** Byte offset of slot @p slot's entry (footer grows downward). */
    static constexpr uint32_t
    slotOffset(uint32_t slot)
    {
        return layout::kPageSize - kSlotBytes * (slot + 1);
    }

    /** Byte offset of tuple @p slot for @p tuple_bytes-wide tuples. */
    static constexpr uint32_t
    tupleOffset(uint32_t slot, uint32_t tuple_bytes)
    {
        return kHeaderBytes + slot * tuple_bytes;
    }

    /** Tuples that fit on a page at @p tuple_bytes each. */
    static constexpr uint32_t
    tuplesPerPage(uint32_t tuple_bytes)
    {
        // header + tuples + slot entries must fit
        return (layout::kPageSize - kHeaderBytes) /
            (tuple_bytes + kSlotBytes);
    }
};

/**
 * A buffer pool: a contiguous, page-aligned arena of 8 kB pages. The
 * generators treat it as memory-resident (pages never migrate), so a
 * page id maps to a stable address — matching a warmed DBMS buffer
 * pool where the hot working set is resident.
 */
class BufferPool
{
  public:
    /**
     * @param base   arena base address (page aligned)
     * @param npages capacity in pages
     */
    BufferPool(uint64_t base, uint64_t npages)
        : base_(base), npages_(npages), next(0)
    {
        if (base % layout::kPageSize != 0)
            throw std::invalid_argument("buffer pool base misaligned");
    }

    /** Address of page @p id. */
    uint64_t
    pageAddr(uint64_t id) const
    {
        if (id >= npages_)
            throw std::out_of_range("page id beyond pool");
        return base_ + id * layout::kPageSize;
    }

    /** Allocate @p n consecutive pages; returns the first id. */
    uint64_t
    allocPages(uint64_t n)
    {
        if (next + n > npages_)
            throw std::length_error("buffer pool exhausted");
        uint64_t first = next;
        next += n;
        return first;
    }

    uint64_t numPages() const { return npages_; }
    uint64_t pagesAllocated() const { return next; }

  private:
    uint64_t base_;
    uint64_t npages_;
    uint64_t next;
};

/**
 * A fixed-schema table: rows packed in slot order across consecutive
 * buffer-pool pages, with instrumented row-level operations that emit
 * the canonical header -> slot index -> tuple access sequence.
 */
class Table
{
  public:
    /**
     * @param pool        backing buffer pool
     * @param name        diagnostic label
     * @param rows        row count
     * @param tuple_bytes fixed tuple width
     * @param pc_module   code-site module for this table's accessors
     */
    Table(BufferPool &pool, std::string name, uint64_t rows,
          uint32_t tuple_bytes, uint32_t pc_module);

    uint64_t rows() const { return rows_; }
    uint64_t numPages() const { return npages; }
    uint32_t tupleBytes() const { return tupleBytes_; }
    uint64_t firstPage() const { return firstPage_; }

    /** Page id (within the pool) holding @p row. */
    uint64_t
    pageOf(uint64_t row) const
    {
        return firstPage_ + row / rowsPerPage;
    }

    /** Slot of @p row within its page. */
    uint32_t
    slotOf(uint64_t row) const
    {
        return static_cast<uint32_t>(row % rowsPerPage);
    }

    /** Address of @p row's tuple start. */
    uint64_t tupleAddr(uint64_t row) const;

    /** Base address of the table's @p page_index-th page. */
    uint64_t
    pageBase(uint64_t page_index) const
    {
        return pool.pageAddr(firstPage_ + page_index);
    }

    /** Rows resident on the table's @p page_index-th page. */
    uint32_t
    rowsOnPage(uint64_t page_index) const
    {
        uint64_t start = page_index * rowsPerPage;
        if (start >= rows_)
            return 0;
        uint64_t remaining = rows_ - start;
        return static_cast<uint32_t>(
            remaining < rowsPerPage ? remaining : rowsPerPage);
    }

    uint32_t rowsPerPageCount() const { return rowsPerPage; }

    /**
     * Emit the reads of one row access: page header, slot index
     * entry, then @p fields reads spread across the tuple.
     */
    void readRow(StreamEmitter &e, uint64_t row, uint32_t fields = 2);

    /** Emit a row update: the readRow sequence plus field stores. */
    void updateRow(StreamEmitter &e, uint64_t row, uint32_t fields = 1);

    /**
     * Emit a full-page sequential read (header, slot index, then every
     * tuple) — the inner loop of a table scan.
     */
    void scanPage(StreamEmitter &e, uint64_t page_index);

    /**
     * Emit an append of one fresh row into the table's insert frontier
     * (sequential page fill plus slot-index update).
     */
    void appendRow(StreamEmitter &e);

  private:
    // code sites (one per access type; stable across calls)
    uint64_t pcHeader;
    uint64_t pcSlot;
    uint64_t pcTuple;
    uint64_t pcTupleWrite;
    uint64_t pcScanHeader;
    uint64_t pcScanSlot;
    uint64_t pcScanTuple;
    uint64_t pcAppendTuple;
    uint64_t pcAppendSlot;

    BufferPool &pool;
    std::string name_;
    uint64_t rows_;
    uint32_t tupleBytes_;
    uint32_t rowsPerPage;
    uint64_t npages;
    uint64_t firstPage_;
    uint64_t insertCursor;  //!< next append slot (wraps over the table)
};

} // namespace stems::workloads

#endif // STEMS_WORKLOADS_BUFFERPOOL_HH
