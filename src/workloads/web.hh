/**
 * @file
 * SPECweb99-flavoured web server workload: connection table, packet
 * header parsing (arbitrary but *fixed* structure, per the paper's
 * Figure 1 examples), Zipf-popular static file cache reads, shared
 * statistics counters, and access-log appends. Two flavours model
 * Apache (worker threading) and Zeus (event-driven).
 */

#ifndef STEMS_WORKLOADS_WEB_HH
#define STEMS_WORKLOADS_WEB_HH

#include "workloads/workload.hh"

namespace stems::workloads {

/** Parameterization of one web server flavour. */
struct WebFlavor
{
    std::string name = "Apache";
    uint32_t pcModuleBase = 160;
    uint32_t connections = 16384;
    uint32_t connBytes = 512;
    uint32_t files = 2048;
    double fileZipf = 0.8;
    double kernelFraction = 0.25;  //!< network stack / syscall share
    bool workerModel = true;       //!< Apache: per-thread bookkeeping
    uint32_t batchRequests = 1;    //!< Zeus: event loop batches
};

/** The web server workload generator. */
class WebWorkload : public Workload
{
  public:
    explicit WebWorkload(WebFlavor flavor) : flavor(std::move(flavor)) {}

    static WebFlavor apache();
    static WebFlavor zeus();

    std::string name() const override { return flavor.name; }
    SuiteClass suiteClass() const override { return SuiteClass::Web; }

    std::vector<trace::Trace>
    generateStreams(const WorkloadParams &p) override;

  private:
    WebFlavor flavor;
};

} // namespace stems::workloads

#endif // STEMS_WORKLOADS_WEB_HH
