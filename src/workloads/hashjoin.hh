/**
 * @file
 * Hash-join workload: the build+probe inner loop of an equi-join over
 * open-addressing (FlatMap-style) hash tables. Each CPU owns one
 * table partition; the build phase scans its build relation
 * sequentially and inserts via linear probing (dense, spatially
 * adjacent slot touches), the probe phase scans the probe relation and
 * walks probe chains — on a match it gathers the matched build tuple's
 * payload (irregular, dependent) and appends to a private output run.
 * A fraction of probes cross partitions, modelling a shared build side
 * under a non-partitioned join.
 *
 * The mix — sequential scans, short linear-probe bursts inside one
 * region, and dependent payload gathers — leaves the per-code-site
 * spatial footprints SMS trains on while defeating stride/delta
 * correlation, like the DSS join queries it sits next to.
 *
 * Not part of the paper's Table 1; registered in the extension suite
 * to grow scenario diversity for the experiment engine.
 */

#ifndef STEMS_WORKLOADS_HASHJOIN_HH
#define STEMS_WORKLOADS_HASHJOIN_HH

#include "workloads/workload.hh"

namespace stems::workloads {

/** Shape of the join. */
struct HashJoinParams
{
    uint32_t buildRowsPerCpu = 4096;  //!< build relation per partition
    double remoteFraction = 0.15;     //!< probes crossing partitions
    double matchFraction = 0.75;      //!< probes finding a build match
    uint32_t maxChain = 8;            //!< probe-chain walk cap
};

/** Build+probe equi-join over per-CPU open-addressing tables. */
class HashJoinWorkload : public Workload
{
  public:
    explicit HashJoinWorkload(HashJoinParams params = {}) : prm(params)
    {}

    std::string name() const override { return "hashjoin"; }
    SuiteClass suiteClass() const override { return SuiteClass::DSS; }

    std::vector<trace::Trace>
    generateStreams(const WorkloadParams &p) override;

  private:
    HashJoinParams prm;
};

} // namespace stems::workloads

#endif // STEMS_WORKLOADS_HASHJOIN_HH
