/**
 * @file
 * Log-structured KV compaction workload: the merge phase of an
 * LSM-tree storage engine. Each CPU compacts its own shard: several
 * sorted input runs are consumed by interleaved sequential cursors
 * (which run drains next depends on the key comparison at the merge
 * heap's root — dense streams, but the interleave is data-dependent
 * and stride-hostile), merged entries land in a per-CPU write buffer
 * that is flushed sequentially into the output run when full, and
 * every entry updates the output run's block index and Bloom filter
 * (hashed, irregular). A shared manifest records run lifecycle, the
 * cross-CPU sharing surface of real storage engines.
 *
 * The mix — a handful of concurrently advancing sequential read
 * streams per code site, buffered sequential writes, and pointer-free
 * hashed metadata — is spatially patterned at region grain while
 * defeating per-PC stride detection, the same story as the commercial
 * suite. Not part of the paper's Table 1; registered in the extension
 * suite to grow scenario diversity for the experiment engine.
 */

#ifndef STEMS_WORKLOADS_LSMCOMPACT_HH
#define STEMS_WORKLOADS_LSMCOMPACT_HH

#include "workloads/workload.hh"

namespace stems::workloads {

/** Shape of one compaction. */
struct LsmCompactParams
{
    uint32_t runs = 6;             //!< sorted input runs merged at once
    uint32_t entryBytes = 32;      //!< key+value record size
    uint32_t runBlocks = 4096;     //!< 64 B blocks per input run
    uint32_t writeBufferBlocks = 32;  //!< per-CPU buffer before flush
    uint32_t bloomSlots = 16384;   //!< Bloom/index slots per shard
    uint32_t bloomProbes = 2;      //!< hash probes per entry
    double manifestFraction = 0.002;  //!< entries touching the manifest
};

/** Sorted-run merge + write-buffer flush + index update generator. */
class LsmCompactWorkload : public Workload
{
  public:
    explicit LsmCompactWorkload(LsmCompactParams params = {})
        : prm(params)
    {}

    std::string name() const override { return "lsmcompact"; }
    SuiteClass suiteClass() const override { return SuiteClass::OLTP; }

    std::vector<trace::Trace>
    generateStreams(const WorkloadParams &p) override;

  private:
    LsmCompactParams prm;
};

} // namespace stems::workloads

#endif // STEMS_WORKLOADS_LSMCOMPACT_HH
