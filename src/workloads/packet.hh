/**
 * @file
 * Packet-processing workload: the RX fast path of a software router /
 * network function. Each CPU owns one NIC RX ring and drains it in
 * bursts: sequential descriptor reads around the ring (dense,
 * perfectly spatial), a header parse touching the first blocks of
 * each packet buffer (hot leading edge of a buffer pool that recycles
 * under the ring), and a per-flow state lookup — hash the 5-tuple
 * into a flow table, walk a short probe chain, then a dependent
 * gather and read-modify-write of the flow's counters. A fraction of
 * flows live on other CPUs (RSS imbalance / flow migration), making
 * the state table a sharing surface.
 *
 * The mix — ring scans, packet-buffer leading edges revisited at
 * stable code sites, and irregular dependent flow-state touches — is
 * spatially patterned but stride-hostile, the same story as the
 * commercial suite. Not part of the paper's Table 1; registered in
 * the extension suite to grow scenario diversity for the experiment
 * engine.
 */

#ifndef STEMS_WORKLOADS_PACKET_HH
#define STEMS_WORKLOADS_PACKET_HH

#include "workloads/workload.hh"

namespace stems::workloads {

/** Shape of the RX path. */
struct PacketParams
{
    uint32_t ringSlots = 512;      //!< descriptors per RX ring
    uint32_t bufferBlocks = 24;    //!< 64 B blocks per packet buffer
    uint32_t headerBlocks = 2;     //!< blocks the header parse touches
    uint32_t flowsPerCpu = 8192;   //!< flow-table entries per partition
    uint32_t maxBurst = 32;        //!< packets drained per ring poll
    uint32_t maxChain = 4;         //!< flow-table probe-chain cap
    double remoteFraction = 0.1;   //!< flows owned by another CPU
    double payloadFraction = 0.2;  //!< packets needing deep payload
};

/** Ring-drain + header-parse + flow-table RX loop generator. */
class PacketWorkload : public Workload
{
  public:
    explicit PacketWorkload(PacketParams params = {}) : prm(params) {}

    std::string name() const override { return "packet"; }
    SuiteClass suiteClass() const override { return SuiteClass::Web; }

    std::vector<trace::Trace>
    generateStreams(const WorkloadParams &p) override;

  private:
    PacketParams prm;
};

} // namespace stems::workloads

#endif // STEMS_WORKLOADS_PACKET_HH
