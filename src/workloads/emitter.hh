/**
 * @file
 * StreamEmitter: the instrumentation hook workload kernels call at
 * every annotated load/store site. Appends MemAccess records to one
 * CPU's stream and offers dependence helpers for pointer chases.
 */

#ifndef STEMS_WORKLOADS_EMITTER_HH
#define STEMS_WORKLOADS_EMITTER_HH

#include <cstdint>

#include "trace/access.hh"
#include "trace/rng.hh"

namespace stems::workloads {

/** Per-CPU trace emission context. */
class StreamEmitter
{
  public:
    /**
     * @param out  destination stream (one CPU)
     * @param rng  jitter source for instruction gaps
     */
    StreamEmitter(trace::Trace &out, trace::Rng &rng) : out(out), rng(rng)
    {}

    /**
     * Emit one reference.
     *
     * @param pc     code-site id
     * @param addr   byte address
     * @param write  store?
     * @param ninst  typical non-memory instruction gap before this
     *               reference (jittered by +/- ~25%)
     * @param dep    references back in this stream the access depends
     *               on (0 = independent); pointer chases use 1
     * @param kernel OS-side work (system-busy attribution)
     */
    void
    access(uint64_t pc, uint64_t addr, bool write, uint32_t ninst = 4,
           uint32_t dep = 0, bool kernel = false)
    {
        trace::MemAccess a;
        a.pc = pc;
        a.addr = addr;
        a.isWrite = write;
        a.ninst = jitter(ninst);
        a.dep = dep;
        a.isKernel = kernel;
        out.push_back(a);
    }

    /** Shorthand for a load. */
    void
    load(uint64_t pc, uint64_t addr, uint32_t ninst = 4, uint32_t dep = 0,
         bool kernel = false)
    {
        access(pc, addr, false, ninst, dep, kernel);
    }

    /** Shorthand for a store. */
    void
    store(uint64_t pc, uint64_t addr, uint32_t ninst = 4, uint32_t dep = 0,
          bool kernel = false)
    {
        access(pc, addr, true, ninst, dep, kernel);
    }

    /** Number of references emitted so far. */
    size_t count() const { return out.size(); }

  private:
    uint32_t
    jitter(uint32_t n)
    {
        if (n <= 1)
            return n;
        uint32_t lo = n - n / 4;
        uint32_t hi = n + n / 4;
        return static_cast<uint32_t>(rng.range(lo, hi));
    }

    trace::Trace &out;
    trace::Rng &rng;
};

} // namespace stems::workloads

#endif // STEMS_WORKLOADS_EMITTER_HH
