#include "workloads/btree.hh"

#include <algorithm>
#include <cassert>

namespace stems::workloads {

BPlusTree::BPlusTree(uint64_t arena_base, uint32_t pc_module,
                     uint32_t order)
    : arenaBase(arena_base), order(order)
{
    assert(order >= 4);
    // header + keys + child pointers, rounded to a 256 B boundary
    uint64_t raw = kHeaderBytes + uint64_t{order} * 8 +
        (uint64_t{order} + 1) * 8;
    nodeBytes_ = (raw + 255) & ~uint64_t{255};

    pcHeader = layout::pcSite(pc_module, 16);
    pcKeyProbe = layout::pcSite(pc_module, 17);
    pcChildPtr = layout::pcSite(pc_module, 18);
    pcLeafValue = layout::pcSite(pc_module, 19);
    pcLeafChain = layout::pcSite(pc_module, 20);

    root = newNode(true);
}

BPlusTree::~BPlusTree()
{
    freeTree(root);
}

void
BPlusTree::freeTree(Node *n)
{
    if (!n->leaf)
        for (Node *c : n->children)
            freeTree(c);
    delete n;
}

BPlusTree::Node *
BPlusTree::newNode(bool leaf)
{
    Node *n = new Node;
    n->leaf = leaf;
    n->addr = arenaBase + nodes * nodeBytes_;
    ++nodes;
    return n;
}

uint32_t
BPlusTree::probe(const Node *n, uint64_t key, StreamEmitter *e) const
{
    // binary search over the node's compact slot/prefix directory
    // (4 B entries packed after the header, as slotted DBMS pages do),
    // then one full-key check; each probe depends on the previous
    uint32_t lo = 0;
    uint32_t hi = static_cast<uint32_t>(n->keys.size());
    while (lo < hi) {
        uint32_t mid = (lo + hi) / 2;
        if (e)
            e->load(pcKeyProbe, n->addr + kHeaderBytes + mid * 4, 2, 1);
        if (n->keys[mid] <= key)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (e && !n->keys.empty()) {
        uint32_t f = lo < n->keys.size()
                         ? lo
                         : static_cast<uint32_t>(n->keys.size()) - 1;
        e->load(pcLeafChain, n->addr + keyOffset(f), 2, 1);
    }
    return lo;
}

std::optional<uint64_t>
BPlusTree::search(uint64_t key, StreamEmitter *e) const
{
    const Node *n = root;
    bool first = true;
    while (true) {
        if (e)
            e->load(pcHeader, n->addr, 3, first ? 0 : 1);
        first = false;
        if (n->leaf)
            break;
        uint32_t slot = probe(n, key, e);
        if (e)
            e->load(pcChildPtr, n->addr + childOffset(slot), 2, 1);
        n = n->children[slot];
    }
    // leaf: find exact key
    auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    if (e && !n->keys.empty()) {
        uint32_t i = static_cast<uint32_t>(it - n->keys.begin());
        if (i >= n->keys.size())
            i = static_cast<uint32_t>(n->keys.size()) - 1;
        e->load(pcKeyProbe, n->addr + keyOffset(i), 2, 1);
    }
    if (it == n->keys.end() || *it != key)
        return std::nullopt;
    size_t idx = it - n->keys.begin();
    if (e)
        e->load(pcLeafValue, n->addr + childOffset(
                    static_cast<uint32_t>(idx)), 2, 1);
    return n->values[idx];
}

std::vector<uint64_t>
BPlusTree::rangeRead(uint64_t key, uint32_t count, StreamEmitter *e) const
{
    std::vector<uint64_t> out;
    const Node *n = root;
    bool first = true;
    while (!n->leaf) {
        if (e)
            e->load(pcHeader, n->addr, 3, first ? 0 : 1);
        first = false;
        uint32_t slot = probe(n, key, e);
        if (e)
            e->load(pcChildPtr, n->addr + childOffset(slot), 2, 1);
        n = n->children[slot];
    }
    auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    size_t idx = it - n->keys.begin();
    while (n && out.size() < count) {
        if (e)
            e->load(pcLeafChain, n->addr, 3, 1);
        for (; idx < n->keys.size() && out.size() < count; ++idx) {
            if (e) {
                e->load(pcLeafValue,
                        n->addr + childOffset(static_cast<uint32_t>(idx)),
                        2, 1);
            }
            out.push_back(n->values[idx]);
        }
        n = n->next;
        idx = 0;
    }
    return out;
}

std::optional<std::pair<uint64_t, BPlusTree::Node *>>
BPlusTree::insertRec(Node *n, uint64_t key, uint64_t value)
{
    if (n->leaf) {
        auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
        size_t idx = it - n->keys.begin();
        if (it != n->keys.end() && *it == key) {
            n->values[idx] = value;
            return std::nullopt;
        }
        n->keys.insert(it, key);
        n->values.insert(n->values.begin() + idx, value);
        if (n->keys.size() <= order)
            return std::nullopt;

        // split the leaf
        Node *right = newNode(true);
        size_t half = n->keys.size() / 2;
        right->keys.assign(n->keys.begin() + half, n->keys.end());
        right->values.assign(n->values.begin() + half, n->values.end());
        n->keys.resize(half);
        n->values.resize(half);
        right->next = n->next;
        n->next = right;
        return std::make_pair(right->keys.front(), right);
    }

    uint32_t slot = probe(n, key, nullptr);
    auto split = insertRec(n->children[slot], key, value);
    if (!split)
        return std::nullopt;

    n->keys.insert(n->keys.begin() + slot, split->first);
    n->children.insert(n->children.begin() + slot + 1, split->second);
    if (n->keys.size() <= order)
        return std::nullopt;

    // split the internal node; middle key moves up
    Node *right = newNode(false);
    size_t mid = n->keys.size() / 2;
    uint64_t up_key = n->keys[mid];
    right->keys.assign(n->keys.begin() + mid + 1, n->keys.end());
    right->children.assign(n->children.begin() + mid + 1,
                           n->children.end());
    n->keys.resize(mid);
    n->children.resize(mid + 1);
    return std::make_pair(up_key, right);
}

void
BPlusTree::insert(uint64_t key, uint64_t value)
{
    auto split = insertRec(root, key, value);
    if (split) {
        Node *new_root = newNode(false);
        new_root->keys.push_back(split->first);
        new_root->children.push_back(root);
        new_root->children.push_back(split->second);
        root = new_root;
        ++height_;
    }
}

} // namespace stems::workloads
