#include "workloads/graph.hh"

#include <vector>

#include "workloads/emitter.hh"
#include "workloads/layout.hh"

namespace stems::workloads {

std::vector<trace::Trace>
GraphWorkload::generateStreams(const WorkloadParams &p)
{
    const uint64_t pc_front = layout::pcSite(layout::kModGraph, 0);
    const uint64_t pc_row = layout::pcSite(layout::kModGraph, 1);
    const uint64_t pc_edge = layout::pcSite(layout::kModGraph, 2);
    const uint64_t pc_dist = layout::pcSite(layout::kModGraph, 3);
    const uint64_t pc_upd = layout::pcSite(layout::kModGraph, 4);
    const uint64_t pc_next = layout::pcSite(layout::kModGraph, 5);

    // CSR arenas inside the scientific-array region
    const uint64_t rows = layout::kGridBase + 0x80000000ULL;
    const uint64_t edges = layout::kGridBase + 0x90000000ULL + 67 * 64;
    const uint64_t dist = layout::kGridBase + 0xA0000000ULL + 131 * 64;
    const uint64_t front = layout::kGridBase + 0xB0000000ULL + 197 * 64;

    const uint32_t nv = prm.vertices;
    const uint32_t perCpu = nv / p.ncpu ? nv / p.ncpu : 1;

    // build the CSR structure once, shared by all CPUs (deterministic)
    trace::Rng build(p.seed * 0x6AF1 + 7);
    std::vector<uint32_t> degree(nv);
    for (uint32_t v = 0; v < nv; ++v) {
        const bool hub = build.chance(prm.hubFraction);
        const uint32_t d = hub ? prm.avgDegree * 4 : prm.avgDegree;
        degree[v] = 1 + static_cast<uint32_t>(build.below(2 * d - 1));
    }
    std::vector<uint64_t> rowOff(nv + 1, 0);
    for (uint32_t v = 0; v < nv; ++v)
        rowOff[v + 1] = rowOff[v] + degree[v];
    std::vector<uint32_t> nbr(rowOff[nv]);
    for (uint32_t v = 0; v < nv; ++v) {
        const uint32_t myCpu = (v / perCpu) % p.ncpu;
        for (uint64_t k = rowOff[v]; k < rowOff[v + 1]; ++k) {
            uint32_t targetCpu = myCpu;
            if (build.chance(prm.remoteFraction))
                targetCpu = static_cast<uint32_t>(build.below(p.ncpu));
            nbr[k] = targetCpu * perCpu +
                static_cast<uint32_t>(build.below(perCpu));
        }
    }

    auto rowAddr = [&](uint32_t v) { return rows + uint64_t{v} * 8; };
    auto edgeAddr = [&](uint64_t k) { return edges + k * 4; };
    auto distAddr = [&](uint32_t v) { return dist + uint64_t{v} * 8; };
    auto frontAddr = [&](uint32_t i) { return front + uint64_t{i} * 4; };

    std::vector<trace::Trace> streams(p.ncpu);
    for (uint32_t cpu = 0; cpu < p.ncpu; ++cpu) {
        trace::Rng rng(p.seed * 0x6AF10 + cpu + 1);
        StreamEmitter e(streams[cpu], rng);
        // wrap partitions when ncpu > vertices (perCpu clamped to 1)
        const uint32_t vFirst =
            static_cast<uint32_t>(uint64_t{cpu} * perCpu % nv);

        // start each level from a random owned seed so successive
        // traversals visit fresh regions (cold-miss dominated, like
        // the paper's commercial scans)
        while (e.count() < p.refsPerCpu) {
            uint32_t cursor = vFirst +
                static_cast<uint32_t>(rng.below(perCpu));
            uint32_t frontierLen = 1 + static_cast<uint32_t>(
                rng.below(perCpu / 4 ? perCpu / 4 : 1));
            for (uint32_t i = 0; i < frontierLen &&
                 e.count() < p.refsPerCpu; ++i) {
                // pop the next frontier slot (sequential scan)
                e.load(pc_front, frontAddr(i), 2);
                const uint32_t v =
                    (vFirst + (cursor - vFirst) % perCpu) % nv;
                // row offsets: two adjacent words (dense)
                e.load(pc_row, rowAddr(v), 2, 1);
                const uint64_t first = rowOff[v];
                const uint64_t last = rowOff[v + 1];
                for (uint64_t k = first; k < last &&
                     e.count() < p.refsPerCpu; ++k) {
                    // neighbour ids: sequential within the row
                    e.load(pc_edge, edgeAddr(k), 1, 1);
                    const uint32_t u = nbr[k];
                    // per-vertex state: irregular dependent gather
                    e.load(pc_dist, distAddr(u), 2, 1);
                    // relax a fraction of edges (frontier insertion)
                    if (rng.chance(0.25)) {
                        e.store(pc_upd, distAddr(u), 2, 1);
                        e.store(pc_next, frontAddr(frontierLen + i), 1);
                    }
                }
                cursor = cursor * 2654435761u + 1;  // next owned vertex
            }
        }
        streams[cpu].resize(p.refsPerCpu);
    }
    return streams;
}

} // namespace stems::workloads
