/**
 * @file
 * A real in-memory B+Tree used as the DBMS index substrate. Nodes are
 * allocated from a dedicated arena so every node has a stable address;
 * searches emit the classic non-contiguous pattern the paper's
 * introduction motivates ("binary search in a B-tree"): node header,
 * a handful of scattered key probes, then a child pointer — a
 * pointer-dependent chain across levels.
 */

#ifndef STEMS_WORKLOADS_BTREE_HH
#define STEMS_WORKLOADS_BTREE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "workloads/emitter.hh"
#include "workloads/layout.hh"

namespace stems::workloads {

/**
 * B+Tree keyed by uint64, valued by uint64 (row locator). Inserts are
 * silent (index build happens before tracing); searches optionally
 * emit their reference stream.
 */
class BPlusTree
{
  public:
    /**
     * @param arena_base base address for node allocation
     * @param pc_module  code-site module for this index's accesses
     * @param order      max keys per node
     */
    BPlusTree(uint64_t arena_base, uint32_t pc_module,
              uint32_t order = 120);
    ~BPlusTree();

    /** Insert (silent; duplicate keys overwrite). */
    void insert(uint64_t key, uint64_t value);

    /**
     * Exact-match lookup. If @p e is non-null, emits the traversal's
     * reference stream.
     */
    std::optional<uint64_t> search(uint64_t key, StreamEmitter *e) const;

    /**
     * Read up to @p count consecutive entries starting at the first
     * key >= @p key, following the leaf chain; emits if @p e given.
     * @return values found.
     */
    std::vector<uint64_t> rangeRead(uint64_t key, uint32_t count,
                                    StreamEmitter *e) const;

    uint32_t height() const { return height_; }
    size_t nodeCount() const { return nodes; }
    uint64_t nodeBytes() const { return nodeBytes_; }

  private:
    struct Node
    {
        uint64_t addr = 0;
        bool leaf = true;
        std::vector<uint64_t> keys;
        std::vector<Node *> children;  //!< internal nodes
        std::vector<uint64_t> values;  //!< leaf nodes
        Node *next = nullptr;          //!< leaf chain
    };

    Node *newNode(bool leaf);
    void freeTree(Node *n);

    /** Recursive insert; returns the (key, node) of a split, if any. */
    std::optional<std::pair<uint64_t, Node *>>
    insertRec(Node *n, uint64_t key, uint64_t value);

    /**
     * Binary search for the child/value slot of @p key in @p n,
     * emitting key-probe reads when @p e is non-null.
     */
    uint32_t probe(const Node *n, uint64_t key, StreamEmitter *e) const;

    // in-node layout offsets (for emitted addresses)
    static constexpr uint32_t kHeaderBytes = 32;
    uint32_t
    keyOffset(uint32_t i) const
    {
        return kHeaderBytes + i * 8;
    }
    uint32_t
    childOffset(uint32_t i) const
    {
        return kHeaderBytes + order * 8 + i * 8;
    }

    uint64_t arenaBase;
    uint64_t nodeBytes_;
    uint32_t order;
    uint32_t height_ = 1;
    size_t nodes = 0;
    Node *root;

    uint64_t pcHeader;
    uint64_t pcKeyProbe;
    uint64_t pcChildPtr;
    uint64_t pcLeafValue;
    uint64_t pcLeafChain;
};

} // namespace stems::workloads

#endif // STEMS_WORKLOADS_BTREE_HH
