#include "workloads/workload.hh"

#include "workloads/dss.hh"
#include "workloads/graph.hh"
#include "workloads/hashjoin.hh"
#include "workloads/lsmcompact.hh"
#include "workloads/oltp.hh"
#include "workloads/packet.hh"
#include "workloads/scientific.hh"
#include "workloads/web.hh"

namespace stems::workloads {

trace::Trace
makeTrace(Workload &w, const WorkloadParams &p)
{
    return trace::canonicalInterleaver(p.seed).merge(w.generateStreams(p));
}

const std::vector<SuiteEntry> &
paperSuite()
{
    static const std::vector<SuiteEntry> suite = {
        {"OLTP-DB2", SuiteClass::OLTP, [] {
             return std::make_unique<OltpWorkload>(OltpWorkload::db2());
         }},
        {"OLTP-Oracle", SuiteClass::OLTP, [] {
             return std::make_unique<OltpWorkload>(OltpWorkload::oracle());
         }},
        {"Qry1", SuiteClass::DSS, [] {
             return std::make_unique<DssWorkload>(DssWorkload::qry1());
         }},
        {"Qry2", SuiteClass::DSS, [] {
             return std::make_unique<DssWorkload>(DssWorkload::qry2());
         }},
        {"Qry16", SuiteClass::DSS, [] {
             return std::make_unique<DssWorkload>(DssWorkload::qry16());
         }},
        {"Qry17", SuiteClass::DSS, [] {
             return std::make_unique<DssWorkload>(DssWorkload::qry17());
         }},
        {"Apache", SuiteClass::Web, [] {
             return std::make_unique<WebWorkload>(WebWorkload::apache());
         }},
        {"Zeus", SuiteClass::Web, [] {
             return std::make_unique<WebWorkload>(WebWorkload::zeus());
         }},
        {"em3d", SuiteClass::Scientific, [] {
             return std::make_unique<Em3dWorkload>();
         }},
        {"ocean", SuiteClass::Scientific, [] {
             return std::make_unique<OceanWorkload>();
         }},
        {"sparse", SuiteClass::Scientific, [] {
             return std::make_unique<SparseWorkload>();
         }},
    };
    return suite;
}

const std::vector<SuiteEntry> &
extensionSuite()
{
    static const std::vector<SuiteEntry> suite = {
        {"graph", SuiteClass::Scientific, [] {
             return std::make_unique<GraphWorkload>();
         }},
        {"hashjoin", SuiteClass::DSS, [] {
             return std::make_unique<HashJoinWorkload>();
         }},
        {"packet", SuiteClass::Web, [] {
             return std::make_unique<PacketWorkload>();
         }},
        {"lsmcompact", SuiteClass::OLTP, [] {
             return std::make_unique<LsmCompactWorkload>();
         }},
    };
    return suite;
}

const std::vector<SuiteEntry> &
fullSuite()
{
    static const std::vector<SuiteEntry> suite = [] {
        std::vector<SuiteEntry> all = paperSuite();
        const auto &ext = extensionSuite();
        all.insert(all.end(), ext.begin(), ext.end());
        return all;
    }();
    return suite;
}

const SuiteEntry *
findWorkload(const std::string &name)
{
    for (const auto &e : fullSuite())
        if (e.name == name)
            return &e;
    return nullptr;
}

} // namespace stems::workloads
