#include "workloads/lsmcompact.hh"

#include "workloads/emitter.hh"
#include "workloads/layout.hh"

namespace stems::workloads {

std::vector<trace::Trace>
LsmCompactWorkload::generateStreams(const WorkloadParams &p)
{
    const uint64_t pc_heap = layout::pcSite(layout::kModLsm, 0);
    const uint64_t pc_run = layout::pcSite(layout::kModLsm, 1);
    const uint64_t pc_buf = layout::pcSite(layout::kModLsm, 2);
    const uint64_t pc_flush_rd = layout::pcSite(layout::kModLsm, 3);
    const uint64_t pc_flush_wr = layout::pcSite(layout::kModLsm, 4);
    const uint64_t pc_bloom_rd = layout::pcSite(layout::kModLsm, 5);
    const uint64_t pc_bloom_wr = layout::pcSite(layout::kModLsm, 6);
    const uint64_t pc_manifest = layout::pcSite(layout::kModLsm, 7);
    const uint64_t pc_publish = layout::pcSite(layout::kModLsm, 8);

    // per-CPU shard arenas: input runs, output run, write buffer and
    // Bloom/index metadata; one shared manifest page set for the
    // engine-wide run catalogue (the sharing surface) sits below the
    // first shard so no CPU's private blocks alias it
    constexpr uint64_t kCpuStride = 0x10000000ULL;
    constexpr uint64_t kShardsBase = layout::kLsmBase + 0x1000000ULL;
    constexpr uint32_t kBlock = 64;
    const uint32_t entriesPerBlock = kBlock / prm.entryBytes;
    auto shardBase = [&](uint32_t cpu) {
        return kShardsBase + uint64_t{cpu} * kCpuStride;
    };
    auto runAddr = [&](uint32_t cpu, uint32_t run, uint64_t entry) {
        return shardBase(cpu) + 0x100000 + uint64_t{run} * 0x400000 +
            entry * prm.entryBytes;
    };
    auto outAddr = [&](uint32_t cpu, uint64_t entry) {
        return shardBase(cpu) + 0x4000000 + entry * prm.entryBytes;
    };
    auto bufAddr = [&](uint32_t cpu, uint64_t entry) {
        return shardBase(cpu) + 0x8000000 +
            (entry % (uint64_t{prm.writeBufferBlocks} *
                      entriesPerBlock)) *
            prm.entryBytes;
    };
    auto bloomAddr = [&](uint32_t cpu, uint32_t slot) {
        return shardBase(cpu) + 0x9000000 + uint64_t{slot} * kBlock;
    };
    auto manifestAddr = [&](uint32_t slot) {
        return layout::kLsmBase + uint64_t{slot} * kBlock;
    };

    const uint64_t runEntries =
        uint64_t{prm.runBlocks} * entriesPerBlock;
    const uint64_t bufEntries =
        uint64_t{prm.writeBufferBlocks} * entriesPerBlock;

    std::vector<trace::Trace> streams(p.ncpu);
    for (uint32_t cpu = 0; cpu < p.ncpu; ++cpu) {
        trace::Rng rng(p.seed * 0x15A7C0 + cpu + 1);
        StreamEmitter e(streams[cpu], rng);

        std::vector<uint64_t> cursor(prm.runs, 0);
        uint64_t merged = 0;

        while (e.count() < p.refsPerCpu) {
            // pop the merge heap: which run owns the smallest key is
            // data-dependent, so the sequential run streams interleave
            // unpredictably per code site
            const uint32_t run =
                static_cast<uint32_t>(rng.below(prm.runs));
            e.load(pc_heap, shardBase(cpu) + run * kBlock, 3);
            // drain a short sorted stretch from the chosen run
            const uint32_t stretch = 1 +
                static_cast<uint32_t>(rng.below(entriesPerBlock * 2));
            for (uint32_t i = 0;
                 i < stretch && e.count() < p.refsPerCpu; ++i) {
                const uint64_t entry = cursor[run] % runEntries;
                ++cursor[run];
                // read the run entry (dependent on the heap pop),
                // append it to the write buffer
                e.load(pc_run, runAddr(cpu, run, entry), 2, 1);
                e.store(pc_buf, bufAddr(cpu, merged), 1, 1);
                ++merged;
                // block index + Bloom filter maintenance once per
                // completed output block (hashed, irregular)
                if (merged % entriesPerBlock == 0) {
                    for (uint32_t b = 0; b < prm.bloomProbes; ++b) {
                        const uint32_t slot = static_cast<uint32_t>(
                            (merged * 0x9E3779B97F4A7C15ULL +
                             b * 0x85EB) % prm.bloomSlots);
                        e.load(pc_bloom_rd, bloomAddr(cpu, slot), 1);
                        e.store(pc_bloom_wr, bloomAddr(cpu, slot), 1,
                                1);
                    }
                }
                // write buffer full: flush it sequentially into the
                // output run (re-read + write, kernel-side I/O)
                if (merged % bufEntries == 0) {
                    const uint64_t first = merged - bufEntries;
                    for (uint64_t f = 0;
                         f < bufEntries && e.count() < p.refsPerCpu;
                         f += entriesPerBlock) {
                        e.load(pc_flush_rd, bufAddr(cpu, first + f), 1,
                               0, true);
                        e.store(pc_flush_wr, outAddr(cpu, first + f),
                                1, 0, true);
                    }
                    // publish the new output extent in the shared
                    // manifest (rare cross-CPU store)
                    e.store(pc_publish,
                            manifestAddr(static_cast<uint32_t>(
                                (merged / bufEntries) % 64)),
                            2, 0, true);
                }
                // occasional manifest lookup (run catalogue read)
                if (rng.chance(prm.manifestFraction))
                    e.load(pc_manifest,
                           manifestAddr(static_cast<uint32_t>(
                               rng.below(64))),
                           2);
            }
        }
        streams[cpu].resize(p.refsPerCpu);
    }
    return streams;
}

} // namespace stems::workloads
