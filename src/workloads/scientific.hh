/**
 * @file
 * The three scientific reference applications of Table 1, implemented
 * as their standard kernels:
 *
 *  - em3d: bipartite-graph electromagnetic propagation (degree 2,
 *    15% remote neighbours), pointer-dependent neighbour reads;
 *  - ocean: red-black 5-point stencil relaxation on a 1026x1026 grid,
 *    row-partitioned with shared boundary rows;
 *  - sparse: sparse matrix-vector product (CSR), dense streaming over
 *    vals/cols with irregular gathers from x.
 */

#ifndef STEMS_WORKLOADS_SCIENTIFIC_HH
#define STEMS_WORKLOADS_SCIENTIFIC_HH

#include "workloads/workload.hh"

namespace stems::workloads {

/**
 * em3d sizing (paper: 3M nodes, degree 2, 15% remote). Scaled so the
 * default trace budget covers several iterations — the repetition the
 * paper's billions-of-instructions traces provide. STEMS_SCALE raises
 * budgets for closer-to-paper runs.
 */
struct Em3dParams
{
    uint32_t nodes = 1 << 20;   //!< values+edges stream past the L2s
    uint32_t degree = 2;
    double remoteFraction = 0.15;
};

/** ocean sizing (paper: 1026x1026 grid, scaled — see Em3dParams). */
struct OceanParams
{
    uint32_t rows = 1026;  //!< the paper's grid
    uint32_t cols = 1026;
};

/** sparse sizing (paper: 4096x4096 matrix, scaled — see Em3dParams). */
struct SparseParams
{
    uint32_t rows = 32768;   //!< vals+cols ~ 24 MB: streams past L2
    uint32_t nnzPerRow = 64;
};

/** em3d electromagnetic kernel. */
class Em3dWorkload : public Workload
{
  public:
    explicit Em3dWorkload(Em3dParams params = Em3dParams())
        : prm(params)
    {}

    std::string name() const override { return "em3d"; }
    SuiteClass suiteClass() const override { return SuiteClass::Scientific; }
    std::vector<trace::Trace>
    generateStreams(const WorkloadParams &p) override;

  private:
    Em3dParams prm;
};

/** ocean grid relaxation kernel. */
class OceanWorkload : public Workload
{
  public:
    explicit OceanWorkload(OceanParams params = OceanParams())
        : prm(params)
    {}

    std::string name() const override { return "ocean"; }
    SuiteClass suiteClass() const override { return SuiteClass::Scientific; }
    std::vector<trace::Trace>
    generateStreams(const WorkloadParams &p) override;

  private:
    OceanParams prm;
};

/** sparse matrix-vector product kernel (CSR). */
class SparseWorkload : public Workload
{
  public:
    explicit SparseWorkload(SparseParams params = SparseParams())
        : prm(params)
    {}

    std::string name() const override { return "sparse"; }
    SuiteClass suiteClass() const override { return SuiteClass::Scientific; }
    std::vector<trace::Trace>
    generateStreams(const WorkloadParams &p) override;

  private:
    SparseParams prm;
};

} // namespace stems::workloads

#endif // STEMS_WORKLOADS_SCIENTIFIC_HH
