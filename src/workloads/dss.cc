#include "workloads/dss.hh"

#include "workloads/bufferpool.hh"

namespace stems::workloads {

DssQuerySpec
DssWorkload::qry1()
{
    DssQuerySpec s;
    s.name = "Qry1";
    s.pcModuleBase = 80;
    s.scanShare = 1.0;
    s.tempTableWrites = true;  // large copy into a temporary table
    return s;
}

DssQuerySpec
DssWorkload::qry2()
{
    DssQuerySpec s;
    s.name = "Qry2";
    s.pcModuleBase = 96;
    s.scanShare = 0.1;
    s.probeMatchRate = 0.25;
    s.buildRows = 96 * 1024;
    return s;
}

DssQuerySpec
DssWorkload::qry16()
{
    DssQuerySpec s;
    s.name = "Qry16";
    s.pcModuleBase = 112;
    s.scanShare = 0.15;
    s.probeMatchRate = 0.45;
    s.buildRows = 48 * 1024;
    return s;
}

DssQuerySpec
DssWorkload::qry17()
{
    DssQuerySpec s;
    s.name = "Qry17";
    s.pcModuleBase = 128;
    s.scanShare = 0.5;  // balanced scan-join
    s.probeMatchRate = 0.35;
    s.buildRows = 64 * 1024;
    return s;
}

namespace {

/**
 * Shared hash-join state: a bucket array in the hash arena. Entries
 * are 16 B (key, row) pairs, four to a 64 B bucket, with overflow
 * chained into a second array region.
 */
struct JoinHash
{
    static constexpr uint32_t kBuckets = 1 << 15;
    static constexpr uint64_t kBucketBytes = 64;
    static constexpr uint64_t kOverflowBase =
        layout::kHashBase + kBuckets * kBucketBytes;

    uint64_t pcBucketRead;
    uint64_t pcEntryWrite;
    uint64_t pcProbeBucket;
    uint64_t pcProbeEntry;
    uint64_t pcOverflow;

    explicit JoinHash(uint32_t pc_module)
    {
        pcBucketRead = layout::pcSite(layout::kModHash, pc_module + 0);
        pcEntryWrite = layout::pcSite(layout::kModHash, pc_module + 1);
        pcProbeBucket = layout::pcSite(layout::kModHash, pc_module + 2);
        pcProbeEntry = layout::pcSite(layout::kModHash, pc_module + 3);
        pcOverflow = layout::pcSite(layout::kModHash, pc_module + 4);
    }

    static uint64_t
    bucketAddr(uint64_t key)
    {
        uint64_t h = key * 0x9e3779b97f4a7c15ULL;
        return layout::kHashBase + (h % kBuckets) * kBucketBytes;
    }

    /** Emit one build-side insert. */
    void
    insert(StreamEmitter &e, uint64_t key, uint32_t fill)
    {
        uint64_t b = bucketAddr(key);
        e.load(pcBucketRead, b, 3);
        e.store(pcEntryWrite, b + 8 + (fill % 3) * 16, 2, 1);
    }

    /** Emit one probe; returns true on a (simulated) match. */
    bool
    probe(StreamEmitter &e, uint64_t key, bool match, trace::Rng &rng)
    {
        uint64_t b = bucketAddr(key);
        e.load(pcProbeBucket, b, 3);
        e.load(pcProbeEntry, b + 8, 2, 1);
        if (rng.chance(0.2)) {
            // overflow chain hop (pointer chase)
            uint64_t h = key * 0x2545f4914f6cdd1dULL;
            e.load(pcOverflow, kOverflowBase + (h % (1 << 20)) * 16, 2, 1);
        }
        return match;
    }
};

} // anonymous namespace

std::vector<trace::Trace>
DssWorkload::generateStreams(const WorkloadParams &p)
{
    BufferPool pool(layout::kBufferPoolBase, 64 * 1024);
    Table lineitem(pool, "lineitem", 400 * 1024, 128,
                   spec.pcModuleBase + 0);
    Table part(pool, "part", spec.buildRows, 192,
               spec.pcModuleBase + 1);
    JoinHash hash(spec.pcModuleBase);

    trace::Zipf part_zipf(part.rows(), 0.8);
    const uint64_t pc_agg_read = layout::pcSite(spec.pcModuleBase + 2, 0);
    const uint64_t pc_agg_write = layout::pcSite(spec.pcModuleBase + 2, 1);
    const uint64_t pc_io = layout::pcSite(spec.pcModuleBase + 2, 2);

    std::vector<trace::Trace> streams(p.ncpu);
    const uint64_t li_pages = (lineitem.rows() +
                               lineitem.rowsPerPageCount() - 1) /
        lineitem.rowsPerPageCount();
    const uint64_t part_pages = (part.rows() +
                                 part.rowsPerPageCount() - 1) /
        part.rowsPerPageCount();

    for (uint32_t cpu = 0; cpu < p.ncpu; ++cpu) {
        trace::Rng rng(p.seed * 0xDEC15 + cpu + 1);
        StreamEmitter e(streams[cpu], rng);
        const uint64_t scratch = layout::privateArea(cpu);

        // parallel partitioned execution: each CPU owns a page range
        const uint64_t my_first = li_pages * cpu / p.ncpu;
        const uint64_t my_last = li_pages * (cpu + 1) / p.ncpu;
        uint64_t scan_cursor = my_first;

        // temp table lives in the CPU's private arena (Qry1)
        uint64_t temp_cursor = 0;

        // --- build phase (join queries): hash the part partition ---
        if (spec.scanShare < 1.0) {
            const uint64_t b_first = part_pages * cpu / p.ncpu;
            const uint64_t b_last = part_pages * (cpu + 1) / p.ncpu;
            for (uint64_t pg = b_first;
                 pg < b_last && e.count() < p.refsPerCpu / 4; ++pg) {
                const uint64_t base = part.pageBase(pg);
                e.load(layout::pcSite(spec.pcModuleBase + 1, 4), base, 8);
                const uint32_t n = part.rowsOnPage(pg);
                for (uint32_t s = 0; s < n; ++s) {
                    uint64_t row = pg * part.rowsPerPageCount() + s;
                    e.load(layout::pcSite(spec.pcModuleBase + 1, 6),
                           base + PageLayout::tupleOffset(
                               s, part.tupleBytes()), 4);
                    hash.insert(e, row, s);
                }
            }
        }

        // --- scan / probe quanta until the reference budget ---
        while (e.count() < p.refsPerCpu) {
            const bool do_scan = rng.uniform() < spec.scanShare;
            // one page of work per quantum
            uint64_t pg = scan_cursor;
            scan_cursor = scan_cursor + 1 < my_last ? scan_cursor + 1
                                                    : my_first;
            const uint64_t base = lineitem.pageBase(pg);
            const uint32_t n = lineitem.rowsOnPage(pg);

            // page header + slot count (every scanner does this first)
            e.load(layout::pcSite(spec.pcModuleBase + 0, 4), base, 8);
            e.load(layout::pcSite(spec.pcModuleBase + 0, 5),
                   base + PageLayout::slotOffset(0), 3, 1);

            for (uint32_t s = 0; s < n; ++s) {
                const uint64_t row =
                    pg * lineitem.rowsPerPageCount() + s;
                e.load(layout::pcSite(spec.pcModuleBase + 0, 6),
                       base + PageLayout::tupleOffset(
                           s, lineitem.tupleBytes()), 5);

                if (do_scan) {
                    // aggregate into a small private group array
                    uint64_t g = rng.below(spec.aggGroups);
                    e.load(pc_agg_read, scratch + g * 64, 2);
                    e.store(pc_agg_write, scratch + g * 64 + 8, 2, 1);
                    if (spec.tempTableWrites && rng.chance(0.6)) {
                        // Qry1: copy the tuple into the temp table —
                        // a store-heavy path that fills store buffers
                        uint64_t t = scratch + 0x100000 +
                            (temp_cursor % (1 << 22));
                        e.store(layout::pcSite(spec.pcModuleBase + 3, 0),
                                t, 2);
                        e.store(layout::pcSite(spec.pcModuleBase + 3, 1),
                                t + 64, 1, 0);
                        temp_cursor += 128;
                    }
                } else {
                    // hash probe; matches read the build-side tuple
                    bool match = rng.chance(spec.probeMatchRate);
                    hash.probe(e, row, match, rng);
                    if (match) {
                        uint64_t prow = part_zipf.sample(rng);
                        part.readRow(e, prow, 2);
                    }
                }
            }
            // periodic I/O completion bookkeeping (OS work)
            if (rng.chance(0.3)) {
                e.load(pc_io, scratch + 0x200000 + rng.below(256) * 64,
                       12, 0, true);
            }
        }
        streams[cpu].resize(p.refsPerCpu);
    }
    return streams;
}

} // namespace stems::workloads
