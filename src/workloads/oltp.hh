/**
 * @file
 * TPC-C-flavoured OLTP workload over the miniature DBMS: NewOrder /
 * Payment / OrderStatus transactions against warehouse, district,
 * customer, stock, order and order-line tables with B+Tree indices, a
 * shared log, and per-CPU transaction scratch space. Two flavours
 * parameterize the paper's OLTP-DB2 and OLTP-Oracle configurations.
 *
 * Structural properties this generator preserves from the real
 * workload: Zipf-skewed hot pages shared (and written) by all
 * processors, pointer-dependent B+Tree descents (low MLP), fine-grain
 * interleaving of many concurrent transactions, and page-structured
 * accesses (header -> slot index -> tuple).
 */

#ifndef STEMS_WORKLOADS_OLTP_HH
#define STEMS_WORKLOADS_OLTP_HH

#include "workloads/workload.hh"

namespace stems::workloads {

/** Parameterization of one OLTP system flavour. */
struct OltpFlavor
{
    std::string name = "OLTP-DB2";
    uint32_t pcModuleBase = 32;   //!< code-site module namespace
    uint64_t warehouses = 64;
    uint64_t districtsPerWh = 10;
    uint64_t customersPerDistrict = 40;
    uint64_t items = 4096;        //!< stock rows = items * warehouses/16
    uint32_t customerTupleBytes = 480;
    uint32_t stockTupleBytes = 192;
    double warehouseZipf = 0.85;  //!< skew of warehouse selection
    double itemZipf = 0.75;
    uint32_t maxOrderLines = 12;
    double kernelFraction = 0.06; //!< OS work per transaction
};

/** The OLTP workload generator. */
class OltpWorkload : public Workload
{
  public:
    explicit OltpWorkload(OltpFlavor flavor) : flavor(std::move(flavor)) {}

    /** IBM DB2-style configuration (64 clients, smaller pool). */
    static OltpFlavor db2();
    /** Oracle-style configuration (16 clients, larger SGA, hotter). */
    static OltpFlavor oracle();

    std::string name() const override { return flavor.name; }
    SuiteClass suiteClass() const override { return SuiteClass::OLTP; }

    std::vector<trace::Trace>
    generateStreams(const WorkloadParams &p) override;

  private:
    OltpFlavor flavor;
};

} // namespace stems::workloads

#endif // STEMS_WORKLOADS_OLTP_HH
