#include "workloads/scientific.hh"

#include <vector>

#include "workloads/emitter.hh"
#include "workloads/layout.hh"

namespace stems::workloads {

// ---------------------------------------------------------------------
// em3d
// ---------------------------------------------------------------------

std::vector<trace::Trace>
Em3dWorkload::generateStreams(const WorkloadParams &p)
{
    const uint64_t pc_edge = layout::pcSite(layout::kModEm3d, 0);
    const uint64_t pc_nbr = layout::pcSite(layout::kModEm3d, 1);
    const uint64_t pc_upd = layout::pcSite(layout::kModEm3d, 2);
    const uint64_t pc_flag = layout::pcSite(layout::kModEm3d, 3);
    const uint64_t pc_spin = layout::pcSite(layout::kModEm3d, 4);
    // per-cpu padded barrier flags (one 64 B block each)
    const uint64_t barrier = layout::kGridBase + 0x0F000000ULL;

    const uint32_t half = prm.nodes / 2;  // E nodes then H nodes
    const uint64_t values = layout::kGridBase;
    const uint64_t edges = layout::kGridBase + 0x10000000ULL;

    // build the bipartite neighbour lists once (deterministic)
    trace::Rng build(p.seed * 0xE3D + 5);
    std::vector<uint32_t> nbr(static_cast<size_t>(prm.nodes) * prm.degree);
    const uint32_t per_cpu = half / p.ncpu;
    for (uint32_t n = 0; n < prm.nodes; ++n) {
        const bool is_e = n < half;
        const uint32_t me = is_e ? n : n - half;
        const uint32_t my_cpu = per_cpu ? (me / per_cpu) % p.ncpu : 0;
        for (uint32_t d = 0; d < prm.degree; ++d) {
            uint32_t target_cpu = my_cpu;
            if (build.chance(prm.remoteFraction))
                target_cpu = static_cast<uint32_t>(build.below(p.ncpu));
            uint32_t pick = target_cpu * per_cpu +
                static_cast<uint32_t>(build.below(per_cpu ? per_cpu : 1));
            // E nodes read H values and vice versa
            nbr[static_cast<size_t>(n) * prm.degree + d] =
                is_e ? half + pick : pick;
        }
    }

    auto value_addr = [&](uint32_t n) { return values + uint64_t{n} * 8; };
    auto edge_addr = [&](uint32_t n) {
        return edges + uint64_t{n} * prm.degree * 8;
    };

    std::vector<trace::Trace> streams(p.ncpu);
    for (uint32_t cpu = 0; cpu < p.ncpu; ++cpu) {
        trace::Rng rng(p.seed * 0xE3D0 + cpu + 1);
        StreamEmitter e(streams[cpu], rng);
        const uint32_t e_first = cpu * per_cpu;
        const uint32_t e_last = e_first + per_cpu;

        while (e.count() < p.refsPerCpu) {
            // E phase then H phase, each a sweep over owned nodes
            for (uint32_t phase = 0; phase < 2; ++phase) {
                const uint32_t base = phase == 0 ? 0 : half;
                for (uint32_t i = e_first;
                     i < e_last && e.count() < p.refsPerCpu; ++i) {
                    const uint32_t n = base + i;
                    e.load(pc_edge, edge_addr(n), 2);
                    for (uint32_t d = 0; d < prm.degree; ++d) {
                        e.load(pc_nbr, value_addr(
                            nbr[static_cast<size_t>(n) * prm.degree + d]),
                            2, 1);
                    }
                    e.store(pc_upd, value_addr(n), 3, 1);
                    // periodic progress flags (fine-grain pipelined
                    // sync): publish own flag, poll a peer's
                    if ((i & 511) == 511) {
                        e.store(pc_flag, barrier + uint64_t{cpu} * 64, 6);
                        e.load(pc_spin,
                               barrier + rng.below(p.ncpu) * 64, 10, 1);
                    }
                }
            }
        }
        streams[cpu].resize(p.refsPerCpu);
    }
    return streams;
}

// ---------------------------------------------------------------------
// ocean
// ---------------------------------------------------------------------

std::vector<trace::Trace>
OceanWorkload::generateStreams(const WorkloadParams &p)
{
    const uint64_t pc_self = layout::pcSite(layout::kModOcean, 0);
    const uint64_t pc_ns = layout::pcSite(layout::kModOcean, 1);
    const uint64_t pc_ew = layout::pcSite(layout::kModOcean, 2);
    const uint64_t pc_wr = layout::pcSite(layout::kModOcean, 3);
    const uint64_t pc_q = layout::pcSite(layout::kModOcean, 4);
    const uint64_t pc_psi = layout::pcSite(layout::kModOcean, 5);

    // the real ocean relaxes over many field arrays (q, psi, gamma,
    // ...); model three so the per-CPU working set behaves like the
    // paper's, not like a single L1-resident grid
    // arenas staggered by odd block counts so same-index elements of
    // different fields do not collide in the same cache set (the
    // standard padding trick in SPLASH codes)
    const uint64_t grid = layout::kGridBase + 0x20000000ULL;
    const uint64_t qgrid = layout::kGridBase + 0x28000000ULL + 67 * 64;
    const uint64_t psigrid =
        layout::kGridBase + 0x30000000ULL + 131 * 64;
    const uint64_t row_bytes = uint64_t{prm.cols} * 8;
    auto at = [&](uint32_t r, uint32_t c) {
        return grid + r * row_bytes + uint64_t{c} * 8;
    };
    auto at_q = [&](uint32_t r, uint32_t c) {
        return qgrid + r * row_bytes + uint64_t{c} * 8;
    };
    auto at_psi = [&](uint32_t r, uint32_t c) {
        return psigrid + r * row_bytes + uint64_t{c} * 8;
    };

    std::vector<trace::Trace> streams(p.ncpu);
    for (uint32_t cpu = 0; cpu < p.ncpu; ++cpu) {
        trace::Rng rng(p.seed * 0x0CEA + cpu + 1);
        StreamEmitter e(streams[cpu], rng);
        const uint32_t r_first = 1 + (prm.rows - 2) * cpu / p.ncpu;
        const uint32_t r_last = 1 + (prm.rows - 2) * (cpu + 1) / p.ncpu;

        uint32_t color = 0;
        while (e.count() < p.refsPerCpu) {
            // one red or black half-sweep over the owned rows
            for (uint32_t r = r_first;
                 r < r_last && e.count() < p.refsPerCpu; ++r) {
                for (uint32_t c = 1 + ((r + color) & 1);
                     c < prm.cols - 1 && e.count() < p.refsPerCpu;
                     c += 2) {
                    e.load(pc_self, at(r, c), 4);
                    e.load(pc_ns, at(r - 1, c), 1);  // may be remote row
                    e.load(pc_ns, at(r + 1, c), 1);
                    e.load(pc_ew, at(r, c - 1), 1);
                    e.load(pc_ew, at(r, c + 1), 1);
                    e.load(pc_q, at_q(r, c), 1);
                    e.load(pc_psi, at_psi(r, c), 1);
                    e.store(pc_wr, at(r, c), 4, 1);
                }
            }
            color ^= 1;
        }
        streams[cpu].resize(p.refsPerCpu);
    }
    return streams;
}

// ---------------------------------------------------------------------
// sparse
// ---------------------------------------------------------------------

std::vector<trace::Trace>
SparseWorkload::generateStreams(const WorkloadParams &p)
{
    const uint64_t pc_col = layout::pcSite(layout::kModSparse, 0);
    const uint64_t pc_val = layout::pcSite(layout::kModSparse, 1);
    const uint64_t pc_x = layout::pcSite(layout::kModSparse, 2);
    const uint64_t pc_y = layout::pcSite(layout::kModSparse, 3);

    const uint64_t vals = layout::kGridBase + 0x40000000ULL;
    const uint64_t cols = layout::kGridBase + 0x50000000ULL + 67 * 64;
    const uint64_t xvec = layout::kGridBase + 0x60000000ULL + 131 * 64;
    const uint64_t yvec = layout::kGridBase + 0x70000000ULL + 197 * 64;

    // deterministic sparsity structure shared by all CPUs
    trace::Rng build(p.seed * 0x5A25 + 3);
    std::vector<uint32_t> colidx(
        static_cast<size_t>(prm.rows) * prm.nnzPerRow);
    for (auto &c : colidx)
        c = static_cast<uint32_t>(build.below(prm.rows));

    std::vector<trace::Trace> streams(p.ncpu);
    for (uint32_t cpu = 0; cpu < p.ncpu; ++cpu) {
        trace::Rng rng(p.seed * 0x5A250 + cpu + 1);
        StreamEmitter e(streams[cpu], rng);
        const uint32_t r_first = prm.rows * cpu / p.ncpu;
        const uint32_t r_last = prm.rows * (cpu + 1) / p.ncpu;

        while (e.count() < p.refsPerCpu) {
            for (uint32_t r = r_first;
                 r < r_last && e.count() < p.refsPerCpu; ++r) {
                const uint64_t base =
                    uint64_t{r} * prm.nnzPerRow;
                for (uint32_t k = 0; k < prm.nnzPerRow; ++k) {
                    e.load(pc_col, cols + (base + k) * 4, 1);
                    e.load(pc_val, vals + (base + k) * 8, 1);
                    // gather from x: irregular, depends on the column
                    e.load(pc_x, xvec + uint64_t{colidx[base + k]} * 8,
                           1, 1);
                }
                e.store(pc_y, yvec + uint64_t{r} * 8, 2, 1);
            }
        }
        streams[cpu].resize(p.refsPerCpu);
    }
    return streams;
}

} // namespace stems::workloads
