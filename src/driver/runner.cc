#include "driver/runner.hh"

#include <atomic>
#include <mutex>
#include <thread>

namespace stems::driver {

Runner::Runner(const ExperimentSpec &spec)
    : spec(spec), cells_(selectedCells(spec)),
      executor_(executorConfig(spec))
{
}

std::vector<CellResult>
Runner::run(const ProgressFn &progress)
{
    std::vector<CellResult> results(cells_.size());

    uint32_t nthreads = spec.threads;
    if (nthreads == 0) {
        nthreads = std::thread::hardware_concurrency();
        if (nthreads == 0)
            nthreads = 1;
    }
    nthreads = std::min<uint32_t>(
        nthreads, static_cast<uint32_t>(std::max<size_t>(
                      cells_.size(), 1)));

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex progressMu;

    auto worker = [&] {
        for (;;) {
            const size_t i = next.fetch_add(1);
            if (i >= cells_.size())
                return;
            results[i] = executor_.execute(cells_[i]);
            const size_t n = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progressMu);
                progress(results[i], n, cells_.size());
            }
        }
    };

    if (nthreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        for (uint32_t k = 0; k < nthreads; ++k)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }
    return results;
}

} // namespace stems::driver
