#include "driver/runner.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "driver/costmodel.hh"
#include "obs/counters.hh"
#include "obs/obs.hh"
#include "obs/sampler.hh"

namespace stems::driver {

Runner::Runner(const ExperimentSpec &spec)
    : spec(spec), cells_(selectedCells(spec)),
      executor_(executorConfig(spec))
{
}

std::vector<CellResult>
Runner::run(const ProgressFn &progress)
{
    std::vector<CellResult> results(cells_.size());

    uint32_t nthreads = spec.threads;
    if (nthreads == 0) {
        nthreads = std::thread::hardware_concurrency();
        if (nthreads == 0)
            nthreads = 1;
    }
    nthreads = std::min<uint32_t>(
        nthreads, static_cast<uint32_t>(std::max<size_t>(
                      cells_.size(), 1)));

    // schedule=cost pulls cells longest-estimated-first (LPT) so the
    // expensive ones cannot land last and stretch the tail; results
    // are still placed by expansion index, so reports are
    // byte-identical to fifo order
    const std::vector<size_t> order = scheduleOrder(spec, cells_);

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex progressMu;
    const auto queuedAt = std::chrono::steady_clock::now();
    obs::Gauges::get().reset();
    obs::gaugeSet(&obs::Gauges::cellsPending,
                  static_cast<int64_t>(cells_.size()));

    // background trace streamer (stream=1): while the pool simulates
    // cell N, prepare — generate, or fault a mapped spill in — the
    // traces of the next cells in schedule order, bounded by a cell
    // count (stream-ahead) and a byte watermark with hysteresis. The
    // streamer only warms the TraceCache through CellExecutor::prefetch
    // (never counts a cache lookup, never fails a cell), so reports
    // are byte-identical with it on or off.
    std::atomic<bool> streamStop{false};
    std::thread streamer;
    if (spec.stream && !order.empty()) {
        streamer = std::thread([&] {
            obs::setThreadName("streamer");
            // per-cell trace-size estimate, prefix-summed in schedule
            // order so the prepared-ahead byte count is O(1)
            std::vector<uint64_t> prefix(order.size() + 1, 0);
            for (size_t k = 0; k < order.size(); ++k) {
                const RunCell &c = cells_[order[k]];
                prefix[k + 1] = prefix[k] +
                    uint64_t{c.params.refsPerCpu} * c.params.ncpu *
                        sizeof(trace::MemAccess);
            }
            const uint64_t high = uint64_t{spec.streamWatermarkMb} << 20;
            const uint64_t low = high / 2;
            size_t ahead = 0;   //!< next schedule slot to prepare
            bool paused = false;
            while (!streamStop.load(std::memory_order_relaxed)) {
                const size_t cursor =
                    std::min(next.load(std::memory_order_relaxed),
                             order.size());
                if (cursor >= order.size())
                    return;  // every cell claimed; nothing left to warm
                if (ahead < cursor)
                    ahead = cursor;
                const uint64_t bytesAhead =
                    prefix[ahead] - prefix[cursor];
                if (paused && bytesAhead <= low)
                    paused = false;
                else if (!paused && bytesAhead >= high)
                    paused = true;
                const size_t limit = std::min<size_t>(
                    order.size(), cursor + 1 + spec.streamAhead);
                if (!paused && ahead < limit) {
                    executor_.prefetch(cells_[order[ahead]]);
                    ++ahead;
                    continue;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        });
    }

    auto drainCells = [&] {
        for (;;) {
            const size_t slot = next.fetch_add(1);
            if (slot >= order.size())
                return;
            const size_t i = order[slot];
            // a stall = the pool reached a cell the streamer had not
            // finished (or started) preparing — the executing thread
            // pays the generate/replay cost inline
            if (spec.stream && !executor_.prepared(cells_[i]))
                obs::count(&obs::Counters::streamStalls);
            obs::gaugeAdd(&obs::Gauges::cellsPending, -1);
            obs::gaugeAdd(&obs::Gauges::workersBusy, 1);
            {
                // queue_ms: how long the cell sat behind earlier work
                // before a pool thread picked it up
                const double waitMs =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - queuedAt)
                        .count();
                obs::Span span(
                    "cell",
                    {{"workload", cells_[i].workload},
                     {"engine", cells_[i].engine.kind},
                     {"id", std::to_string(cells_[i].id)},
                     {"queue_ms", std::to_string(waitMs)}});
                results[i] = executor_.execute(cells_[i]);
            }
            obs::gaugeAdd(&obs::Gauges::workersBusy, -1);
            obs::gaugeAdd(&obs::Gauges::cellsDone, 1);
            const size_t n = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progressMu);
                progress(results[i], n, cells_.size());
            }
        }
    };

    if (nthreads <= 1) {
        drainCells();
    } else {
        std::vector<std::thread> pool;
        for (uint32_t k = 0; k < nthreads; ++k)
            pool.emplace_back([&, k] {
                obs::setThreadName("runner-" + std::to_string(k));
                drainCells();
            });
        for (auto &th : pool)
            th.join();
    }
    if (streamer.joinable()) {
        streamStop.store(true, std::memory_order_relaxed);
        streamer.join();
    }
    return results;
}

} // namespace stems::driver
