#include "driver/runner.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "driver/costmodel.hh"
#include "obs/obs.hh"
#include "obs/sampler.hh"

namespace stems::driver {

Runner::Runner(const ExperimentSpec &spec)
    : spec(spec), cells_(selectedCells(spec)),
      executor_(executorConfig(spec))
{
}

std::vector<CellResult>
Runner::run(const ProgressFn &progress)
{
    std::vector<CellResult> results(cells_.size());

    uint32_t nthreads = spec.threads;
    if (nthreads == 0) {
        nthreads = std::thread::hardware_concurrency();
        if (nthreads == 0)
            nthreads = 1;
    }
    nthreads = std::min<uint32_t>(
        nthreads, static_cast<uint32_t>(std::max<size_t>(
                      cells_.size(), 1)));

    // schedule=cost pulls cells longest-estimated-first (LPT) so the
    // expensive ones cannot land last and stretch the tail; results
    // are still placed by expansion index, so reports are
    // byte-identical to fifo order
    const std::vector<size_t> order = scheduleOrder(spec, cells_);

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex progressMu;
    const auto queuedAt = std::chrono::steady_clock::now();
    obs::Gauges::get().reset();
    obs::gaugeSet(&obs::Gauges::cellsPending,
                  static_cast<int64_t>(cells_.size()));

    auto drainCells = [&] {
        for (;;) {
            const size_t slot = next.fetch_add(1);
            if (slot >= order.size())
                return;
            const size_t i = order[slot];
            obs::gaugeAdd(&obs::Gauges::cellsPending, -1);
            obs::gaugeAdd(&obs::Gauges::workersBusy, 1);
            {
                // queue_ms: how long the cell sat behind earlier work
                // before a pool thread picked it up
                const double waitMs =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - queuedAt)
                        .count();
                obs::Span span(
                    "cell",
                    {{"workload", cells_[i].workload},
                     {"engine", cells_[i].engine.kind},
                     {"id", std::to_string(cells_[i].id)},
                     {"queue_ms", std::to_string(waitMs)}});
                results[i] = executor_.execute(cells_[i]);
            }
            obs::gaugeAdd(&obs::Gauges::workersBusy, -1);
            obs::gaugeAdd(&obs::Gauges::cellsDone, 1);
            const size_t n = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progressMu);
                progress(results[i], n, cells_.size());
            }
        }
    };

    if (nthreads <= 1) {
        drainCells();
    } else {
        std::vector<std::thread> pool;
        for (uint32_t k = 0; k < nthreads; ++k)
            pool.emplace_back([&, k] {
                obs::setThreadName("runner-" + std::to_string(k));
                drainCells();
            });
        for (auto &th : pool)
            th.join();
    }
    return results;
}

} // namespace stems::driver
