#include "driver/runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "sim/timing.hh"
#include "study/l1study.hh"
#include "study/memstudy.hh"

namespace stems::driver {

namespace {

double
msSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // anonymous namespace

Runner::Runner(const ExperimentSpec &spec)
    : spec(spec), cells_(expandSpec(spec))
{
    if (!spec.traceDir.empty())
        traces.setSpillDir(spec.traceDir);
}

namespace {

/**
 * Memo key: a cell's sys config can differ per cell (block sweeps)
 * and generation params could differ across Runner instances sharing
 * code paths (per-seed harnesses), so both are part of the key.
 */
std::string
baselineKey(const RunCell &cell)
{
    return cell.workload + "/b" +
        std::to_string(cell.sys.l1.blockSize) + "/n" +
        std::to_string(cell.params.ncpu) + "/r" +
        std::to_string(cell.params.refsPerCpu) + "/s" +
        std::to_string(cell.params.seed);
}

} // anonymous namespace

const Runner::BaselineSlot &
Runner::baseline(const RunCell &cell)
{
    BaselineSlot *slot;
    {
        std::lock_guard<std::mutex> lock(memoMu);
        slot = &baselines[baselineKey(cell)];
    }
    std::call_once(slot->once, [&] {
        if (cell.mode == StudyMode::System) {
            study::SystemStudyConfig cfg;
            cfg.sys = cell.sys;
            auto r = study::runSystem(streams(cell), cfg,
                                      cell.params.seed);
            slot->instructions = r.instructions;
            slot->l1ReadMisses = r.l1ReadMisses;
            slot->l2ReadMisses = r.l2ReadMisses;
        } else {
            study::L1StudyConfig cfg;
            cfg.ncpu = cell.params.ncpu;
            cfg.l1 = cell.sys.l1;
            cfg.prefetch = false;
            auto r = study::runL1Study(
                traces.get(cell.workload, cell.params), cfg);
            slot->instructions = r.instructions;
            slot->l1ReadMisses = r.readMisses;
        }
    });
    return *slot;
}

const std::vector<trace::Trace> &
Runner::streams(const RunCell &cell)
{
    return traces.streams(cell.workload, cell.params);
}

double
Runner::baselineUipc(const RunCell &cell)
{
    TimingSlot *slot;
    {
        std::lock_guard<std::mutex> lock(memoMu);
        slot = &timingBaselines[baselineKey(cell)];
    }
    std::call_once(slot->once, [&] {
        sim::TimingConfig tc;
        tc.sys = cell.sys;
        slot->uipc =
            sim::runTiming(streams(cell), tc, cell.params.seed).uipc();
    });
    return slot->uipc;
}

void
Runner::runCell(const RunCell &cell, CellResult &out)
{
    const auto t0 = std::chrono::steady_clock::now();
    out.cell = cell;
    CellMetrics &m = out.metrics;

    if (cell.engine.kind == "none") {
        // a "none" cell IS the baseline run — reuse the memoized pass
        const BaselineSlot &base = baseline(cell);
        m.instructions = base.instructions;
        m.l1ReadMisses = base.l1ReadMisses;
        m.l2ReadMisses = base.l2ReadMisses;
    } else if (cell.mode == StudyMode::System) {
        study::SystemStudyConfig cfg;
        cfg.sys = cell.sys;
        std::unique_ptr<PrefetcherDeployment> dep;
        auto r = study::runSystem(
            streams(cell), cfg, cell.params.seed,
            [&](mem::MemorySystem &sys) -> study::AttachedPrefetcher * {
                dep = PrefetcherRegistry::builtin().create(
                    cell.engine.kind, sys, cell.engine.options);
                return dep.get();
            });
        m.instructions = r.instructions;
        m.l1ReadMisses = r.l1ReadMisses;
        m.l2ReadMisses = r.l2ReadMisses;
        m.l1Covered = r.l1Covered;
        m.l2Covered = r.l2Covered;
        m.l1Overpred = r.l1Overpred;
        m.l2Overpred = r.l2Overpred;
        if (dep)
            m.pfCounters = dep->counters();
    } else {
        study::L1StudyConfig cfg;
        cfg.ncpu = cell.params.ncpu;
        cfg.l1 = cell.sys.l1;
        cfg.prefetch = cell.engine.kind == "sms";
        if (cfg.prefetch)
            cfg.sms = smsConfigFromOptions(cell.engine.options);
        auto r = study::runL1Study(
            traces.get(cell.workload, cell.params), cfg);
        m.instructions = r.instructions;
        m.l1ReadMisses = r.readMisses;
        m.l1Covered = r.coveredReads;
        m.l1Overpred = r.overpredictions;
    }

    const BaselineSlot &base = baseline(cell);
    m.baselineL1ReadMisses = base.l1ReadMisses;
    m.baselineL2ReadMisses = base.l2ReadMisses;

    if (cell.timing) {
        m.baselineUipc = baselineUipc(cell);
        if (cell.engine.kind == "sms") {
            sim::TimingConfig tc;
            tc.sys = cell.sys;
            tc.useSms = true;
            tc.sms = smsConfigFromOptions(cell.engine.options);
            m.uipc =
                sim::runTiming(streams(cell), tc, cell.params.seed)
                    .uipc();
        } else if (cell.engine.kind == "none") {
            m.uipc = m.baselineUipc;
        }
        // other prefetchers have no timing-model integration yet
        if (m.baselineUipc > 0 && m.uipc > 0)
            m.speedup = m.uipc / m.baselineUipc;
    }

    m.wallMs = msSince(t0);
}

std::vector<CellResult>
Runner::run(const ProgressFn &progress)
{
    std::vector<CellResult> results(cells_.size());

    uint32_t nthreads = spec.threads;
    if (nthreads == 0) {
        nthreads = std::thread::hardware_concurrency();
        if (nthreads == 0)
            nthreads = 1;
    }
    nthreads = std::min<uint32_t>(
        nthreads, static_cast<uint32_t>(std::max<size_t>(
                      cells_.size(), 1)));

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex progressMu;

    auto worker = [&] {
        for (;;) {
            const size_t i = next.fetch_add(1);
            if (i >= cells_.size())
                return;
            CellResult &out = results[i];
            try {
                runCell(cells_[i], out);
            } catch (const std::exception &e) {
                out.cell = cells_[i];
                out.error = e.what();
            }
            const size_t n = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progressMu);
                progress(out, n, cells_.size());
            }
        }
    };

    if (nthreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        for (uint32_t k = 0; k < nthreads; ++k)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }
    return results;
}

} // namespace stems::driver
