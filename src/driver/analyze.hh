/**
 * @file
 * Offline run analysis: `stems analyze` reads the Chrome-trace
 * (--trace-out) and telemetry (--telemetry-out) artifacts a run left
 * behind and answers the questions the live progress stream cannot —
 * where the wall time went (per-phase breakdown), which chain of
 * spans bounded it (critical path), how effective the memo layers
 * were (hit rates), and which workers or cells dragged the tail
 * (utilization timeline, straggler attribution).
 *
 * The analyzer is a pure function over the artifact text so tests can
 * drive it on committed fixtures; the CLI wrapper only does file IO
 * and key=value parsing.
 */

#ifndef STEMS_DRIVER_ANALYZE_HH
#define STEMS_DRIVER_ANALYZE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace stems::driver {

/** Knobs for analyzeRun(); defaults fit a terminal. */
struct AnalyzeOptions
{
    std::string format = "table";   //!< "table" or "json"
    uint32_t timelineBuckets = 24;  //!< utilization slices per worker
    size_t criticalPathCap = 32;    //!< max spans on the reported path
    size_t stragglerTop = 8;        //!< slowest cells listed
};

/**
 * Analyze one run from its artifact text. @p traceText is the
 * Chrome-trace JSON written by --trace-out ("" = absent) and
 * @p telemetryText the --telemetry-out JSON ("" = absent); sections
 * whose input is missing are skipped. Throws std::invalid_argument on
 * malformed input or when both inputs are empty.
 */
std::string analyzeRun(const std::string &traceText,
                       const std::string &telemetryText,
                       const AnalyzeOptions &opts = {});

/** CLI entry: stems analyze trace=F telemetry=F format=table|json. */
int cmdAnalyze(const std::vector<std::string> &args);

} // namespace stems::driver

#endif // STEMS_DRIVER_ANALYZE_HH
