/**
 * @file
 * The `stems` CLI: front door to the experiment engine.
 *
 *   stems run [key=value ...]   expand and execute an experiment
 *                               matrix, emit JSON/CSV/table reports
 *                               (--dispatch=N farms cells to worker
 *                               processes)
 *   stems list                  registered workloads and prefetchers
 *   stems trace [key=value ...] record one workload trace to disk
 *   stems bench [key=value ...] measure the hot paths, emit
 *                               BENCH_engine.json
 *   stems merge [json=OUT] A B  merge run reports by cell id
 *   stems worker                dispatch worker mode (internal)
 *   stems help                  usage
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <unistd.h>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dispatch/coordinator.hh"
#include "dispatch/journal.hh"
#include "dispatch/merge.hh"
#include "dispatch/worker.hh"
#include "driver/analyze.hh"
#include "driver/bench.hh"
#include "driver/costmodel.hh"
#include "driver/metrics.hh"
#include "driver/report.hh"
#include "driver/runner.hh"
#include "driver/spec.hh"
#include "obs/counters.hh"
#include "obs/histogram.hh"
#include "obs/obs.hh"
#include "obs/sampler.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/transport.hh"
#include "study/suite.hh"
#include "trace/io.hh"
#include "workloads/workload.hh"

namespace {

using namespace stems;
using namespace stems::driver;

int
usage()
{
    std::cout <<
        "stems — Spatial Memory Streaming experiment engine\n\n"
        "  stems run [key=value ...]    run a workload x prefetcher x\n"
        "                               parameter matrix in parallel\n"
        "                               (--dispatch=N: in N crash-\n"
        "                               isolated worker processes)\n"
        "  stems list                   show workloads and prefetchers\n"
        "  stems trace workload=W out=FILE [ncpu= refs= seed=]\n"
        "                               record one trace to disk\n"
        "  stems bench [--quick] [workload= ncpu= refs= seed=\n"
        "              repeats= json=]  measure per-reference hot-path\n"
        "                               cost, emit BENCH_engine.json\n"
        "  stems merge [json=OUT] A.json B.json ...\n"
        "                               merge run reports by cell id\n"
        "  stems analyze [trace=F] [telemetry=F] [format=table|json]\n"
        "                               offline run analysis: critical\n"
        "                               path, phase breakdown, memo hit\n"
        "                               rates, worker utilization and\n"
        "                               stragglers from --trace-out /\n"
        "                               --telemetry-out artifacts\n"
        "  stems worker [--listen=ADDR [--once]]\n"
        "                               serve dispatched cells on\n"
        "                               stdin/stdout (spawned by\n"
        "                               stems run --dispatch=N), or on\n"
        "                               a unix:/path or host:port\n"
        "                               socket for workers= fleets\n"
        "  stems serve listen=ADDR [fleet=N max-active=N max-queue=N\n"
        "              journal-dir=DIR trace-dir=DIR steal=0|1\n"
        "              pipeline=0|1 trace-out= telemetry-out= quiet=1]\n"
        "                               persistent experiment service:\n"
        "                               warm caches shared across\n"
        "                               requests, admission queuing,\n"
        "                               work stealing, per-request\n"
        "                               journals for warm restart\n"
        "  stems submit server=ADDR [key=value ...]\n"
        "                               run a spec on a stems serve\n"
        "                               daemon; reports byte-identical\n"
        "                               to stems run on the same spec\n"
        "  stems help                   this text\n\n"
              << specHelp() <<
        "\nexamples:\n"
        "  stems run workloads=paper prefetchers=sms,ghb,none json=-\n"
        "  stems run workloads=OLTP-DB2 prefetchers=sms \\\n"
        "      sweep.pht-entries=1024,4096,16384 csv=sweep.csv table=1\n"
        "  stems run workloads=all prefetchers=sms timing=1 \\\n"
        "      trace-dir=/tmp/stems-traces json=report.json\n"
        "  stems run workloads=paper --dispatch=8 wall=0 json=a.json\n"
        "  stems run workloads=paper cells=0-5 json=part1.json &&\n"
        "      stems run workloads=paper cells=6-10 json=part2.json &&\n"
        "      stems merge json=full.json part1.json part2.json\n";
    return 0;
}

int
cmdList()
{
    std::cout << "workloads (paper suite, Table 1):\n";
    for (const auto &e : workloads::paperSuite())
        std::cout << "  " << e.name << "  ["
                  << workloads::suiteClassName(e.cls) << "]\n";
    std::cout << "workloads (extensions):\n";
    for (const auto &e : workloads::extensionSuite())
        std::cout << "  " << e.name << "  ["
                  << workloads::suiteClassName(e.cls) << "]\n";
    std::cout << "prefetchers:\n";
    const auto &reg = PrefetcherRegistry::builtin();
    for (const auto &name : reg.names())
        std::cout << "  " << name << ": " << reg.help(name) << "\n";
    std::cout <<
        "sweep axes (sweep.KEY=V1,V2,... crosses values per cell;\n"
        "every KEY also works as a top-level key=value):\n"
        "  block=BYTES                  cache/coherence block "
        "(geometry)\n"
        "  l1-kb= l1-assoc=             L1 geometry\n"
        "  l2-kb= l2-mb= l2-assoc=      L2 geometry\n"
        "  density=BYTES                access-density histograms at\n"
        "                               this power-of-two region size\n"
        "                               (mode=system; 0 = off)\n"
        "  trainer=agt|ls|ds            sms training structure: Active\n"
        "                               Generation Table, Logical\n"
        "                               Sectored tags, or Decoupled\n"
        "                               Sectored cache (mode=l1)\n"
        "  index=pc+off|pc|addr|pc+addr sms prediction index\n"
        "  (plus any prefetcher option listed above, e.g.\n"
        "   sweep.pht-entries=1024,16384)\n";
    std::cout << "metric families (JSON/CSV/wire emission is "
                 "schema-driven):\n";
    for (const auto &f : MetricSchema::builtin().families()) {
        std::printf("  %-26s %-9s %s\n", f.name.c_str(),
                    metricKindName(f.kind), f.help.c_str());
    }
    return 0;
}

int
cmdTrace(const std::vector<std::string> &args)
{
    Options opts;
    for (const auto &tok : args) {
        auto [k, v] = parseKeyValue(tok);
        if (k != "workload" && k != "out" && k != "ncpu" &&
            k != "refs" && k != "seed") {
            std::cerr << "stems trace: unknown key \"" << k
                      << "\" (expected workload, out, ncpu, refs, "
                         "seed)\n";
            return 2;
        }
        opts[k] = v;
    }
    const std::string workload = optStr(opts, "workload", "");
    const std::string out = optStr(opts, "out", "");
    if (workload.empty() || out.empty()) {
        std::cerr << "stems trace: workload= and out= are required\n";
        return 2;
    }
    const workloads::SuiteEntry *entry = workloads::findWorkload(workload);
    if (!entry) {
        std::cerr << "stems trace: unknown workload " << workload << "\n";
        return 2;
    }
    workloads::WorkloadParams p = study::defaultParams();
    p.ncpu = static_cast<uint32_t>(optU64(opts, "ncpu", p.ncpu));
    if (p.ncpu == 0) {
        std::cerr << "stems trace: ncpu must be positive\n";
        return 2;
    }
    p.refsPerCpu = optU64(opts, "refs", p.refsPerCpu);
    p.seed = optU64(opts, "seed", p.seed);

    auto w = entry->make();
    trace::Trace t = workloads::makeTrace(*w, p);
    // embed the generator fingerprint so engine replay rejects the
    // file once generators change behaviour
    if (!trace::writeTrace(t, out,
                           study::generatorConfigHash(workload, p))) {
        std::cerr << "stems trace: cannot write " << out << "\n";
        return 1;
    }
    std::cout << "wrote " << t.size() << " references to " << out
              << "\n";
    return 0;
}

int
cmdBench(const std::vector<std::string> &args)
{
    BenchOptions opt;
    Options kvs;
    for (const auto &tok : args) {
        if (tok == "--quick" || tok == "quick") {
            opt.quick = true;
            continue;
        }
        auto [k, v] = parseKeyValue(tok);
        if (k != "workload" && k != "ncpu" && k != "refs" &&
            k != "seed" && k != "repeats" && k != "json" &&
            k != "quick") {
            std::cerr << "stems bench: unknown key \"" << k
                      << "\" (expected workload, ncpu, refs, seed, "
                         "repeats, json, quick)\n";
            return 2;
        }
        kvs[k] = v;
    }
    opt.quick = optBool(kvs, "quick", opt.quick);
    if (opt.quick) {
        // CI preset: small but representative, a few seconds total
        opt.ncpu = 4;
        opt.refsPerCpu = 20000;
        opt.repeats = 2;
    }
    opt.workload = optStr(kvs, "workload", opt.workload);
    opt.ncpu = static_cast<uint32_t>(optU64(kvs, "ncpu", opt.ncpu));
    if (opt.ncpu == 0) {
        std::cerr << "stems bench: ncpu must be positive\n";
        return 2;
    }
    opt.refsPerCpu = optU64(kvs, "refs", opt.refsPerCpu);
    opt.seed = optU64(kvs, "seed", opt.seed);
    opt.repeats = static_cast<uint32_t>(
        optU64(kvs, "repeats", opt.repeats));
    if (opt.repeats == 0)
        opt.repeats = 1;
    opt.jsonPath = optStr(kvs, "json", opt.jsonPath);

    std::cerr << "stems bench: " << opt.workload << ", " << opt.ncpu
              << " cpus x " << opt.refsPerCpu << " refs, best of "
              << opt.repeats << "\n";
    auto results = runEngineBench(opt);
    for (const auto &r : results) {
        std::fprintf(stderr,
                     "stems bench: %-10s %-18s %8.1f ms  %7.1f ns/ref"
                     "  %.2fM refs/s\n",
                     r.workload.c_str(), r.name.c_str(), r.wallMs,
                     r.nsPerRef, r.refsPerSec / 1e6);
    }
    const ObsOverhead obs = runObsOverheadBench(opt);
    std::fprintf(stderr,
                 "stems bench: obs overhead: %u cells, %.1f ms plain, "
                 "%.1f ms observed (%+.1f%%)\n",
                 obs.cells, obs.plainMs, obs.observedMs,
                 obs.overheadPct);
    writeReport(opt.jsonPath, benchToJson(opt, results, &obs));
    if (opt.jsonPath != "-")
        std::cerr << "stems bench: wrote " << opt.jsonPath << "\n";
    return 0;
}

int
cmdRun(const std::vector<std::string> &args)
{
    // --key=value is sugar for the key=value spec key (and a bare
    // --flag for flag=1), so dispatch/observability switches read
    // like conventional CLI options
    std::vector<std::string> tokens;
    tokens.reserve(args.size());
    for (const auto &arg : args) {
        if (arg.rfind("--", 0) == 0)
            tokens.push_back(arg.find('=') != std::string::npos
                                 ? arg.substr(2)
                                 : arg.substr(2) + "=1");
        else
            tokens.push_back(arg);
    }
    ExperimentSpec spec = parseSpec(tokens);
    // default output: JSON on stdout
    if (spec.jsonPath.empty() && spec.csvPath.empty() && !spec.table)
        spec.jsonPath = "-";

    if (!spec.traceOut.empty()) {
        obs::Recorder::get().enable();
        obs::setThreadName(spec.dispatch > 0 ? "coordinator" : "main");
    }

    const bool quiet = spec.quiet;
    // keep stdout clean for machine-readable output; when the summary
    // table is re-routed to stderr it shares the stream with progress,
    // so the ETA decoration is dropped there to keep it greppable
    const bool stdoutBusy = spec.jsonPath == "-" ||
        spec.csvPath == "-" || spec.traceOut == "-" ||
        spec.telemetryOut == "-";
    const bool showEta = !quiet && !(spec.table && stdoutBusy);

    // per-cell cost estimates power the progress ETA — the same model
    // schedule=cost dispatches by (see driver/costmodel.hh)
    std::map<uint32_t, double> costById;
    double totalCost = 0;
    if (showEta) {
        const CostModel model = CostModel::fromSpec(spec);
        for (const auto &cell : selectedCells(spec)) {
            const double c = model.estimate(cell);
            costById.emplace(cell.id, c);
            totalCost += c;
        }
    }

    // progress lines are composed before the single stream write so
    // they cannot interleave with worker stderr mid-line; doneCost and
    // lastPrint are guarded by the runner's progress mutex (the
    // dispatch coordinator calls from one thread)
    double doneCost = 0;
    const auto progressStart = std::chrono::steady_clock::now();
    auto lastPrint = progressStart - std::chrono::seconds(10);
    const auto progress = [&](const CellResult &r, size_t done,
                              size_t total) {
        if (quiet)
            return;
        const auto it = costById.find(r.cell.id);
        if (it != costById.end())
            doneCost += it->second;
        // rate-limit: a large sweep would otherwise flood stderr with
        // one line per cell; failures and the final cell always print
        const auto now = std::chrono::steady_clock::now();
        if (r.error.empty() && done != total &&
            now - lastPrint < std::chrono::milliseconds(250))
            return;
        lastPrint = now;
        std::ostringstream line;
        line << "stems: [" << done << "/" << total << "] "
             << r.cell.workload << " / "
             << r.cell.engine.displayLabel();
        const double elapsedS =
            std::chrono::duration<double>(now - progressStart)
                .count();
        if (showEta && done < total && doneCost > 0 &&
            totalCost > doneCost && elapsedS > 0) {
            char eta[64];
            std::snprintf(eta, sizeof(eta),
                          "  %.1f cells/s, ETA %.0fs",
                          static_cast<double>(done) / elapsedS,
                          elapsedS * (totalCost - doneCost) /
                              doneCost);
            line << eta;
        }
        line << (r.error.empty() ? "" : "  FAILED: " + r.error)
             << "\n";
        std::cerr << line.str();
    };

    if (!quiet) {
        const size_t nCells = selectedCells(spec).size();
        if (spec.dispatch > 0)
            std::cerr << "stems: " << nCells << " cells across "
                      << std::min<size_t>(spec.dispatch, nCells)
                      << " worker processes\n";
        else
            std::cerr << "stems: " << nCells << " cells ("
                      << spec.workloads.size() << " workloads x "
                      << spec.engines.size() << " prefetchers"
                      << (spec.sweeps.empty() ? "" : " x sweep")
                      << ")\n";
    }

    // time-series sampler: ticks in the background for the duration
    // of the run, reading atomics only — report bytes are identical
    // with it on or off
    obs::StatsSampler sampler;
    if (!spec.statsOut.empty())
        sampler.start(spec.statsOut, spec.statsIntervalMs);

    const auto runStart = std::chrono::steady_clock::now();
    std::vector<dispatch::WorkerStats> workerStats;
    // runSpec is the one execution entry point: fault plan, journal
    // and resume splicing, dispatch-vs-in-process selection
    std::vector<CellResult> results =
        dispatch::runSpec(spec, progress, &workerStats);
    const double runWallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - runStart)
            .count();
    sampler.stop();

    if (!spec.jsonPath.empty())
        writeReport(spec.jsonPath, toJson(spec, results));
    if (!spec.csvPath.empty())
        writeReport(spec.csvPath, toCsv(spec, results));
    if (spec.table)
        (stdoutBusy ? std::cerr : std::cout) << toTable(spec, results);

    // observability sinks come last so a report on stdout is already
    // complete before any telemetry text appears anywhere
    if (!spec.traceOut.empty())
        writeReport(spec.traceOut, obs::Recorder::get().chromeJson());
    if (spec.telemetry || !spec.telemetryOut.empty()) {
        const std::string dump =
            dispatch::telemetryJson(runWallMs, workerStats);
        if (!spec.telemetryOut.empty())
            writeReport(spec.telemetryOut, dump);
        if (spec.telemetry)
            std::cerr << dump;
        if (!workerStats.empty())
            std::cerr << dispatch::workerSummary(workerStats,
                                                 runWallMs);
    }

    int failed = 0;
    for (const auto &r : results)
        if (!r.error.empty())
            ++failed;
    return failed ? 1 : 0;
}

int
cmdMerge(const std::vector<std::string> &args)
{
    std::string outPath = "-";
    std::vector<std::string> inputs;
    for (const auto &arg : args) {
        if (arg.rfind("json=", 0) == 0) {
            outPath = arg.substr(5);
        } else if (arg.find('=') != std::string::npos) {
            std::cerr << "stems merge: unknown key \"" << arg
                      << "\" (expected json=OUT and input files)\n";
            return 2;
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty()) {
        std::cerr << "stems merge: no input reports given\n";
        return 2;
    }
    std::vector<std::string> texts;
    for (const auto &path : inputs) {
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            std::cerr << "stems merge: cannot read " << path << "\n";
            return 1;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        texts.push_back(ss.str());
    }
    writeReport(outPath, dispatch::mergeReports(texts));
    if (outPath != "-")
        std::cerr << "stems merge: wrote " << outPath << " ("
                  << inputs.size() << " reports)\n";
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();
    const std::string cmd = args[0];
    args.erase(args.begin());
    try {
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "list")
            return cmdList();
        if (cmd == "trace")
            return cmdTrace(args);
        if (cmd == "bench")
            return cmdBench(args);
        if (cmd == "merge")
            return cmdMerge(args);
        if (cmd == "analyze")
            return cmdAnalyze(args);
        if (cmd == "worker") {
            std::string listen;
            bool once = false;
            for (const auto &arg : args) {
                if (arg.rfind("--listen=", 0) == 0)
                    listen = arg.substr(9);
                else if (arg.rfind("listen=", 0) == 0)
                    listen = arg.substr(7);
                else if (arg == "--once" || arg == "once=1")
                    once = true;
            }
            if (!listen.empty())
                return serve::runListenWorker(listen, once);
            return dispatch::runWorker(STDIN_FILENO, STDOUT_FILENO);
        }
        if (cmd == "serve")
            return serve::cmdServe(args);
        if (cmd == "submit")
            return serve::cmdSubmit(args);
        if (cmd == "help" || cmd == "--help" || cmd == "-h")
            return usage();
        std::cerr << "stems: unknown command \"" << cmd
                  << "\" (try: stems help)\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << "stems: " << e.what() << "\n";
        return 2;
    }
}
