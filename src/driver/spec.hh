/**
 * @file
 * Experiment specification for the engine: a workload × prefetcher ×
 * parameter matrix, parsed from CLI key=value tokens and/or config
 * files, expanded into independent run cells the sharded runner
 * executes in parallel.
 */

#ifndef STEMS_DRIVER_SPEC_HH
#define STEMS_DRIVER_SPEC_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "driver/registry.hh"
#include "mem/memsys.hh"
#include "workloads/workload.hh"

namespace stems::driver {

/** Which study pipeline a cell runs through. */
enum class StudyMode
{
    System,  //!< full coherent multiprocessor (study::runSystem)
    L1       //!< shadow-L1 coverage pipeline (study::runL1Study)
};

inline const char *
studyModeName(StudyMode m)
{
    return m == StudyMode::System ? "system" : "l1";
}

/** One sweep axis: an option key and the values to cross. */
using SweepAxis = std::pair<std::string, std::vector<std::string>>;

/** The full experiment matrix plus global run settings. */
struct ExperimentSpec
{
    std::vector<std::string> workloads;   //!< resolved suite names
    std::vector<EngineConfig> engines;    //!< prefetcher configurations
    std::vector<SweepAxis> sweeps;        //!< parameter matrix axes
    workloads::WorkloadParams params;     //!< ncpu / refs / seed
    mem::MemSysConfig sys;                //!< hierarchy configuration
    StudyMode mode = StudyMode::System;
    bool timing = false;                  //!< also run the timing model
    bool timingOnly = false;              //!< skip the system-study pass
    uint32_t threads = 0;                 //!< 0 = hardware concurrency
    std::string traceDir;                 //!< record/replay directory
    std::string jsonPath;                 //!< "-" = stdout, "" = off
    std::string csvPath;
    bool table = false;                   //!< ASCII summary table
    bool emitWall = true;                 //!< wall_ms in JSON (wall=0
                                          //!< gives byte-stable reports)
    bool quiet = false;                   //!< suppress progress lines
    bool groups = false;                  //!< engine-folded per-group
                                          //!< aggregate rows (opt-in)

    // observability sinks (see src/obs/); never touch report output
    std::string traceOut;      //!< Chrome trace-event JSON ("" = off)
    std::string telemetryOut;  //!< counters JSON file ("" = off)
    bool telemetry = false;    //!< dump counters JSON to stderr
    std::string statsOut;      //!< time-series JSONL file ("" = off)
    uint32_t statsIntervalMs = 100;  //!< sampler period (stats-out)

    // scheduling (see driver/costmodel.hh); never changes report bytes
    bool scheduleCost = false;   //!< LPT order + slowest-worker-last
    std::string scheduleFrom;    //!< calibration journal/report ("" =
                                 //!< heuristic cost model)

    // streaming trace pipeline (see driver/runner.cc); never changes
    // report bytes — the streamer only warms traces ahead of execution
    bool stream = false;         //!< background trace streamer
    uint32_t streamAhead = 2;    //!< cells prepared ahead of the cursor
    uint32_t streamWatermarkMb = 512;  //!< prefetch byte budget (high
                                       //!< watermark; streamer pauses
                                       //!< above it, resumes at half)

    /** Track oracle spatial generations at these region sizes. */
    std::vector<uint32_t> oracleRegionSizes;

    /**
     * Track access-density histograms (Figure 5) at this spatial
     * region size; 0 = off. Sweepable per cell via sweep.density=.
     */
    uint32_t densityRegion = 0;

    /** Cell-id filter ("" = all): comma list of ids and A-B ranges. */
    std::string cellFilter;

    // multi-process dispatch (see dispatch/coordinator.hh)
    uint32_t dispatch = 0;            //!< worker processes (0 = in-proc)
    uint32_t dispatchTimeoutMs = 0;   //!< per-cell timeout (0 = none)
    uint32_t dispatchRetries = 3;     //!< attempts per cell before error
    uint32_t dispatchHeartbeatMs = 0; //!< liveness period (0 = off)
    uint32_t dispatchBackoffMs = 50;  //!< respawn backoff base
    bool dispatchSpeculate = false;   //!< re-dispatch tail stragglers
    std::string dispatchWorkerExe;    //!< "" = this binary

    /**
     * Socket fleet (see serve/transport.hh): comma list of worker
     * endpoints (`unix:/path` or `host:port`). When set, dispatch
     * rides serve::SocketTransport instead of forked pipe workers;
     * dispatch= defaults to the endpoint count.
     */
    std::string dispatchWorkers;

    /**
     * Launch template run (/bin/sh -c) once per spawned worker with
     * `{addr}` replaced by its endpoint; "" = connect to listeners
     * someone else started. Use `exec` so signals reach the worker.
     */
    std::string dispatchSpawnCmd;

    bool dispatchPipeline = false;    //!< ship lookahead prefetch hints

    // fault tolerance (see dispatch/journal.hh, fault/fault.hh)
    std::string faultPlan;     //!< chaos plan ("" = none)
    std::string journalPath;   //!< crash-safe result journal ("" = off)
    bool resume = false;       //!< splice journaled cells, run the rest
};

/** One independent run: a fully-resolved point of the matrix. */
struct RunCell
{
    uint32_t id = 0;
    std::string workload;
    EngineConfig engine;     //!< options merged with the sweep point
    Options sweepPoint;      //!< this cell's sweep assignment
    workloads::WorkloadParams params;
    mem::MemSysConfig sys;
    StudyMode mode = StudyMode::System;
    bool timing = false;
    bool timingOnly = false;
    uint32_t densityRegion = 0;  //!< density-histogram region (0 = off)
};

/**
 * Parse key=value tokens into a spec. Recognized keys (see
 * specHelp()): config=FILE, workloads=, prefetchers=, sweep.K=,
 * opt.K=, pf.LABEL.K=, ncpu=, refs=, seed=, threads=, mode=, timing=,
 * trace-dir=, json=, csv=, table=, l1-kb=, l2-mb=, block=, density=,
 * oracle-regions=.
 *
 * Throws std::invalid_argument on unknown keys, unknown workload or
 * prefetcher names, or malformed values.
 */
ExperimentSpec parseSpec(const std::vector<std::string> &tokens);

/**
 * Expand the matrix into cells, nested workload-major: for each
 * workload, for each engine, for each sweep point (last axis fastest).
 * Sweep values override same-named base options; cache-geometry axes
 * (block, l1-kb, l2-kb, l2-mb, l1-assoc, l2-assoc) reshape the cell's
 * MemSysConfig instead and apply to every engine.
 */
std::vector<RunCell> expandSpec(const ExperimentSpec &spec);

/**
 * expandSpec() filtered by spec.cellFilter; ids are preserved, so a
 * filtered run's cells merge back into the full report by id (see
 * dispatch/merge.hh). Throws std::invalid_argument on a malformed
 * filter or one selecting no cells.
 */
std::vector<RunCell> selectedCells(const ExperimentSpec &spec);

/** Whether @p key names a sweepable cache-geometry axis. */
bool isGeometryKey(const std::string &key);

/** Usage text for the run subcommand's keys. */
const char *specHelp();

} // namespace stems::driver

#endif // STEMS_DRIVER_SPEC_HH
