/**
 * @file
 * Per-cell cost estimation for scheduling: predicts how expensive a
 * RunCell will be relative to its siblings so the runner and the
 * dispatch coordinator can order work longest-first (LPT) instead of
 * expansion order, shrinking the straggler tail of a sweep.
 *
 * Two sources, best wins per cell:
 *  - **Calibration** (schedule-from=FILE): measured wall times from a
 *    prior run of the same matrix — either a crash-safe result journal
 *    (dispatch/journal.hh; wall_ms rides each result frame bit-exact)
 *    or a run report JSON. Matched by cell id first, then by
 *    (workload, engine label) mean.
 *  - **Heuristic**: refs × ncpu scaled by engine kind and the passes
 *    the cell runs (study / timing / both). Only the ordering matters;
 *    scheduling never changes report bytes (results are placed by cell
 *    id), so a misestimate costs wall time, never correctness.
 */

#ifndef STEMS_DRIVER_COSTMODEL_HH
#define STEMS_DRIVER_COSTMODEL_HH

#include <map>
#include <string>
#include <vector>

#include "driver/spec.hh"

namespace stems::driver {

/** Estimates per-cell execution cost (arbitrary comparable units). */
class CostModel
{
  public:
    /**
     * Heuristic model plus, when spec.scheduleFrom names a readable
     * journal or report file, calibration from its measured wall
     * times. Throws std::invalid_argument when scheduleFrom is set
     * but unreadable or unrecognized.
     */
    static CostModel fromSpec(const ExperimentSpec &spec);

    /** Estimated cost of @p cell; calibrated when data is available. */
    double estimate(const RunCell &cell) const;

    /**
     * Load measured wall times from @p text: a stems result journal
     * (length-prefixed frames) or a run report JSON document. Throws
     * std::invalid_argument when the text is neither.
     */
    void calibrate(const std::string &text);

    bool calibrated() const
    {
        return !byId_.empty() || !byLabel_.empty();
    }

  private:
    std::map<uint32_t, double> byId_;       //!< cell id → wall ms
    std::map<std::string, double> byLabel_; //!< workload|label → mean
};

/**
 * Execution order for @p cells under @p spec's schedule= policy:
 * indices into @p cells, longest-estimated-first for schedule=cost
 * (ties by id so the order is deterministic), identity for
 * schedule=fifo.
 */
std::vector<size_t> scheduleOrder(const ExperimentSpec &spec,
                                  const std::vector<RunCell> &cells);

} // namespace stems::driver

#endif // STEMS_DRIVER_COSTMODEL_HH
