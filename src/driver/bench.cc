#include "driver/bench.hh"

#include <chrono>
#include <filesystem>
#include <functional>
#include <stdexcept>
#include <unistd.h>

#include "core/sms.hh"
#include "driver/options.hh"
#include "driver/registry.hh"
#include "driver/report.hh"
#include "driver/runner.hh"
#include "driver/spec.hh"
#include "mem/memsys.hh"
#include "obs/obs.hh"
#include "obs/sampler.hh"
#include "sim/timing.hh"
#include "trace/interleaver.hh"
#include "trace/io.hh"
#include "trace/stream.hh"
#include "workloads/workload.hh"

namespace stems::driver {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(const Clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/**
 * Best-of-N wall time of @p body (a fresh system is built inside each
 * repeat, so table warm-up is part of the measured reference loop
 * exactly as it is in a real run).
 */
BenchResult
measure(const std::string &workload, const std::string &name,
        uint64_t refs, uint32_t repeats,
        const std::function<void()> &body)
{
    BenchResult r;
    r.workload = workload;
    r.name = name;
    r.refs = refs;
    double best = -1.0;
    for (uint32_t i = 0; i < repeats; ++i) {
        const auto t0 = Clock::now();
        body();
        const double ms = msSince(t0);
        if (best < 0 || ms < best)
            best = ms;
    }
    r.wallMs = best;
    r.nsPerRef = refs ? best * 1e6 / static_cast<double>(refs) : 0.0;
    r.refsPerSec = best > 0
        ? static_cast<double>(refs) / (best * 1e-3)
        : 0.0;
    return r;
}

void
benchOneWorkload(const std::string &workload, const BenchOptions &opt,
                 std::vector<BenchResult> &out)
{
    const workloads::SuiteEntry *entry = workloads::findWorkload(workload);
    if (!entry)
        throw std::invalid_argument("stems bench: unknown workload " +
                                    workload);

    workloads::WorkloadParams p;
    p.ncpu = opt.ncpu;
    p.refsPerCpu = opt.refsPerCpu;
    p.seed = opt.seed;

    auto w = entry->make();
    const std::vector<trace::Trace> streams = w->generateStreams(p);
    const trace::Trace merged =
        trace::canonicalInterleaver(p.seed).merge(streams);
    const uint64_t refs = merged.size();

    // the raw coherent-hierarchy access path, no prefetcher
    out.push_back(measure(workload, "memsys_access", refs, opt.repeats,
                          [&] {
        mem::MemSysConfig cfg;
        cfg.ncpu = p.ncpu;
        mem::MemorySystem sys(cfg);
        for (const auto &a : merged)
            sys.access(a);
    }));

    // the SMS predictor alone: AGT training + PHT predict + streaming
    out.push_back(measure(workload, "sms_train_predict", refs,
                          opt.repeats, [&] {
        core::SmsConfig cfg;
        uint64_t sink = 0;
        core::SmsUnit unit(0, cfg,
                           [&sink](uint32_t, uint64_t a, bool) {
                               sink += a;
                           });
        for (const auto &a : merged)
            unit.onAccess(a.pc, a.addr);
        if (sink == 0x5eed)  // defeat dead-code elimination
            throw std::logic_error("unreachable");
    }));

    // the full memory hierarchy with SMS deployed
    out.push_back(measure(workload, "memsys_sms_access", refs,
                          opt.repeats, [&] {
        mem::MemSysConfig cfg;
        cfg.ncpu = p.ncpu;
        mem::MemorySystem sys(cfg);
        core::SmsController sms(sys, core::SmsConfig{});
        for (const auto &a : merged)
            sys.access(a);
    }));

    // the full-system timing model: baseline, then registry engines
    // through the generic attach seam (the production path for every
    // uIPC number)
    auto timedRun = [&streams, &p](const char *kind) {
        sim::TimingConfig cfg;
        cfg.sys.ncpu = p.ncpu;
        std::unique_ptr<PrefetcherDeployment> dep;
        sim::runTiming(streams, cfg, p.seed, registryAttach(kind, dep));
    };
    out.push_back(measure(workload, "run_timing", refs, opt.repeats,
                          [&] { timedRun("none"); }));
    out.push_back(measure(workload, "run_timing_sms", refs, opt.repeats,
                          [&] { timedRun("sms"); }));
    out.push_back(measure(workload, "run_timing_ghb", refs, opt.repeats,
                          [&] { timedRun("ghb"); }));

    // the paired panel for run_timing: the same baseline timing pass
    // consuming a mapped spill zero-copy (the streaming replay path)
    // instead of in-memory vectors — the before/after for the
    // zero-materialization pipeline
    const std::string spill =
        (std::filesystem::temp_directory_path() /
         ("stems_bench_view_" + std::to_string(::getpid()) + ".stmt"))
            .string();
    if (trace::writeTraceStreams(streams, spill)) {
        if (auto mapped = trace::MappedTrace::open(spill)) {
            const trace::StreamSet set = trace::StreamSet::mapped(mapped);
            out.push_back(measure(workload, "run_timing_view", refs,
                                  opt.repeats, [&] {
                sim::TimingConfig cfg;
                cfg.sys.ncpu = p.ncpu;
                std::unique_ptr<PrefetcherDeployment> dep;
                sim::runTiming(set, cfg, p.seed,
                               registryAttach("none", dep));
            }));
        }
        std::filesystem::remove(spill);
    }
}

} // anonymous namespace

std::vector<BenchResult>
runEngineBench(const BenchOptions &opt)
{
    std::vector<BenchResult> out;
    for (const auto &w : splitList(opt.workload))
        benchOneWorkload(w, opt, out);
    return out;
}

ObsOverhead
runObsOverheadBench(const BenchOptions &opt)
{
    // a real multi-engine cell matrix through the production Runner —
    // trace generation, memo passes, study and the thread pool all
    // inside the measured region, exactly what a user run exercises
    ExperimentSpec spec = parseSpec(
        {"workloads=OLTP-DB2,sparse", "prefetchers=sms,ghb,none",
         "ncpu=" + std::to_string(opt.ncpu),
         "refs=" + std::to_string(opt.refsPerCpu),
         "seed=" + std::to_string(opt.seed), "wall=0", "threads=0"});

    ObsOverhead o;
    o.cells = static_cast<uint32_t>(expandSpec(spec).size());

    auto once = [&spec] { Runner(spec).run(); };
    once();  // warm the trace cache so both arms pay identical memo costs

    auto best = [&](const std::function<void()> &body) {
        double b = -1.0;
        for (uint32_t i = 0; i < opt.repeats; ++i) {
            const auto t0 = Clock::now();
            body();
            const double ms = msSince(t0);
            if (b < 0 || ms < b)
                b = ms;
        }
        return b;
    };

    obs::Recorder::get().disable();
    o.plainMs = best(once);

    obs::Recorder::get().enable();
    o.observedMs = best([&] {
        obs::StatsSampler sampler;
        sampler.start("/dev/null", 10);
        once();
        sampler.stop();
        obs::Recorder::get().drain();
    });
    obs::Recorder::get().disable();
    obs::Recorder::get().drain();

    o.overheadPct = o.plainMs > 0
        ? (o.observedMs - o.plainMs) / o.plainMs * 100.0
        : 0.0;
    return o;
}

std::string
benchToJson(const BenchOptions &opt,
            const std::vector<BenchResult> &results,
            const ObsOverhead *obs)
{
    JsonWriter j;
    j.beginObject();
    j.key("engine").value("stems");
    j.key("bench_version").value(uint64_t{1});
    j.key("config").beginObject();
    j.key("workload").value(opt.workload);
    j.key("ncpu").value(uint64_t{opt.ncpu});
    j.key("refs_per_cpu").value(opt.refsPerCpu);
    j.key("seed").value(opt.seed);
    j.key("repeats").value(uint64_t{opt.repeats});
    j.key("quick").value(opt.quick);
    j.endObject();
    j.key("results").beginArray();
    for (const auto &r : results) {
        j.beginObject();
        j.key("workload").value(r.workload);
        j.key("name").value(r.name);
        j.key("refs").value(r.refs);
        j.key("wall_ms").value(r.wallMs);
        j.key("ns_per_ref").value(r.nsPerRef);
        j.key("refs_per_sec").value(r.refsPerSec);
        j.endObject();
    }
    j.endArray();
    if (obs) {
        j.key("obs_overhead").beginObject();
        j.key("cells").value(uint64_t{obs->cells});
        j.key("plain_ms").value(obs->plainMs);
        j.key("observed_ms").value(obs->observedMs);
        j.key("overhead_pct").value(obs->overheadPct);
        j.endObject();
    }
    j.endObject();
    return j.str() + "\n";
}

} // namespace stems::driver
