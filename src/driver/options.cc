#include "driver/options.hh"

#include <fstream>
#include <stdexcept>

namespace stems::driver {

namespace {

const std::string *
find(const Options &o, const std::string &key)
{
    auto it = o.find(key);
    return it == o.end() ? nullptr : &it->second;
}

[[noreturn]] void
badValue(const std::string &key, const std::string &value,
         const char *want)
{
    throw std::invalid_argument("option " + key + "=" + value +
                                ": expected " + want);
}

} // anonymous namespace

uint64_t
optU64(const Options &o, const std::string &key, uint64_t def)
{
    const std::string *v = find(o, key);
    if (!v)
        return def;
    try {
        size_t pos = 0;
        uint64_t out = std::stoull(*v, &pos, 0);
        if (pos != v->size())
            badValue(key, *v, "an unsigned integer");
        return out;
    } catch (const std::invalid_argument &) {
        badValue(key, *v, "an unsigned integer");
    } catch (const std::out_of_range &) {
        badValue(key, *v, "an unsigned integer in range");
    }
}

double
optDouble(const Options &o, const std::string &key, double def)
{
    const std::string *v = find(o, key);
    if (!v)
        return def;
    try {
        size_t pos = 0;
        double out = std::stod(*v, &pos);
        if (pos != v->size())
            badValue(key, *v, "a number");
        return out;
    } catch (const std::invalid_argument &) {
        badValue(key, *v, "a number");
    } catch (const std::out_of_range &) {
        badValue(key, *v, "a number in range");
    }
}

bool
optBool(const Options &o, const std::string &key, bool def)
{
    const std::string *v = find(o, key);
    if (!v)
        return def;
    if (*v == "1" || *v == "true" || *v == "on" || *v == "yes")
        return true;
    if (*v == "0" || *v == "false" || *v == "off" || *v == "no")
        return false;
    badValue(key, *v, "a boolean (1/0, true/false, on/off)");
}

std::string
optStr(const Options &o, const std::string &key, const std::string &def)
{
    const std::string *v = find(o, key);
    return v ? *v : def;
}

std::vector<std::string>
splitList(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        size_t end = s.find(sep, start);
        if (end == std::string::npos)
            end = s.size();
        if (end > start)
            out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::pair<std::string, std::string>
parseKeyValue(const std::string &tok)
{
    size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
        throw std::invalid_argument("expected key=value, got \"" + tok +
                                    "\"");
    return {tok.substr(0, eq), tok.substr(eq + 1)};
}

std::vector<std::string>
readConfigFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::invalid_argument("cannot read config file: " + path);
    std::vector<std::string> tokens;
    std::string line;
    while (std::getline(in, line)) {
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        size_t last = line.find_last_not_of(" \t\r");
        tokens.push_back(line.substr(first, last - first + 1));
    }
    return tokens;
}

} // namespace stems::driver
