/**
 * @file
 * CellExecutor: the one cell-execution entry point shared by the
 * in-process thread-pool runner and the dispatch worker subprocesses.
 * Owns the trace cache (with optional on-disk record/replay) and the
 * memoized baseline and timing passes that coverage and speedup are
 * reported against, so any execution context — thread, worker process,
 * future remote transport — produces identical CellResults for
 * identical RunCells.
 *
 * Cell measurements land in a schema-registered MetricSet (see
 * driver/metrics.hh); the executor is a metric *producer* — it never
 * serializes, so new families need only a registration plus an emit
 * here.
 */

#ifndef STEMS_DRIVER_EXECUTOR_HH
#define STEMS_DRIVER_EXECUTOR_HH

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "driver/metrics.hh"
#include "driver/spec.hh"
#include "obs/obs.hh"
#include "sim/timing.hh"
#include "study/density.hh"
#include "study/suite.hh"
#include "trace/access.hh"

namespace stems::driver {

/** One finished cell: its resolved spec point plus measurements. */
struct CellResult
{
    RunCell cell;
    MetricSet metrics;
    std::string error;  //!< non-empty when the cell failed

    /**
     * Observability sidecar (phase timings; plus worker counters and
     * spans when the result crossed the dispatch wire). Report sinks
     * never read it — reports are byte-identical with telemetry on or
     * off.
     */
    obs::CellTelemetry telemetry;
};

/** Executes fully-resolved run cells; thread-safe. */
class CellExecutor
{
  public:
    /** Spec-global settings a cell's execution depends on. */
    struct Config
    {
        std::string traceDir;  //!< record/replay directory ("" = off)
        /** Track oracle generations at these region sizes. */
        std::vector<uint32_t> oracleRegionSizes;
    };

    explicit CellExecutor(Config config);

    /**
     * Execute one cell; exceptions are captured into the result's
     * error field (the cell-error path reports print).
     */
    CellResult execute(const RunCell &cell);

    /**
     * Build (generate or map-replay) @p cell's trace ahead of its
     * execution — the background streamer's entry. Never counts a
     * trace-cache lookup and never throws; a failing prefetch simply
     * leaves the work to the executing thread.
     */
    void prefetch(const RunCell &cell);

    /** Whether @p cell's trace is already built (non-blocking). */
    bool prepared(const RunCell &cell);

    const Config &config() const { return cfg; }

  private:
    struct BaselineSlot
    {
        std::once_flag once;
        uint64_t instructions = 0;
        uint64_t l1ReadMisses = 0;
        uint64_t l2ReadMisses = 0;
        uint64_t falseSharing = 0;
        std::vector<uint64_t> oracleL1Gens;
        std::vector<uint64_t> oracleL2Gens;
        std::array<uint64_t, study::kDensityBuckets> l1Density{};
        std::array<uint64_t, study::kDensityBuckets> l2Density{};
    };

    struct TimingSlot
    {
        std::once_flag once;
        sim::TimingResult result;
    };

    void runCell(const RunCell &cell, CellResult &out);
    const BaselineSlot &baseline(const RunCell &cell);

    /**
     * Memoized timing pass for @p engine on @p cell's workload and
     * hierarchy. Keyed on the full engine configuration (kind plus
     * every option), so cells that differ only in engine options never
     * share a result; the baseline is simply the "none" engine's
     * entry.
     */
    const sim::TimingResult &timingRun(const RunCell &cell,
                                       const EngineConfig &engine);

    /** The cell's stream views through the TraceCache (zero-copy). */
    const trace::StreamSet &viewSet(const RunCell &cell);

    Config cfg;
    study::TraceCache traces;
    std::mutex memoMu;  //!< guards the memo map shapes
    std::map<std::string, BaselineSlot> baselines;
    std::map<std::string, TimingSlot> timingRuns;
};

/** The executor settings an experiment spec implies. */
CellExecutor::Config executorConfig(const ExperimentSpec &spec);

} // namespace stems::driver

#endif // STEMS_DRIVER_EXECUTOR_HH
