/**
 * @file
 * CellExecutor: the one cell-execution entry point shared by the
 * in-process thread-pool runner and the dispatch worker subprocesses.
 * Owns the trace cache (with optional on-disk record/replay) and the
 * memoized baseline and timing passes that coverage and speedup are
 * reported against, so any execution context — thread, worker process,
 * future remote transport — produces identical CellResults for
 * identical RunCells.
 */

#ifndef STEMS_DRIVER_EXECUTOR_HH
#define STEMS_DRIVER_EXECUTOR_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "driver/spec.hh"
#include "sim/timing.hh"
#include "study/suite.hh"
#include "trace/access.hh"

namespace stems::driver {

/** Everything one cell measures. */
struct CellMetrics
{
    uint64_t instructions = 0;
    uint64_t l1ReadMisses = 0;
    uint64_t l2ReadMisses = 0;   //!< off-chip read misses
    uint64_t l1Covered = 0;      //!< reads hitting prefetched L1 blocks
    uint64_t l2Covered = 0;
    uint64_t l1Overpred = 0;     //!< prefetched blocks dropped unused
    uint64_t l2Overpred = 0;
    uint64_t baselineL1ReadMisses = 0;  //!< same workload, no prefetch
    uint64_t baselineL2ReadMisses = 0;
    uint64_t falseSharing = 0;   //!< false-sharing L2 misses (system mode)

    /** Oracle spatial generations, parallel to spec.oracleRegionSizes. */
    std::vector<uint64_t> oracleL1Gens;
    std::vector<uint64_t> oracleL2Gens;

    Counters pfCounters;         //!< registry-harvested (e.g. SmsStats)

    /** Peak AGT accumulation/filter demand (L1 mode, SMS engines). */
    uint64_t peakAccumOccupancy = 0;
    uint64_t peakFilterOccupancy = 0;

    // timing model (when spec.timing); any registry engine produces
    // these through the attach seam — see sim/timing.hh
    double uipc = 0;
    double baselineUipc = 0;
    double speedup = 0;
    sim::TimingResult timing;          //!< this cell's engine pass
    sim::TimingResult baselineTiming;  //!< the no-prefetch pass

    double wallMs = 0;           //!< cell execution wall time

    double
    l1Coverage() const
    {
        return baselineL1ReadMisses
                   ? double(l1Covered) / double(baselineL1ReadMisses)
                   : 0.0;
    }

    double
    l2Coverage() const
    {
        return baselineL2ReadMisses
                   ? double(l2Covered) / double(baselineL2ReadMisses)
                   : 0.0;
    }

    double
    l1Uncovered() const
    {
        return baselineL1ReadMisses
                   ? double(l1ReadMisses) / double(baselineL1ReadMisses)
                   : 0.0;
    }

    double
    l2Uncovered() const
    {
        return baselineL2ReadMisses
                   ? double(l2ReadMisses) / double(baselineL2ReadMisses)
                   : 0.0;
    }

    double
    l1OverpredRate() const
    {
        return baselineL1ReadMisses
                   ? double(l1Overpred) / double(baselineL1ReadMisses)
                   : 0.0;
    }

    double
    l2OverpredRate() const
    {
        return baselineL2ReadMisses
                   ? double(l2Overpred) / double(baselineL2ReadMisses)
                   : 0.0;
    }

    /** Useful prefetches over all prefetches that left the cache. */
    double
    l1Accuracy() const
    {
        const uint64_t denom = l1Covered + l1Overpred;
        return denom ? double(l1Covered) / double(denom) : 0.0;
    }

    double
    l2Accuracy() const
    {
        const uint64_t denom = l2Covered + l2Overpred;
        return denom ? double(l2Covered) / double(denom) : 0.0;
    }
};

/** One finished cell: its resolved spec point plus measurements. */
struct CellResult
{
    RunCell cell;
    CellMetrics metrics;
    std::string error;  //!< non-empty when the cell failed
};

/** Executes fully-resolved run cells; thread-safe. */
class CellExecutor
{
  public:
    /** Spec-global settings a cell's execution depends on. */
    struct Config
    {
        std::string traceDir;  //!< record/replay directory ("" = off)
        /** Track oracle generations at these region sizes. */
        std::vector<uint32_t> oracleRegionSizes;
    };

    explicit CellExecutor(Config config);

    /**
     * Execute one cell; exceptions are captured into the result's
     * error field (the cell-error path reports print).
     */
    CellResult execute(const RunCell &cell);

    const Config &config() const { return cfg; }

  private:
    struct BaselineSlot
    {
        std::once_flag once;
        uint64_t instructions = 0;
        uint64_t l1ReadMisses = 0;
        uint64_t l2ReadMisses = 0;
        uint64_t falseSharing = 0;
        std::vector<uint64_t> oracleL1Gens;
        std::vector<uint64_t> oracleL2Gens;
    };

    struct TimingSlot
    {
        std::once_flag once;
        sim::TimingResult result;
    };

    void runCell(const RunCell &cell, CellResult &out);
    const BaselineSlot &baseline(const RunCell &cell);

    /**
     * Memoized timing pass for @p engine on @p cell's workload and
     * hierarchy. Keyed on the full engine configuration (kind plus
     * every option), so cells that differ only in engine options never
     * share a result; the baseline is simply the "none" engine's
     * entry.
     */
    const sim::TimingResult &timingRun(const RunCell &cell,
                                       const EngineConfig &engine);

    /** Per-CPU streams shared through the TraceCache (zero-copy). */
    const std::vector<trace::Trace> &streams(const RunCell &cell);

    Config cfg;
    study::TraceCache traces;
    std::mutex memoMu;  //!< guards the memo map shapes
    std::map<std::string, BaselineSlot> baselines;
    std::map<std::string, TimingSlot> timingRuns;
};

/** The executor settings an experiment spec implies. */
CellExecutor::Config executorConfig(const ExperimentSpec &spec);

} // namespace stems::driver

#endif // STEMS_DRIVER_EXECUTOR_HH
