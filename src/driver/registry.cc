#include "driver/registry.hh"

#include <stdexcept>

namespace stems::driver {

namespace {

// ---------------------------------------------------------------------
// deployments
// ---------------------------------------------------------------------

/** The "none" deployment: a baseline system with no prefetcher. */
class NoneDeployment : public PrefetcherDeployment
{
  public:
    NoneDeployment() : PrefetcherDeployment("none") {}
};

/** SMS via core::SmsController. */
class SmsDeployment : public PrefetcherDeployment
{
  public:
    SmsDeployment(mem::MemorySystem &sys, const Options &opts)
        : PrefetcherDeployment("sms"),
          ctrl(sys, smsConfigFromOptions(opts))
    {}

    void drain() override { ctrl.drainAll(); }

    Counters
    counters() const override
    {
        core::SmsStats s = ctrl.totalStats();
        return {{"triggers", s.triggers},
                {"pht_hits", s.phtHits},
                {"stream_requests", s.streamRequests},
                {"trained", s.trained}};
    }

  private:
    core::SmsController ctrl;
};

/** Any PrefetchAlgorithm via prefetch::PrefetchController. */
class AlgoDeployment : public PrefetcherDeployment
{
  public:
    AlgoDeployment(std::string name, mem::MemorySystem &sys,
                   const prefetch::PrefetchController::Factory &make)
        : PrefetcherDeployment(std::move(name)), ctrl(sys, make)
    {}

    Counters
    counters() const override
    {
        return {{"issued", ctrl.stats().issued}};
    }

  protected:
    prefetch::PrefetchController ctrl;
};

/** GHB PC/DC, with the algorithm's own counters exposed. */
class GhbDeployment : public AlgoDeployment
{
  public:
    GhbDeployment(mem::MemorySystem &sys, const Options &opts)
        : AlgoDeployment("ghb", sys,
                         [cfg = ghbConfigFromOptions(opts)] {
                             return std::make_unique<prefetch::GhbPcDc>(
                                 cfg);
                         }),
          ncpu(sys.numCpus())
    {
        for (uint32_t c = 0; c < ncpu; ++c)
            algos.push_back(
                static_cast<prefetch::GhbPcDc *>(&ctrl.algo(c)));
    }

    Counters
    counters() const override
    {
        prefetch::GhbStats sum;
        for (const auto *ghb : algos) {
            sum.triggers += ghb->stats().triggers;
            sum.walks += ghb->stats().walks;
            sum.correlations += ghb->stats().correlations;
            sum.issued += ghb->stats().issued;
        }
        return {{"triggers", sum.triggers},
                {"walks", sum.walks},
                {"correlations", sum.correlations},
                {"issued", sum.issued}};
    }

  private:
    uint32_t ncpu;
    std::vector<prefetch::GhbPcDc *> algos;
};

} // anonymous namespace

// ---------------------------------------------------------------------
// option translation
// ---------------------------------------------------------------------

core::SmsConfig
smsConfigFromOptions(const Options &o)
{
    core::SmsConfig cfg;
    cfg.geometry = core::RegionGeometry(
        static_cast<uint32_t>(optU64(o, "region", 2048)),
        static_cast<uint32_t>(optU64(o, "block", 64)));
    cfg.agt.filterEntries =
        static_cast<uint32_t>(optU64(o, "agt-filter", 32));
    cfg.agt.accumEntries =
        static_cast<uint32_t>(optU64(o, "agt-accum", 64));
    cfg.pht.entries =
        static_cast<uint32_t>(optU64(o, "pht-entries", 16384));
    cfg.pht.assoc = static_cast<uint32_t>(optU64(o, "pht-assoc", 16));

    const std::string update = optStr(o, "pht-update", "replace");
    if (update == "replace") {
        cfg.pht.update = core::PhtUpdateMode::Replace;
    } else if (update == "union") {
        cfg.pht.update = core::PhtUpdateMode::Union;
    } else {
        throw std::invalid_argument("pht-update=" + update +
                                    ": expected replace|union");
    }

    const std::string index = optStr(o, "index", "pc+off");
    if (index == "pc+off") {
        cfg.index = core::IndexKind::PcOffset;
    } else if (index == "pc") {
        cfg.index = core::IndexKind::Pc;
    } else if (index == "addr") {
        cfg.index = core::IndexKind::Address;
    } else if (index == "pc+addr") {
        cfg.index = core::IndexKind::PcAddress;
    } else {
        throw std::invalid_argument(
            "index=" + index + ": expected pc+off|pc|addr|pc+addr");
    }

    cfg.predictionRegisters =
        static_cast<uint32_t>(optU64(o, "pred-regs", 16));
    cfg.intoL1 = optBool(o, "into-l1", true);
    return cfg;
}

prefetch::GhbConfig
ghbConfigFromOptions(const Options &o)
{
    prefetch::GhbConfig cfg;
    cfg.ghbEntries =
        static_cast<uint32_t>(optU64(o, "ghb-entries", cfg.ghbEntries));
    cfg.itEntries =
        static_cast<uint32_t>(optU64(o, "it-entries", cfg.itEntries));
    cfg.degree = static_cast<uint32_t>(optU64(o, "degree", cfg.degree));
    cfg.maxWalk =
        static_cast<uint32_t>(optU64(o, "max-walk", cfg.maxWalk));
    cfg.blockSize =
        static_cast<uint32_t>(optU64(o, "block", cfg.blockSize));
    return cfg;
}

prefetch::StrideConfig
strideConfigFromOptions(const Options &o)
{
    prefetch::StrideConfig cfg;
    cfg.entries =
        static_cast<uint32_t>(optU64(o, "entries", cfg.entries));
    cfg.degree = static_cast<uint32_t>(optU64(o, "degree", cfg.degree));
    cfg.threshold =
        static_cast<uint32_t>(optU64(o, "threshold", cfg.threshold));
    cfg.blockSize =
        static_cast<uint32_t>(optU64(o, "block", cfg.blockSize));
    cfg.l1Destination = optBool(o, "into-l1", cfg.l1Destination);
    return cfg;
}

// ---------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------

PrefetcherRegistry &
PrefetcherRegistry::builtin()
{
    static PrefetcherRegistry reg = [] {
        PrefetcherRegistry r;
        r.add("none", "no prefetcher (baseline system)", {},
              [](mem::MemorySystem &, const Options &) {
                  return std::make_unique<NoneDeployment>();
              });
        r.add("sms",
              "Spatial Memory Streaming: region, block, pht-entries, "
              "pht-assoc, pht-update=replace|union, agt-filter, "
              "agt-accum, index=pc+off|pc|addr|pc+addr, pred-regs, "
              "into-l1, trainer=agt|ls|ds (mode=l1), ds-tag-mult",
              {"region", "block", "pht-entries", "pht-assoc",
               "pht-update", "agt-filter", "agt-accum", "index",
               "pred-regs", "into-l1", "trainer", "ds-tag-mult"},
              [](mem::MemorySystem &sys, const Options &o) {
                  return std::make_unique<SmsDeployment>(sys, o);
              });
        r.add("ghb",
              "GHB PC/DC: ghb-entries, it-entries, degree, max-walk, "
              "block",
              {"ghb-entries", "it-entries", "degree", "max-walk",
               "block"},
              [](mem::MemorySystem &sys, const Options &o) {
                  return std::make_unique<GhbDeployment>(sys, o);
              });
        r.add("stride",
              "per-PC stride RPT: entries, degree, threshold, block, "
              "into-l1",
              {"entries", "degree", "threshold", "block", "into-l1"},
              [](mem::MemorySystem &sys, const Options &o) {
                  auto cfg = strideConfigFromOptions(o);
                  return std::make_unique<AlgoDeployment>(
                      "stride", sys, [cfg] {
                          return std::make_unique<
                              prefetch::StridePrefetcher>(cfg);
                      });
              });
        r.add("next-line",
              "sequential next-line on L1 miss: degree, block",
              {"degree", "block"},
              [](mem::MemorySystem &sys, const Options &o) {
                  const auto block =
                      static_cast<uint32_t>(optU64(o, "block", 64));
                  const auto degree =
                      static_cast<uint32_t>(optU64(o, "degree", 1));
                  return std::make_unique<AlgoDeployment>(
                      "next-line", sys, [block, degree] {
                          return std::make_unique<
                              prefetch::NextLinePrefetcher>(block,
                                                            degree);
                      });
              });
        return r;
    }();
    return reg;
}

prefetch::PfAttach
registryAttach(std::string kind,
               std::unique_ptr<PrefetcherDeployment> &dep, Options opts)
{
    return [kind = std::move(kind), &dep, opts = std::move(opts)](
               mem::MemorySystem &sys) -> study::AttachedPrefetcher * {
        dep = PrefetcherRegistry::builtin().create(kind, sys, opts);
        return dep.get();
    };
}

void
PrefetcherRegistry::add(const std::string &name, const std::string &help,
                        std::vector<std::string> optionKeys, Factory f)
{
    for (auto &e : entries) {
        if (e.name == name) {
            e.help = help;
            e.optionKeys = std::move(optionKeys);
            e.factory = std::move(f);
            return;
        }
    }
    entries.push_back({name, help, std::move(optionKeys), std::move(f)});
}

const std::vector<std::string> &
PrefetcherRegistry::optionKeys(const std::string &name) const
{
    static const std::vector<std::string> none;
    const Entry *e = findEntry(name);
    return e ? e->optionKeys : none;
}

bool
PrefetcherRegistry::knowsOption(const std::string &name,
                                const std::string &key) const
{
    for (const auto &k : optionKeys(name))
        if (k == key)
            return true;
    return false;
}

const PrefetcherRegistry::Entry *
PrefetcherRegistry::findEntry(const std::string &name) const
{
    for (const auto &e : entries)
        if (e.name == name)
            return &e;
    return nullptr;
}

bool
PrefetcherRegistry::has(const std::string &name) const
{
    return findEntry(name) != nullptr;
}

std::unique_ptr<PrefetcherDeployment>
PrefetcherRegistry::create(const std::string &name,
                           mem::MemorySystem &sys,
                           const Options &opts) const
{
    const Entry *e = findEntry(name);
    if (!e) {
        std::string known;
        for (const auto &k : entries)
            known += (known.empty() ? "" : ", ") + k.name;
        throw std::invalid_argument("unknown prefetcher \"" + name +
                                    "\" (known: " + known + ")");
    }
    return e->factory(sys, opts);
}

std::vector<std::string>
PrefetcherRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &e : entries)
        out.push_back(e.name);
    return out;
}

std::string
PrefetcherRegistry::help(const std::string &name) const
{
    const Entry *e = findEntry(name);
    return e ? e->help : std::string();
}

} // namespace stems::driver
