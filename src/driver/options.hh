/**
 * @file
 * key=value option bags shared by the experiment engine: the currency
 * of the CLI, config files, prefetcher factories and sweep axes.
 */

#ifndef STEMS_DRIVER_OPTIONS_HH
#define STEMS_DRIVER_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace stems::driver {

/** Ordered option bag; string values are parsed on use. */
using Options = std::map<std::string, std::string>;

/** Unsigned option with default; throws std::invalid_argument. */
uint64_t optU64(const Options &o, const std::string &key, uint64_t def);

/** Floating-point option with default. */
double optDouble(const Options &o, const std::string &key, double def);

/** Boolean option: 1/0, true/false, on/off, yes/no. */
bool optBool(const Options &o, const std::string &key, bool def);

/** String option with default. */
std::string optStr(const Options &o, const std::string &key,
                   const std::string &def);

/** Split "a,b,c" on @p sep, dropping empty fields. */
std::vector<std::string> splitList(const std::string &s, char sep = ',');

/**
 * Split one "key=value" token; throws std::invalid_argument when no
 * '=' is present or the key is empty.
 */
std::pair<std::string, std::string> parseKeyValue(const std::string &tok);

/**
 * Read a config file of key=value lines ('#' comments and blank lines
 * ignored) into tokens; throws std::invalid_argument on I/O failure.
 */
std::vector<std::string> readConfigFile(const std::string &path);

} // namespace stems::driver

#endif // STEMS_DRIVER_OPTIONS_HH
