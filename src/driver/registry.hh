/**
 * @file
 * The prefetcher registry: one polymorphic, option-driven construction
 * path for every prefetcher the repository knows — SMS, the GHB PC/DC
 * and stride/next-line baselines, and "none" — ending the per-bench
 * wiring duplication. An EngineConfig names a registered prefetcher
 * plus its key=value parameters; the registry deploys it onto a
 * MemorySystem and hands back a uniform handle that can be drained and
 * harvested for counters.
 */

#ifndef STEMS_DRIVER_REGISTRY_HH
#define STEMS_DRIVER_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/sms.hh"
#include "driver/options.hh"
#include "mem/memsys.hh"
#include "prefetch/ghb.hh"
#include "prefetch/stride.hh"
#include "study/memstudy.hh"

namespace stems::driver {

/** Names one registered prefetcher plus its parameters. */
struct EngineConfig
{
    std::string kind = "none";  //!< registry name (sms, ghb, ...)
    std::string label;          //!< display label; defaults to kind
    Options options;            //!< prefetcher parameters

    const std::string &displayLabel() const
    {
        return label.empty() ? kind : label;
    }
};

/** Named event counters harvested into reports. */
using Counters = prefetch::Counters;

/**
 * A prefetcher deployed onto one MemorySystem. Constructed by the
 * registry; must outlive the run but not the MemorySystem teardown
 * (the destructor touches only the deployment's own state). The
 * drain/counters contract comes from the attach seam
 * (prefetch::AttachedPrefetcher), so a deployment plugs into any pass
 * that takes a PfAttach — the trace studies and the timing model
 * alike.
 */
class PrefetcherDeployment : public study::AttachedPrefetcher
{
  public:
    explicit PrefetcherDeployment(std::string name) : name_(std::move(name))
    {}

    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/** Maps prefetcher names to deployment factories. */
class PrefetcherRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<PrefetcherDeployment>(
        mem::MemorySystem &sys, const Options &opts)>;

    /** The process-wide registry preloaded with the built-ins. */
    static PrefetcherRegistry &builtin();

    /** Register @p name; replaces an existing registration. */
    void add(const std::string &name, const std::string &help,
             std::vector<std::string> optionKeys, Factory f);

    bool has(const std::string &name) const;

    /** Option keys @p name's factory understands (empty if unknown). */
    const std::vector<std::string> &optionKeys(const std::string &name)
        const;

    /** Whether @p name's factory understands option @p key. */
    bool knowsOption(const std::string &name,
                     const std::string &key) const;

    /**
     * Deploy @p name onto @p sys with @p opts; throws
     * std::invalid_argument for unknown names or bad option values.
     */
    std::unique_ptr<PrefetcherDeployment>
    create(const std::string &name, mem::MemorySystem &sys,
           const Options &opts) const;

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /** One-line option help for @p name (empty if unknown). */
    std::string help(const std::string &name) const;

  private:
    struct Entry
    {
        std::string name;
        std::string help;
        std::vector<std::string> optionKeys;
        Factory factory;
    };

    const Entry *findEntry(const std::string &name) const;

    std::vector<Entry> entries;
};

/**
 * The canonical PfAttach for registry engines: deploys @p kind with
 * @p opts onto the run's MemorySystem, parking ownership in @p dep
 * (which must outlive the run). Used by the executor's timing pass
 * and shared with the benches and tests so the attach contract lives
 * in exactly one place.
 */
prefetch::PfAttach registryAttach(
    std::string kind, std::unique_ptr<PrefetcherDeployment> &dep,
    Options opts = {});

// option translation, shared with the timing path and tests

/** Build an SmsConfig from options (pht-entries, agt-accum, ...). */
core::SmsConfig smsConfigFromOptions(const Options &o);

/** Build a GhbConfig from options (ghb-entries, it-entries, ...). */
prefetch::GhbConfig ghbConfigFromOptions(const Options &o);

/** Build a StrideConfig from options (entries, degree, threshold). */
prefetch::StrideConfig strideConfigFromOptions(const Options &o);

} // namespace stems::driver

#endif // STEMS_DRIVER_REGISTRY_HH
