#include "driver/analyze.hh"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "dispatch/json.hh"
#include "driver/report.hh"
#include "study/table.hh"

namespace stems::driver {

namespace {

using dispatch::JsonValue;
using dispatch::parseJson;
using study::TablePrinter;

/** One trace span/instant, decoded from the Chrome-trace JSON. */
struct Ev
{
    std::string name;
    char ph = 'X';
    double tsUs = 0;
    double durUs = 0;
    int64_t pid = 0;
    uint32_t tid = 0;
    std::vector<std::pair<std::string, std::string>> args;

    double endUs() const { return tsUs + durUs; }

    const std::string *
    arg(const std::string &key) const
    {
        for (const auto &[k, v] : args)
            if (k == key)
                return &v;
        return nullptr;
    }
};

struct Trace
{
    std::vector<Ev> spans;     //!< 'X' events
    std::vector<Ev> instants;  //!< 'i' events
    /** (pid, tid) → thread_name metadata. */
    std::map<std::pair<int64_t, uint32_t>, std::string> threadNames;
    double extentUs = 0;       //!< max span end (the traced wall)
};

Trace
parseTrace(const std::string &text)
{
    Trace t;
    const JsonValue doc = parseJson(text);
    const JsonValue *events = doc.find("traceEvents");
    if (!events || events->kind != JsonValue::Kind::Array)
        throw std::invalid_argument(
            "analyze: trace file has no traceEvents array (not a "
            "--trace-out artifact?)");
    for (const JsonValue &item : events->items) {
        Ev e;
        e.name = item.at("name").asString();
        const std::string &ph = item.at("ph").asString();
        e.ph = ph.empty() ? '?' : ph[0];
        if (const JsonValue *ts = item.find("ts"))
            e.tsUs = ts->asDouble();
        if (const JsonValue *dur = item.find("dur"))
            e.durUs = dur->asDouble();
        if (const JsonValue *pid = item.find("pid"))
            e.pid = static_cast<int64_t>(pid->asDouble());
        if (const JsonValue *tid = item.find("tid"))
            e.tid = static_cast<uint32_t>(tid->asDouble());
        if (const JsonValue *args = item.find("args"))
            for (const auto &[k, v] : args->members)
                if (v.kind == JsonValue::Kind::String)
                    e.args.emplace_back(k, v.text);
        if (e.ph == 'X') {
            t.extentUs = std::max(t.extentUs, e.endUs());
            t.spans.push_back(std::move(e));
        } else if (e.ph == 'i') {
            t.instants.push_back(std::move(e));
        } else if (e.ph == 'M' && e.name == "thread_name") {
            if (const std::string *n = e.arg("name"))
                t.threadNames[{e.pid, e.tid}] = *n;
        }
    }
    return t;
}

// -------------------------------------------------------------------
// sections
// -------------------------------------------------------------------

struct PhaseRow
{
    std::string name;
    uint64_t count = 0;
    double totalMs = 0, maxMs = 0;
};

std::vector<PhaseRow>
phaseBreakdown(const Trace &t)
{
    std::map<std::string, PhaseRow> acc;
    for (const Ev &e : t.spans) {
        PhaseRow &r = acc[e.name];
        r.name = e.name;
        ++r.count;
        r.totalMs += e.durUs / 1000.0;
        r.maxMs = std::max(r.maxMs, e.durUs / 1000.0);
    }
    std::vector<PhaseRow> rows;
    for (auto &[name, r] : acc)
        rows.push_back(std::move(r));
    std::stable_sort(rows.begin(), rows.end(),
                     [](const PhaseRow &a, const PhaseRow &b) {
                         return a.totalMs > b.totalMs;
                     });
    return rows;
}

/**
 * Walk the chain of spans that bounded the run's wall time, back to
 * front: start from the latest-finishing span, descend into its
 * latest-finishing contained child — same pid/tid, or across the
 * process boundary when the cell= annotation matches (a
 * dispatch_cell's child is its worker's worker_cell) — and when a
 * span has no children jump to the latest span ending at or before
 * its start. Ties break deterministically (longer span, then name).
 */
std::vector<const Ev *>
criticalPath(const Trace &t, size_t cap)
{
    std::vector<const Ev *> chain;
    if (t.spans.empty())
        return chain;

    auto better = [](const Ev *a, const Ev *b) {
        // is a a better pick than b?
        if (a->endUs() != b->endUs())
            return a->endUs() > b->endUs();
        if (a->durUs != b->durUs)
            return a->durUs > b->durUs;
        return a->name < b->name;
    };

    const Ev *cur = nullptr;
    for (const Ev &e : t.spans)
        if (!cur || better(&e, cur))
            cur = &e;

    while (cur && chain.size() < cap) {
        chain.push_back(cur);
        const Ev *child = nullptr;
        const std::string *curCell = cur->arg("cell");
        for (const Ev &e : t.spans) {
            if (&e == cur)
                continue;
            const bool sameThread =
                e.pid == cur->pid && e.tid == cur->tid;
            const std::string *evCell = e.arg("cell");
            const bool sameCell =
                curCell && evCell && *curCell == *evCell;
            if (!sameThread && !sameCell)
                continue;
            if (e.tsUs < cur->tsUs || e.endUs() > cur->endUs() ||
                e.durUs >= cur->durUs)
                continue;
            if (!child || better(&e, child))
                child = &e;
        }
        if (child) {
            cur = child;
            continue;
        }
        const Ev *prev = nullptr;
        for (const Ev &e : t.spans) {
            if (&e == cur || e.endUs() > cur->tsUs)
                continue;
            if (!prev || better(&e, prev))
                prev = &e;
        }
        cur = prev;
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
}

struct HitRate
{
    std::string family;
    uint64_t hits = 0, misses = 0;

    double
    rate() const
    {
        const uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                static_cast<double>(total)
                     : 0.0;
    }
};

std::vector<HitRate>
hitRates(const JsonValue &counters)
{
    auto get = [&counters](const char *name) -> uint64_t {
        const JsonValue *v = counters.find(name);
        return v ? v->asU64() : 0;
    };
    std::vector<HitRate> rates;
    rates.push_back({"trace_cache", get("trace_cache_hits"),
                     get("trace_cache_misses")});
    rates.push_back({"baseline_memo", get("baseline_memo_hits"),
                     get("baseline_memo_misses")});
    rates.push_back({"timing_memo", get("timing_memo_hits"),
                     get("timing_memo_misses")});
    return rates;
}

/** Busy lanes for the utilization timeline and straggler table:
 *  dispatch_cell spans (one lane per worker pid) when the run was
 *  dispatched, else the runner threads' cell spans (lane per tid),
 *  else a daemon's serve_cell/steal spans (lane per fleet thread). */
struct Lane
{
    std::string label;
    std::vector<const Ev *> spans;
    double busyUs = 0;
};

std::vector<Lane>
busyLanes(const Trace &t)
{
    std::map<std::string, Lane> acc;
    bool dispatched = false, runner = false;
    for (const Ev &e : t.spans) {
        if (e.name == "dispatch_cell")
            dispatched = true;
        else if (e.name == "cell")
            runner = true;
    }
    for (const Ev &e : t.spans) {
        std::string key;
        if (dispatched) {
            if (e.name != "dispatch_cell")
                continue;
            const std::string *pid = e.arg("pid");
            key = "pid " + (pid ? *pid : std::to_string(e.pid));
        } else {
            if (runner ? e.name != "cell"
                       : e.name != "serve_cell" && e.name != "steal")
                continue;
            const auto it = t.threadNames.find({e.pid, e.tid});
            key = it != t.threadNames.end()
                ? it->second
                : "tid " + std::to_string(e.tid);
        }
        Lane &lane = acc[key];
        lane.label = key;
        lane.spans.push_back(&e);
        lane.busyUs += e.durUs;
    }
    std::vector<Lane> lanes;
    for (auto &[key, lane] : acc)
        lanes.push_back(std::move(lane));
    return lanes;
}

/** Per-request rollup of a `stems serve` trace: the request span
 *  carries queue wait and cell counts; exec time is the sum of the
 *  serve_cell/steal spans tagged with the same request id. */
struct ServeRow
{
    uint64_t request = 0;
    double queueMs = 0, wallMs = 0, execMs = 0;
    uint64_t cells = 0, stolen = 0, replayed = 0;
};

std::vector<ServeRow>
serveBreakdown(const Trace &t)
{
    std::map<uint64_t, ServeRow> acc;
    for (const Ev &e : t.spans) {
        if (e.name != "serve_request")
            continue;
        const std::string *id = e.arg("request");
        if (!id)
            continue;
        ServeRow &r = acc[std::stoull(*id)];
        r.request = std::stoull(*id);
        r.wallMs += e.durUs / 1000.0;
        if (const std::string *q = e.arg("queue_ms"))
            r.queueMs += std::stod(*q);
        auto count = [&e](const char *key) -> uint64_t {
            const std::string *v = e.arg(key);
            return v ? std::stoull(*v) : 0;
        };
        r.cells += count("cells");
        r.stolen += count("stolen");
        r.replayed += count("replayed");
    }
    for (const Ev &e : t.spans) {
        if (e.name != "serve_cell" && e.name != "steal")
            continue;
        const std::string *id = e.arg("request");
        if (!id)
            continue;
        const auto it = acc.find(std::stoull(*id));
        if (it != acc.end())
            it->second.execMs += e.durUs / 1000.0;
    }
    std::vector<ServeRow> rows;
    for (auto &[id, r] : acc)
        rows.push_back(r);
    return rows;
}

std::vector<double>
laneBuckets(const Lane &lane, double extentUs, uint32_t nBuckets)
{
    std::vector<double> busy(nBuckets, 0.0);
    if (extentUs <= 0 || nBuckets == 0)
        return busy;
    const double w = extentUs / nBuckets;
    for (const Ev *e : lane.spans) {
        const size_t first = static_cast<size_t>(
            std::min<double>(e->tsUs / w, nBuckets - 1));
        const size_t last = static_cast<size_t>(
            std::min<double>(e->endUs() / w, nBuckets - 1));
        for (size_t b = first; b <= last; ++b) {
            const double lo = std::max(e->tsUs, b * w);
            const double hi = std::min(e->endUs(), (b + 1) * w);
            if (hi > lo)
                busy[b] += (hi - lo) / w;
        }
    }
    for (double &v : busy)
        v = std::min(v, 1.0);
    return busy;
}

std::string
spanDetail(const Ev &e)
{
    std::string out;
    for (const char *key : {"cell", "id", "workload", "engine", "pid",
                            "path", "kind"}) {
        if (const std::string *v = e.arg(key)) {
            if (!out.empty())
                out += " ";
            out += key;
            out += "=";
            out += *v;
        }
    }
    return out;
}

// -------------------------------------------------------------------
// emitters
// -------------------------------------------------------------------

struct Inputs
{
    const Trace *trace = nullptr;
    const JsonValue *telemetry = nullptr;  //!< the "telemetry" object
};

std::string
emitTable(const Inputs &in, const AnalyzeOptions &opts)
{
    std::ostringstream os;
    const double wallMs = in.telemetry
        ? in.telemetry->at("wall_ms").asDouble()
        : (in.trace ? in.trace->extentUs / 1000.0 : 0);

    if (in.trace) {
        const Trace &t = *in.trace;
        os << "stems analyze: " << t.spans.size() << " spans, "
           << t.instants.size() << " instants, traced extent "
           << TablePrinter::fixed(t.extentUs / 1000.0, 1) << " ms\n";

        double busyMs = 0;
        for (const Ev &e : t.spans)
            busyMs += e.durUs / 1000.0;

        os << "\n== per-phase wall ==\n";
        TablePrinter pt({"Span", "Count", "Total ms", "Mean ms",
                         "Max ms", "Share"});
        for (const PhaseRow &r : phaseBreakdown(t))
            pt.addRow({r.name, std::to_string(r.count),
                       TablePrinter::fixed(r.totalMs, 1),
                       TablePrinter::fixed(
                           r.totalMs / static_cast<double>(r.count),
                           2),
                       TablePrinter::fixed(r.maxMs, 1),
                       TablePrinter::pct(busyMs > 0 ? r.totalMs /
                                             busyMs
                                                    : 0)});
        pt.print(os);

        const auto serveRows = serveBreakdown(t);
        if (!serveRows.empty()) {
            os << "\n== serve requests == (queue wait vs "
                  "execution)\n";
            TablePrinter sv({"Request", "Queue ms", "Wall ms",
                             "Exec ms", "Cells", "Stolen",
                             "Replayed"});
            for (const ServeRow &r : serveRows)
                sv.addRow({std::to_string(r.request),
                           TablePrinter::fixed(r.queueMs, 1),
                           TablePrinter::fixed(r.wallMs, 1),
                           TablePrinter::fixed(r.execMs, 1),
                           std::to_string(r.cells),
                           std::to_string(r.stolen),
                           std::to_string(r.replayed)});
            sv.print(os);
        }

        // the chain nests (a dispatch_cell contains its worker's
        // spans), so coverage is the union of intervals, not the sum
        const auto chain = criticalPath(t, opts.criticalPathCap);
        std::vector<std::pair<double, double>> iv;
        for (const Ev *e : chain)
            iv.emplace_back(e->tsUs, e->endUs());
        std::sort(iv.begin(), iv.end());
        double chainUs = 0, hi = 0;
        for (const auto &[a, b] : iv) {
            chainUs += std::max(0.0, b - std::max(a, hi));
            hi = std::max(hi, b);
        }
        os << "\n== critical path == (" << chain.size()
           << " spans covering "
           << TablePrinter::fixed(chainUs / 1000.0, 1) << " ms of "
           << TablePrinter::fixed(t.extentUs / 1000.0, 1)
           << " ms extent)\n";
        TablePrinter ct({"#", "Span", "Start ms", "Dur ms",
                         "Detail"});
        for (size_t i = 0; i < chain.size(); ++i)
            ct.addRow({std::to_string(i + 1), chain[i]->name,
                       TablePrinter::fixed(chain[i]->tsUs / 1000.0,
                                           1),
                       TablePrinter::fixed(chain[i]->durUs / 1000.0,
                                           1),
                       spanDetail(*chain[i])});
        ct.print(os);
    }

    if (in.telemetry) {
        os << "\n== memo / cache hit rates ==\n";
        TablePrinter ht({"Family", "Hits", "Misses", "Rate"});
        for (const HitRate &r :
             hitRates(in.telemetry->at("counters")))
            ht.addRow({r.family, std::to_string(r.hits),
                       std::to_string(r.misses),
                       r.hits + r.misses
                           ? TablePrinter::pct(r.rate())
                           : "-"});
        ht.print(os);

        const JsonValue &workers = in.telemetry->at("workers");
        if (!workers.items.empty()) {
            // the same numbers the live run printed in its worker
            // summary, recomputed from the telemetry artifact
            os << "\n== workers == (wall "
               << TablePrinter::fixed(wallMs, 1) << " ms)\n";
            TablePrinter wt({"Worker", "Cells", "Busy ms", "Util",
                             "Trace ms", "Study ms", "Timing ms",
                             "RSS MB", "Lost"});
            for (const JsonValue &w : workers.items) {
                const JsonValue &phases = w.at("phases");
                auto phase = [&phases](const char *name) {
                    const JsonValue *v = phases.find(name);
                    return v ? v->asDouble() : 0.0;
                };
                const double busy = w.at("busy_ms").asDouble();
                wt.addRow(
                    {std::to_string(w.at("pid").asU64()),
                     std::to_string(w.at("cells").asU64()),
                     TablePrinter::fixed(busy, 1),
                     TablePrinter::pct(wallMs > 0 ? busy / wallMs
                                                  : 0),
                     TablePrinter::fixed(phase("trace"), 1),
                     TablePrinter::fixed(phase("system_study") +
                                             phase("l1_study") +
                                             phase("baseline"),
                                         1),
                     TablePrinter::fixed(phase("timing"), 1),
                     TablePrinter::fixed(
                         static_cast<double>(
                             w.at("peak_rss_kb").asU64()) /
                             1024.0,
                         1),
                     std::to_string(w.at("lost").asU64())});
            }
            wt.print(os);
        }
    }

    if (in.trace) {
        const Trace &t = *in.trace;
        const auto lanes = busyLanes(t);
        if (!lanes.empty()) {
            os << "\n== utilization timeline == ("
               << opts.timelineBuckets << " slices of "
               << TablePrinter::fixed(
                      t.extentUs / 1000.0 / opts.timelineBuckets, 1)
               << " ms)\n";
            for (const Lane &lane : lanes) {
                std::string bar;
                for (double v :
                     laneBuckets(lane, t.extentUs,
                                 opts.timelineBuckets))
                    bar += v >= 0.75 ? '#'
                        : v >= 0.25  ? '+'
                        : v > 0.0    ? '.'
                                     : ' ';
                os << "  " << lane.label << "  |" << bar << "|  "
                   << TablePrinter::pct(
                          t.extentUs > 0 ? lane.busyUs / t.extentUs
                                         : 0)
                   << "\n";
            }

            std::vector<const Ev *> cells;
            for (const Lane &lane : lanes)
                cells.insert(cells.end(), lane.spans.begin(),
                             lane.spans.end());
            std::stable_sort(cells.begin(), cells.end(),
                             [](const Ev *a, const Ev *b) {
                                 return a->durUs > b->durUs;
                             });
            if (cells.size() > opts.stragglerTop)
                cells.resize(opts.stragglerTop);
            os << "\n== stragglers == (top " << cells.size()
               << " cells by wall)\n";
            TablePrinter st({"Span", "Dur ms", "Share", "Detail"});
            for (const Ev *e : cells)
                st.addRow({e->name,
                           TablePrinter::fixed(e->durUs / 1000.0, 1),
                           TablePrinter::pct(
                               t.extentUs > 0
                                   ? e->durUs / t.extentUs
                                   : 0),
                           spanDetail(*e)});
            st.print(os);
        }
    }
    return os.str();
}

std::string
emitJson(const Inputs &in, const AnalyzeOptions &opts)
{
    JsonWriter j;
    j.beginObject();
    j.key("analyze").beginObject();
    j.key("schema").value(uint64_t{2});

    if (in.trace) {
        const Trace &t = *in.trace;
        j.key("trace_extent_ms").value(t.extentUs / 1000.0);
        j.key("span_count").value(
            static_cast<uint64_t>(t.spans.size()));
        j.key("instant_count").value(
            static_cast<uint64_t>(t.instants.size()));

        j.key("phases").beginArray();
        for (const PhaseRow &r : phaseBreakdown(t)) {
            j.beginObject();
            j.key("name").value(r.name);
            j.key("count").value(r.count);
            j.key("total_ms").value(r.totalMs);
            j.key("max_ms").value(r.maxMs);
            j.endObject();
        }
        j.endArray();

        j.key("critical_path").beginArray();
        for (const Ev *e : criticalPath(t, opts.criticalPathCap)) {
            j.beginObject();
            j.key("name").value(e->name);
            j.key("start_ms").value(e->tsUs / 1000.0);
            j.key("dur_ms").value(e->durUs / 1000.0);
            j.key("args").beginObject();
            for (const auto &[k, v] : e->args)
                j.key(k).value(v);
            j.endObject();
            j.endObject();
        }
        j.endArray();

        const auto lanes = busyLanes(t);
        j.key("timeline").beginObject();
        j.key("buckets").value(uint64_t{opts.timelineBuckets});
        j.key("bucket_ms").value(
            opts.timelineBuckets
                ? t.extentUs / 1000.0 / opts.timelineBuckets
                : 0.0);
        j.key("lanes").beginArray();
        for (const Lane &lane : lanes) {
            j.beginObject();
            j.key("label").value(lane.label);
            j.key("busy_ms").value(lane.busyUs / 1000.0);
            j.key("utilization")
                .value(t.extentUs > 0 ? lane.busyUs / t.extentUs
                                      : 0.0);
            j.key("busy").beginArray();
            for (double v :
                 laneBuckets(lane, t.extentUs, opts.timelineBuckets))
                j.value(v);
            j.endArray();
            j.endObject();
        }
        j.endArray();
        j.endObject();

        std::vector<const Ev *> cells;
        for (const Lane &lane : lanes)
            cells.insert(cells.end(), lane.spans.begin(),
                         lane.spans.end());
        std::stable_sort(cells.begin(), cells.end(),
                         [](const Ev *a, const Ev *b) {
                             return a->durUs > b->durUs;
                         });
        if (cells.size() > opts.stragglerTop)
            cells.resize(opts.stragglerTop);
        j.key("stragglers").beginArray();
        for (const Ev *e : cells) {
            j.beginObject();
            j.key("name").value(e->name);
            j.key("dur_ms").value(e->durUs / 1000.0);
            j.key("args").beginObject();
            for (const auto &[k, v] : e->args)
                j.key(k).value(v);
            j.endObject();
            j.endObject();
        }
        j.endArray();

        // schema 2: present only for `stems serve` traces
        const auto serveRows = serveBreakdown(t);
        if (!serveRows.empty()) {
            j.key("serve").beginArray();
            for (const ServeRow &r : serveRows) {
                j.beginObject();
                j.key("request").value(r.request);
                j.key("queue_ms").value(r.queueMs);
                j.key("wall_ms").value(r.wallMs);
                j.key("exec_ms").value(r.execMs);
                j.key("cells").value(r.cells);
                j.key("stolen").value(r.stolen);
                j.key("replayed").value(r.replayed);
                j.endObject();
            }
            j.endArray();
        }
    }

    if (in.telemetry) {
        j.key("wall_ms").value(
            in.telemetry->at("wall_ms").asDouble());
        j.key("hit_rates").beginObject();
        for (const HitRate &r :
             hitRates(in.telemetry->at("counters"))) {
            j.key(r.family).beginObject();
            j.key("hits").value(r.hits);
            j.key("misses").value(r.misses);
            j.key("rate").value(r.rate());
            j.endObject();
        }
        j.endObject();

        const double wallMs = in.telemetry->at("wall_ms").asDouble();
        j.key("workers").beginArray();
        for (const JsonValue &w :
             in.telemetry->at("workers").items) {
            const JsonValue &phases = w.at("phases");
            auto phase = [&phases](const char *name) {
                const JsonValue *v = phases.find(name);
                return v ? v->asDouble() : 0.0;
            };
            const double busy = w.at("busy_ms").asDouble();
            j.beginObject();
            j.key("pid").value(w.at("pid").asU64());
            j.key("cells").value(w.at("cells").asU64());
            j.key("busy_ms").value(busy);
            j.key("utilization")
                .value(wallMs > 0 ? busy / wallMs : 0.0);
            j.key("trace_ms").value(phase("trace"));
            j.key("study_ms").value(phase("system_study") +
                                    phase("l1_study") +
                                    phase("baseline"));
            j.key("timing_ms").value(phase("timing"));
            j.key("peak_rss_kb").value(w.at("peak_rss_kb").asU64());
            j.key("lost").value(w.at("lost").asU64());
            j.endObject();
        }
        j.endArray();
    }

    j.endObject();
    j.endObject();
    return j.str() + "\n";
}

} // anonymous namespace

std::string
analyzeRun(const std::string &traceText,
           const std::string &telemetryText,
           const AnalyzeOptions &opts)
{
    if (traceText.empty() && telemetryText.empty())
        throw std::invalid_argument(
            "analyze: need a trace and/or telemetry artifact");
    if (opts.format != "table" && opts.format != "json")
        throw std::invalid_argument(
            "analyze: format must be table or json (got \"" +
            opts.format + "\")");
    if (opts.timelineBuckets == 0)
        throw std::invalid_argument(
            "analyze: timeline-buckets must be positive");

    Trace trace;
    Inputs in;
    if (!traceText.empty()) {
        trace = parseTrace(traceText);
        in.trace = &trace;
    }
    JsonValue telemetryDoc;
    if (!telemetryText.empty()) {
        telemetryDoc = parseJson(telemetryText);
        const JsonValue *tel = telemetryDoc.find("telemetry");
        if (!tel)
            throw std::invalid_argument(
                "analyze: telemetry file has no telemetry object "
                "(not a --telemetry-out artifact?)");
        in.telemetry = tel;
    }
    return opts.format == "json" ? emitJson(in, opts)
                                 : emitTable(in, opts);
}

int
cmdAnalyze(const std::vector<std::string> &args)
{
    AnalyzeOptions opts;
    std::string tracePath, telemetryPath;
    for (const auto &arg : args) {
        // --key=value sugar, mirroring stems run
        std::string tok = arg;
        if (tok.rfind("--", 0) == 0)
            tok = tok.find('=') != std::string::npos
                ? tok.substr(2)
                : tok.substr(2) + "=1";
        const size_t eq = tok.find('=');
        const std::string k =
            eq == std::string::npos ? tok : tok.substr(0, eq);
        const std::string v =
            eq == std::string::npos ? "" : tok.substr(eq + 1);
        if (k == "trace") {
            tracePath = v;
        } else if (k == "telemetry") {
            telemetryPath = v;
        } else if (k == "format") {
            opts.format = v;
        } else if (k == "timeline-buckets") {
            opts.timelineBuckets =
                static_cast<uint32_t>(std::stoul(v));
        } else if (k == "top") {
            opts.stragglerTop = std::stoul(v);
        } else {
            std::cerr << "stems analyze: unknown key \"" << k
                      << "\" (expected trace, telemetry, format, "
                         "timeline-buckets, top)\n";
            return 2;
        }
    }
    if (tracePath.empty() && telemetryPath.empty()) {
        std::cerr << "stems analyze: trace= and/or telemetry= is "
                     "required\n";
        return 2;
    }
    auto slurp = [](const std::string &path, std::string &out) {
        if (path.empty())
            return true;
        std::ifstream f(path, std::ios::binary);
        if (!f)
            return false;
        std::ostringstream ss;
        ss << f.rdbuf();
        out = ss.str();
        return true;
    };
    std::string traceText, telemetryText;
    if (!slurp(tracePath, traceText)) {
        std::cerr << "stems analyze: cannot read " << tracePath
                  << "\n";
        return 1;
    }
    if (!slurp(telemetryPath, telemetryText)) {
        std::cerr << "stems analyze: cannot read " << telemetryPath
                  << "\n";
        return 1;
    }
    std::cout << analyzeRun(traceText, telemetryText, opts);
    return 0;
}

} // namespace stems::driver
