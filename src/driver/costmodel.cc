#include "driver/costmodel.hh"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "dispatch/json.hh"
#include "dispatch/wire.hh"
#include "driver/metrics.hh"

namespace stems::driver {

namespace {

/**
 * Relative per-reference weight of an engine kind: how much the study
 * and timing passes slow down when this prefetcher is attached.
 * Rough — only the resulting *ordering* matters for LPT.
 */
double
kindWeight(const std::string &kind)
{
    if (kind == "none")
        return 1.0;
    if (kind == "next-line")
        return 1.1;
    if (kind == "stride")
        return 1.15;
    if (kind == "ghb")
        return 1.7;
    if (kind == "sms")
        return 2.2;
    return 1.5;  // unknown registrations: assume mid-weight
}

std::string
labelKey(const std::string &workload, const std::string &label)
{
    return workload + "|" + label;
}

} // anonymous namespace

void
CostModel::calibrate(const std::string &text)
{
    size_t first = text.find_first_not_of(" \t\r\n");
    if (first == std::string::npos)
        throw std::invalid_argument(
            "schedule-from: calibration file is empty");

    std::map<std::string, std::pair<double, uint64_t>> sums;
    if (text[first] >= '0' && text[first] <= '9') {
        // a result journal: length-prefixed frames, header first
        dispatch::FrameDecoder decoder;
        decoder.feed(text.data(), text.size());
        std::string payload;
        bool sawHeader = false;
        try {
            while (decoder.next(payload)) {
                const dispatch::JsonValue msg =
                    dispatch::parseJson(payload);
                const std::string &type = dispatch::messageType(msg);
                if (!sawHeader) {
                    if (type != "journal")
                        throw std::invalid_argument(
                            "schedule-from: not a stems journal");
                    sawHeader = true;
                    continue;
                }
                if (type != "result")
                    break;
                CellResult r = dispatch::decodeResult(msg);
                if (!r.error.empty() ||
                    !r.metrics.present(metric::ids().wallMs))
                    continue;
                const double wall = r.metrics.wallMs();
                if (wall > 0)
                    byId_.emplace(r.cell.id, wall);
            }
        } catch (const std::invalid_argument &) {
            if (!sawHeader)
                throw;
            // a torn tail (killed writer) ends calibration, not the run
        }
    } else if (text[first] == '{') {
        // a run report: cells carry id, workload, label, wall_ms
        const dispatch::JsonValue doc = dispatch::parseJson(text);
        const dispatch::JsonValue *cells = doc.find("cells");
        if (!cells)
            throw std::invalid_argument(
                "schedule-from: JSON document has no \"cells\" array "
                "(expected a stems run report)");
        for (const auto &c : cells->items) {
            const dispatch::JsonValue *wall = c.find("wall_ms");
            if (!wall || c.find("error"))
                continue;
            const double ms = wall->asDouble();
            if (ms <= 0)
                continue;  // wall=0 reports carry no signal
            byId_.emplace(
                static_cast<uint32_t>(c.at("id").asU64()), ms);
            auto &[sum, n] =
                sums[labelKey(c.at("workload").asString(),
                              c.at("label").asString())];
            sum += ms;
            ++n;
        }
    } else {
        throw std::invalid_argument(
            "schedule-from: unrecognized calibration file (expected "
            "a stems journal or run report JSON)");
    }
    for (const auto &[key, acc] : sums)
        byLabel_.emplace(key, acc.first / static_cast<double>(acc.second));
}

CostModel
CostModel::fromSpec(const ExperimentSpec &spec)
{
    CostModel model;
    if (spec.scheduleFrom.empty())
        return model;
    std::ifstream f(spec.scheduleFrom, std::ios::binary);
    if (!f)
        throw std::invalid_argument("schedule-from: cannot read " +
                                    spec.scheduleFrom);
    std::ostringstream ss;
    ss << f.rdbuf();
    model.calibrate(ss.str());
    return model;
}

double
CostModel::estimate(const RunCell &cell) const
{
    const auto byId = byId_.find(cell.id);
    if (byId != byId_.end())
        return byId->second;
    const auto byLabel = byLabel_.find(
        labelKey(cell.workload, cell.engine.displayLabel()));
    if (byLabel != byLabel_.end())
        return byLabel->second;

    // heuristic: work scales with references driven through the
    // hierarchy, per pass, per engine weight
    const double base =
        static_cast<double>(cell.params.refsPerCpu) *
        static_cast<double>(cell.params.ncpu) / 1000.0;
    const double w = kindWeight(cell.engine.kind);
    double cost = 1.0;  // floor keeps zero-ref cells orderable
    if (!cell.timingOnly) {
        // the L1 shadow study walks one merged trace, not a coherent
        // multiprocessor — substantially cheaper per reference
        const double mode = cell.mode == StudyMode::L1 ? 0.6 : 1.0;
        cost += mode * base * w;
    }
    if (cell.timing) {
        // engine timing pass plus a share of the memoized baseline
        cost += 1.4 * base * w + 0.5 * base;
    }
    return cost;
}

std::vector<size_t>
scheduleOrder(const ExperimentSpec &spec,
              const std::vector<RunCell> &cells)
{
    std::vector<size_t> order(cells.size());
    std::iota(order.begin(), order.end(), size_t{0});
    if (!spec.scheduleCost)
        return order;
    const CostModel model = CostModel::fromSpec(spec);
    std::vector<double> cost(cells.size());
    for (size_t i = 0; i < cells.size(); ++i)
        cost[i] = model.estimate(cells[i]);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         if (cost[a] != cost[b])
                             return cost[a] > cost[b];
                         return cells[a].id < cells[b].id;
                     });
    return order;
}

} // namespace stems::driver
