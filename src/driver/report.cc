#include "driver/report.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "driver/metrics.hh"
#include "study/table.hh"
#include "workloads/workload.hh"

namespace stems::driver {

// ---------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (pendingKey) {
        pendingKey = false;
        return;
    }
    if (!needComma.empty()) {
        if (needComma.back())
            out += ',';
        needComma.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out += '{';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out += '}';
    needComma.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out += '[';
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out += ']';
    needComma.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separate();
    out += '"' + escape(k) + "\":";
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    out += '"' + escape(v) + '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    separate();
    out += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        out += buf;
    } else {
        out += "null";
    }
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out += "null";
    return *this;
}

// ---------------------------------------------------------------------
// reports
// ---------------------------------------------------------------------

namespace {

std::string
workloadClass(const std::string &name)
{
    const workloads::SuiteEntry *e = workloads::findWorkload(name);
    return e ? workloads::suiteClassName(e->cls) : "?";
}

/** RFC-4180 quoting for fields that may hold commas/quotes/newlines. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
writeOptions(JsonWriter &j, const Options &opts)
{
    j.beginObject();
    for (const auto &[k, v] : opts)
        j.key(k).value(v);
    j.endObject();
}

void
writeU64Array(JsonWriter &j, const std::vector<uint64_t> &values)
{
    j.beginArray();
    for (uint64_t v : values)
        j.value(v);
    j.endArray();
}

/** Emit one family's value under its report key. */
void
writeFamilyValue(JsonWriter &j, const MetricFamily &f, const MetricSet &m)
{
    switch (f.kind) {
      case MetricKind::Counter:
        j.value(m.u64(f.id));
        break;
      case MetricKind::Value:
      case MetricKind::Ratio:
        j.value(m.value(f.id));
        break;
      case MetricKind::Histogram:
        j.beginObject();
        j.key("labels").beginArray();
        for (const auto &label : f.buckets)
            j.value(label);
        j.endArray();
        j.key("counts");
        writeU64Array(j, m.vec(f.id));
        j.endObject();
        break;
      case MetricKind::Vector:
        writeU64Array(j, m.vec(f.id));
        break;
      case MetricKind::Timing:
        break;  // wire/API only; never in the report
    }
}

/**
 * Whether the cell's nested oracle object should appear: the spec
 * asked for region tracking and the cell produced generations (cells
 * swept to a coarser block skip tracking).
 */
bool
hasOracle(const ExperimentSpec &spec, const MetricSet &m)
{
    if (spec.oracleRegionSizes.empty())
        return false;
    for (const auto &f : MetricSchema::builtin().families())
        if (f.section == MetricSection::Oracle && m.present(f.id) &&
            !m.vec(f.id).empty())
            return true;
    return false;
}

} // anonymous namespace

std::vector<GroupResult>
aggregateGroups(const std::vector<CellResult> &results)
{
    std::vector<GroupResult> groups;
    for (const auto &r : results) {
        if (!r.error.empty())
            continue;
        const std::string cls = workloadClass(r.cell.workload);
        std::string sweep;
        for (const auto &[k, v] : r.cell.sweepPoint)
            sweep += k + "=" + v + ";";
        GroupResult *row = nullptr;
        for (auto &g : groups) {
            std::string gsweep;
            for (const auto &[k, v] : g.sweepPoint)
                gsweep += k + "=" + v + ";";
            if (g.group == cls &&
                g.engine.displayLabel() ==
                    r.cell.engine.displayLabel() &&
                gsweep == sweep) {
                row = &g;
                break;
            }
        }
        if (!row) {
            groups.emplace_back();
            row = &groups.back();
            row->group = cls;
            row->engine = r.cell.engine;
            row->sweepPoint = r.cell.sweepPoint;
        }
        row->metrics.aggregate(r.metrics);
        ++row->cells;
    }
    return groups;
}

std::string
toJson(const ExperimentSpec &spec, const std::vector<CellResult> &results)
{
    JsonWriter j;
    j.beginObject();
    j.key("engine").value("stems");
    j.key("report_version").value(uint64_t{2});

    j.key("spec").beginObject();
    j.key("mode").value(studyModeName(spec.mode));
    j.key("ncpu").value(uint64_t{spec.params.ncpu});
    j.key("refs_per_cpu").value(spec.params.refsPerCpu);
    j.key("seed").value(spec.params.seed);
    j.key("timing").value(spec.timing);
    j.key("threads").value(uint64_t{spec.threads});
    j.key("workloads").beginArray();
    for (const auto &w : spec.workloads)
        j.value(w);
    j.endArray();
    j.key("prefetchers").beginArray();
    for (const auto &e : spec.engines) {
        j.beginObject();
        j.key("kind").value(e.kind);
        j.key("label").value(e.displayLabel());
        j.key("options");
        writeOptions(j, e.options);
        j.endObject();
    }
    j.endArray();
    j.key("sweeps").beginObject();
    for (const auto &[opt, values] : spec.sweeps) {
        j.key(opt).beginArray();
        for (const auto &v : values)
            j.value(v);
        j.endArray();
    }
    j.endObject();
    j.endObject();  // spec

    const MetricSchema &schema = MetricSchema::builtin();
    j.key("cells").beginArray();
    for (const auto &r : results) {
        const MetricSet &m = r.metrics;
        j.beginObject();
        j.key("id").value(uint64_t{r.cell.id});
        j.key("workload").value(r.cell.workload);
        j.key("class").value(workloadClass(r.cell.workload));
        j.key("prefetcher").value(r.cell.engine.kind);
        j.key("label").value(r.cell.engine.displayLabel());
        j.key("options");
        writeOptions(j, r.cell.engine.options);
        j.key("sweep");
        writeOptions(j, r.cell.sweepPoint);
        if (!r.error.empty()) {
            j.key("error").value(r.error);
            j.endObject();
            continue;
        }
        // the metrics object iterates the schema: core families
        // always appear (historical layout), optional families only
        // when the cell produced them
        j.key("metrics").beginObject();
        for (const auto &f : schema.families()) {
            if (f.section != MetricSection::Metrics)
                continue;
            if (!f.core && !m.present(f.id))
                continue;
            j.key(f.reportKey);
            writeFamilyValue(j, f, m);
        }
        if (hasOracle(spec, m)) {
            j.key("oracle").beginObject();
            j.key("region_sizes").beginArray();
            for (uint32_t s : spec.oracleRegionSizes)
                j.value(uint64_t{s});
            j.endArray();
            for (const auto &f : schema.families()) {
                if (f.section != MetricSection::Oracle)
                    continue;
                j.key(f.reportKey);
                writeFamilyValue(j, f, m);
            }
            j.endObject();
        }
        j.endObject();
        j.key("prefetcher_counters").beginObject();
        for (const auto &[k, v] : m.pfCounters)
            j.key(k).value(v);
        j.endObject();
        if (r.cell.timing) {
            j.key("timing").beginObject();
            for (const auto &f : schema.families()) {
                if (f.section != MetricSection::Timing)
                    continue;
                j.key(f.reportKey);
                writeFamilyValue(j, f, m);
            }
            j.endObject();
        }
        if (spec.emitWall)
            j.key("wall_ms").value(m.wallMs());
        j.endObject();
    }
    j.endArray();
    // opt-in engine-folded aggregate rows; the default layout above
    // is unchanged so existing goldens stay byte-identical
    if (spec.groups) {
        j.key("groups").beginArray();
        for (const auto &g : aggregateGroups(results)) {
            j.beginObject();
            j.key("group").value(g.group);
            j.key("prefetcher").value(g.engine.kind);
            j.key("label").value(g.engine.displayLabel());
            j.key("sweep");
            writeOptions(j, g.sweepPoint);
            j.key("cells").value(g.cells);
            j.key("metrics").beginObject();
            for (const auto &f : schema.families()) {
                if (f.section != MetricSection::Metrics)
                    continue;
                if (!f.core && !g.metrics.present(f.id))
                    continue;
                j.key(f.reportKey);
                writeFamilyValue(j, f, g.metrics);
            }
            j.endObject();
            j.endObject();
        }
        j.endArray();
    }
    j.endObject();
    return j.str() + "\n";
}

std::string
toCsv(const ExperimentSpec &spec, const std::vector<CellResult> &results)
{
    const MetricSchema &schema = MetricSchema::builtin();
    std::ostringstream os;
    os << "id,workload,class,prefetcher,label,options";
    for (const auto &f : schema.families())
        if (f.csv)
            os << ',' << f.name;
    os << ",error\n";
    for (const auto &r : results) {
        const MetricSet &m = r.metrics;
        std::string opts;
        for (const auto &[k, v] : r.cell.engine.options)
            opts += (opts.empty() ? "" : ";") + k + "=" + v;
        os << r.cell.id << ',' << csvField(r.cell.workload) << ','
           << workloadClass(r.cell.workload) << ','
           << csvField(r.cell.engine.kind) << ','
           << csvField(r.cell.engine.displayLabel()) << ','
           << csvField(opts);
        for (const auto &f : schema.families()) {
            if (!f.csv)
                continue;
            os << ',';
            if (f.id == metric::ids().wallMs)
                os << (spec.emitWall ? m.wallMs() : 0.0);
            else if (f.kind == MetricKind::Counter)
                os << m.u64(f.id);
            else
                os << m.value(f.id);
        }
        os << ',' << csvField(r.error) << '\n';
    }
    return os.str();
}

std::string
toTable(const std::vector<CellResult> &results)
{
    using study::TablePrinter;
    TablePrinter table({"App", "Prefetcher", "L1 cov", "L2 cov",
                        "L2 acc", "Off-chip misses", "Speedup",
                        "Status"});
    for (const auto &r : results) {
        const MetricSet &m = r.metrics;
        std::string label = r.cell.engine.displayLabel();
        for (const auto &[k, v] : r.cell.sweepPoint)
            label += " " + k + "=" + v;
        table.addRow(
            {r.cell.workload, label, TablePrinter::pct(m.l1Coverage()),
             TablePrinter::pct(m.l2Coverage()),
             TablePrinter::pct(m.l2Accuracy()),
             std::to_string(m.l2ReadMisses()),
             r.cell.timing && m.speedup() > 0
                 ? TablePrinter::fixed(m.speedup(), 3)
                 : "-",
             r.error.empty() ? "ok" : ("FAILED: " + r.error)});
    }
    std::ostringstream os;
    table.print(os);
    return os.str();
}

std::string
toTable(const ExperimentSpec &spec,
        const std::vector<CellResult> &results)
{
    std::string out = toTable(results);
    if (!spec.groups)
        return out;
    using study::TablePrinter;
    TablePrinter table({"Group", "Prefetcher", "Cells", "L1 cov",
                        "L2 cov", "L2 acc", "Off-chip misses"});
    for (const auto &g : aggregateGroups(results)) {
        std::string label = g.engine.displayLabel();
        for (const auto &[k, v] : g.sweepPoint)
            label += " " + k + "=" + v;
        const MetricSet &m = g.metrics;
        table.addRow({g.group, label, std::to_string(g.cells),
                      TablePrinter::pct(m.l1Coverage()),
                      TablePrinter::pct(m.l2Coverage()),
                      TablePrinter::pct(m.l2Accuracy()),
                      std::to_string(m.l2ReadMisses())});
    }
    std::ostringstream os;
    os << out << '\n';
    table.print(os);
    return os.str();
}

void
writeReport(const std::string &path, const std::string &content)
{
    if (path == "-") {
        std::cout << content;
        return;
    }
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write report to " + path);
    out << content;
}

} // namespace stems::driver
