/**
 * @file
 * The study-metrics API: a schema-registered, extensible metric
 * surface replacing the former fixed CellMetrics struct.
 *
 * Metric *families* declare themselves once in the process-wide
 * MetricSchema — name, kind (counter / ratio / histogram / vector /
 * timing / value), aggregation rule, and report placement — exactly
 * the way prefetchers declare themselves in the PrefetcherRegistry.
 * Producers (study::runSystem, study::runL1Study, sim::runTiming, the
 * attach seam's Counters) emit into a MetricSet; consumers (the
 * JSON/CSV/table report sinks, the dispatch wire, group aggregation in
 * the figure benches) iterate the schema instead of hard-coding
 * fields. Adding a metric is one registration — no serializer edits,
 * no wire-protocol edits, no report edits.
 *
 * Families must be registered at startup (static initialization or
 * before the first Runner/worker spins up); registration is not
 * thread-safe against concurrent MetricSet use.
 */

#ifndef STEMS_DRIVER_METRICS_HH
#define STEMS_DRIVER_METRICS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "prefetch/attach.hh"
#include "sim/timing.hh"

namespace stems::driver {

class MetricSet;

/** Stable slot of one registered family. */
using MetricId = uint32_t;

/** Value shape of a metric family. */
enum class MetricKind : uint8_t
{
    Counter,    //!< uint64_t event count
    Value,      //!< stored double (uIPC, wall time)
    Ratio,      //!< double derived from the set (never stored)
    Histogram,  //!< fixed buckets of uint64_t with labels
    Vector,     //!< runtime-length uint64_t array
    Timing,     //!< one sim::TimingResult pass
};

/** Display name of a metric kind (stems list, docs). */
const char *metricKindName(MetricKind kind);

/** How aggregate() folds two sets' values for a family. */
enum class MetricAgg : uint8_t
{
    Sum,    //!< add (element-wise for histogram/vector)
    Max,    //!< keep the larger (peak occupancies)
    First,  //!< keep the first present value
};

/** Where the JSON report places a family. */
enum class MetricSection : uint8_t
{
    Metrics,  //!< the cell's "metrics" object
    Oracle,   //!< the nested "oracle" object (region-size studies)
    Timing,   //!< the "timing" object (emitted when the cell timed)
    Hidden,   //!< wire/API only; never in the JSON report
};

/** One registered metric family. */
struct MetricFamily
{
    MetricId id = 0;
    std::string name;       //!< canonical key (wire protocol, schema)
    MetricKind kind = MetricKind::Counter;
    MetricAgg agg = MetricAgg::Sum;
    MetricSection section = MetricSection::Metrics;
    /** JSON key inside the section; defaults to name. */
    std::string reportKey;
    /**
     * Core families are always emitted in the JSON metrics object
     * (zero-valued when the cell never produced them); non-core
     * families appear only when present in the set.
     */
    bool core = false;
    bool csv = false;       //!< column in the CSV summary
    std::vector<std::string> buckets;  //!< histogram bucket labels
    /** Ratio families compute their value from the set on demand. */
    std::function<double(const MetricSet &)> derive;
    std::string help;       //!< one-line description (stems list)
};

/**
 * The process-wide registry of metric families. Iteration order is
 * registration order, which is also JSON/CSV emission order — the
 * built-ins register in the historical report layout so reports stay
 * byte-identical across the API change.
 */
class MetricSchema
{
  public:
    /** The global schema preloaded with the built-in families. */
    static MetricSchema &builtin();

    /** Register a family; returns its slot. Names must be unique. */
    MetricId add(MetricFamily family);

    // convenience registration helpers
    MetricId addCounter(const std::string &name, MetricAgg agg,
                        bool core, bool csv, const std::string &help);
    MetricId addValue(const std::string &name, MetricSection section,
                      bool csv, const std::string &help);
    MetricId addRatio(const std::string &name,
                      std::function<double(const MetricSet &)> derive,
                      bool csv, const std::string &help);
    MetricId addHistogram(const std::string &name,
                          std::vector<std::string> buckets,
                          const std::string &help);
    MetricId addVector(const std::string &name, MetricSection section,
                       const std::string &reportKey,
                       const std::string &help);
    MetricId addTiming(const std::string &name, const std::string &help);

    const MetricFamily &family(MetricId id) const
    {
        return families_[id];
    }

    /** Family named @p name, or nullptr. */
    const MetricFamily *find(const std::string &name) const;

    /** All families, in registration (= emission) order. */
    const std::vector<MetricFamily> &families() const
    {
        return families_;
    }

    size_t size() const { return families_.size(); }

  private:
    std::vector<MetricFamily> families_;
};

namespace metric {

/** Slots of the built-in families, resolved once at startup. */
struct Builtin
{
    MetricId instructions, l1ReadMisses, l2ReadMisses, l1Covered,
        l2Covered, l1Overpred, l2Overpred, falseSharing,
        baselineL1ReadMisses, baselineL2ReadMisses, l1Coverage,
        l2Coverage, l1Uncovered, l2Uncovered, l1OverpredRate,
        l2OverpredRate, l1Accuracy, l2Accuracy, oracleL1Gens,
        oracleL2Gens, l1Density, l2Density, peakAccumOccupancy,
        peakFilterOccupancy, uipc, baselineUipc, speedup, timing,
        baselineTiming, wallMs;
};

const Builtin &ids();

} // namespace metric

/**
 * One cell's measurements: a value per registered family plus the
 * dynamic engine-harvested counters. Cheap to copy relative to cell
 * execution; sized to the schema on first write.
 */
class MetricSet
{
  public:
    // typed access; each checks the family's kind in debug builds

    uint64_t u64(MetricId id) const;
    void setU64(MetricId id, uint64_t v);
    /** Fold @p v into the family under its aggregation rule. */
    void foldU64(MetricId id, uint64_t v);

    double value(MetricId id) const;  //!< Value read / Ratio derive
    void setValue(MetricId id, double v);

    const std::vector<uint64_t> &vec(MetricId id) const;
    void setVec(MetricId id, std::vector<uint64_t> v);

    const sim::TimingResult &timingResult(MetricId id) const;
    void setTimingResult(MetricId id, const sim::TimingResult &t);

    bool present(MetricId id) const
    {
        return id < slots.size() && slots[id].present;
    }

    /**
     * Fold @p other into this set under each family's aggregation
     * rule (ratios recompute from the folded operands — the group
     * aggregation the figure benches report).
     */
    void aggregate(const MetricSet &other);

    /** Dynamic engine counters (registry harvest order). */
    prefetch::Counters pfCounters;

    // named accessors over the built-in families — sugar for C++
    // call sites; storage and serialization stay schema-driven

    uint64_t instructions() const { return u64(metric::ids().instructions); }
    uint64_t l1ReadMisses() const { return u64(metric::ids().l1ReadMisses); }
    uint64_t l2ReadMisses() const { return u64(metric::ids().l2ReadMisses); }
    uint64_t l1Covered() const { return u64(metric::ids().l1Covered); }
    uint64_t l2Covered() const { return u64(metric::ids().l2Covered); }
    uint64_t l1Overpred() const { return u64(metric::ids().l1Overpred); }
    uint64_t l2Overpred() const { return u64(metric::ids().l2Overpred); }
    uint64_t falseSharing() const { return u64(metric::ids().falseSharing); }

    uint64_t
    baselineL1ReadMisses() const
    {
        return u64(metric::ids().baselineL1ReadMisses);
    }

    uint64_t
    baselineL2ReadMisses() const
    {
        return u64(metric::ids().baselineL2ReadMisses);
    }

    double l1Coverage() const { return value(metric::ids().l1Coverage); }
    double l2Coverage() const { return value(metric::ids().l2Coverage); }
    double l1Uncovered() const { return value(metric::ids().l1Uncovered); }
    double l2Uncovered() const { return value(metric::ids().l2Uncovered); }

    double
    l1OverpredRate() const
    {
        return value(metric::ids().l1OverpredRate);
    }

    double
    l2OverpredRate() const
    {
        return value(metric::ids().l2OverpredRate);
    }

    double l1Accuracy() const { return value(metric::ids().l1Accuracy); }
    double l2Accuracy() const { return value(metric::ids().l2Accuracy); }

    const std::vector<uint64_t> &
    oracleL1Gens() const
    {
        return vec(metric::ids().oracleL1Gens);
    }

    const std::vector<uint64_t> &
    oracleL2Gens() const
    {
        return vec(metric::ids().oracleL2Gens);
    }

    const std::vector<uint64_t> &
    l1Density() const
    {
        return vec(metric::ids().l1Density);
    }

    const std::vector<uint64_t> &
    l2Density() const
    {
        return vec(metric::ids().l2Density);
    }

    uint64_t
    peakAccumOccupancy() const
    {
        return u64(metric::ids().peakAccumOccupancy);
    }

    uint64_t
    peakFilterOccupancy() const
    {
        return u64(metric::ids().peakFilterOccupancy);
    }

    double uipc() const { return value(metric::ids().uipc); }
    double baselineUipc() const { return value(metric::ids().baselineUipc); }
    double speedup() const { return value(metric::ids().speedup); }

    const sim::TimingResult &
    timing() const
    {
        return timingResult(metric::ids().timing);
    }

    const sim::TimingResult &
    baselineTiming() const
    {
        return timingResult(metric::ids().baselineTiming);
    }

    double wallMs() const { return value(metric::ids().wallMs); }
    void setWallMs(double ms) { setValue(metric::ids().wallMs, ms); }

  private:
    struct Slot
    {
        uint64_t u = 0;
        double d = 0;
        std::vector<uint64_t> v;
        sim::TimingResult t;
        bool present = false;
    };

    Slot &slot(MetricId id);
    const Slot &slotOrEmpty(MetricId id) const;

    std::vector<Slot> slots;
};

} // namespace stems::driver

#endif // STEMS_DRIVER_METRICS_HH
