#include "driver/metrics.hh"

#include <algorithm>
#include <stdexcept>

#include "study/density.hh"

namespace stems::driver {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Value: return "value";
      case MetricKind::Ratio: return "ratio";
      case MetricKind::Histogram: return "histogram";
      case MetricKind::Vector: return "vector";
      case MetricKind::Timing: return "timing";
    }
    return "?";
}

// ---------------------------------------------------------------------
// MetricSchema
// ---------------------------------------------------------------------

MetricId
MetricSchema::add(MetricFamily family)
{
    if (family.name.empty())
        throw std::invalid_argument("metric family needs a name");
    if (find(family.name))
        throw std::invalid_argument("metric family \"" + family.name +
                                    "\" already registered");
    if (family.kind == MetricKind::Ratio && !family.derive)
        throw std::invalid_argument("ratio family \"" + family.name +
                                    "\" needs a derive function");
    family.id = static_cast<MetricId>(families_.size());
    if (family.reportKey.empty())
        family.reportKey = family.name;
    families_.push_back(std::move(family));
    return families_.back().id;
}

MetricId
MetricSchema::addCounter(const std::string &name, MetricAgg agg,
                         bool core, bool csv, const std::string &help)
{
    MetricFamily f;
    f.name = name;
    f.kind = MetricKind::Counter;
    f.agg = agg;
    f.section = core ? MetricSection::Metrics : MetricSection::Hidden;
    f.core = core;
    f.csv = csv;
    f.help = help;
    return add(std::move(f));
}

MetricId
MetricSchema::addValue(const std::string &name, MetricSection section,
                       bool csv, const std::string &help)
{
    MetricFamily f;
    f.name = name;
    f.kind = MetricKind::Value;
    f.agg = MetricAgg::First;
    f.section = section;
    f.csv = csv;
    f.help = help;
    return add(std::move(f));
}

MetricId
MetricSchema::addRatio(const std::string &name,
                       std::function<double(const MetricSet &)> derive,
                       bool csv, const std::string &help)
{
    MetricFamily f;
    f.name = name;
    f.kind = MetricKind::Ratio;
    f.agg = MetricAgg::First;  // never stored; recomputed after folds
    f.section = MetricSection::Metrics;
    f.core = true;
    f.csv = csv;
    f.derive = std::move(derive);
    f.help = help;
    return add(std::move(f));
}

MetricId
MetricSchema::addHistogram(const std::string &name,
                           std::vector<std::string> buckets,
                           const std::string &help)
{
    MetricFamily f;
    f.name = name;
    f.kind = MetricKind::Histogram;
    f.agg = MetricAgg::Sum;
    f.section = MetricSection::Metrics;
    f.buckets = std::move(buckets);
    f.help = help;
    return add(std::move(f));
}

MetricId
MetricSchema::addVector(const std::string &name, MetricSection section,
                        const std::string &reportKey,
                        const std::string &help)
{
    MetricFamily f;
    f.name = name;
    f.kind = MetricKind::Vector;
    f.agg = MetricAgg::Sum;
    f.section = section;
    f.reportKey = reportKey;
    f.help = help;
    return add(std::move(f));
}

MetricId
MetricSchema::addTiming(const std::string &name, const std::string &help)
{
    MetricFamily f;
    f.name = name;
    f.kind = MetricKind::Timing;
    f.agg = MetricAgg::First;
    f.section = MetricSection::Hidden;
    f.help = help;
    return add(std::move(f));
}

const MetricFamily *
MetricSchema::find(const std::string &name) const
{
    for (const auto &f : families_)
        if (f.name == name)
            return &f;
    return nullptr;
}

// ---------------------------------------------------------------------
// built-in families
// ---------------------------------------------------------------------

namespace {

double
ratioOf(const MetricSet &m, MetricId num, MetricId den)
{
    const uint64_t d = m.u64(den);
    return d ? double(m.u64(num)) / double(d) : 0.0;
}

} // anonymous namespace

namespace metric {

const Builtin &
ids()
{
    static const Builtin b = [] {
        MetricSchema::builtin();  // families registered first
        Builtin ids{};
        auto id = [](const char *name) {
            return MetricSchema::builtin().find(name)->id;
        };
        ids.instructions = id("instructions");
        ids.l1ReadMisses = id("l1_read_misses");
        ids.l2ReadMisses = id("l2_read_misses");
        ids.l1Covered = id("l1_covered");
        ids.l2Covered = id("l2_covered");
        ids.l1Overpred = id("l1_overpredictions");
        ids.l2Overpred = id("l2_overpredictions");
        ids.falseSharing = id("false_sharing");
        ids.baselineL1ReadMisses = id("baseline_l1_read_misses");
        ids.baselineL2ReadMisses = id("baseline_l2_read_misses");
        ids.l1Coverage = id("l1_coverage");
        ids.l2Coverage = id("l2_coverage");
        ids.l1Uncovered = id("l1_uncovered");
        ids.l2Uncovered = id("l2_uncovered");
        ids.l1OverpredRate = id("l1_overprediction_rate");
        ids.l2OverpredRate = id("l2_overprediction_rate");
        ids.l1Accuracy = id("l1_accuracy");
        ids.l2Accuracy = id("l2_accuracy");
        ids.oracleL1Gens = id("oracle_l1_generations");
        ids.oracleL2Gens = id("oracle_l2_generations");
        ids.l1Density = id("l1_density");
        ids.l2Density = id("l2_density");
        ids.peakAccumOccupancy = id("peak_accum_occupancy");
        ids.peakFilterOccupancy = id("peak_filter_occupancy");
        ids.uipc = id("uipc");
        ids.baselineUipc = id("baseline_uipc");
        ids.speedup = id("speedup");
        ids.timing = id("timing_result");
        ids.baselineTiming = id("baseline_timing_result");
        ids.wallMs = id("wall_ms");
        return ids;
    }();
    return b;
}

} // namespace metric

MetricSchema &
MetricSchema::builtin()
{
    static MetricSchema schema = [] {
        MetricSchema s;
        // registration order is the historical JSON metrics-object
        // layout — reports stay byte-identical across the API change
        s.addCounter("instructions", MetricAgg::Sum, true, true,
                     "instructions retired over the trace");
        s.addCounter("l1_read_misses", MetricAgg::Sum, true, true,
                     "demand read misses at L1");
        s.addCounter("l2_read_misses", MetricAgg::Sum, true, true,
                     "off-chip demand read misses");
        s.addCounter("l1_covered", MetricAgg::Sum, true, true,
                     "reads hitting prefetched L1 blocks");
        s.addCounter("l2_covered", MetricAgg::Sum, true, true,
                     "first uses of L2-prefetched blocks");
        s.addCounter("l1_overpredictions", MetricAgg::Sum, true, true,
                     "prefetched L1 blocks dropped unused");
        s.addCounter("l2_overpredictions", MetricAgg::Sum, true, true,
                     "prefetched L2 blocks dropped unused");
        {
            // in the metrics object but not the CSV summary
            MetricFamily f;
            f.name = "false_sharing";
            f.kind = MetricKind::Counter;
            f.agg = MetricAgg::Sum;
            f.section = MetricSection::Metrics;
            f.core = true;
            f.help = "false-sharing L2 misses (system mode)";
            s.add(std::move(f));
        }
        s.addCounter("baseline_l1_read_misses", MetricAgg::Sum, true,
                     true, "same workload, no prefetch (L1)");
        s.addCounter("baseline_l2_read_misses", MetricAgg::Sum, true,
                     true, "same workload, no prefetch (off-chip)");

        const auto id = [&s](const char *n) { return s.find(n)->id; };
        const MetricId l1c = id("l1_covered"), l2c = id("l2_covered");
        const MetricId l1m = id("l1_read_misses");
        const MetricId l2m = id("l2_read_misses");
        const MetricId l1o = id("l1_overpredictions");
        const MetricId l2o = id("l2_overpredictions");
        const MetricId b1 = id("baseline_l1_read_misses");
        const MetricId b2 = id("baseline_l2_read_misses");

        s.addRatio("l1_coverage",
                   [=](const MetricSet &m) { return ratioOf(m, l1c, b1); },
                   true, "fraction of baseline L1 misses eliminated");
        s.addRatio("l2_coverage",
                   [=](const MetricSet &m) { return ratioOf(m, l2c, b2); },
                   true, "fraction of baseline off-chip misses "
                         "eliminated");
        s.addRatio("l1_uncovered",
                   [=](const MetricSet &m) { return ratioOf(m, l1m, b1); },
                   false, "remaining L1 misses vs baseline");
        s.addRatio("l2_uncovered",
                   [=](const MetricSet &m) { return ratioOf(m, l2m, b2); },
                   false, "remaining off-chip misses vs baseline");
        s.addRatio("l1_overprediction_rate",
                   [=](const MetricSet &m) { return ratioOf(m, l1o, b1); },
                   false, "unused L1 prefetches vs baseline misses");
        s.addRatio("l2_overprediction_rate",
                   [=](const MetricSet &m) { return ratioOf(m, l2o, b2); },
                   false, "unused L2 prefetches vs baseline misses");
        s.addRatio("l1_accuracy",
                   [=](const MetricSet &m) {
                       const uint64_t den = m.u64(l1c) + m.u64(l1o);
                       return den ? double(m.u64(l1c)) / double(den)
                                  : 0.0;
                   },
                   true, "useful L1 prefetches over all issued");
        s.addRatio("l2_accuracy",
                   [=](const MetricSet &m) {
                       const uint64_t den = m.u64(l2c) + m.u64(l2o);
                       return den ? double(m.u64(l2c)) / double(den)
                                  : 0.0;
                   },
                   true, "useful L2 prefetches over all issued");

        s.addVector("oracle_l1_generations", MetricSection::Oracle,
                    "l1_generations",
                    "oracle spatial generations per region size (L1)");
        s.addVector("oracle_l2_generations", MetricSection::Oracle,
                    "l2_generations",
                    "oracle spatial generations per region size "
                    "(off-chip)");

        std::vector<std::string> buckets;
        for (size_t b = 0; b < study::kDensityBuckets; ++b)
            buckets.push_back(study::densityBucketName(b));
        s.addHistogram("l1_density", buckets,
                       "L1 misses per generation-density bucket "
                       "(density= runs)");
        s.addHistogram("l2_density", std::move(buckets),
                       "off-chip misses per generation-density bucket "
                       "(density= runs)");

        s.addCounter("peak_accum_occupancy", MetricAgg::Max, false,
                     false, "peak AGT accumulation-table demand "
                            "(L1 mode)");
        s.addCounter("peak_filter_occupancy", MetricAgg::Max, false,
                     false, "peak AGT filter-table demand (L1 mode)");

        s.addValue("uipc", MetricSection::Timing, true,
                   "user IPC under the timing model");
        s.addValue("baseline_uipc", MetricSection::Timing, true,
                   "no-prefetch user IPC");
        s.addValue("speedup", MetricSection::Timing, true,
                   "uipc over baseline_uipc");
        s.addTiming("timing_result", "this cell's full timing pass");
        s.addTiming("baseline_timing_result",
                    "the no-prefetch timing pass");
        s.addValue("wall_ms", MetricSection::Hidden, true,
                   "cell execution wall time");
        return s;
    }();
    return schema;
}

// ---------------------------------------------------------------------
// MetricSet
// ---------------------------------------------------------------------

MetricSet::Slot &
MetricSet::slot(MetricId id)
{
    if (id >= slots.size())
        slots.resize(
            std::max<size_t>(id + 1, MetricSchema::builtin().size()));
    return slots[id];
}

const MetricSet::Slot &
MetricSet::slotOrEmpty(MetricId id) const
{
    static const Slot empty;
    return id < slots.size() ? slots[id] : empty;
}

uint64_t
MetricSet::u64(MetricId id) const
{
    return slotOrEmpty(id).u;
}

void
MetricSet::setU64(MetricId id, uint64_t v)
{
    Slot &s = slot(id);
    s.u = v;
    s.present = true;
}

void
MetricSet::foldU64(MetricId id, uint64_t v)
{
    Slot &s = slot(id);
    if (s.present &&
        MetricSchema::builtin().family(id).agg == MetricAgg::Max)
        s.u = std::max(s.u, v);
    else if (s.present &&
             MetricSchema::builtin().family(id).agg == MetricAgg::First)
        ;  // keep
    else
        s.u += v;
    s.present = true;
}

double
MetricSet::value(MetricId id) const
{
    const MetricFamily &f = MetricSchema::builtin().family(id);
    if (f.kind == MetricKind::Ratio)
        return f.derive(*this);
    return slotOrEmpty(id).d;
}

void
MetricSet::setValue(MetricId id, double v)
{
    Slot &s = slot(id);
    s.d = v;
    s.present = true;
}

const std::vector<uint64_t> &
MetricSet::vec(MetricId id) const
{
    return slotOrEmpty(id).v;
}

void
MetricSet::setVec(MetricId id, std::vector<uint64_t> v)
{
    Slot &s = slot(id);
    s.v = std::move(v);
    s.present = true;
}

const sim::TimingResult &
MetricSet::timingResult(MetricId id) const
{
    return slotOrEmpty(id).t;
}

void
MetricSet::setTimingResult(MetricId id, const sim::TimingResult &t)
{
    Slot &s = slot(id);
    s.t = t;
    s.present = true;
}

void
MetricSet::aggregate(const MetricSet &other)
{
    const MetricSchema &schema = MetricSchema::builtin();
    for (const MetricFamily &f : schema.families()) {
        if (!other.present(f.id))
            continue;
        switch (f.kind) {
          case MetricKind::Counter:
            foldU64(f.id, other.u64(f.id));
            break;
          case MetricKind::Value:
            if (f.agg == MetricAgg::First && present(f.id))
                break;
            setValue(f.id, other.value(f.id));
            break;
          case MetricKind::Ratio:
            break;  // derived from the folded operands
          case MetricKind::Histogram:
          case MetricKind::Vector: {
            if (f.agg != MetricAgg::Sum ||
                (present(f.id) && !vec(f.id).empty() &&
                 vec(f.id).size() != other.vec(f.id).size())) {
                if (!present(f.id))
                    setVec(f.id, other.vec(f.id));
                break;
            }
            std::vector<uint64_t> sum = vec(f.id);
            const auto &rhs = other.vec(f.id);
            if (sum.empty())
                sum.resize(rhs.size(), 0);
            for (size_t i = 0; i < rhs.size(); ++i)
                sum[i] += rhs[i];
            setVec(f.id, std::move(sum));
            break;
          }
          case MetricKind::Timing:
            if (!present(f.id))
                setTimingResult(f.id, other.timingResult(f.id));
            break;
        }
    }
    // dynamic engine counters fold by name, first-seen order
    for (const auto &[name, count] : other.pfCounters) {
        bool found = false;
        for (auto &[n, c] : pfCounters) {
            if (n == name) {
                c += count;
                found = true;
                break;
            }
        }
        if (!found)
            pfCounters.emplace_back(name, count);
    }
}

} // namespace stems::driver
