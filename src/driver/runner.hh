/**
 * @file
 * The thread-pooled sharded runner: expands an experiment spec into
 * cells and executes them in parallel through a shared CellExecutor
 * (each cell owns its MemorySystem — runs are embarrassingly
 * parallel). Multi-process execution of the same cells lives in
 * dispatch/coordinator.hh; both paths share the executor so results
 * are identical regardless of where a cell ran.
 */

#ifndef STEMS_DRIVER_RUNNER_HH
#define STEMS_DRIVER_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "driver/executor.hh"
#include "driver/spec.hh"

namespace stems::driver {

/** Called after each cell finishes (from worker threads, serialized). */
using ProgressFn = std::function<void(const CellResult &, size_t done,
                                      size_t total)>;

/** Executes an experiment spec's cells across a thread pool. */
class Runner
{
  public:
    explicit Runner(const ExperimentSpec &spec);

    /** Run all cells; results ordered by cell id. */
    std::vector<CellResult> run(const ProgressFn &progress = {});

    /** The expanded (and cells=-filtered) cells, fixed at construction. */
    const std::vector<RunCell> &cells() const { return cells_; }

  private:
    ExperimentSpec spec;
    std::vector<RunCell> cells_;
    CellExecutor executor_;
};

} // namespace stems::driver

#endif // STEMS_DRIVER_RUNNER_HH
