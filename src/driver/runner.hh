/**
 * @file
 * The thread-pooled sharded runner: expands an experiment spec into
 * cells, executes them in parallel (each cell owns its MemorySystem —
 * runs are embarrassingly parallel), shares generated traces through a
 * thread-safe TraceCache (with optional on-disk record/replay), and
 * memoizes the per-workload baseline and timing passes that coverage
 * and speedup are reported against.
 */

#ifndef STEMS_DRIVER_RUNNER_HH
#define STEMS_DRIVER_RUNNER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "driver/registry.hh"
#include "driver/spec.hh"
#include "study/suite.hh"
#include "trace/access.hh"

namespace stems::driver {

/** Everything one cell measures. */
struct CellMetrics
{
    uint64_t instructions = 0;
    uint64_t l1ReadMisses = 0;
    uint64_t l2ReadMisses = 0;   //!< off-chip read misses
    uint64_t l1Covered = 0;      //!< reads hitting prefetched L1 blocks
    uint64_t l2Covered = 0;
    uint64_t l1Overpred = 0;     //!< prefetched blocks dropped unused
    uint64_t l2Overpred = 0;
    uint64_t baselineL1ReadMisses = 0;  //!< same workload, no prefetch
    uint64_t baselineL2ReadMisses = 0;

    Counters pfCounters;         //!< registry-harvested (e.g. SmsStats)

    // timing model (when spec.timing)
    double uipc = 0;
    double baselineUipc = 0;
    double speedup = 0;

    double wallMs = 0;           //!< cell execution wall time

    double
    l1Coverage() const
    {
        return baselineL1ReadMisses
                   ? double(l1Covered) / double(baselineL1ReadMisses)
                   : 0.0;
    }

    double
    l2Coverage() const
    {
        return baselineL2ReadMisses
                   ? double(l2Covered) / double(baselineL2ReadMisses)
                   : 0.0;
    }

    double
    l1Uncovered() const
    {
        return baselineL1ReadMisses
                   ? double(l1ReadMisses) / double(baselineL1ReadMisses)
                   : 0.0;
    }

    double
    l2Uncovered() const
    {
        return baselineL2ReadMisses
                   ? double(l2ReadMisses) / double(baselineL2ReadMisses)
                   : 0.0;
    }

    double
    l1OverpredRate() const
    {
        return baselineL1ReadMisses
                   ? double(l1Overpred) / double(baselineL1ReadMisses)
                   : 0.0;
    }

    double
    l2OverpredRate() const
    {
        return baselineL2ReadMisses
                   ? double(l2Overpred) / double(baselineL2ReadMisses)
                   : 0.0;
    }

    /** Useful prefetches over all prefetches that left the cache. */
    double
    l1Accuracy() const
    {
        const uint64_t denom = l1Covered + l1Overpred;
        return denom ? double(l1Covered) / double(denom) : 0.0;
    }

    double
    l2Accuracy() const
    {
        const uint64_t denom = l2Covered + l2Overpred;
        return denom ? double(l2Covered) / double(denom) : 0.0;
    }
};

/** One finished cell: its resolved spec point plus measurements. */
struct CellResult
{
    RunCell cell;
    CellMetrics metrics;
    std::string error;  //!< non-empty when the cell failed
};

/** Called after each cell finishes (from worker threads, serialized). */
using ProgressFn = std::function<void(const CellResult &, size_t done,
                                      size_t total)>;

/** Executes an experiment spec's cells across a thread pool. */
class Runner
{
  public:
    explicit Runner(const ExperimentSpec &spec);

    /** Run all cells; results ordered by cell id. */
    std::vector<CellResult> run(const ProgressFn &progress = {});

    /** The expanded cells (fixed at construction). */
    const std::vector<RunCell> &cells() const { return cells_; }

  private:
    struct BaselineSlot
    {
        std::once_flag once;
        uint64_t instructions = 0;
        uint64_t l1ReadMisses = 0;
        uint64_t l2ReadMisses = 0;
    };

    struct TimingSlot
    {
        std::once_flag once;
        double uipc = 0;
    };

    void runCell(const RunCell &cell, CellResult &out);
    const BaselineSlot &baseline(const RunCell &cell);
    double baselineUipc(const RunCell &cell);

    /** Per-CPU streams shared through the TraceCache (zero-copy). */
    const std::vector<trace::Trace> &streams(const RunCell &cell);

    ExperimentSpec spec;
    std::vector<RunCell> cells_;
    study::TraceCache traces;
    std::mutex memoMu;  //!< guards the memo map shapes
    std::map<std::string, BaselineSlot> baselines;
    std::map<std::string, TimingSlot> timingBaselines;
};

} // namespace stems::driver

#endif // STEMS_DRIVER_RUNNER_HH
