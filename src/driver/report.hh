/**
 * @file
 * Structured report emission for the experiment engine: JSON (for CI
 * regression diffing) and CSV (for spreadsheets/plots), plus a small
 * dependency-free JSON writer.
 */

#ifndef STEMS_DRIVER_REPORT_HH
#define STEMS_DRIVER_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/runner.hh"
#include "driver/spec.hh"

namespace stems::driver {

/** Minimal append-only JSON writer (objects, arrays, scalars). */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    JsonWriter &key(const std::string &k);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    const std::string &str() const { return out; }

    static std::string escape(const std::string &s);

  private:
    void separate();

    std::string out;
    std::vector<bool> needComma;  //!< per open scope
    bool pendingKey = false;
};

/** Full experiment report as a JSON document. */
std::string toJson(const ExperimentSpec &spec,
                   const std::vector<CellResult> &results);

/**
 * Flat per-cell CSV with a header row. Honours spec.emitWall the way
 * toJson does (wall=0 writes 0 in the wall_ms column so split runs
 * stay byte-comparable).
 */
std::string toCsv(const ExperimentSpec &spec,
                  const std::vector<CellResult> &results);

/** Human-readable summary table. */
std::string toTable(const std::vector<CellResult> &results);

/** Write @p content to @p path, or to stdout when path is "-". */
void writeReport(const std::string &path, const std::string &content);

} // namespace stems::driver

#endif // STEMS_DRIVER_REPORT_HH
