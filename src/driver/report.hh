/**
 * @file
 * Structured report emission for the experiment engine: JSON (for CI
 * regression diffing) and CSV (for spreadsheets/plots), plus a small
 * dependency-free JSON writer.
 */

#ifndef STEMS_DRIVER_REPORT_HH
#define STEMS_DRIVER_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/runner.hh"
#include "driver/spec.hh"

namespace stems::driver {

/** Minimal append-only JSON writer (objects, arrays, scalars). */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    JsonWriter &key(const std::string &k);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    const std::string &str() const { return out; }

    static std::string escape(const std::string &s);

  private:
    void separate();

    std::string out;
    std::vector<bool> needComma;  //!< per open scope
    bool pendingKey = false;
};

/**
 * One engine-folded aggregate row: every successful cell of a suite
 * group (OLTP/DSS/Web/Scientific) sharing an engine label and sweep
 * point, folded with MetricSet::aggregate() in result order.
 */
struct GroupResult
{
    std::string group;      //!< suite class name
    EngineConfig engine;    //!< first folded cell's engine
    Options sweepPoint;     //!< shared sweep assignment
    MetricSet metrics;      //!< aggregate (ratios derive on read)
    uint64_t cells = 0;     //!< cells folded in
};

/**
 * Fold @p results into per-group aggregate rows, keyed by (workload
 * class, engine display label, sweep point) in first-appearance
 * order. Since results are workload-major in suite order, the fold
 * order per row matches iterating study::workloadsInGroup() — the
 * hand-rolled folding the fig benches used to do. Error cells are
 * skipped.
 */
std::vector<GroupResult>
aggregateGroups(const std::vector<CellResult> &results);

/** Full experiment report as a JSON document. */
std::string toJson(const ExperimentSpec &spec,
                   const std::vector<CellResult> &results);

/**
 * Flat per-cell CSV with a header row. Honours spec.emitWall the way
 * toJson does (wall=0 writes 0 in the wall_ms column so split runs
 * stay byte-comparable).
 */
std::string toCsv(const ExperimentSpec &spec,
                  const std::vector<CellResult> &results);

/** Human-readable summary table. */
std::string toTable(const std::vector<CellResult> &results);

/**
 * toTable() plus, when spec.groups is set, engine-folded per-group
 * aggregate rows appended after the cell rows. With spec.groups off
 * the output is byte-identical to toTable(results).
 */
std::string toTable(const ExperimentSpec &spec,
                    const std::vector<CellResult> &results);

/** Write @p content to @p path, or to stdout when path is "-". */
void writeReport(const std::string &path, const std::string &content);

} // namespace stems::driver

#endif // STEMS_DRIVER_REPORT_HH
