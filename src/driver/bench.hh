/**
 * @file
 * The engine performance harness behind `stems bench`: wall-clock
 * measurements of the per-reference hot paths (MemorySystem::access,
 * SMS train+predict, full sim::runTiming) over a real workload trace,
 * reported as ns/ref and refs/s and emitted as machine-readable
 * BENCH_engine.json so CI can track the simulator's throughput
 * trajectory from PR to PR.
 */

#ifndef STEMS_DRIVER_BENCH_HH
#define STEMS_DRIVER_BENCH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace stems::driver {

/** Configuration of one `stems bench` invocation. */
struct BenchOptions
{
    /** Suite entries to drive with (comma-separated list accepted). */
    std::string workload = "OLTP-DB2";
    uint32_t ncpu = 16;
    uint64_t refsPerCpu = 100000;
    uint64_t seed = 1;
    uint32_t repeats = 3;    //!< best-of-N wall times
    bool quick = false;      //!< CI preset: 4 cpus, 20k refs, 2 repeats
    std::string jsonPath = "BENCH_engine.json";  //!< "-" = stdout
};

/** One measured hot path. */
struct BenchResult
{
    std::string workload;
    std::string name;    //!< memsys_access, sms_train_predict, ...
    uint64_t refs = 0;   //!< references pushed through per repeat
    double wallMs = 0;   //!< best-of-N wall time
    double nsPerRef = 0;
    double refsPerSec = 0;
};

/** Run every engine benchmark. Throws on unknown workload. */
std::vector<BenchResult> runEngineBench(const BenchOptions &opt);

/**
 * Paired whole-pipeline runs over one small cell matrix: best-of-N
 * wall with every observability sink off, then again with the span
 * recorder and stats sampler live — the number that proves the
 * flight recorder stays within measurement noise.
 */
struct ObsOverhead
{
    uint32_t cells = 0;
    double plainMs = 0;     //!< best-of-N, recorder off
    double observedMs = 0;  //!< best-of-N, recorder + sampler on
    double overheadPct = 0; //!< (observed - plain) / plain * 100
};

ObsOverhead runObsOverheadBench(const BenchOptions &opt);

/** Render results as the BENCH_engine.json document. */
std::string benchToJson(const BenchOptions &opt,
                        const std::vector<BenchResult> &results,
                        const ObsOverhead *obs = nullptr);

} // namespace stems::driver

#endif // STEMS_DRIVER_BENCH_HH
