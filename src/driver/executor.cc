#include "driver/executor.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>

#include "driver/registry.hh"
#include "obs/counters.hh"
#include "obs/histogram.hh"
#include "obs/obs.hh"
#include "sim/timing.hh"
#include "study/l1study.hh"
#include "study/memstudy.hh"

namespace stems::driver {

namespace {

double
msSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Density tracking region for @p cell, 0 when below the block grain. */
uint32_t
densityRegionFor(const RunCell &cell)
{
    const uint32_t block =
        std::max(cell.sys.l1.blockSize, cell.sys.l2.blockSize);
    return cell.densityRegion >= block ? cell.densityRegion : 0;
}

/**
 * Everything the timing pass depends on: a cell's sys config can
 * differ per cell (geometry sweeps) and generation params could
 * differ across executors sharing code paths (per-seed harnesses),
 * so both are part of the key.
 */
std::string
geometryKey(const RunCell &cell)
{
    const mem::MemSysConfig &s = cell.sys;
    return cell.workload + "/g" +
        std::to_string(s.l1.sizeBytes) + "." +
        std::to_string(s.l1.assoc) + "." +
        std::to_string(s.l1.blockSize) + "." +
        std::to_string(s.l2.sizeBytes) + "." +
        std::to_string(s.l2.assoc) + "." +
        std::to_string(s.l2.blockSize) + "/n" +
        std::to_string(cell.params.ncpu) + "/r" +
        std::to_string(cell.params.refsPerCpu) + "/s" +
        std::to_string(cell.params.seed);
}

/**
 * Baseline memo key: density tracking rides the baseline pass for
 * "none" cells, so an *effective* tracked region size (below-block
 * values disable tracking and share the untracked slot) keys its own
 * slot on top of the geometry.
 */
std::string
baselineKey(const RunCell &cell)
{
    std::string key = geometryKey(cell);
    if (const uint32_t region = densityRegionFor(cell))
        key += "/d" + std::to_string(region);
    return key;
}

/**
 * Timing memo key: the timing pass depends on everything the miss
 * baseline depends on *plus* the full engine configuration, so a cell
 * whose engine options change (e.g. a pht-entries sweep) invalidates
 * into its own slot instead of reusing a stale result. The baseline
 * pass is the "none" engine's entry — "none" takes no options, so any
 * option noise on a none engine (the top-level block= key fans out to
 * every engine) is ignored for keying. Density never reaches the
 * timing model, so the key deliberately omits it — density-swept
 * cells share one timing pass per engine.
 */
std::string
timingKey(const RunCell &cell, const EngineConfig &engine)
{
    std::string key = geometryKey(cell) + "|" + engine.kind;
    if (engine.kind != "none")
        for (const auto &[k, v] : engine.options)
            key += "," + k + "=" + v;
    return key;
}

/**
 * Oracle region trackers only make sense at or above the cell's block
 * grain (the paper computes oracle opportunity on the baseline-grain
 * hierarchy); cells swept to a coarser block skip tracking entirely.
 */
std::vector<uint32_t>
oracleSizesFor(const std::vector<uint32_t> &sizes, const RunCell &cell)
{
    const uint32_t block =
        std::max(cell.sys.l1.blockSize, cell.sys.l2.blockSize);
    for (uint32_t s : sizes)
        if (s < block)
            return {};
    return sizes;
}

/** L1-mode study configuration a cell's engine options select. */
study::L1StudyConfig
l1ConfigFor(const RunCell &cell)
{
    study::L1StudyConfig lcfg;
    lcfg.ncpu = cell.params.ncpu;
    lcfg.l1 = cell.sys.l1;
    lcfg.prefetch = cell.engine.kind == "sms";
    if (!lcfg.prefetch)
        return lcfg;
    lcfg.sms = smsConfigFromOptions(cell.engine.options);
    const std::string trainer =
        optStr(cell.engine.options, "trainer", "agt");
    if (trainer == "agt") {
        lcfg.trainer = study::TrainerKind::AGT;
    } else if (trainer == "ls") {
        lcfg.trainer = study::TrainerKind::LogicalSectored;
    } else if (trainer == "ds") {
        lcfg.trainer = study::TrainerKind::DecoupledSectored;
        // DS is the cache: it inherits the cell's L1 shape and
        // sectors it at the configured region size
        lcfg.ds.dataBytes = cell.sys.l1.sizeBytes;
        lcfg.ds.dataAssoc = cell.sys.l1.assoc;
        lcfg.ds.blockSize = cell.sys.l1.blockSize;
        lcfg.ds.sectorSize = lcfg.sms.geometry.regionSize();
        lcfg.ds.tagMult = static_cast<uint32_t>(
            optU64(cell.engine.options, "ds-tag-mult", lcfg.ds.tagMult));
    } else {
        throw std::invalid_argument("trainer=" + trainer +
                                    ": expected agt|ls|ds");
    }
    return lcfg;
}

/** Copy a density histogram array into a metric-set vector. */
std::vector<uint64_t>
histVec(const std::array<uint64_t, study::kDensityBuckets> &h)
{
    return {h.begin(), h.end()};
}

} // anonymous namespace

CellExecutor::CellExecutor(Config config) : cfg(std::move(config))
{
    if (!cfg.traceDir.empty())
        traces.setSpillDir(cfg.traceDir);
}

const CellExecutor::BaselineSlot &
CellExecutor::baseline(const RunCell &cell)
{
    BaselineSlot *slot;
    {
        std::lock_guard<std::mutex> lock(memoMu);
        slot = &baselines[baselineKey(cell)];
    }
    bool ran = false;
    std::call_once(slot->once, [&] {
        ran = true;
        obs::Span span("baseline_pass", {{"workload", cell.workload}});
        if (cell.mode == StudyMode::System) {
            study::SystemStudyConfig scfg;
            scfg.sys = cell.sys;
            scfg.oracleRegionSizes =
                oracleSizesFor(cfg.oracleRegionSizes, cell);
            if (const uint32_t region = densityRegionFor(cell)) {
                scfg.trackDensity = true;
                scfg.densityRegionSize = region;
            }
            auto r = study::runSystem(viewSet(cell), scfg,
                                      cell.params.seed);
            slot->instructions = r.instructions;
            slot->l1ReadMisses = r.l1ReadMisses;
            slot->l2ReadMisses = r.l2ReadMisses;
            slot->falseSharing = r.falseSharing;
            slot->oracleL1Gens = r.oracleL1Gens;
            slot->oracleL2Gens = r.oracleL2Gens;
            slot->l1Density = r.l1Density;
            slot->l2Density = r.l2Density;
        } else {
            study::L1StudyConfig lcfg;
            lcfg.ncpu = cell.params.ncpu;
            lcfg.l1 = cell.sys.l1;
            lcfg.prefetch = false;
            auto r = study::runL1Study(viewSet(cell), lcfg,
                                       cell.params.seed);
            slot->instructions = r.instructions;
            slot->l1ReadMisses = r.readMisses;
        }
    });
    // `ran` is true exactly once per memo slot regardless of thread
    // count, so hit/miss totals are deterministic 1-vs-N threads
    obs::count(ran ? &obs::Counters::baselineMemoMisses
                   : &obs::Counters::baselineMemoHits);
    return *slot;
}

const trace::StreamSet &
CellExecutor::viewSet(const RunCell &cell)
{
    return traces.viewSet(cell.workload, cell.params);
}

void
CellExecutor::prefetch(const RunCell &cell)
{
    obs::Span span("trace_stream", {{"workload", cell.workload}});
    try {
        traces.prepare(cell.workload, cell.params);
        obs::count(&obs::Counters::tracePrefetchAhead);
    } catch (const std::exception &) {
        // leave the failure to the executing thread, which reports it
    }
}

bool
CellExecutor::prepared(const RunCell &cell)
{
    return traces.ready(cell.workload, cell.params);
}

const sim::TimingResult &
CellExecutor::timingRun(const RunCell &cell, const EngineConfig &engine)
{
    TimingSlot *slot;
    {
        std::lock_guard<std::mutex> lock(memoMu);
        slot = &timingRuns[timingKey(cell, engine)];
    }
    bool ran = false;
    std::call_once(slot->once, [&] {
        ran = true;
        obs::Span span("timing_pass", {{"workload", cell.workload},
                                       {"engine", engine.kind}});
        sim::TimingConfig tc;
        tc.sys = cell.sys;
        // every engine — "none" included — attaches through the
        // registry: the timing model has no engine-specific wiring
        std::unique_ptr<PrefetcherDeployment> dep;
        slot->result =
            sim::runTiming(viewSet(cell), tc, cell.params.seed,
                           registryAttach(engine.kind, dep,
                                          engine.options));
    });
    obs::count(ran ? &obs::Counters::timingMemoMisses
                   : &obs::Counters::timingMemoHits);
    return slot->result;
}

void
CellExecutor::runCell(const RunCell &cell, CellResult &out)
{
    const auto t0 = std::chrono::steady_clock::now();
    out.cell = cell;
    MetricSet &m = out.metrics;
    const metric::Builtin &M = metric::ids();

    if (cell.mode == StudyMode::System &&
        optStr(cell.engine.options, "trainer", "agt") != "agt")
        throw std::invalid_argument(
            "trainer= selects an L1-mode training structure "
            "(requires mode=l1)");

    // each phase gets a trace span and a named wall-time entry in the
    // result's telemetry sidecar (dispatch workers ship these back for
    // the coordinator's straggler table)
    auto phase = [&](const char *name, auto &&body) {
        obs::Span span(name, {{"workload", cell.workload},
                              {"engine", cell.engine.kind}});
        const auto p0 = std::chrono::steady_clock::now();
        body();
        out.telemetry.phases.emplace_back(name, msSince(p0));
    };

    // warm the trace cache up front so generation/replay cost is
    // attributed to the trace phase, not whichever study ran first
    phase("trace", [&] { viewSet(cell); });

    if (!cell.timingOnly) {
        const BaselineSlot *base = nullptr;
        phase("baseline", [&] { base = &baseline(cell); });

        if (cell.engine.kind == "none") {
            // a "none" cell IS the baseline run — reuse the memoized pass
            m.setU64(M.instructions, base->instructions);
            m.setU64(M.l1ReadMisses, base->l1ReadMisses);
            m.setU64(M.l2ReadMisses, base->l2ReadMisses);
            m.setU64(M.falseSharing, base->falseSharing);
            m.setVec(M.oracleL1Gens, base->oracleL1Gens);
            m.setVec(M.oracleL2Gens, base->oracleL2Gens);
            if (densityRegionFor(cell)) {
                m.setVec(M.l1Density, histVec(base->l1Density));
                m.setVec(M.l2Density, histVec(base->l2Density));
            }
        } else if (cell.mode == StudyMode::System) {
            phase("system_study", [&] {
                study::SystemStudyConfig scfg;
                scfg.sys = cell.sys;
                scfg.oracleRegionSizes =
                    oracleSizesFor(cfg.oracleRegionSizes, cell);
                if (const uint32_t region = densityRegionFor(cell)) {
                    scfg.trackDensity = true;
                    scfg.densityRegionSize = region;
                }
                std::unique_ptr<PrefetcherDeployment> dep;
                auto r = study::runSystem(
                    viewSet(cell), scfg, cell.params.seed,
                    registryAttach(cell.engine.kind, dep,
                                   cell.engine.options));
                m.setU64(M.instructions, r.instructions);
                m.setU64(M.l1ReadMisses, r.l1ReadMisses);
                m.setU64(M.l2ReadMisses, r.l2ReadMisses);
                m.setU64(M.l1Covered, r.l1Covered);
                m.setU64(M.l2Covered, r.l2Covered);
                m.setU64(M.l1Overpred, r.l1Overpred);
                m.setU64(M.l2Overpred, r.l2Overpred);
                m.setU64(M.falseSharing, r.falseSharing);
                m.setVec(M.oracleL1Gens, r.oracleL1Gens);
                m.setVec(M.oracleL2Gens, r.oracleL2Gens);
                if (scfg.trackDensity) {
                    m.setVec(M.l1Density, histVec(r.l1Density));
                    m.setVec(M.l2Density, histVec(r.l2Density));
                }
                if (dep)
                    m.pfCounters = dep->counters();
            });
        } else {
            phase("l1_study", [&] {
                auto r = study::runL1Study(viewSet(cell),
                                           l1ConfigFor(cell),
                                           cell.params.seed);
                m.setU64(M.instructions, r.instructions);
                m.setU64(M.l1ReadMisses, r.readMisses);
                m.setU64(M.l1Covered, r.coveredReads);
                m.setU64(M.l1Overpred, r.overpredictions);
                m.setU64(M.peakAccumOccupancy, r.peakAccumOccupancy);
                m.setU64(M.peakFilterOccupancy, r.peakFilterOccupancy);
            });
        }

        m.setU64(M.baselineL1ReadMisses, base->l1ReadMisses);
        m.setU64(M.baselineL2ReadMisses, base->l2ReadMisses);
    }

    if (cell.timing) {
        phase("timing", [&] {
            // the engine-agnostic timing pipeline: the baseline is just
            // the "none" engine's memoized pass, and every registry
            // prefetcher runs through the same attach seam
            EngineConfig none;
            const sim::TimingResult &baseTiming = timingRun(cell, none);
            m.setTimingResult(M.baselineTiming, baseTiming);
            m.setValue(M.baselineUipc, baseTiming.uipc());
            const sim::TimingResult &engineTiming =
                cell.engine.kind == "none"
                    ? baseTiming
                    : timingRun(cell, cell.engine);
            m.setTimingResult(M.timing, engineTiming);
            m.setValue(M.uipc, engineTiming.uipc());
            if (baseTiming.uipc() > 0 && engineTiming.uipc() > 0)
                m.setValue(M.speedup,
                           engineTiming.uipc() / baseTiming.uipc());
        });
    }

    m.setWallMs(msSince(t0));
}

CellExecutor::Config
executorConfig(const ExperimentSpec &spec)
{
    CellExecutor::Config cfg;
    cfg.traceDir = spec.traceDir;
    cfg.oracleRegionSizes = spec.oracleRegionSizes;
    return cfg;
}

CellResult
CellExecutor::execute(const RunCell &cell)
{
    CellResult out;
    obs::count(&obs::Counters::cellsExecuted);
    const auto t0 = std::chrono::steady_clock::now();
    try {
        runCell(cell, out);
    } catch (const std::exception &e) {
        out.cell = cell;
        out.error = e.what();
    }
    obs::recordHist(&obs::Histograms::cellWallUs,
                    static_cast<uint64_t>(msSince(t0) * 1000.0));
    return out;
}

} // namespace stems::driver
