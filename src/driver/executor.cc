#include "driver/executor.hh"

#include <algorithm>
#include <chrono>
#include <exception>

#include "driver/registry.hh"
#include "sim/timing.hh"
#include "study/l1study.hh"
#include "study/memstudy.hh"

namespace stems::driver {

namespace {

double
msSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Memo key: a cell's sys config can differ per cell (geometry sweeps)
 * and generation params could differ across executors sharing code
 * paths (per-seed harnesses), so both are part of the key.
 */
std::string
baselineKey(const RunCell &cell)
{
    const mem::MemSysConfig &s = cell.sys;
    return cell.workload + "/g" +
        std::to_string(s.l1.sizeBytes) + "." +
        std::to_string(s.l1.assoc) + "." +
        std::to_string(s.l1.blockSize) + "." +
        std::to_string(s.l2.sizeBytes) + "." +
        std::to_string(s.l2.assoc) + "." +
        std::to_string(s.l2.blockSize) + "/n" +
        std::to_string(cell.params.ncpu) + "/r" +
        std::to_string(cell.params.refsPerCpu) + "/s" +
        std::to_string(cell.params.seed);
}

/**
 * Timing memo key: the timing pass depends on everything the miss
 * baseline depends on *plus* the full engine configuration, so a cell
 * whose engine options change (e.g. a pht-entries sweep) invalidates
 * into its own slot instead of reusing a stale result. The baseline
 * pass is the "none" engine's entry — "none" takes no options, so any
 * option noise on a none engine (the top-level block= key fans out to
 * every engine) is ignored for keying.
 */
std::string
timingKey(const RunCell &cell, const EngineConfig &engine)
{
    std::string key = baselineKey(cell) + "|" + engine.kind;
    if (engine.kind != "none")
        for (const auto &[k, v] : engine.options)
            key += "," + k + "=" + v;
    return key;
}

/**
 * Oracle region trackers only make sense at or above the cell's block
 * grain (the paper computes oracle opportunity on the baseline-grain
 * hierarchy); cells swept to a coarser block skip tracking entirely.
 */
std::vector<uint32_t>
oracleSizesFor(const std::vector<uint32_t> &sizes, const RunCell &cell)
{
    const uint32_t block =
        std::max(cell.sys.l1.blockSize, cell.sys.l2.blockSize);
    for (uint32_t s : sizes)
        if (s < block)
            return {};
    return sizes;
}

} // anonymous namespace

CellExecutor::CellExecutor(Config config) : cfg(std::move(config))
{
    if (!cfg.traceDir.empty())
        traces.setSpillDir(cfg.traceDir);
}

const CellExecutor::BaselineSlot &
CellExecutor::baseline(const RunCell &cell)
{
    BaselineSlot *slot;
    {
        std::lock_guard<std::mutex> lock(memoMu);
        slot = &baselines[baselineKey(cell)];
    }
    std::call_once(slot->once, [&] {
        if (cell.mode == StudyMode::System) {
            study::SystemStudyConfig scfg;
            scfg.sys = cell.sys;
            scfg.oracleRegionSizes =
                oracleSizesFor(cfg.oracleRegionSizes, cell);
            auto r = study::runSystem(streams(cell), scfg,
                                      cell.params.seed);
            slot->instructions = r.instructions;
            slot->l1ReadMisses = r.l1ReadMisses;
            slot->l2ReadMisses = r.l2ReadMisses;
            slot->falseSharing = r.falseSharing;
            slot->oracleL1Gens = r.oracleL1Gens;
            slot->oracleL2Gens = r.oracleL2Gens;
        } else {
            study::L1StudyConfig lcfg;
            lcfg.ncpu = cell.params.ncpu;
            lcfg.l1 = cell.sys.l1;
            lcfg.prefetch = false;
            auto r = study::runL1Study(
                traces.get(cell.workload, cell.params), lcfg);
            slot->instructions = r.instructions;
            slot->l1ReadMisses = r.readMisses;
        }
    });
    return *slot;
}

const std::vector<trace::Trace> &
CellExecutor::streams(const RunCell &cell)
{
    return traces.streams(cell.workload, cell.params);
}

const sim::TimingResult &
CellExecutor::timingRun(const RunCell &cell, const EngineConfig &engine)
{
    TimingSlot *slot;
    {
        std::lock_guard<std::mutex> lock(memoMu);
        slot = &timingRuns[timingKey(cell, engine)];
    }
    std::call_once(slot->once, [&] {
        sim::TimingConfig tc;
        tc.sys = cell.sys;
        // every engine — "none" included — attaches through the
        // registry: the timing model has no engine-specific wiring
        std::unique_ptr<PrefetcherDeployment> dep;
        slot->result =
            sim::runTiming(streams(cell), tc, cell.params.seed,
                           registryAttach(engine.kind, dep,
                                          engine.options));
    });
    return slot->result;
}

void
CellExecutor::runCell(const RunCell &cell, CellResult &out)
{
    const auto t0 = std::chrono::steady_clock::now();
    out.cell = cell;
    CellMetrics &m = out.metrics;

    if (!cell.timingOnly) {
        if (cell.engine.kind == "none") {
            // a "none" cell IS the baseline run — reuse the memoized pass
            const BaselineSlot &base = baseline(cell);
            m.instructions = base.instructions;
            m.l1ReadMisses = base.l1ReadMisses;
            m.l2ReadMisses = base.l2ReadMisses;
            m.falseSharing = base.falseSharing;
            m.oracleL1Gens = base.oracleL1Gens;
            m.oracleL2Gens = base.oracleL2Gens;
        } else if (cell.mode == StudyMode::System) {
            study::SystemStudyConfig scfg;
            scfg.sys = cell.sys;
            scfg.oracleRegionSizes =
                oracleSizesFor(cfg.oracleRegionSizes, cell);
            std::unique_ptr<PrefetcherDeployment> dep;
            auto r = study::runSystem(
                streams(cell), scfg, cell.params.seed,
                registryAttach(cell.engine.kind, dep,
                               cell.engine.options));
            m.instructions = r.instructions;
            m.l1ReadMisses = r.l1ReadMisses;
            m.l2ReadMisses = r.l2ReadMisses;
            m.l1Covered = r.l1Covered;
            m.l2Covered = r.l2Covered;
            m.l1Overpred = r.l1Overpred;
            m.l2Overpred = r.l2Overpred;
            m.falseSharing = r.falseSharing;
            m.oracleL1Gens = r.oracleL1Gens;
            m.oracleL2Gens = r.oracleL2Gens;
            if (dep)
                m.pfCounters = dep->counters();
        } else {
            study::L1StudyConfig lcfg;
            lcfg.ncpu = cell.params.ncpu;
            lcfg.l1 = cell.sys.l1;
            lcfg.prefetch = cell.engine.kind == "sms";
            if (lcfg.prefetch)
                lcfg.sms = smsConfigFromOptions(cell.engine.options);
            auto r = study::runL1Study(
                traces.get(cell.workload, cell.params), lcfg);
            m.instructions = r.instructions;
            m.l1ReadMisses = r.readMisses;
            m.l1Covered = r.coveredReads;
            m.l1Overpred = r.overpredictions;
            m.peakAccumOccupancy = r.peakAccumOccupancy;
            m.peakFilterOccupancy = r.peakFilterOccupancy;
        }

        const BaselineSlot &base = baseline(cell);
        m.baselineL1ReadMisses = base.l1ReadMisses;
        m.baselineL2ReadMisses = base.l2ReadMisses;
    }

    if (cell.timing) {
        // the engine-agnostic timing pipeline: the baseline is just
        // the "none" engine's memoized pass, and every registry
        // prefetcher runs through the same attach seam
        EngineConfig none;
        m.baselineTiming = timingRun(cell, none);
        m.baselineUipc = m.baselineTiming.uipc();
        m.timing = cell.engine.kind == "none"
                       ? m.baselineTiming
                       : timingRun(cell, cell.engine);
        m.uipc = m.timing.uipc();
        if (m.baselineUipc > 0 && m.uipc > 0)
            m.speedup = m.uipc / m.baselineUipc;
    }

    m.wallMs = msSince(t0);
}

CellExecutor::Config
executorConfig(const ExperimentSpec &spec)
{
    CellExecutor::Config cfg;
    cfg.traceDir = spec.traceDir;
    cfg.oracleRegionSizes = spec.oracleRegionSizes;
    return cfg;
}

CellResult
CellExecutor::execute(const RunCell &cell)
{
    CellResult out;
    try {
        runCell(cell, out);
    } catch (const std::exception &e) {
        out.cell = cell;
        out.error = e.what();
    }
    return out;
}

} // namespace stems::driver
