#include "driver/spec.hh"

#include <stdexcept>

#include "fault/fault.hh"
#include "study/suite.hh"

namespace stems::driver {

namespace {

/** Expand config=FILE tokens into their contents, depth-first. */
std::vector<std::pair<std::string, std::string>>
flattenTokens(const std::vector<std::string> &tokens, int depth = 0)
{
    if (depth > 8)
        throw std::invalid_argument("config files nested too deeply");
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto &tok : tokens) {
        auto [key, value] = parseKeyValue(tok);
        if (key == "config") {
            auto nested = flattenTokens(readConfigFile(value), depth + 1);
            out.insert(out.end(), nested.begin(), nested.end());
        } else {
            out.emplace_back(key, value);
        }
    }
    return out;
}

std::vector<std::string>
resolveWorkloads(const std::string &value)
{
    std::vector<std::string> out;
    for (const auto &name : splitList(value)) {
        if (name == "paper") {
            for (const auto &e : workloads::paperSuite())
                out.push_back(e.name);
        } else if (name == "all") {
            for (const auto &e : workloads::fullSuite())
                out.push_back(e.name);
        } else if (workloads::findWorkload(name)) {
            out.push_back(name);
        } else {
            std::string known;
            for (const auto &e : workloads::fullSuite())
                known += (known.empty() ? "" : ", ") + e.name;
            throw std::invalid_argument("unknown workload \"" + name +
                                        "\" (known: " + known +
                                        ", paper, all)");
        }
    }
    return out;
}

std::vector<EngineConfig>
resolveEngines(const std::string &value)
{
    const auto &reg = PrefetcherRegistry::builtin();
    std::vector<EngineConfig> out;
    for (const auto &item : splitList(value)) {
        EngineConfig e;
        size_t colon = item.find(':');
        e.kind = item.substr(0, colon);
        if (colon != std::string::npos)
            e.label = item.substr(colon + 1);
        if (!reg.has(e.kind)) {
            std::string known;
            for (const auto &n : reg.names())
                known += (known.empty() ? "" : ", ") + n;
            throw std::invalid_argument("unknown prefetcher \"" + e.kind +
                                        "\" (known: " + known + ")");
        }
        for (const auto &prev : out) {
            if (prev.displayLabel() == e.displayLabel())
                throw std::invalid_argument(
                    "duplicate prefetcher label \"" + e.displayLabel() +
                    "\" (use kind:label to disambiguate)");
        }
        out.push_back(std::move(e));
    }
    return out;
}

/** Parse one numeric value under its key's error message. */
uint64_t
parseU64(const std::string &key, const std::string &value, uint64_t def)
{
    Options o{{key, value}};
    return optU64(o, key, def);
}

/** Apply one cache-geometry key to a system config. */
void
applyGeometry(mem::MemSysConfig &sys, const std::string &key,
              const std::string &value)
{
    const uint64_t v = parseU64(key, value, 0);
    if (v == 0)
        throw std::invalid_argument(key + "=" + value +
                                    ": must be positive");
    if (key == "block") {
        sys.l1.blockSize = static_cast<uint32_t>(v);
        sys.l2.blockSize = static_cast<uint32_t>(v);
    } else if (key == "l1-kb") {
        sys.l1.sizeBytes = v * 1024;
    } else if (key == "l2-kb") {
        sys.l2.sizeBytes = v * 1024;
    } else if (key == "l2-mb") {
        sys.l2.sizeBytes = v * 1024 * 1024;
    } else if (key == "l1-assoc") {
        sys.l1.assoc = static_cast<uint32_t>(v);
    } else if (key == "l2-assoc") {
        sys.l2.assoc = static_cast<uint32_t>(v);
    }
}

/**
 * Parse a cell filter ("3", "0-7", "1,4-6") into inclusive id ranges;
 * throws std::invalid_argument on malformed input.
 */
std::vector<std::pair<uint32_t, uint32_t>>
parseCellRanges(const std::string &filter)
{
    std::vector<std::pair<uint32_t, uint32_t>> ranges;
    for (const auto &item : splitList(filter)) {
        const size_t dash = item.find('-');
        try {
            size_t pos = 0;
            uint32_t lo, hi;
            if (dash == std::string::npos) {
                lo = hi = static_cast<uint32_t>(std::stoul(item, &pos));
                if (pos != item.size())
                    throw std::invalid_argument(item);
            } else {
                const std::string a = item.substr(0, dash);
                const std::string b = item.substr(dash + 1);
                lo = static_cast<uint32_t>(std::stoul(a, &pos));
                if (pos != a.size())
                    throw std::invalid_argument(item);
                hi = static_cast<uint32_t>(std::stoul(b, &pos));
                if (pos != b.size())
                    throw std::invalid_argument(item);
            }
            if (lo > hi)
                throw std::invalid_argument(item);
            ranges.emplace_back(lo, hi);
        } catch (const std::exception &) {
            throw std::invalid_argument(
                "cells=" + filter +
                ": expected comma list of ids and A-B ranges");
        }
    }
    if (ranges.empty())
        throw std::invalid_argument("cells=: empty filter");
    return ranges;
}

/**
 * Reject option keys no prefetcher in the spec understands — a typo'd
 * pf./opt./sweep. key would otherwise silently run with defaults.
 * (Cache-geometry axes are legal only as sweep.* axes or top-level
 * keys; the sweep branch skips this check for them. An opt./pf.
 * geometry key would land in the engine's option bag where nothing
 * reads it, so it stays rejected here.)
 */
void
checkOptionKnown(const std::vector<EngineConfig> &engines,
                 const std::string &opt, const std::string &where)
{
    const auto &reg = PrefetcherRegistry::builtin();
    for (const auto &e : engines)
        if (reg.knowsOption(e.kind, opt))
            return;
    std::string kinds, known;
    for (const auto &e : engines) {
        kinds += (kinds.empty() ? "" : ", ") + e.kind;
        for (const auto &k : reg.optionKeys(e.kind))
            known += (known.empty() ? "" : ", ") + k;
    }
    throw std::invalid_argument(
        where + ": no selected prefetcher (" + kinds +
        ") understands option \"" + opt + "\"" +
        (known.empty() ? "" : " (known: " + known + ")"));
}

} // anonymous namespace

bool
isGeometryKey(const std::string &key)
{
    return key == "block" || key == "l1-kb" || key == "l2-kb" ||
        key == "l2-mb" || key == "l1-assoc" || key == "l2-assoc";
}

ExperimentSpec
parseSpec(const std::vector<std::string> &tokens)
{
    auto kvs = flattenTokens(tokens);

    ExperimentSpec spec;
    spec.params = study::defaultParams();
    spec.workloads = resolveWorkloads("paper");
    spec.engines = resolveEngines("sms");

    // pass 1: structure-defining keys
    for (const auto &[key, value] : kvs) {
        if (key == "workloads")
            spec.workloads = resolveWorkloads(value);
        else if (key == "prefetchers")
            spec.engines = resolveEngines(value);
    }

    // pass 2: everything else (pf.* needs the engine list)
    for (const auto &[key, value] : kvs) {
        if (key == "workloads" || key == "prefetchers") {
            // handled above
        } else if (key.rfind("opt.", 0) == 0) {
            const std::string opt = key.substr(4);
            checkOptionKnown(spec.engines, opt, key);
            for (auto &e : spec.engines)
                e.options[opt] = value;
        } else if (key.rfind("pf.", 0) == 0) {
            size_t dot = key.find('.', 3);
            if (dot == std::string::npos)
                throw std::invalid_argument(
                    "expected pf.<label>.<option>, got \"" + key + "\"");
            const std::string label = key.substr(3, dot - 3);
            const std::string opt = key.substr(dot + 1);
            bool found = false;
            for (auto &e : spec.engines) {
                if (e.displayLabel() == label) {
                    checkOptionKnown({e}, opt, key);
                    e.options[opt] = value;
                    found = true;
                }
            }
            if (!found)
                throw std::invalid_argument(
                    "pf option for unknown prefetcher label \"" + label +
                    "\"");
        } else if (key.rfind("sweep.", 0) == 0) {
            const std::string opt = key.substr(6);
            // geometry axes reshape every cell's hierarchy and the
            // density axis retunes the cell's trackers — neither
            // parameterizes a prefetcher, so they need no engine
            if (!isGeometryKey(opt) && opt != "density")
                checkOptionKnown(spec.engines, opt, key);
            auto values = splitList(value);
            if (values.empty())
                throw std::invalid_argument("empty sweep axis " + key);
            if (opt == "density") {
                for (const auto &v : values) {
                    const uint64_t size = parseU64(key, v, 0);
                    if (size != 0 && (size & (size - 1)) != 0)
                        throw std::invalid_argument(
                            key + "=" + v +
                            ": region sizes must be powers of two");
                }
            }
            bool replaced = false;
            for (auto &axis : spec.sweeps) {
                if (axis.first == opt) {
                    axis.second = values;
                    replaced = true;
                }
            }
            if (!replaced)
                spec.sweeps.emplace_back(opt, std::move(values));
        } else if (key == "ncpu") {
            Options o{{key, value}};
            spec.params.ncpu =
                static_cast<uint32_t>(optU64(o, key, spec.params.ncpu));
            if (spec.params.ncpu == 0)
                throw std::invalid_argument("ncpu must be positive");
        } else if (key == "refs") {
            Options o{{key, value}};
            spec.params.refsPerCpu =
                optU64(o, key, spec.params.refsPerCpu);
        } else if (key == "seed") {
            Options o{{key, value}};
            spec.params.seed = optU64(o, key, spec.params.seed);
        } else if (key == "threads") {
            Options o{{key, value}};
            spec.threads =
                static_cast<uint32_t>(optU64(o, key, spec.threads));
        } else if (key == "mode") {
            if (value == "system")
                spec.mode = StudyMode::System;
            else if (value == "l1")
                spec.mode = StudyMode::L1;
            else
                throw std::invalid_argument("mode=" + value +
                                            ": expected system|l1");
        } else if (key == "timing") {
            if (value == "only") {
                // skip the system-study pass (and its memoized miss
                // baseline) whose metrics pure timing harnesses never
                // read — roughly halves per-cell work
                spec.timing = true;
                spec.timingOnly = true;
            } else {
                Options o{{key, value}};
                spec.timing = optBool(o, key, spec.timing);
                spec.timingOnly = false;
            }
        } else if (key == "trace-dir") {
            spec.traceDir = value;
        } else if (key == "json") {
            spec.jsonPath = value;
        } else if (key == "csv") {
            spec.csvPath = value;
        } else if (key == "table") {
            Options o{{key, value}};
            spec.table = optBool(o, key, spec.table);
        } else if (key == "quiet") {
            Options o{{key, value}};
            spec.quiet = optBool(o, key, spec.quiet);
        } else if (key == "groups") {
            Options o{{key, value}};
            spec.groups = optBool(o, key, spec.groups);
        } else if (key == "trace-out") {
            spec.traceOut = value;
        } else if (key == "telemetry-out") {
            spec.telemetryOut = value;
        } else if (key == "stats-out") {
            spec.statsOut = value;
        } else if (key == "stats-interval-ms") {
            spec.statsIntervalMs = static_cast<uint32_t>(
                parseU64(key, value, spec.statsIntervalMs));
            if (spec.statsIntervalMs == 0)
                throw std::invalid_argument(
                    "stats-interval-ms must be positive");
        } else if (key == "schedule") {
            if (value == "cost")
                spec.scheduleCost = true;
            else if (value == "fifo")
                spec.scheduleCost = false;
            else
                throw std::invalid_argument(
                    "schedule=" + value + ": expected cost|fifo");
        } else if (key == "schedule-from") {
            spec.scheduleFrom = value;
        } else if (key == "stream") {
            Options o{{key, value}};
            spec.stream = optBool(o, key, spec.stream);
        } else if (key == "stream-ahead") {
            spec.streamAhead = static_cast<uint32_t>(
                parseU64(key, value, spec.streamAhead));
        } else if (key == "stream-watermark-mb") {
            spec.streamWatermarkMb = static_cast<uint32_t>(
                parseU64(key, value, spec.streamWatermarkMb));
            if (spec.streamWatermarkMb == 0)
                throw std::invalid_argument(
                    "stream-watermark-mb must be positive");
        } else if (key == "telemetry") {
            Options o{{key, value}};
            spec.telemetry = optBool(o, key, spec.telemetry);
        } else if (key == "block") {
            applyGeometry(spec.sys, key, value);
            for (auto &e : spec.engines)
                e.options.emplace("block", value);  // keep pf.* override
        } else if (isGeometryKey(key)) {
            applyGeometry(spec.sys, key, value);
        } else if (key == "density") {
            const uint64_t size = parseU64(key, value, 0);
            if (size != 0 && (size & (size - 1)) != 0)
                throw std::invalid_argument(
                    key + "=" + value +
                    ": region size must be a power of two (or 0 = "
                    "off)");
            spec.densityRegion = static_cast<uint32_t>(size);
        } else if (key == "oracle-regions") {
            spec.oracleRegionSizes.clear();
            for (const auto &v : splitList(value)) {
                const uint64_t size = parseU64(key, v, 0);
                if (size == 0 || (size & (size - 1)) != 0)
                    throw std::invalid_argument(
                        key + "=" + value +
                        ": sizes must be powers of two");
                spec.oracleRegionSizes.push_back(
                    static_cast<uint32_t>(size));
            }
        } else if (key == "cells") {
            (void)parseCellRanges(value);  // fail early on bad input
            spec.cellFilter = value;
        } else if (key == "dispatch") {
            spec.dispatch = static_cast<uint32_t>(
                parseU64(key, value, spec.dispatch));
        } else if (key == "dispatch-timeout-ms") {
            spec.dispatchTimeoutMs = static_cast<uint32_t>(
                parseU64(key, value, spec.dispatchTimeoutMs));
        } else if (key == "dispatch-retries") {
            spec.dispatchRetries = static_cast<uint32_t>(
                parseU64(key, value, spec.dispatchRetries));
            if (spec.dispatchRetries == 0)
                throw std::invalid_argument(
                    "dispatch-retries must be positive");
        } else if (key == "dispatch-heartbeat-ms") {
            spec.dispatchHeartbeatMs = static_cast<uint32_t>(
                parseU64(key, value, spec.dispatchHeartbeatMs));
        } else if (key == "dispatch-backoff-ms") {
            spec.dispatchBackoffMs = static_cast<uint32_t>(
                parseU64(key, value, spec.dispatchBackoffMs));
        } else if (key == "dispatch-speculate") {
            Options o{{key, value}};
            spec.dispatchSpeculate =
                optBool(o, key, spec.dispatchSpeculate);
        } else if (key == "workers") {
            spec.dispatchWorkers = value;
        } else if (key == "spawn-cmd") {
            spec.dispatchSpawnCmd = value;
        } else if (key == "dispatch-pipeline") {
            Options o{{key, value}};
            spec.dispatchPipeline =
                optBool(o, key, spec.dispatchPipeline);
        } else if (key == "fault-plan") {
            (void)fault::parsePlan(value);  // fail early on bad input
            spec.faultPlan = value;
        } else if (key == "journal") {
            spec.journalPath = value;
        } else if (key == "resume") {
            Options o{{key, value}};
            spec.resume = optBool(o, key, spec.resume);
        } else if (key == "wall") {
            Options o{{key, value}};
            spec.emitWall = optBool(o, key, spec.emitWall);
        } else {
            throw std::invalid_argument("unknown key \"" + key +
                                        "\" (see stems help)");
        }
    }

    spec.sys.ncpu = spec.params.ncpu;

    if (spec.mode == StudyMode::L1) {
        for (const auto &e : spec.engines) {
            if (e.kind != "sms" && e.kind != "none")
                throw std::invalid_argument(
                    "mode=l1 supports only sms and none prefetchers "
                    "(got " + e.kind + ")");
        }
        if (spec.timing)
            throw std::invalid_argument(
                "timing requires mode=system");
        bool sweepsDensity = false;
        for (const auto &axis : spec.sweeps)
            sweepsDensity = sweepsDensity || axis.first == "density";
        if (spec.densityRegion || sweepsDensity)
            throw std::invalid_argument(
                "density= histograms ride the system study "
                "(requires mode=system)");
    } else {
        // the trainer axis selects an L1-mode training structure
        auto rejectTrainer = [](bool hit) {
            if (hit)
                throw std::invalid_argument(
                    "trainer= selects an L1-mode training structure "
                    "(requires mode=l1)");
        };
        for (const auto &e : spec.engines)
            rejectTrainer(e.options.count("trainer") != 0);
        for (const auto &axis : spec.sweeps)
            rejectTrainer(axis.first == "trainer");
    }

    if (spec.resume && spec.journalPath.empty())
        throw std::invalid_argument(
            "resume=1 needs a journal=FILE to splice results from");

    if (!spec.dispatchSpawnCmd.empty() && spec.dispatchWorkers.empty())
        throw std::invalid_argument(
            "spawn-cmd= needs workers=ADDR,... to name the endpoints "
            "it launches");

    return spec;
}

std::vector<RunCell>
expandSpec(const ExperimentSpec &spec)
{
    const auto &reg = PrefetcherRegistry::builtin();

    // cartesian product of sweep axes, last axis fastest; axes an
    // engine's kind does not understand are skipped for that engine so
    // a mixed matrix does not duplicate identical cells (geometry axes
    // reshape every engine's hierarchy, so they are never skipped)
    auto pointsFor = [&](const EngineConfig &e) {
        std::vector<Options> points{Options{}};
        for (const auto &[opt, values] : spec.sweeps) {
            if (!isGeometryKey(opt) && opt != "density" &&
                !reg.knowsOption(e.kind, opt))
                continue;
            std::vector<Options> next;
            for (const auto &base : points) {
                for (const auto &v : values) {
                    Options p = base;
                    p[opt] = v;
                    next.push_back(std::move(p));
                }
            }
            points = std::move(next);
        }
        return points;
    };

    std::vector<RunCell> cells;
    uint32_t id = 0;
    for (const auto &w : spec.workloads) {
        for (const auto &e : spec.engines) {
            for (const auto &point : pointsFor(e)) {
                RunCell cell;
                cell.id = id++;
                cell.workload = w;
                cell.engine = e;
                cell.sweepPoint = point;
                cell.params = spec.params;
                cell.sys = spec.sys;
                cell.densityRegion = spec.densityRegion;
                for (const auto &[k, v] : point) {
                    // geometry axes reshape this cell's hierarchy;
                    // block additionally reaches the prefetcher (its
                    // stream granularity must match the caches); the
                    // density axis retunes the cell's trackers
                    if (k == "density") {
                        cell.densityRegion = static_cast<uint32_t>(
                            optU64(point, k, 0));
                        continue;
                    }
                    if (isGeometryKey(k))
                        applyGeometry(cell.sys, k, v);
                    if (!isGeometryKey(k) || k == "block")
                        cell.engine.options[k] = v;  // sweep overrides
                }
                // a per-engine block override (pf.LABEL.block) must
                // reshape this cell's caches too, or the prefetcher
                // would run at a different granularity than the
                // hierarchy
                auto blk = cell.engine.options.find("block");
                if (blk != cell.engine.options.end()) {
                    const auto bytes = static_cast<uint32_t>(
                        optU64(cell.engine.options, "block",
                               spec.sys.l1.blockSize));
                    cell.sys.l1.blockSize = bytes;
                    cell.sys.l2.blockSize = bytes;
                }
                cell.mode = spec.mode;
                cell.timing = spec.timing;
                cell.timingOnly = spec.timingOnly;
                cells.push_back(std::move(cell));
            }
        }
    }
    return cells;
}

std::vector<RunCell>
selectedCells(const ExperimentSpec &spec)
{
    std::vector<RunCell> cells = expandSpec(spec);
    if (spec.cellFilter.empty())
        return cells;
    const auto ranges = parseCellRanges(spec.cellFilter);
    std::vector<RunCell> out;
    for (auto &cell : cells) {
        for (const auto &[lo, hi] : ranges) {
            if (cell.id >= lo && cell.id <= hi) {
                out.push_back(std::move(cell));
                break;
            }
        }
    }
    if (out.empty())
        throw std::invalid_argument("cells=" + spec.cellFilter +
                                    ": selects no cells (matrix has " +
                                    std::to_string(cells.size()) + ")");
    return out;
}

const char *
specHelp()
{
    return
        "run keys (key=value, any order; config=FILE splices a file of\n"
        "key=value lines):\n"
        "  workloads=paper|all|NAME,...   suite selection\n"
        "  prefetchers=KIND[:LABEL],...   sms, ghb, stride, next-line,\n"
        "                                 none; label for duplicates\n"
        "  pf.LABEL.OPT=V                 option for one prefetcher\n"
        "  opt.OPT=V                      option for every prefetcher\n"
        "  sweep.OPT=V1,V2,...            parameter matrix axis; cache\n"
        "                                 geometry keys sweep per-cell\n"
        "  ncpu=16 refs=100000 seed=1     workload generation\n"
        "  mode=system|l1                 full hierarchy or shadow L1\n"
        "  timing=0|1|only                also (or only) run the timing\n"
        "                                 model; \"only\" skips the\n"
        "                                 system-study pass\n"
        "  threads=N                      runner shards (0 = all cores)\n"
        "  schedule=fifo|cost             cell dispatch order: expansion\n"
        "                                 order, or longest-estimated-\n"
        "                                 first with slowest-worker-last\n"
        "                                 (reports byte-identical)\n"
        "  schedule-from=FILE             calibrate the cost model from\n"
        "                                 a prior run's journal or\n"
        "                                 report JSON\n"
        "  dispatch=N                     execute cells in N worker\n"
        "                                 processes (crash-isolated)\n"
        "  dispatch-timeout-ms=N          per-cell timeout (0 = none)\n"
        "  dispatch-retries=N             attempts per cell (default 3)\n"
        "  dispatch-heartbeat-ms=N        worker liveness period; a\n"
        "                                 wedged worker is killed after\n"
        "                                 4 missed beats (0 = off)\n"
        "  dispatch-backoff-ms=N          respawn backoff base, doubles\n"
        "                                 per loss, 5s cap (default 50)\n"
        "  dispatch-speculate=0|1         re-dispatch tail stragglers\n"
        "                                 to idle workers (first result\n"
        "                                 wins)\n"
        "  workers=ADDR,...               dispatch over sockets to these\n"
        "                                 worker endpoints (unix:/path\n"
        "                                 or host:port) instead of\n"
        "                                 forked pipe workers\n"
        "  spawn-cmd=CMD                  launch template run per worker\n"
        "                                 ({addr} substituted; use exec)\n"
        "  dispatch-pipeline=0|1          send lookahead prefetch hints\n"
        "                                 so workers warm the next\n"
        "                                 cell's trace while simulating\n"
        "  journal=FILE                   append each completed cell to\n"
        "                                 a crash-safe result journal\n"
        "  resume=0|1                     skip journaled cells, splice\n"
        "                                 them into the report\n"
        "  fault-plan=SPEC                seeded chaos injection (e.g.\n"
        "                                 seed=7,crash=0.2,hang=0.1/4000\n"
        "                                 — see src/fault/fault.hh)\n"
        "  cells=A-B,C,...                run a cell-id subset (ids are\n"
        "                                 kept, stems merge recombines)\n"
        "  trace-dir=DIR                  record/replay traces on disk\n"
        "  stream=0|1                     background trace streamer:\n"
        "                                 prepare (generate or map) the\n"
        "                                 next cells' traces while the\n"
        "                                 current ones simulate\n"
        "  stream-ahead=N                 cells prepared ahead of the\n"
        "                                 execution cursor (default 2)\n"
        "  stream-watermark-mb=N          streamer byte budget: pause\n"
        "                                 above N MB prepared-ahead,\n"
        "                                 resume at half (default 512)\n"
        "  json=PATH|- csv=PATH|-         reports (- = stdout)\n"
        "  table=0|1                      ASCII summary table\n"
        "  groups=0|1                     engine-folded per-group\n"
        "                                 aggregate rows in json/table\n"
        "  quiet=0|1                      suppress progress lines\n"
        "  trace-out=PATH                 Chrome trace-event JSON\n"
        "                                 (Perfetto-loadable spans)\n"
        "  telemetry=0|1                  counters JSON on stderr\n"
        "  telemetry-out=PATH             counters JSON to a file\n"
        "  stats-out=PATH                 sampled time-series JSONL\n"
        "                                 (counters, gauges, RSS)\n"
        "  stats-interval-ms=N            sampler period (default 100)\n"
        "  wall=0|1                       wall_ms in JSON (0 = stable\n"
        "                                 byte-comparable output)\n"
        "  l1-kb=64 l1-assoc=2 l2-kb=N    cache geometry\n"
        "  l2-mb=8 l2-assoc=8 block=64\n"
        "  oracle-regions=S1,S2,...       track oracle generations\n"
        "  density=BYTES                  track access-density\n"
        "                                 histograms (Fig 5) at this\n"
        "                                 region size (0 = off)\n";
}

} // namespace stems::driver
