#include "driver/spec.hh"

#include <stdexcept>

#include "study/suite.hh"

namespace stems::driver {

namespace {

/** Expand config=FILE tokens into their contents, depth-first. */
std::vector<std::pair<std::string, std::string>>
flattenTokens(const std::vector<std::string> &tokens, int depth = 0)
{
    if (depth > 8)
        throw std::invalid_argument("config files nested too deeply");
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto &tok : tokens) {
        auto [key, value] = parseKeyValue(tok);
        if (key == "config") {
            auto nested = flattenTokens(readConfigFile(value), depth + 1);
            out.insert(out.end(), nested.begin(), nested.end());
        } else {
            out.emplace_back(key, value);
        }
    }
    return out;
}

std::vector<std::string>
resolveWorkloads(const std::string &value)
{
    std::vector<std::string> out;
    for (const auto &name : splitList(value)) {
        if (name == "paper") {
            for (const auto &e : workloads::paperSuite())
                out.push_back(e.name);
        } else if (name == "all") {
            for (const auto &e : workloads::fullSuite())
                out.push_back(e.name);
        } else if (workloads::findWorkload(name)) {
            out.push_back(name);
        } else {
            std::string known;
            for (const auto &e : workloads::fullSuite())
                known += (known.empty() ? "" : ", ") + e.name;
            throw std::invalid_argument("unknown workload \"" + name +
                                        "\" (known: " + known +
                                        ", paper, all)");
        }
    }
    return out;
}

std::vector<EngineConfig>
resolveEngines(const std::string &value)
{
    const auto &reg = PrefetcherRegistry::builtin();
    std::vector<EngineConfig> out;
    for (const auto &item : splitList(value)) {
        EngineConfig e;
        size_t colon = item.find(':');
        e.kind = item.substr(0, colon);
        if (colon != std::string::npos)
            e.label = item.substr(colon + 1);
        if (!reg.has(e.kind)) {
            std::string known;
            for (const auto &n : reg.names())
                known += (known.empty() ? "" : ", ") + n;
            throw std::invalid_argument("unknown prefetcher \"" + e.kind +
                                        "\" (known: " + known + ")");
        }
        for (const auto &prev : out) {
            if (prev.displayLabel() == e.displayLabel())
                throw std::invalid_argument(
                    "duplicate prefetcher label \"" + e.displayLabel() +
                    "\" (use kind:label to disambiguate)");
        }
        out.push_back(std::move(e));
    }
    return out;
}

/**
 * Reject option keys no prefetcher in the spec understands — a typo'd
 * pf./opt./sweep. key would otherwise silently run with defaults.
 */
void
checkOptionKnown(const std::vector<EngineConfig> &engines,
                 const std::string &opt, const std::string &where)
{
    const auto &reg = PrefetcherRegistry::builtin();
    for (const auto &e : engines)
        if (reg.knowsOption(e.kind, opt))
            return;
    std::string kinds, known;
    for (const auto &e : engines) {
        kinds += (kinds.empty() ? "" : ", ") + e.kind;
        for (const auto &k : reg.optionKeys(e.kind))
            known += (known.empty() ? "" : ", ") + k;
    }
    throw std::invalid_argument(
        where + ": no selected prefetcher (" + kinds +
        ") understands option \"" + opt + "\"" +
        (known.empty() ? "" : " (known: " + known + ")"));
}

} // anonymous namespace

ExperimentSpec
parseSpec(const std::vector<std::string> &tokens)
{
    auto kvs = flattenTokens(tokens);

    ExperimentSpec spec;
    spec.params = study::defaultParams();
    spec.workloads = resolveWorkloads("paper");
    spec.engines = resolveEngines("sms");

    // pass 1: structure-defining keys
    for (const auto &[key, value] : kvs) {
        if (key == "workloads")
            spec.workloads = resolveWorkloads(value);
        else if (key == "prefetchers")
            spec.engines = resolveEngines(value);
    }

    // pass 2: everything else (pf.* needs the engine list)
    for (const auto &[key, value] : kvs) {
        if (key == "workloads" || key == "prefetchers") {
            // handled above
        } else if (key.rfind("opt.", 0) == 0) {
            const std::string opt = key.substr(4);
            checkOptionKnown(spec.engines, opt, key);
            for (auto &e : spec.engines)
                e.options[opt] = value;
        } else if (key.rfind("pf.", 0) == 0) {
            size_t dot = key.find('.', 3);
            if (dot == std::string::npos)
                throw std::invalid_argument(
                    "expected pf.<label>.<option>, got \"" + key + "\"");
            const std::string label = key.substr(3, dot - 3);
            const std::string opt = key.substr(dot + 1);
            bool found = false;
            for (auto &e : spec.engines) {
                if (e.displayLabel() == label) {
                    checkOptionKnown({e}, opt, key);
                    e.options[opt] = value;
                    found = true;
                }
            }
            if (!found)
                throw std::invalid_argument(
                    "pf option for unknown prefetcher label \"" + label +
                    "\"");
        } else if (key.rfind("sweep.", 0) == 0) {
            const std::string opt = key.substr(6);
            checkOptionKnown(spec.engines, opt, key);
            auto values = splitList(value);
            if (values.empty())
                throw std::invalid_argument("empty sweep axis " + key);
            bool replaced = false;
            for (auto &axis : spec.sweeps) {
                if (axis.first == opt) {
                    axis.second = values;
                    replaced = true;
                }
            }
            if (!replaced)
                spec.sweeps.emplace_back(opt, std::move(values));
        } else if (key == "ncpu") {
            Options o{{key, value}};
            spec.params.ncpu =
                static_cast<uint32_t>(optU64(o, key, spec.params.ncpu));
            if (spec.params.ncpu == 0)
                throw std::invalid_argument("ncpu must be positive");
        } else if (key == "refs") {
            Options o{{key, value}};
            spec.params.refsPerCpu =
                optU64(o, key, spec.params.refsPerCpu);
        } else if (key == "seed") {
            Options o{{key, value}};
            spec.params.seed = optU64(o, key, spec.params.seed);
        } else if (key == "threads") {
            Options o{{key, value}};
            spec.threads =
                static_cast<uint32_t>(optU64(o, key, spec.threads));
        } else if (key == "mode") {
            if (value == "system")
                spec.mode = StudyMode::System;
            else if (value == "l1")
                spec.mode = StudyMode::L1;
            else
                throw std::invalid_argument("mode=" + value +
                                            ": expected system|l1");
        } else if (key == "timing") {
            Options o{{key, value}};
            spec.timing = optBool(o, key, spec.timing);
        } else if (key == "trace-dir") {
            spec.traceDir = value;
        } else if (key == "json") {
            spec.jsonPath = value;
        } else if (key == "csv") {
            spec.csvPath = value;
        } else if (key == "table") {
            Options o{{key, value}};
            spec.table = optBool(o, key, spec.table);
        } else if (key == "l1-kb") {
            Options o{{key, value}};
            spec.sys.l1.sizeBytes = optU64(o, key, 64) * 1024;
        } else if (key == "l2-mb") {
            Options o{{key, value}};
            spec.sys.l2.sizeBytes = optU64(o, key, 8) * 1024 * 1024;
        } else if (key == "block") {
            Options o{{key, value}};
            const auto block =
                static_cast<uint32_t>(optU64(o, key, 64));
            spec.sys.l1.blockSize = block;
            spec.sys.l2.blockSize = block;
            for (auto &e : spec.engines)
                e.options.emplace("block", value);  // keep pf.* override
        } else {
            throw std::invalid_argument("unknown key \"" + key +
                                        "\" (see stems help)");
        }
    }

    spec.sys.ncpu = spec.params.ncpu;

    if (spec.mode == StudyMode::L1) {
        for (const auto &e : spec.engines) {
            if (e.kind != "sms" && e.kind != "none")
                throw std::invalid_argument(
                    "mode=l1 supports only sms and none prefetchers "
                    "(got " + e.kind + ")");
        }
        if (spec.timing)
            throw std::invalid_argument(
                "timing requires mode=system");
    }
    return spec;
}

std::vector<RunCell>
expandSpec(const ExperimentSpec &spec)
{
    const auto &reg = PrefetcherRegistry::builtin();

    // cartesian product of sweep axes, last axis fastest; axes an
    // engine's kind does not understand are skipped for that engine so
    // a mixed matrix does not duplicate identical cells
    auto pointsFor = [&](const EngineConfig &e) {
        std::vector<Options> points{Options{}};
        for (const auto &[opt, values] : spec.sweeps) {
            if (!reg.knowsOption(e.kind, opt))
                continue;
            std::vector<Options> next;
            for (const auto &base : points) {
                for (const auto &v : values) {
                    Options p = base;
                    p[opt] = v;
                    next.push_back(std::move(p));
                }
            }
            points = std::move(next);
        }
        return points;
    };

    std::vector<RunCell> cells;
    uint32_t id = 0;
    for (const auto &w : spec.workloads) {
        for (const auto &e : spec.engines) {
            for (const auto &point : pointsFor(e)) {
                RunCell cell;
                cell.id = id++;
                cell.workload = w;
                cell.engine = e;
                for (const auto &[k, v] : point)
                    cell.engine.options[k] = v;  // sweep overrides base
                cell.sweepPoint = point;
                cell.params = spec.params;
                cell.sys = spec.sys;
                // a per-engine/per-point block override must reshape
                // this cell's caches too, or the prefetcher would run
                // at a different granularity than the hierarchy
                auto blk = cell.engine.options.find("block");
                if (blk != cell.engine.options.end()) {
                    const auto bytes = static_cast<uint32_t>(
                        optU64(cell.engine.options, "block",
                               spec.sys.l1.blockSize));
                    cell.sys.l1.blockSize = bytes;
                    cell.sys.l2.blockSize = bytes;
                }
                cell.mode = spec.mode;
                cell.timing = spec.timing;
                cells.push_back(std::move(cell));
            }
        }
    }
    return cells;
}

const char *
specHelp()
{
    return
        "run keys (key=value, any order; config=FILE splices a file of\n"
        "key=value lines):\n"
        "  workloads=paper|all|NAME,...   suite selection\n"
        "  prefetchers=KIND[:LABEL],...   sms, ghb, stride, next-line,\n"
        "                                 none; label for duplicates\n"
        "  pf.LABEL.OPT=V                 option for one prefetcher\n"
        "  opt.OPT=V                      option for every prefetcher\n"
        "  sweep.OPT=V1,V2,...            parameter matrix axis\n"
        "  ncpu=16 refs=100000 seed=1     workload generation\n"
        "  mode=system|l1                 full hierarchy or shadow L1\n"
        "  timing=0|1                     also run the timing model\n"
        "  threads=N                      runner shards (0 = all cores)\n"
        "  trace-dir=DIR                  record/replay traces on disk\n"
        "  json=PATH|- csv=PATH|-         reports (- = stdout)\n"
        "  table=0|1                      ASCII summary table\n"
        "  l1-kb=64 l2-mb=8 block=64      cache geometry\n";
}

} // namespace stems::driver
