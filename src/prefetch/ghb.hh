/**
 * @file
 * Global History Buffer prefetcher, PC/DC variant (Nesbit & Smith,
 * HPCA 2004) — the strongest prior prefetcher the paper compares
 * against (Section 4.6 / Figure 11). An index table maps a miss PC to
 * the head of that PC's linked list threaded through a circular
 * global history buffer of miss addresses; delta correlation over the
 * per-PC address list predicts the next deltas.
 *
 * Like the paper, GHB observes the off-chip-bound miss stream at L2
 * (its multi-access lookup makes it impractical at L1) and prefetches
 * into L2.
 */

#ifndef STEMS_PREFETCH_GHB_HH
#define STEMS_PREFETCH_GHB_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace stems::prefetch {

/** GHB PC/DC parameters. */
struct GhbConfig
{
    uint32_t ghbEntries = 256;  //!< history buffer size (256 or 16k)
    uint32_t itEntries = 256;   //!< index table entries (direct-mapped)
    uint32_t degree = 4;        //!< max prefetches per trigger
    uint32_t maxWalk = 64;      //!< link-list walk bound
    uint32_t blockSize = 64;    //!< delta granularity
};

/** GHB event counters. */
struct GhbStats
{
    uint64_t triggers = 0;      //!< misses observed
    uint64_t walks = 0;         //!< chains of length >= 3 examined
    uint64_t correlations = 0;  //!< delta pairs matched in history
    uint64_t issued = 0;        //!< prefetch addresses produced
};

/** One per-CPU GHB PC/DC engine. */
class GhbPcDc : public PrefetchAlgorithm
{
  public:
    explicit GhbPcDc(const GhbConfig &config);

    void observe(const ObservedAccess &a,
                 std::vector<uint64_t> &out) override;

    bool intoL1() const override { return false; }
    const char *name() const override { return "ghb-pc/dc"; }

    const GhbStats &stats() const { return stats_; }

  private:
    struct GhbEntry
    {
        uint64_t blockAddr = 0;  //!< miss address in blocks
        uint64_t link = 0;       //!< global seq of previous same-PC entry
        bool hasLink = false;
    };

    struct ItEntry
    {
        uint64_t pc = 0;
        uint64_t head = 0;  //!< global seq of newest GHB entry for pc
        bool valid = false;
    };

    bool
    inWindow(uint64_t seq) const
    {
        return seq < head && head - seq <= cfg.ghbEntries;
    }

    GhbConfig cfg;
    std::vector<GhbEntry> buffer;
    std::vector<ItEntry> indexTable;
    uint64_t head = 0;  //!< next global sequence number
    std::vector<uint64_t> walkScratch;
    GhbStats stats_;
};

} // namespace stems::prefetch

#endif // STEMS_PREFETCH_GHB_HH
