/**
 * @file
 * The attach seam shared by every pass that hosts a prefetcher on a
 * MemorySystem. A prefetcher "deployment" subscribes itself to the
 * system's demand stream (and whatever listener hooks it needs) at
 * construction; the hosting pass only ever sees this minimal handle —
 * drain residual state at end-of-trace, harvest counters for reports.
 *
 * Both trace studies (study::runSystem) and the timing model
 * (sim::runTiming) accept a PfAttach callback, so any engine the
 * driver registry can construct — SMS, GHB PC/DC, stride, next-line,
 * future additions — is a first-class citizen of every pipeline,
 * including the uIPC/speedup path. No pass special-cases a particular
 * algorithm.
 */

#ifndef STEMS_PREFETCH_ATTACH_HH
#define STEMS_PREFETCH_ATTACH_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace stems::mem {
class MemorySystem;
} // namespace stems::mem

namespace stems::prefetch {

/** Named event counters harvested into reports. */
using Counters = std::vector<std::pair<std::string, uint64_t>>;

/**
 * A prefetcher wired onto a MemorySystem for the duration of one run.
 * Construction performs the wiring; the handle must outlive the run
 * but not the MemorySystem teardown (the destructor touches only the
 * deployment's own state).
 */
class AttachedPrefetcher
{
  public:
    virtual ~AttachedPrefetcher() = default;

    /** Flush residual state at end-of-trace (e.g. live generations). */
    virtual void drain() {}

    /** Algorithm-specific counters (e.g. SmsStats) for the report. */
    virtual Counters counters() const { return {}; }
};

/**
 * Builds a prefetcher onto @p sys and returns a non-owning handle the
 * caller keeps alive past the run (may return nullptr for "none").
 * An empty function means "no prefetcher".
 */
using PfAttach =
    std::function<AttachedPrefetcher *(mem::MemorySystem &sys)>;

} // namespace stems::prefetch

#endif // STEMS_PREFETCH_ATTACH_HH
