/**
 * @file
 * Common interface for baseline prefetchers (GHB PC/DC, stride,
 * next-line) and the controller that wires a per-CPU instance of an
 * algorithm into the memory system.
 */

#ifndef STEMS_PREFETCH_PREFETCHER_HH
#define STEMS_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/memsys.hh"
#include "trace/access.hh"

namespace stems::prefetch {

/** One demand access as seen by a prefetch algorithm. */
struct ObservedAccess
{
    uint64_t pc = 0;
    uint64_t addr = 0;
    bool isWrite = false;
    mem::HitLevel level = mem::HitLevel::L1;

    bool l1Miss() const { return level != mem::HitLevel::L1; }

    bool
    offChipMiss() const
    {
        return level == mem::HitLevel::Remote ||
            level == mem::HitLevel::Memory;
    }
};

/**
 * A per-CPU prefetch algorithm: observes the demand stream and emits
 * block addresses to prefetch.
 */
class PrefetchAlgorithm
{
  public:
    virtual ~PrefetchAlgorithm() = default;

    /**
     * Observe one access; append any prefetch requests (block-aligned
     * byte addresses) to @p out.
     */
    virtual void observe(const ObservedAccess &a,
                         std::vector<uint64_t> &out) = 0;

    /** Destination level: true streams into L1, false stops at L2. */
    virtual bool intoL1() const { return false; }

    /** Algorithm name for reports. */
    virtual const char *name() const = 0;
};

/** Counters for a prefetcher deployment. */
struct PrefetchControllerStats
{
    uint64_t issued = 0;  //!< prefetch requests sent to the hierarchy
};

/**
 * Deploys one PrefetchAlgorithm instance per CPU onto a MemorySystem.
 */
class PrefetchController : public mem::AccessObserver
{
  public:
    using Factory = std::function<std::unique_ptr<PrefetchAlgorithm>()>;

    PrefetchController(mem::MemorySystem &sys, const Factory &make)
        : sys(sys)
    {
        for (uint32_t c = 0; c < sys.numCpus(); ++c)
            algos.push_back(make());
        sys.addObserver(this);
    }

    void
    onAccess(const trace::MemAccess &a,
             const mem::AccessOutcome &o) override
    {
        ObservedAccess oa{a.pc, a.addr, a.isWrite, o.level};
        scratch.clear();
        algos[a.cpu]->observe(oa, scratch);
        for (uint64_t addr : scratch) {
            ++stats_.issued;
            sys.prefetch(a.cpu, addr, algos[a.cpu]->intoL1());
        }
    }

    PrefetchAlgorithm &algo(uint32_t cpu) { return *algos[cpu]; }
    const PrefetchControllerStats &stats() const { return stats_; }

  private:
    mem::MemorySystem &sys;
    std::vector<std::unique_ptr<PrefetchAlgorithm>> algos;
    std::vector<uint64_t> scratch;
    PrefetchControllerStats stats_;
};

} // namespace stems::prefetch

#endif // STEMS_PREFETCH_PREFETCHER_HH
