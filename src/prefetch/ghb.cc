#include "prefetch/ghb.hh"

#include <stdexcept>

#include "util/bits.hh"

namespace stems::prefetch {

GhbPcDc::GhbPcDc(const GhbConfig &config) : cfg(config)
{
    if (cfg.ghbEntries == 0 || cfg.itEntries == 0)
        throw std::invalid_argument("GHB sizes must be nonzero");
    if (!isPow2(cfg.blockSize))
        throw std::invalid_argument("GHB block size must be pow2");
    buffer.resize(cfg.ghbEntries);
    indexTable.resize(cfg.itEntries);
    walkScratch.reserve(cfg.maxWalk);
}

void
GhbPcDc::observe(const ObservedAccess &a, std::vector<uint64_t> &out)
{
    // GHB-PC/DC trains on the L2 access stream: L1 misses only
    if (!a.l1Miss())
        return;
    ++stats_.triggers;

    const uint32_t shift = log2i(cfg.blockSize);
    const uint64_t blk = a.addr >> shift;

    // insert the new entry, linking to this PC's previous miss
    ItEntry &it = indexTable[a.pc % cfg.itEntries];
    uint64_t prev = 0;
    bool has_prev = false;
    if (it.valid && it.pc == a.pc && inWindow(it.head)) {
        prev = it.head;
        has_prev = true;
    }
    const uint64_t seq = head++;
    GhbEntry &e = buffer[seq % cfg.ghbEntries];
    e.blockAddr = blk;
    e.link = prev;
    e.hasLink = has_prev;
    it.pc = a.pc;
    it.head = seq;
    it.valid = true;

    // walk this PC's chain, newest -> oldest
    walkScratch.clear();
    uint64_t cur = seq;
    while (walkScratch.size() < cfg.maxWalk) {
        const GhbEntry &g = buffer[cur % cfg.ghbEntries];
        walkScratch.push_back(g.blockAddr);
        if (!g.hasLink || !inWindow(g.link))
            break;
        // guard against a stale link overwritten by wrap-around
        cur = g.link;
    }
    if (walkScratch.size() < 3)
        return;
    ++stats_.walks;

    // deltas oldest -> newest: d[i] = addr[i+1] - addr[i]
    const size_t n = walkScratch.size();
    std::vector<int64_t> deltas(n - 1);
    for (size_t i = 0; i + 1 < n; ++i) {
        // walkScratch is newest-first; reverse while differencing
        deltas[n - 2 - i] = static_cast<int64_t>(walkScratch[i]) -
            static_cast<int64_t>(walkScratch[i + 1]);
    }

    // correlate on the most recent delta pair
    if (deltas.size() < 2)
        return;
    const int64_t d1 = deltas[deltas.size() - 2];
    const int64_t d2 = deltas[deltas.size() - 1];

    // find the most recent earlier occurrence of (d1, d2); pairs may
    // overlap the current context by one delta (constant strides)
    size_t match = SIZE_MAX;
    for (size_t j = deltas.size() - 1; j-- > 1;) {
        if (deltas[j - 1] == d1 && deltas[j] == d2) {
            match = j;
            break;
        }
    }
    if (match == SIZE_MAX)
        return;
    ++stats_.correlations;

    // the deltas between the match and the present form one period of
    // the pattern; replay them (cyclically) ahead of the current miss
    const size_t period = deltas.size() - 1 - match;
    uint64_t addr = blk;
    for (uint32_t k = 0; k < cfg.degree; ++k) {
        addr = static_cast<uint64_t>(
            static_cast<int64_t>(addr) + deltas[match + 1 + (k % period)]);
        out.push_back(addr << shift);
        ++stats_.issued;
    }
}

} // namespace stems::prefetch
