/**
 * @file
 * Classic per-PC stride prefetcher (reference prediction table), the
 * "simple prefetching scheme" of Section 2 that suffices for dense
 * array codes but not for the commercial access patterns SMS targets.
 */

#ifndef STEMS_PREFETCH_STRIDE_HH
#define STEMS_PREFETCH_STRIDE_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace stems::prefetch {

/** Stride prefetcher parameters. */
struct StrideConfig
{
    uint32_t entries = 256;   //!< RPT entries (direct-mapped by PC)
    uint32_t degree = 2;      //!< prefetch depth once confident
    uint32_t threshold = 2;   //!< confirmations before prefetching
    uint32_t blockSize = 64;
    bool l1Destination = true;
};

/** Reference-prediction-table stride prefetcher. */
class StridePrefetcher : public PrefetchAlgorithm
{
  public:
    explicit StridePrefetcher(const StrideConfig &config) : cfg(config)
    {
        table.resize(cfg.entries);
    }

    const StrideConfig &config() const { return cfg; }

    void
    observe(const ObservedAccess &a, std::vector<uint64_t> &out) override
    {
        Entry &e = table[a.pc % cfg.entries];
        if (!e.valid || e.pc != a.pc) {
            e = Entry{};
            e.pc = a.pc;
            e.lastAddr = a.addr;
            e.valid = true;
            return;
        }
        const int64_t stride = static_cast<int64_t>(a.addr) -
            static_cast<int64_t>(e.lastAddr);
        if (stride == e.stride && stride != 0) {
            if (e.confidence < 3)
                ++e.confidence;
        } else {
            e.stride = stride;
            e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
        }
        e.lastAddr = a.addr;
        if (e.confidence >= cfg.threshold && e.stride != 0) {
            uint64_t addr = a.addr;
            for (uint32_t k = 0; k < cfg.degree; ++k) {
                addr = static_cast<uint64_t>(
                    static_cast<int64_t>(addr) + e.stride);
                out.push_back(addr & ~uint64_t{cfg.blockSize - 1});
            }
        }
    }

    bool intoL1() const override { return cfg.l1Destination; }
    const char *name() const override { return "stride"; }

  private:
    struct Entry
    {
        uint64_t pc = 0;
        uint64_t lastAddr = 0;
        int64_t stride = 0;
        uint32_t confidence = 0;
        bool valid = false;
    };

    StrideConfig cfg;
    std::vector<Entry> table;
};

/** Prefetch the sequentially next block on every miss. */
class NextLinePrefetcher : public PrefetchAlgorithm
{
  public:
    explicit NextLinePrefetcher(uint32_t block_size = 64,
                                uint32_t degree = 1)
        : blockSize(block_size), degree(degree)
    {}

    void
    observe(const ObservedAccess &a, std::vector<uint64_t> &out) override
    {
        if (!a.l1Miss())
            return;
        uint64_t base = a.addr & ~uint64_t{blockSize - 1};
        for (uint32_t k = 1; k <= degree; ++k)
            out.push_back(base + uint64_t{k} * blockSize);
    }

    bool intoL1() const override { return true; }
    const char *name() const override { return "next-line"; }

  private:
    uint32_t blockSize;
    uint32_t degree;
};

} // namespace stems::prefetch

#endif // STEMS_PREFETCH_STRIDE_HH
