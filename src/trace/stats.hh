/**
 * @file
 * Summary statistics over a trace: footprint, write fraction,
 * instruction counts, per-CPU balance. Used by tests and examples to
 * validate structural properties of generated workloads.
 */

#ifndef STEMS_TRACE_STATS_HH
#define STEMS_TRACE_STATS_HH

#include <cstdint>
#include <vector>

#include "trace/access.hh"

namespace stems::trace {

/** Aggregate statistics describing one trace. */
struct TraceStats
{
    uint64_t references = 0;      //!< total memory references
    uint64_t writes = 0;          //!< store references
    uint64_t kernelRefs = 0;      //!< references flagged as OS work
    uint64_t instructions = 0;    //!< total instructions (ninst + refs)
    uint64_t uniqueBlocks = 0;    //!< distinct 64 B blocks touched
    uint64_t uniquePcs = 0;       //!< distinct code sites
    uint64_t footprintBytes = 0;  //!< uniqueBlocks * 64
    uint64_t dependentRefs = 0;   //!< refs with dep != 0
    std::vector<uint64_t> perCpu; //!< references per cpu

    double
    writeFraction() const
    {
        return references ? double(writes) / double(references) : 0.0;
    }
};

/** Compute statistics for @p t, sizing perCpu to @p ncpu entries. */
TraceStats computeStats(const Trace &t, uint32_t ncpu);

} // namespace stems::trace

#endif // STEMS_TRACE_STATS_HH
