#include "trace/interleaver.hh"

#include "trace/rng.hh"

namespace stems::trace {

Trace
Interleaver::merge(std::vector<Trace> streams) const
{
    Rng rng(seed_);
    size_t total = 0;
    std::vector<size_t> pos(streams.size(), 0);
    for (const auto &s : streams)
        total += s.size();

    Trace out;
    out.reserve(total);

    // round-robin over cpus with live streams, random chunk lengths
    size_t live = 0;
    for (const auto &s : streams)
        if (!s.empty())
            ++live;

    size_t cpu = 0;
    while (live > 0) {
        if (pos[cpu] < streams[cpu].size()) {
            uint64_t chunk = rng.range(minChunk, maxChunk);
            for (uint64_t i = 0; i < chunk &&
                     pos[cpu] < streams[cpu].size(); ++i) {
                MemAccess a = streams[cpu][pos[cpu]++];
                a.cpu = static_cast<uint32_t>(cpu);
                out.push_back(a);
            }
            if (pos[cpu] == streams[cpu].size())
                --live;
        }
        cpu = (cpu + 1) % streams.size();
    }
    return out;
}

} // namespace stems::trace
