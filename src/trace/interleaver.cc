#include "trace/interleaver.hh"

namespace stems::trace {

void
InterleavedView::reset()
{
    rng.reseed(seed_);
    pos.assign(views_.size(), 0);
    total = 0;
    live = 0;
    for (const auto &s : views_) {
        total += s.size();
        if (s.size() != 0)
            ++live;
    }
    cpu = 0;
    spanNext = nullptr;
    spanLeft = 0;
    spanCpu = 0;
}

Trace
Interleaver::merge(const std::vector<Trace> &streams) const
{
    InterleavedView v(streams, minChunk, maxChunk, seed_);
    Trace out;
    out.reserve(v.size());
    MemAccess a;
    while (v.next(a))
        out.push_back(a);
    return out;
}

} // namespace stems::trace
