#include "trace/io.hh"

#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <memory>
#include <string>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "fault/fault.hh"

namespace stems::trace {

namespace {

constexpr char kMagic[4] = {'S', 'T', 'M', 'T'};

/**
 * Writes go to a per-process temp name and are renamed into place on
 * success, so concurrent readers (dispatch workers sharing a spill
 * dir) never observe a torn file.
 */
std::string
tempName(const std::string &path)
{
    return path + ".tmp." + std::to_string(::getpid());
}

bool
commitOrDiscard(const std::string &tmp, const std::string &path, bool ok)
{
    if (ok && std::rename(tmp.c_str(), path.c_str()) == 0) {
        // chaos hook: flip one payload byte of the committed file;
        // the v3 checksum makes the damage detectable, so replay
        // rejects the spill and the TraceCache regenerates it
        if (fault::spillFault(fault::Kind::CorruptSpill, path))
            fault::corruptFileByte(path, fault::currentPlan().seed,
                                   kTraceHeaderBytes);
        return true;
    }
    std::remove(tmp.c_str());
    return false;
}

/** On-disk packed record; kept independent of MemAccess layout. */
struct PackedAccess
{
    uint64_t pc;
    uint64_t addr;
    uint32_t cpu;
    uint32_t ninst;
    uint32_t dep;
    uint16_t size;
    uint8_t isWrite;
    uint8_t isKernel;
};

struct FileCloser
{
    void operator()(FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<FILE, FileCloser>;

/**
 * Fixed .stmt header: magic, version, generator hash, record count,
 * payload checksum (v3).
 */
constexpr size_t kHeaderBytes = kTraceHeaderBytes;

/** Byte offset of the checksum field (rewritten after streaming). */
constexpr long kChecksumOffset = 4 + sizeof(uint32_t) +
    2 * sizeof(uint64_t);

/**
 * Write the v3 header with a placeholder checksum; the writers seek
 * back and fill the real value once every record has streamed through
 * the running FNV fold.
 */
bool
writeHeader(FILE *f, uint64_t config_hash, uint64_t count)
{
    const uint64_t placeholder = 0;
    return std::fwrite(kMagic, 1, 4, f) == 4 &&
        std::fwrite(&kTraceFormatVersion, sizeof(kTraceFormatVersion),
                    1, f) == 1 &&
        std::fwrite(&config_hash, sizeof(config_hash), 1, f) == 1 &&
        std::fwrite(&count, sizeof(count), 1, f) == 1 &&
        std::fwrite(&placeholder, sizeof(placeholder), 1, f) == 1;
}

bool
patchChecksum(FILE *f, uint64_t checksum)
{
    return std::fseek(f, kChecksumOffset, SEEK_SET) == 0 &&
        std::fwrite(&checksum, sizeof(checksum), 1, f) == 1;
}

/** Copy one unaligned little-endian field out of a byte view. */
template <typename T>
T
loadField(const unsigned char *p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
}

/**
 * Parse a complete .stmt image (header + records) from a contiguous
 * byte view into @p out. Shared by the mmap fast path and (indirectly,
 * via identical field logic) the buffered fallback.
 */
bool
parseTraceImage(const unsigned char *data, size_t size, Trace &out,
                uint64_t expected_hash)
{
    if (size < kHeaderBytes || std::memcmp(data, kMagic, 4) != 0)
        return false;
    if (loadField<uint32_t>(data + 4) != kTraceFormatVersion)
        return false;
    const uint64_t config_hash = loadField<uint64_t>(data + 8);
    const uint64_t count = loadField<uint64_t>(data + 16);
    const uint64_t checksum = loadField<uint64_t>(data + 24);
    // a stale trace from an incompatible generator must not replay
    if (expected_hash != 0 && config_hash != expected_hash)
        return false;
    // a corrupt count must not drive reserve(): the image must
    // actually hold that many records
    if (count != (size - kHeaderBytes) / sizeof(PackedAccess))
        return false;
    // corrupted record payloads must not replay (v3): silently wrong
    // references would break the byte-identity of dispatched reports
    if (checksum != traceChecksum(data + kHeaderBytes,
                                  size - kHeaderBytes))
        return false;

    out.clear();
    out.reserve(count);
    const unsigned char *rec = data + kHeaderBytes;
    for (uint64_t i = 0; i < count; ++i, rec += sizeof(PackedAccess)) {
        PackedAccess p;
        std::memcpy(&p, rec, sizeof(p));
        MemAccess a;
        a.pc = p.pc;
        a.addr = p.addr;
        a.cpu = p.cpu;
        a.ninst = p.ninst;
        a.dep = p.dep;
        a.size = p.size;
        a.isWrite = p.isWrite != 0;
        a.isKernel = p.isKernel != 0;
        out.push_back(a);
    }
    return true;
}

/**
 * mmap-backed read path: map the file as a read-only MAP_PRIVATE view
 * and parse records straight out of the page cache. Replay then keeps
 * no second buffered copy of the file in userspace — the mapped pages
 * are clean, evictable and shared across every concurrent reader of
 * the same spill file (dispatch workers replaying one generation),
 * which is what cuts resident replay memory against the stdio path.
 *
 * @param usedMap set true when the file was mapped (parse outcome is
 *                then final); left false when mmap is unavailable and
 *                the caller must fall back to the buffered path.
 */
bool
readTraceMapped(const std::string &path, Trace &out,
                uint64_t expected_hash, bool &usedMap)
{
    usedMap = false;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;

    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        return false;  // stat failed: let stdio try
    }
    if (st.st_size < 0 ||
        static_cast<uint64_t>(st.st_size) < kHeaderBytes) {
        ::close(fd);
        usedMap = true;  // too short to be a trace however it is read
        return false;
    }

    const size_t size = static_cast<size_t>(st.st_size);
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        return false;  // e.g. filesystem without mmap: use stdio

    usedMap = true;
    const bool ok = parseTraceImage(
        static_cast<const unsigned char *>(map), size, out,
        expected_hash);
    ::munmap(map, size);
    return ok;
}

} // anonymous namespace

uint64_t
traceChecksum(const unsigned char *data, size_t size, uint64_t h)
{
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

bool
writeTrace(const Trace &t, const std::string &path, uint64_t config_hash)
{
    // chaos hook: model a full disk before any bytes land
    if (fault::spillFault(fault::Kind::Enospc, path))
        return false;
    const std::string tmp = tempName(path);
    bool ok = false;
    {
        FilePtr f(std::fopen(tmp.c_str(), "wb"));
        if (!f)
            return false;

        ok = writeHeader(f.get(), config_hash, t.size());

        uint64_t checksum = traceChecksum(nullptr, 0);
        for (const auto &a : t) {
            if (!ok)
                break;
            PackedAccess p{a.pc, a.addr, a.cpu, a.ninst, a.dep, a.size,
                           static_cast<uint8_t>(a.isWrite),
                           static_cast<uint8_t>(a.isKernel)};
            checksum = traceChecksum(
                reinterpret_cast<const unsigned char *>(&p), sizeof(p),
                checksum);
            ok = std::fwrite(&p, sizeof(p), 1, f.get()) == 1;
        }
        ok = ok && patchChecksum(f.get(), checksum);
    }
    return commitOrDiscard(tmp, path, ok);
}

bool
writeTrace(InterleavedView &view, const std::string &path,
           uint64_t config_hash)
{
    if (fault::spillFault(fault::Kind::Enospc, path))
        return false;
    const std::string tmp = tempName(path);
    bool ok = false;
    {
        FilePtr f(std::fopen(tmp.c_str(), "wb"));
        if (!f)
            return false;

        ok = writeHeader(f.get(), config_hash, view.size());

        uint64_t checksum = traceChecksum(nullptr, 0);
        MemAccess a;
        while (ok && view.next(a)) {
            PackedAccess p{a.pc, a.addr, a.cpu, a.ninst, a.dep, a.size,
                           static_cast<uint8_t>(a.isWrite),
                           static_cast<uint8_t>(a.isKernel)};
            checksum = traceChecksum(
                reinterpret_cast<const unsigned char *>(&p), sizeof(p),
                checksum);
            ok = std::fwrite(&p, sizeof(p), 1, f.get()) == 1;
        }
        ok = ok && patchChecksum(f.get(), checksum);
    }
    return commitOrDiscard(tmp, path, ok);
}

bool
readTrace(const std::string &path, Trace &out, uint64_t expected_hash)
{
    // prefer the mmap view; fall back to buffered stdio only when the
    // file cannot be mapped at all
    bool usedMap = false;
    const bool ok = readTraceMapped(path, out, expected_hash, usedMap);
    if (usedMap || ok)
        return ok;

    // stdio fallback: slurp the image and run the one decoder, so
    // both paths validate and decode the format identically
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        return false;
    const long fileSize = std::ftell(f.get());
    if (fileSize < 0 || std::fseek(f.get(), 0, SEEK_SET) != 0)
        return false;
    std::vector<unsigned char> image(static_cast<size_t>(fileSize));
    if (!image.empty() &&
        std::fread(image.data(), 1, image.size(), f.get()) !=
            image.size()) {
        return false;
    }
    return parseTraceImage(image.data(), image.size(), out,
                           expected_hash);
}

} // namespace stems::trace
