#include "trace/io.hh"

#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <memory>
#include <string>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "fault/fault.hh"
#include "trace/stream.hh"

namespace stems::trace {

namespace {

constexpr char kMagic[4] = {'S', 'T', 'M', 'T'};

/** Sanity bound: more sections than this is a corrupt header. */
constexpr uint32_t kMaxStreams = 1u << 20;

/**
 * Writes go to a per-process temp name and are renamed into place on
 * success, so concurrent readers (dispatch workers sharing a spill
 * dir) never observe a torn file.
 */
std::string
tempName(const std::string &path)
{
    return path + ".tmp." + std::to_string(::getpid());
}

bool
commitOrDiscard(const std::string &tmp, const std::string &path, bool ok,
                size_t payload_offset)
{
    if (ok && std::rename(tmp.c_str(), path.c_str()) == 0) {
        // chaos hook: flip one payload byte of the committed file;
        // the checksum makes the damage detectable, so replay
        // rejects the spill and the TraceCache regenerates it
        if (fault::spillFault(fault::Kind::CorruptSpill, path))
            fault::corruptFileByte(path, fault::currentPlan().seed,
                                   payload_offset);
        return true;
    }
    std::remove(tmp.c_str());
    return false;
}

/** On-disk packed record; bit-identical to MemAccess (see stream.hh). */
struct PackedAccess
{
    uint64_t pc;
    uint64_t addr;
    uint32_t cpu;
    uint32_t ninst;
    uint32_t dep;
    uint16_t size;
    uint8_t isWrite;
    uint8_t isKernel;
};

static_assert(sizeof(PackedAccess) == sizeof(MemAccess));

struct FileCloser
{
    void operator()(FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<FILE, FileCloser>;

/** Byte offset of the checksum field (rewritten after streaming). */
constexpr long kChecksumOffset = 4 + sizeof(uint32_t) +
    2 * sizeof(uint64_t);

/**
 * Write the v4 header and section table with a placeholder checksum;
 * the writers seek back and fill the real value once every record has
 * streamed through the running FNV fold.
 */
bool
writeHeader(FILE *f, uint64_t config_hash,
            const std::vector<uint64_t> &counts)
{
    uint64_t total = 0;
    for (uint64_t c : counts)
        total += c;
    const uint64_t placeholder = 0;
    const uint32_t nstreams = static_cast<uint32_t>(counts.size());
    const uint32_t pad = 0;  // keeps the payload 8-byte aligned
    bool ok = std::fwrite(kMagic, 1, 4, f) == 4 &&
        std::fwrite(&kTraceFormatVersion, sizeof(kTraceFormatVersion),
                    1, f) == 1 &&
        std::fwrite(&config_hash, sizeof(config_hash), 1, f) == 1 &&
        std::fwrite(&total, sizeof(total), 1, f) == 1 &&
        std::fwrite(&placeholder, sizeof(placeholder), 1, f) == 1 &&
        std::fwrite(&nstreams, sizeof(nstreams), 1, f) == 1 &&
        std::fwrite(&pad, sizeof(pad), 1, f) == 1;
    for (uint64_t c : counts)
        ok = ok && std::fwrite(&c, sizeof(c), 1, f) == 1;
    return ok;
}

bool
patchChecksum(FILE *f, uint64_t checksum)
{
    return std::fseek(f, kChecksumOffset, SEEK_SET) == 0 &&
        std::fwrite(&checksum, sizeof(checksum), 1, f) == 1;
}

/** Copy one unaligned little-endian field out of a byte view. */
template <typename T>
T
loadField(const unsigned char *p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
}

/**
 * Stream one section's records through the checksum fold and out to
 * @p f, with the cpu field optionally rewritten to @p stream_index.
 */
bool
writeSection(FILE *f, const Trace &t, uint32_t stream_index,
             bool rewrite_cpu, uint64_t &checksum)
{
    for (const auto &a : t) {
        PackedAccess p{a.pc, a.addr,
                       rewrite_cpu ? stream_index : a.cpu,
                       a.ninst, a.dep, a.size,
                       static_cast<uint8_t>(a.isWrite),
                       static_cast<uint8_t>(a.isKernel)};
        checksum = traceChecksum(
            reinterpret_cast<const unsigned char *>(&p), sizeof(p),
            checksum);
        if (std::fwrite(&p, sizeof(p), 1, f) != 1)
            return false;
    }
    return true;
}

bool
writeSections(const std::vector<const Trace *> &streams,
              const std::string &path, uint64_t config_hash,
              bool rewrite_cpu)
{
    // chaos hook: model a full disk before any bytes land
    if (fault::spillFault(fault::Kind::Enospc, path))
        return false;
    const std::string tmp = tempName(path);
    bool ok = false;
    {
        FilePtr f(std::fopen(tmp.c_str(), "wb"));
        if (!f)
            return false;

        std::vector<uint64_t> counts;
        counts.reserve(streams.size());
        for (const Trace *t : streams)
            counts.push_back(t->size());
        ok = writeHeader(f.get(), config_hash, counts);

        uint64_t checksum = traceChecksum(nullptr, 0);
        for (size_t i = 0; ok && i < streams.size(); ++i)
            ok = writeSection(f.get(), *streams[i],
                              static_cast<uint32_t>(i), rewrite_cpu,
                              checksum);
        ok = ok && patchChecksum(f.get(), checksum);
    }
    return commitOrDiscard(
        tmp, path, ok,
        tracePayloadOffset(static_cast<uint32_t>(streams.size())));
}

/**
 * Parse a complete .stmt image (header + records) from a contiguous
 * byte view into per-section traces. Shared by the buffered readers;
 * the mmap view path (trace/stream.cc) validates the same header via
 * parseTraceHeader and never decodes.
 */
bool
parseTraceImage(const unsigned char *data, size_t size,
                std::vector<Trace> &out, uint64_t expected_hash)
{
    TraceFileHeader h;
    if (!parseTraceHeader(data, size, h, expected_hash))
        return false;
    // corrupted record payloads must not replay: silently wrong
    // references would break the byte-identity of dispatched reports
    if (h.checksum != traceChecksum(data + h.payloadOffset,
                                    size - h.payloadOffset))
        return false;

    out.clear();
    out.resize(h.streamCounts.size());
    const unsigned char *rec = data + h.payloadOffset;
    for (size_t s = 0; s < h.streamCounts.size(); ++s) {
        Trace &t = out[s];
        t.reserve(h.streamCounts[s]);
        for (uint64_t i = 0; i < h.streamCounts[s];
             ++i, rec += sizeof(PackedAccess)) {
            PackedAccess p;
            std::memcpy(&p, rec, sizeof(p));
            MemAccess a;
            a.pc = p.pc;
            a.addr = p.addr;
            a.cpu = p.cpu;
            a.ninst = p.ninst;
            a.dep = p.dep;
            a.size = p.size;
            a.isWrite = p.isWrite != 0;
            a.isKernel = p.isKernel != 0;
            t.push_back(a);
        }
    }
    return true;
}

/** Slurp @p path whole; false on open/short-read failure. */
bool
slurpFile(const std::string &path, std::vector<unsigned char> &image)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        return false;
    const long fileSize = std::ftell(f.get());
    if (fileSize < 0 || std::fseek(f.get(), 0, SEEK_SET) != 0)
        return false;
    image.resize(static_cast<size_t>(fileSize));
    return image.empty() ||
        std::fread(image.data(), 1, image.size(), f.get()) ==
            image.size();
}

/**
 * mmap-backed read path: map the file as a read-only MAP_PRIVATE view
 * and parse records straight out of the page cache, so replay keeps
 * no second buffered copy of the file in userspace.
 *
 * @param usedMap set true when the file was mapped (parse outcome is
 *                then final); left false when mmap is unavailable and
 *                the caller must fall back to the buffered path.
 */
bool
readTraceMapped(const std::string &path, std::vector<Trace> &out,
                uint64_t expected_hash, bool &usedMap)
{
    usedMap = false;
    if (mmapDisabled())
        return false;  // kill-switch: force the buffered path
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;

    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        return false;  // stat failed: let stdio try
    }
    if (st.st_size < 0 ||
        static_cast<uint64_t>(st.st_size) < kTraceHeaderBytes) {
        ::close(fd);
        usedMap = true;  // too short to be a trace however it is read
        return false;
    }

    const size_t size = static_cast<size_t>(st.st_size);
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        return false;  // e.g. filesystem without mmap: use stdio

    usedMap = true;
    const bool ok = parseTraceImage(
        static_cast<const unsigned char *>(map), size, out,
        expected_hash);
    ::munmap(map, size);
    return ok;
}

/** Shared front end of readTrace/readTraceStreams. */
bool
readSections(const std::string &path, std::vector<Trace> &out,
             uint64_t expected_hash)
{
    // prefer the mmap view; fall back to buffered stdio only when the
    // file cannot be mapped at all (or mapping is disabled)
    bool usedMap = false;
    const bool ok = readTraceMapped(path, out, expected_hash, usedMap);
    if (usedMap || ok)
        return ok;

    // stdio fallback: slurp the image and run the one decoder, so
    // both paths validate and decode the format identically
    std::vector<unsigned char> image;
    if (!slurpFile(path, image))
        return false;
    return parseTraceImage(image.data(), image.size(), out,
                           expected_hash);
}

} // anonymous namespace

uint64_t
traceChecksum(const unsigned char *data, size_t size, uint64_t h)
{
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

bool
parseTraceHeader(const unsigned char *data, size_t size,
                 TraceFileHeader &out, uint64_t expected_hash)
{
    if (size < kTraceHeaderBytes || std::memcmp(data, kMagic, 4) != 0)
        return false;
    if (loadField<uint32_t>(data + 4) != kTraceFormatVersion)
        return false;
    out.configHash = loadField<uint64_t>(data + 8);
    out.count = loadField<uint64_t>(data + 16);
    out.checksum = loadField<uint64_t>(data + 24);
    const uint32_t nstreams = loadField<uint32_t>(data + 32);
    // a stale trace from an incompatible generator must not replay
    if (expected_hash != 0 && out.configHash != expected_hash)
        return false;
    if (nstreams == 0 || nstreams > kMaxStreams)
        return false;
    out.payloadOffset = tracePayloadOffset(nstreams);
    if (size < out.payloadOffset)
        return false;
    // corrupt counts must not drive reserve() or out-of-bounds views:
    // the sections must sum to the total, and the payload must hold
    // exactly that many records
    out.streamCounts.assign(nstreams, 0);
    uint64_t total = 0;
    for (uint32_t i = 0; i < nstreams; ++i) {
        out.streamCounts[i] =
            loadField<uint64_t>(data + kTraceHeaderBytes + 8 * i);
        if (out.streamCounts[i] > out.count)
            return false;
        total += out.streamCounts[i];
    }
    if (total != out.count)
        return false;
    if (out.count != (size - out.payloadOffset) / sizeof(MemAccess) ||
        (size - out.payloadOffset) % sizeof(MemAccess) != 0)
        return false;
    return true;
}

bool
writeTrace(const Trace &t, const std::string &path, uint64_t config_hash)
{
    // single-section file, records verbatim (exact round trip)
    return writeSections({&t}, path, config_hash, false);
}

bool
writeTraceStreams(const std::vector<Trace> &streams,
                  const std::string &path, uint64_t config_hash)
{
    std::vector<const Trace *> ptrs;
    ptrs.reserve(streams.size());
    for (const auto &t : streams)
        ptrs.push_back(&t);
    return writeSections(ptrs, path, config_hash, true);
}

bool
readTrace(const std::string &path, Trace &out, uint64_t expected_hash)
{
    std::vector<Trace> sections;
    if (!readSections(path, sections, expected_hash))
        return false;
    out.clear();
    size_t total = 0;
    for (const auto &s : sections)
        total += s.size();
    out.reserve(total);
    for (const auto &s : sections)
        out.insert(out.end(), s.begin(), s.end());
    return true;
}

bool
readTraceStreams(const std::string &path, std::vector<Trace> &out,
                 uint64_t expected_hash)
{
    return readSections(path, out, expected_hash);
}

} // namespace stems::trace
