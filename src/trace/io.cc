#include "trace/io.hh"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unistd.h>

namespace stems::trace {

namespace {

constexpr char kMagic[4] = {'S', 'T', 'M', 'T'};

/**
 * Writes go to a per-process temp name and are renamed into place on
 * success, so concurrent readers (dispatch workers sharing a spill
 * dir) never observe a torn file.
 */
std::string
tempName(const std::string &path)
{
    return path + ".tmp." + std::to_string(::getpid());
}

bool
commitOrDiscard(const std::string &tmp, const std::string &path, bool ok)
{
    if (ok && std::rename(tmp.c_str(), path.c_str()) == 0)
        return true;
    std::remove(tmp.c_str());
    return false;
}

/** On-disk packed record; kept independent of MemAccess layout. */
struct PackedAccess
{
    uint64_t pc;
    uint64_t addr;
    uint32_t cpu;
    uint32_t ninst;
    uint32_t dep;
    uint16_t size;
    uint8_t isWrite;
    uint8_t isKernel;
};

struct FileCloser
{
    void operator()(FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<FILE, FileCloser>;

} // anonymous namespace

bool
writeTrace(const Trace &t, const std::string &path, uint64_t config_hash)
{
    const std::string tmp = tempName(path);
    bool ok = false;
    {
        FilePtr f(std::fopen(tmp.c_str(), "wb"));
        if (!f)
            return false;

        uint64_t count = t.size();
        ok = std::fwrite(kMagic, 1, 4, f.get()) == 4 &&
            std::fwrite(&kTraceFormatVersion,
                        sizeof(kTraceFormatVersion), 1, f.get()) == 1 &&
            std::fwrite(&config_hash, sizeof(config_hash), 1,
                        f.get()) == 1 &&
            std::fwrite(&count, sizeof(count), 1, f.get()) == 1;

        for (const auto &a : t) {
            if (!ok)
                break;
            PackedAccess p{a.pc, a.addr, a.cpu, a.ninst, a.dep, a.size,
                           static_cast<uint8_t>(a.isWrite),
                           static_cast<uint8_t>(a.isKernel)};
            ok = std::fwrite(&p, sizeof(p), 1, f.get()) == 1;
        }
    }
    return commitOrDiscard(tmp, path, ok);
}

bool
writeTrace(InterleavedView &view, const std::string &path,
           uint64_t config_hash)
{
    const std::string tmp = tempName(path);
    bool ok = false;
    {
        FilePtr f(std::fopen(tmp.c_str(), "wb"));
        if (!f)
            return false;

        uint64_t count = view.size();
        ok = std::fwrite(kMagic, 1, 4, f.get()) == 4 &&
            std::fwrite(&kTraceFormatVersion,
                        sizeof(kTraceFormatVersion), 1, f.get()) == 1 &&
            std::fwrite(&config_hash, sizeof(config_hash), 1,
                        f.get()) == 1 &&
            std::fwrite(&count, sizeof(count), 1, f.get()) == 1;

        MemAccess a;
        while (ok && view.next(a)) {
            PackedAccess p{a.pc, a.addr, a.cpu, a.ninst, a.dep, a.size,
                           static_cast<uint8_t>(a.isWrite),
                           static_cast<uint8_t>(a.isKernel)};
            ok = std::fwrite(&p, sizeof(p), 1, f.get()) == 1;
        }
    }
    return commitOrDiscard(tmp, path, ok);
}

bool
readTrace(const std::string &path, Trace &out, uint64_t expected_hash)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;

    char magic[4];
    uint32_t version = 0;
    uint64_t config_hash = 0;
    uint64_t count = 0;
    if (std::fread(magic, 1, 4, f.get()) != 4 ||
        std::memcmp(magic, kMagic, 4) != 0 ||
        std::fread(&version, sizeof(version), 1, f.get()) != 1 ||
        version != kTraceFormatVersion ||
        std::fread(&config_hash, sizeof(config_hash), 1, f.get()) != 1 ||
        std::fread(&count, sizeof(count), 1, f.get()) != 1) {
        return false;
    }
    // a stale trace from an incompatible generator must not replay
    if (expected_hash != 0 && config_hash != expected_hash)
        return false;

    // a corrupt count must not drive reserve() below: require the
    // file to actually hold that many records
    const long header = std::ftell(f.get());
    if (header < 0 || std::fseek(f.get(), 0, SEEK_END) != 0)
        return false;
    const long fileSize = std::ftell(f.get());
    if (fileSize < 0 ||
        std::fseek(f.get(), header, SEEK_SET) != 0 ||
        count != static_cast<uint64_t>(fileSize - header) /
            sizeof(PackedAccess)) {
        return false;
    }

    out.clear();
    out.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        PackedAccess p;
        if (std::fread(&p, sizeof(p), 1, f.get()) != 1)
            return false;
        MemAccess a;
        a.pc = p.pc;
        a.addr = p.addr;
        a.cpu = p.cpu;
        a.ninst = p.ninst;
        a.dep = p.dep;
        a.size = p.size;
        a.isWrite = p.isWrite != 0;
        a.isKernel = p.isKernel != 0;
        out.push_back(a);
    }
    return true;
}

} // namespace stems::trace
