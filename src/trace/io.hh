/**
 * @file
 * Binary trace serialization, so expensive workload generations can be
 * captured once and replayed across experiments or shared externally.
 *
 * Format v2 headers carry a generator-config hash alongside the format
 * version: replay sites pass the hash of the generator configuration
 * they expect, and files written by an incompatible generator (or in
 * an older format) are rejected instead of silently replaying stale
 * references.
 *
 * Format v3 adds a 64-bit checksum of the record payload to the
 * header, so a spill corrupted after commit (bit rot, a torn device
 * write, or the fault injector's corrupt-spill mode) is rejected on
 * replay — the TraceCache then regenerates the trace instead of
 * silently replaying corrupted references, which would break the
 * byte-identity of dispatched reports.
 */

#ifndef STEMS_TRACE_IO_HH
#define STEMS_TRACE_IO_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/access.hh"
#include "trace/interleaver.hh"

namespace stems::trace {

/** Current .stmt container format version. */
constexpr uint32_t kTraceFormatVersion = 3;

/** .stmt header size: magic, version, generator hash, count, checksum. */
constexpr size_t kTraceHeaderBytes =
    4 + sizeof(uint32_t) + 3 * sizeof(uint64_t);

/** The payload checksum (FNV-1a 64 over the record bytes). */
uint64_t traceChecksum(const unsigned char *data, size_t size,
                       uint64_t h = 0xcbf29ce484222325ULL);

/**
 * Write @p t to @p path in the native STEMS binary format
 * (magic "STMT", version, generator-config hash, count, packed
 * records). The file is written to a temp name and renamed into place
 * atomically, so concurrent readers never observe a torn file.
 *
 * @param config_hash caller-defined fingerprint of whatever produced
 *                    the trace (see study::TraceCache); 0 if unused
 * @return true on success.
 */
bool writeTrace(const Trace &t, const std::string &path,
                uint64_t config_hash = 0);

/**
 * Stream an interleaved view straight to disk in the same format,
 * without materialising the merged trace. The view is consumed.
 */
bool writeTrace(InterleavedView &view, const std::string &path,
                uint64_t config_hash = 0);

/**
 * Read a trace previously written by writeTrace().
 *
 * The fast path maps the file read-only (MAP_PRIVATE) and parses
 * records straight out of the page cache, so replay keeps no second
 * buffered copy of the spill file resident and concurrent readers
 * (dispatch workers sharing a spill dir) share the mapped pages.
 * When the file cannot be mapped the buffered stdio path is used;
 * results are identical.
 *
 * @param path          file to read
 * @param out           receives the trace on success
 * @param expected_hash when nonzero, the stored generator-config hash
 *                      must match or the file is rejected
 * @return true on success (magic/version/hash/count/checksum all
 *         validated).
 */
bool readTrace(const std::string &path, Trace &out,
               uint64_t expected_hash = 0);

} // namespace stems::trace

#endif // STEMS_TRACE_IO_HH
