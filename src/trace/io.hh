/**
 * @file
 * Binary trace serialization, so expensive workload generations can be
 * captured once and replayed across experiments or shared externally.
 */

#ifndef STEMS_TRACE_IO_HH
#define STEMS_TRACE_IO_HH

#include <string>

#include "trace/access.hh"

namespace stems::trace {

/**
 * Write @p t to @p path in the native STEMS binary format
 * (magic "STMT", version, count, packed records).
 *
 * @return true on success.
 */
bool writeTrace(const Trace &t, const std::string &path);

/**
 * Read a trace previously written by writeTrace().
 *
 * @param path file to read
 * @param out  receives the trace on success
 * @return true on success (magic/version/count all validated).
 */
bool readTrace(const std::string &path, Trace &out);

} // namespace stems::trace

#endif // STEMS_TRACE_IO_HH
