/**
 * @file
 * Binary trace serialization, so expensive workload generations can be
 * captured once and replayed across experiments or shared externally.
 *
 * Format v2 headers carry a generator-config hash alongside the format
 * version: replay sites pass the hash of the generator configuration
 * they expect, and files written by an incompatible generator (or in
 * an older format) are rejected instead of silently replaying stale
 * references.
 *
 * Format v3 adds a 64-bit checksum of the record payload to the
 * header, so a spill corrupted after commit (bit rot, a torn device
 * write, or the fault injector's corrupt-spill mode) is rejected on
 * replay — the TraceCache then regenerates the trace instead of
 * silently replaying corrupted references, which would break the
 * byte-identity of dispatched reports.
 *
 * Format v4 lays the payload out as per-stream sections (one
 * contiguous record run per CPU, preceded by a section-count table)
 * and keeps the payload 8-byte aligned. That is what makes zero-copy
 * replay possible: trace::MappedTrace points StreamViews straight
 * into the mapped sections (records are byte-identical to MemAccess),
 * so consumption needs no demerge pass and no materialised copy.
 * Single-trace files are simply one-section files.
 */

#ifndef STEMS_TRACE_IO_HH
#define STEMS_TRACE_IO_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/access.hh"

namespace stems::trace {

/** Current .stmt container format version. */
constexpr uint32_t kTraceFormatVersion = 4;

/**
 * Fixed .stmt header prefix: magic "STMT", version, generator hash,
 * total record count, payload checksum, stream count, padding. The
 * per-stream count table (nstreams × u64) follows, then the payload.
 */
constexpr size_t kTraceHeaderBytes =
    4 + sizeof(uint32_t) + 3 * sizeof(uint64_t) + 2 * sizeof(uint32_t);

/** Byte offset of the first record for an @p nstreams-section file. */
constexpr size_t
tracePayloadOffset(uint32_t nstreams)
{
    return kTraceHeaderBytes + size_t{nstreams} * sizeof(uint64_t);
}

/** The payload checksum (FNV-1a 64 over the record bytes). */
uint64_t traceChecksum(const unsigned char *data, size_t size,
                       uint64_t h = 0xcbf29ce484222325ULL);

/** Parsed and size-validated .stmt header (checksum NOT yet checked). */
struct TraceFileHeader
{
    uint64_t configHash = 0;
    uint64_t count = 0;          //!< total records across sections
    uint64_t checksum = 0;       //!< stored payload checksum
    std::vector<uint64_t> streamCounts;
    size_t payloadOffset = 0;
};

/**
 * Parse the header and section table out of the first
 * min(size, bytes available) bytes of a .stmt image and validate
 * everything except the payload checksum: magic, version, generator
 * hash (when @p expected_hash is nonzero), a sane stream count, and
 * that the section counts sum to the total which in turn matches the
 * file size exactly. @p size must be the full file size.
 */
bool parseTraceHeader(const unsigned char *data, size_t size,
                      TraceFileHeader &out, uint64_t expected_hash);

/**
 * Write @p t to @p path in the native STEMS binary format as a
 * single-section v4 file, records verbatim. The file is written to a
 * temp name and renamed into place atomically, so concurrent readers
 * never observe a torn file.
 *
 * @param config_hash caller-defined fingerprint of whatever produced
 *                    the trace (see study::TraceCache); 0 if unused
 * @return true on success.
 */
bool writeTrace(const Trace &t, const std::string &path,
                uint64_t config_hash = 0);

/**
 * Write per-CPU @p streams as one section each (the spill form the
 * TraceCache records and MappedTrace replays zero-copy). Each
 * record's cpu field is rewritten to its stream index on the way out —
 * the canonical stream identity every consumer re-stamps anyway — so
 * replayed and freshly-generated runs observe identical bytes.
 */
bool writeTraceStreams(const std::vector<Trace> &streams,
                       const std::string &path, uint64_t config_hash = 0);

/**
 * Read a trace previously written by writeTrace(); multi-section
 * files come back concatenated in section order. Magic, version,
 * hash, section table and checksum are all validated.
 */
bool readTrace(const std::string &path, Trace &out,
               uint64_t expected_hash = 0);

/**
 * Read a v4 file's sections into per-stream vectors: the materialised
 * replay fallback used when mapping is unavailable or disabled
 * (STEMS_NO_MMAP=1). Validation is identical to readTrace.
 */
bool readTraceStreams(const std::string &path,
                      std::vector<Trace> &out,
                      uint64_t expected_hash = 0);

} // namespace stems::trace

#endif // STEMS_TRACE_IO_HH
