/**
 * @file
 * Deterministic chunked interleaving of per-CPU reference streams,
 * modelling the fine-grain interleaving a multiprocessor's shared
 * memory system observes.
 *
 * Two forms share one chunk schedule: Interleaver::merge materialises
 * a merged trace (serialization, tests), while InterleavedView walks
 * the original per-CPU streams in exactly the same global order
 * without copying them — the zero-copy form the simulation hot paths
 * (sim::runTiming, study::runSystem) iterate, saving a full trace of
 * resident memory per concurrent run.
 */

#ifndef STEMS_TRACE_INTERLEAVER_HH
#define STEMS_TRACE_INTERLEAVER_HH

#include <cstdint>
#include <vector>

#include "trace/access.hh"
#include "trace/rng.hh"
#include "trace/stream.hh"

namespace stems::trace {

/**
 * A cursor over per-CPU streams in deterministic interleaved order.
 * CPUs take turns emitting chunks of random length in
 * [minChunk, maxChunk]; chunk lengths are drawn from a seeded PRNG so
 * the order is reproducible and identical to Interleaver::merge with
 * the same parameters. Interleaving granularity matters to SMS: the
 * paper shows interleaved accesses to independent spatial regions
 * defeat coupled training structures (Section 4.3), so the schedule
 * interleaves well below transaction granularity.
 *
 * The view only reads the streams. It walks StreamViews, so the
 * backing can be caller-owned vectors (kept alive and unchanged while
 * iterating) or sections of an mmap'd spill — in the mapped case the
 * cursor reports consumption back to each view so pages behind it are
 * dropped and peak RSS tracks the interleave window, not the trace
 * length. Each access's cpu field is rewritten to its stream index in
 * the copy handed out by next().
 */
class InterleavedView
{
  public:
    InterleavedView(const std::vector<Trace> &streams,
                    uint32_t min_chunk = 1, uint32_t max_chunk = 16,
                    uint64_t seed = 42)
        : minChunk(min_chunk), maxChunk(max_chunk), seed_(seed)
    {
        views_.reserve(streams.size());
        for (const auto &s : streams)
            views_.emplace_back(s);
        reset();
    }

    /** Walk pre-built per-stream cursors (e.g. StreamSet::views()). */
    explicit InterleavedView(std::vector<StreamView> views,
                             uint32_t min_chunk = 1,
                             uint32_t max_chunk = 16, uint64_t seed = 42)
        : views_(std::move(views)), minChunk(min_chunk),
          maxChunk(max_chunk), seed_(seed)
    {
        reset();
    }

    /** Rewind to the first access (chunk schedule restarts). */
    void reset();

    /**
     * Copy the next access (cpu field rewritten to its stream index)
     * into @p out.
     * @return false when the streams are exhausted.
     */
    bool
    next(MemAccess &out)
    {
        if (spanLeft == 0 && !refill())
            return false;
        out = *spanNext++;
        out.cpu = spanCpu;
        --spanLeft;
        return true;
    }

    /**
     * Hand out the next contiguous run of accesses, all from one
     * stream (the caller rewrites the cpu field to @p stream_index
     * when it matters). Spans follow each other in exactly the order
     * next() would emit individual accesses; the per-reference state
     * machine runs once per chunk instead of once per access.
     * @return the span length, 0 when exhausted.
     */
    size_t
    nextSpan(const MemAccess *&base, uint32_t &stream_index)
    {
        if (spanLeft == 0 && !refill())
            return 0;
        base = spanNext;
        stream_index = spanCpu;
        const size_t n = spanLeft;
        spanNext += n;
        spanLeft = 0;
        return n;
    }

    /** Total number of accesses across all streams. */
    size_t size() const { return total; }

    /** Number of per-CPU streams. */
    size_t numStreams() const { return views_.size(); }

  private:
    /**
     * Advance the chunk schedule to the next non-empty run and expose
     * it as [spanNext, spanNext + spanLeft) from stream spanCpu.
     * @return false when all streams are exhausted.
     */
    bool
    refill()
    {
        while (live > 0) {
            StreamView &s = views_[cpu];
            const size_t remaining = s.size() - pos[cpu];
            if (remaining == 0) {
                cpu = (cpu + 1) % views_.size();
                continue;
            }
            const uint64_t chunk = rng.range(minChunk, maxChunk);
            const size_t n =
                static_cast<size_t>(chunk < remaining ? chunk
                                                      : remaining);
            spanNext = s.data() + pos[cpu];
            spanLeft = n;
            spanCpu = static_cast<uint32_t>(cpu);
            pos[cpu] += n;
            // mapped backings drop pages behind the cursor
            s.consumed(pos[cpu]);
            if (pos[cpu] == s.size())
                --live;
            cpu = (cpu + 1) % views_.size();
            if (n != 0)
                return true;
            // chunk == 0 (minChunk == 0): an empty turn, keep going
        }
        return false;
    }

    std::vector<StreamView> views_;
    uint32_t minChunk;
    uint32_t maxChunk;
    uint64_t seed_;
    Rng rng{0};
    std::vector<size_t> pos;
    size_t total = 0;
    size_t live = 0;
    size_t cpu = 0;
    const MemAccess *spanNext = nullptr;
    size_t spanLeft = 0;
    uint32_t spanCpu = 0;
};

/**
 * Merge per-CPU streams into a single globally-ordered trace, using
 * the same schedule as InterleavedView with identical parameters.
 */
class Interleaver
{
  public:
    Interleaver(uint32_t min_chunk = 1, uint32_t max_chunk = 16,
                uint64_t seed = 42)
        : minChunk(min_chunk), maxChunk(max_chunk), seed_(seed)
    {}

    /**
     * Merge @p streams (index = cpu) into one trace. Every access's
     * cpu field is rewritten to its stream index.
     */
    Trace merge(const std::vector<Trace> &streams) const;

    /** Zero-copy cursor over @p streams in merge order. */
    InterleavedView
    view(const std::vector<Trace> &streams) const
    {
        return InterleavedView(streams, minChunk, maxChunk, seed_);
    }

  private:
    uint32_t minChunk;
    uint32_t maxChunk;
    uint64_t seed_;
};

/**
 * THE engine-wide interleave schedule: chunk lengths in [1, 16] and
 * the workload seed mixed as seed * 977 + 13. Every production site —
 * trace generation, spill record/replay, the system study, the timing
 * model, the benches — must interleave through these helpers so the
 * global order (and with it, byte-identical reports and .stmt replay)
 * can never drift between call sites.
 */
inline Interleaver
canonicalInterleaver(uint64_t workload_seed)
{
    return Interleaver(1, 16, workload_seed * 977 + 13);
}

/** Zero-copy cursor over @p streams in the canonical order. */
inline InterleavedView
canonicalView(const std::vector<Trace> &streams, uint64_t workload_seed)
{
    return InterleavedView(streams, 1, 16, workload_seed * 977 + 13);
}

/**
 * Canonical-order cursor over a StreamSet's backing, whatever it is —
 * borrowed/owned vectors or a mapped spill. The schedule depends only
 * on stream sizes and the seed, so the emitted order (and with it
 * every downstream report byte) is identical across backings.
 */
inline InterleavedView
canonicalView(const StreamSet &set, uint64_t workload_seed)
{
    return InterleavedView(set.views(), 1, 16, workload_seed * 977 + 13);
}

} // namespace stems::trace

#endif // STEMS_TRACE_INTERLEAVER_HH
