/**
 * @file
 * Deterministic chunked interleaving of per-CPU reference streams into
 * one global trace, modelling the fine-grain interleaving a
 * multiprocessor's shared memory system observes.
 */

#ifndef STEMS_TRACE_INTERLEAVER_HH
#define STEMS_TRACE_INTERLEAVER_HH

#include <cstdint>
#include <vector>

#include "trace/access.hh"

namespace stems::trace {

/**
 * Merge per-CPU streams into a single globally-ordered trace.
 *
 * CPUs take turns emitting chunks of random length in
 * [minChunk, maxChunk]; chunk lengths are drawn from a seeded PRNG so
 * the merge is deterministic. Interleaving granularity matters to SMS:
 * the paper shows interleaved accesses to independent spatial regions
 * defeat coupled training structures (Section 4.3), so the merge must
 * interleave well below transaction granularity.
 */
class Interleaver
{
  public:
    Interleaver(uint32_t min_chunk = 1, uint32_t max_chunk = 16,
                uint64_t seed = 42)
        : minChunk(min_chunk), maxChunk(max_chunk), seed_(seed)
    {}

    /**
     * Merge @p streams (index = cpu) into one trace. Every access's
     * cpu field is rewritten to its stream index.
     */
    Trace merge(std::vector<Trace> streams) const;

  private:
    uint32_t minChunk;
    uint32_t maxChunk;
    uint64_t seed_;
};

} // namespace stems::trace

#endif // STEMS_TRACE_INTERLEAVER_HH
