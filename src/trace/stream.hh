/**
 * @file
 * Zero-materialization stream views over MemAccess sequences.
 *
 * A StreamView is a span-based read-only cursor over one per-CPU
 * reference stream. It can borrow an in-memory Trace, or point
 * straight into an mmap'd .stmt spill file (MappedTrace) — in which
 * case the records are consumed directly from the page cache with no
 * userspace copy, and pages behind the consumption cursor are dropped
 * with madvise(MADV_DONTNEED) so per-cell peak RSS stays independent
 * of trace length.
 *
 * A StreamSet bundles the per-CPU views of one workload generation
 * behind one ownership model (borrowed vectors, owned vectors, or a
 * shared mapped file) so the consumption path — InterleavedView,
 * study::runSystem, study::runL1Study, sim::runTiming — never needs to
 * know which backing it is iterating. Results are byte-identical
 * across backings by construction: every consumer walks the canonical
 * interleave schedule over the same record bytes.
 *
 * The on-disk safety contract: MappedTrace::open validates the entire
 * file — magic, version, generator hash, section table, file size
 * revalidated after mapping, and the full payload checksum — before
 * any view is handed out, so a truncated or corrupted spill surfaces
 * as a clean replay failure (the TraceCache then regenerates), never
 * as a SIGBUS mid-simulation.
 *
 * STEMS_NO_MMAP=1 (mirroring STEMS_NO_SIMD) forces the materialised
 * fallback: spill replay then reads sections through buffered stdio
 * into owned vectors, and no file is ever mapped.
 */

#ifndef STEMS_TRACE_STREAM_HH
#define STEMS_TRACE_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "trace/access.hh"

namespace stems::trace {

// The zero-copy contract: a packed on-disk record (see trace/io.cc's
// PackedAccess, written field by field in this exact order) is
// byte-identical to the in-memory MemAccess, so a mapped file can be
// reinterpreted as a MemAccess array without decoding.
static_assert(sizeof(MemAccess) == 32, "on-disk record layout");
static_assert(std::is_trivially_copyable_v<MemAccess>);
static_assert(offsetof(MemAccess, pc) == 0);
static_assert(offsetof(MemAccess, addr) == 8);
static_assert(offsetof(MemAccess, cpu) == 16);
static_assert(offsetof(MemAccess, ninst) == 20);
static_assert(offsetof(MemAccess, dep) == 24);
static_assert(offsetof(MemAccess, size) == 28);
static_assert(offsetof(MemAccess, isWrite) == 30);
static_assert(offsetof(MemAccess, isKernel) == 31);

/** Whether STEMS_NO_MMAP=1 disables mapped trace views. */
bool mmapDisabled();

/**
 * A fully-validated read-only mapping of a .stmt spill file (format
 * v4, per-stream sections). open() refuses to hand out a mapping
 * unless every check passes; a live MappedTrace is therefore always
 * safe to read end to end.
 */
class MappedTrace
{
  public:
    MappedTrace(const MappedTrace &) = delete;
    MappedTrace &operator=(const MappedTrace &) = delete;
    ~MappedTrace();

    /**
     * Map and validate @p path. Returns null when the file is missing,
     * unmappable, truncated, of the wrong format version, carries a
     * different generator hash than @p expected_hash (0 = unchecked),
     * or fails the payload checksum. The validation pass streams the
     * payload with MADV_SEQUENTIAL/WILLNEED hints and drops pages
     * behind itself, so validating a multi-GB spill never spikes RSS.
     */
    static std::shared_ptr<MappedTrace> open(const std::string &path,
                                             uint64_t expected_hash = 0);

    size_t numStreams() const { return counts.size(); }
    size_t streamCount(size_t i) const { return counts[i]; }
    const MemAccess *streamData(size_t i) const
    {
        return reinterpret_cast<const MemAccess *>(base + offsets[i]);
    }

    /** Mapped size in bytes (header + section table + payload). */
    size_t bytes() const { return size; }

    uint64_t
    totalRefs() const
    {
        uint64_t n = 0;
        for (size_t c : counts)
            n += c;
        return n;
    }

  private:
    MappedTrace() = default;

    const unsigned char *base = nullptr;
    size_t size = 0;
    std::vector<size_t> counts;   //!< records per stream section
    std::vector<size_t> offsets;  //!< section byte offsets from base
};

/**
 * Span-based read-only cursor over one stream. Borrowed views alias a
 * caller-owned Trace; mapped views alias a section of a shared
 * MappedTrace (and keep the mapping alive). consumed() is the
 * page-drop hook: callers report how far the cursor has advanced, and
 * mapped views drop fully-consumed pages so resident memory tracks the
 * interleave window, not the trace length.
 */
class StreamView
{
  public:
    StreamView() = default;

    /** Borrow an in-memory stream; the caller keeps it alive. */
    explicit StreamView(const Trace &t) : base_(t.data()), n_(t.size()) {}

    /** View section @p stream of @p m (shares ownership of the map). */
    StreamView(std::shared_ptr<MappedTrace> m, size_t stream)
        : base_(m->streamData(stream)), n_(m->streamCount(stream)),
          map_(std::move(m))
    {}

    const MemAccess *data() const { return base_; }
    size_t size() const { return n_; }
    bool mapped() const { return map_ != nullptr; }

    /**
     * The cursor has advanced past the first @p pos records; drop
     * fully-consumed pages of a mapped section (hint only — the pages
     * remain valid and refault from the page cache if re-read).
     */
    void consumed(size_t pos);

  private:
    const MemAccess *base_ = nullptr;
    size_t n_ = 0;
    std::shared_ptr<MappedTrace> map_;
    size_t dropped_ = 0;  //!< bytes already released behind the cursor
};

/**
 * The per-CPU stream bundle one workload generation hands to
 * consumers. Exactly one backing is active: borrowed (caller-owned
 * vectors), owned (vectors held here), or mapped (a shared
 * MappedTrace). views() mints fresh cursors — cheap, so every run
 * starts its own page-drop window.
 */
class StreamSet
{
  public:
    StreamSet() = default;

    /** Alias caller-owned streams (caller outlives the set). */
    static StreamSet
    borrowed(const std::vector<Trace> &s)
    {
        StreamSet set;
        set.borrowed_ = &s;
        return set;
    }

    /** Take ownership of materialised streams. */
    static StreamSet
    owned(std::vector<Trace> s)
    {
        StreamSet set;
        set.owned_ = std::move(s);
        set.hasOwned_ = true;
        return set;
    }

    /** Back every view by a validated mapped spill file. */
    static StreamSet
    mapped(std::shared_ptr<MappedTrace> m)
    {
        StreamSet set;
        set.map_ = std::move(m);
        return set;
    }

    bool isMapped() const { return map_ != nullptr; }

    size_t
    numStreams() const
    {
        if (map_)
            return map_->numStreams();
        return vectors() ? vectors()->size() : 0;
    }

    size_t
    streamSize(size_t i) const
    {
        return map_ ? map_->streamCount(i) : (*vectors())[i].size();
    }

    uint64_t
    totalRefs() const
    {
        if (map_)
            return map_->totalRefs();
        uint64_t n = 0;
        if (const auto *v = vectors())
            for (const auto &t : *v)
                n += t.size();
        return n;
    }

    /** Fresh per-stream cursors in stream order. */
    std::vector<StreamView>
    views() const
    {
        std::vector<StreamView> out;
        const size_t n = numStreams();
        out.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            if (map_)
                out.emplace_back(map_, i);
            else
                out.emplace_back(StreamView((*vectors())[i]));
        }
        return out;
    }

    /** The in-memory vectors, or null when backed by a mapping. */
    const std::vector<Trace> *
    vectors() const
    {
        if (borrowed_)
            return borrowed_;
        return hasOwned_ ? &owned_ : nullptr;
    }

    /** Copy a mapped backing out into vectors (legacy callers). */
    std::vector<Trace>
    materialize() const
    {
        if (const auto *v = vectors())
            return *v;
        std::vector<Trace> out(map_->numStreams());
        for (size_t i = 0; i < out.size(); ++i) {
            const MemAccess *d = map_->streamData(i);
            out[i].assign(d, d + map_->streamCount(i));
        }
        return out;
    }

  private:
    std::vector<Trace> owned_;
    bool hasOwned_ = false;
    const std::vector<Trace> *borrowed_ = nullptr;
    std::shared_ptr<MappedTrace> map_;
};

} // namespace stems::trace

#endif // STEMS_TRACE_STREAM_HH
