/**
 * @file
 * MappedTrace and StreamView implementation: validated zero-copy
 * mappings of .stmt spill files, with page-cache hygiene so peak RSS
 * tracks the consumption window rather than the trace length.
 */

#include "trace/stream.hh"

#include <algorithm>
#include <cstdlib>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "trace/io.hh"

namespace stems::trace {

namespace {

/**
 * Drop fully-spanned pages of [begin, end) back to the kernel. A hint
 * only: MAP_PRIVATE read-only pages refault cleanly from the page
 * cache if touched again. Interior pointers are aligned inward so a
 * partially-covered page (still live for a neighbouring section or the
 * unconsumed tail) is never dropped.
 */
void
dropPages(const unsigned char *begin, const unsigned char *end)
{
    static const uintptr_t page =
        static_cast<uintptr_t>(::sysconf(_SC_PAGESIZE));
    uintptr_t lo = reinterpret_cast<uintptr_t>(begin);
    uintptr_t hi = reinterpret_cast<uintptr_t>(end);
    lo = (lo + page - 1) & ~(page - 1);
    hi = hi & ~(page - 1);
    if (hi > lo)
        ::madvise(reinterpret_cast<void *>(lo), hi - lo, MADV_DONTNEED);
}

/** Validation checksum chunk; bounds the resident window of the scan. */
constexpr size_t kChecksumChunk = 8u << 20;

/** Page-drop stride for consumption cursors (see StreamView). */
constexpr size_t kDropStride = 2u << 20;

} // namespace

bool
mmapDisabled()
{
    // read each call (unlike the cached STEMS_NO_SIMD probe) so tests
    // can flip the kill-switch per-case with setenv/unsetenv
    const char *v = std::getenv("STEMS_NO_MMAP");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

MappedTrace::~MappedTrace()
{
    if (base)
        ::munmap(const_cast<unsigned char *>(base), size);
}

std::shared_ptr<MappedTrace>
MappedTrace::open(const std::string &path, uint64_t expected_hash)
{
    if (mmapDisabled())
        return nullptr;

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return nullptr;

    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0 ||
        static_cast<size_t>(st.st_size) < kTraceHeaderBytes) {
        ::close(fd);
        return nullptr;
    }
    const size_t size = static_cast<size_t>(st.st_size);

    void *mem = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mem == MAP_FAILED) {
        ::close(fd);
        return nullptr;
    }

    // revalidate the size after mapping: a writer truncating the file
    // between fstat and mmap would otherwise leave pages past EOF that
    // SIGBUS on first touch mid-simulation. The spill protocol is
    // rename-into-place so this is belt and braces, but the view layer
    // promises a clean replay failure, never a crash.
    struct stat st2;
    const bool stable = ::fstat(fd, &st2) == 0 &&
        static_cast<size_t>(st2.st_size) == size;
    ::close(fd);

    auto fail = [&]() {
        ::munmap(mem, size);
        return std::shared_ptr<MappedTrace>();
    };
    if (!stable)
        return fail();

    const auto *data = static_cast<const unsigned char *>(mem);
    TraceFileHeader h;
    if (!parseTraceHeader(data, size, h, expected_hash))
        return fail();

    // Hint the sequential consumption pattern up front.
    ::madvise(mem, size, MADV_SEQUENTIAL);
    ::madvise(mem, size, MADV_WILLNEED);

    // Full payload checksum before any view is handed out, streamed in
    // chunks with pages dropped behind the scan so validating a
    // multi-GB spill never spikes peak RSS (ru_maxrss is a high-water
    // mark; one resident sweep would defeat the streaming budget).
    uint64_t sum = traceChecksum(nullptr, 0);
    const unsigned char *p = data + h.payloadOffset;
    const unsigned char *end = data + size;
    while (p < end) {
        const size_t n = std::min(kChecksumChunk,
                                  static_cast<size_t>(end - p));
        sum = traceChecksum(p, n, sum);
        dropPages(data, p + n);
        p += n;
    }
    if (sum != h.checksum)
        return fail();

    // The scan faulted everything once; leave nothing resident. Views
    // re-fault their window from the page cache as they consume.
    dropPages(data, end);

    auto m = std::shared_ptr<MappedTrace>(new MappedTrace());
    m->base = data;
    m->size = size;
    m->counts.reserve(h.streamCounts.size());
    m->offsets.reserve(h.streamCounts.size());
    size_t off = h.payloadOffset;
    for (uint64_t c : h.streamCounts) {
        m->counts.push_back(static_cast<size_t>(c));
        m->offsets.push_back(off);
        off += static_cast<size_t>(c) * sizeof(MemAccess);
    }
    return m;
}

void
StreamView::consumed(size_t pos)
{
    if (!map_)
        return;
    const size_t byte = pos * sizeof(MemAccess);
    if (byte < dropped_ + kDropStride)
        return;
    const auto *begin = reinterpret_cast<const unsigned char *>(base_);
    dropPages(begin + dropped_, begin + byte);
    dropped_ = byte;
}

} // namespace stems::trace
