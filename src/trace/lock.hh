/**
 * @file
 * Advisory cross-process file lock (flock) guarding trace-spill
 * generation: when several dispatch workers miss the same .stmt file
 * at once, exactly one generates while the rest block and then replay
 * the freshly written file — the whole point of sharing a spill dir.
 */

#ifndef STEMS_TRACE_LOCK_HH
#define STEMS_TRACE_LOCK_HH

#include <fcntl.h>
#include <string>
#include <sys/file.h>
#include <unistd.h>

namespace stems::trace {

/**
 * RAII exclusive flock on @p path (created if absent). Best effort:
 * when the lock file cannot be opened the guard is a no-op, matching
 * the spill machinery's fall-back-to-live-generation policy.
 */
class FileLock
{
  public:
    explicit FileLock(const std::string &path)
        : fd(::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644))
    {
        if (fd >= 0 && ::flock(fd, LOCK_EX) != 0) {
            ::close(fd);
            fd = -1;
        }
    }

    ~FileLock()
    {
        if (fd >= 0) {
            ::flock(fd, LOCK_UN);
            ::close(fd);
        }
    }

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /** Whether the exclusive lock is actually held. */
    bool held() const { return fd >= 0; }

  private:
    int fd;
};

} // namespace stems::trace

#endif // STEMS_TRACE_LOCK_HH
