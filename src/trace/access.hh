/**
 * @file
 * Memory reference records: the unit of exchange between workload
 * generators, the cache substrate, predictors, and the timing model.
 */

#ifndef STEMS_TRACE_ACCESS_HH
#define STEMS_TRACE_ACCESS_HH

#include <cstdint>
#include <vector>

namespace stems::trace {

/**
 * One memory reference in a workload trace.
 *
 * The @c pc field is a synthetic, stable code-site identifier: every
 * instrumented load/store site in a workload kernel owns a unique
 * constant, playing the role a hardware program counter plays in the
 * paper. SMS correlation only requires that the same code site always
 * presents the same PC, which code-site ids satisfy by construction.
 */
struct MemAccess
{
    uint64_t pc = 0;        //!< code-site id (synthetic program counter)
    uint64_t addr = 0;      //!< byte address of the reference
    uint32_t cpu = 0;       //!< issuing processor
    uint32_t ninst = 0;     //!< non-memory instructions preceding this ref
    uint32_t dep = 0;       //!< refs back in same cpu stream this depends
                            //!< on (0 = independent)
    uint16_t size = 8;      //!< access size in bytes
    bool isWrite = false;   //!< store (true) or load (false)
    bool isKernel = false;  //!< OS-side work, for system-busy attribution

    bool
    operator==(const MemAccess &o) const
    {
        return pc == o.pc && addr == o.addr && cpu == o.cpu &&
            ninst == o.ninst && dep == o.dep && size == o.size &&
            isWrite == o.isWrite && isKernel == o.isKernel;
    }
};

/** A complete reference stream, in global (interleaved) order. */
using Trace = std::vector<MemAccess>;

} // namespace stems::trace

#endif // STEMS_TRACE_ACCESS_HH
