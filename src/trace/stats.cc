#include "trace/stats.hh"

#include <unordered_set>

namespace stems::trace {

TraceStats
computeStats(const Trace &t, uint32_t ncpu)
{
    TraceStats s;
    s.perCpu.assign(ncpu, 0);
    std::unordered_set<uint64_t> blocks;
    std::unordered_set<uint64_t> pcs;
    blocks.reserve(t.size() / 4);

    for (const auto &a : t) {
        ++s.references;
        if (a.isWrite)
            ++s.writes;
        if (a.isKernel)
            ++s.kernelRefs;
        if (a.dep != 0)
            ++s.dependentRefs;
        s.instructions += a.ninst + 1;
        blocks.insert(a.addr >> 6);
        pcs.insert(a.pc);
        if (a.cpu < ncpu)
            ++s.perCpu[a.cpu];
    }
    s.uniqueBlocks = blocks.size();
    s.uniquePcs = pcs.size();
    s.footprintBytes = s.uniqueBlocks * 64;
    return s;
}

} // namespace stems::trace
