/**
 * @file
 * Deterministic random-number helpers shared by workload generators.
 */

#ifndef STEMS_TRACE_RNG_HH
#define STEMS_TRACE_RNG_HH

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace stems::trace {

/**
 * Small deterministic PRNG (xoshiro-style splitmix64 + xorshift)
 * so traces are reproducible across standard-library versions.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 1) { reseed(seed); }

    /** Re-seed the generator; identical seeds yield identical streams. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 expansion of the seed into state
        state = seed + 0x9e3779b97f4a7c15ULL;
        for (int i = 0; i < 4; ++i)
            (void)next64();
    }

    /** Next raw 64-bit value. */
    uint64_t
    next64()
    {
        // splitmix64 step: high quality, tiny state, fully portable
        uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    uint64_t
    below(uint64_t bound)
    {
        assert(bound > 0);
        return next64() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        assert(hi >= lo);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    uint64_t state = 0;
};

/**
 * Zipf-distributed integer sampler over [0, n), used to model the
 * hot-page skew of OLTP buffer pools. Precomputes the CDF once.
 */
class Zipf
{
  public:
    /**
     * @param n     population size
     * @param theta skew exponent (0 = uniform, ~0.8-1.0 = typical OLTP)
     */
    Zipf(uint64_t n, double theta) : cdf(n)
    {
        assert(n > 0);
        double sum = 0.0;
        for (uint64_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
            cdf[i] = sum;
        }
        for (uint64_t i = 0; i < n; ++i)
            cdf[i] /= sum;
    }

    /** Draw one sample in [0, n). */
    uint64_t
    sample(Rng &rng) const
    {
        double u = rng.uniform();
        // binary search the CDF
        uint64_t lo = 0, hi = cdf.size() - 1;
        while (lo < hi) {
            uint64_t mid = (lo + hi) / 2;
            if (cdf[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    uint64_t populationSize() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

} // namespace stems::trace

#endif // STEMS_TRACE_RNG_HH
