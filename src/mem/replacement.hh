/**
 * @file
 * Replacement policies for set-associative structures (caches, PHT).
 */

#ifndef STEMS_MEM_REPLACEMENT_HH
#define STEMS_MEM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/rng.hh"

namespace stems::mem {

/** Which replacement policy a set-associative structure uses. */
enum class ReplKind { LRU, Random, TreePLRU };

/**
 * Replacement state for a (sets x assoc) structure. The owning
 * structure is responsible for preferring invalid ways; the policy is
 * only consulted to pick a victim among valid ways.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Record a use of (set, way). */
    virtual void touch(uint32_t set, uint32_t way) = 0;

    /** Pick the way to victimize in @p set. */
    virtual uint32_t victim(uint32_t set) = 0;
};

/**
 * True LRU via monotonic use timestamps. Caches with LRU replacement
 * and assoc <= 16 bypass this policy entirely — their recency state
 * lives as packed ranks inside the tag frames (see mem/cache.hh) —
 * so this object only serves wider structures and non-default wiring.
 */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(uint32_t sets, uint32_t assoc)
        : assoc_(assoc), stamp(static_cast<size_t>(sets) * assoc, 0)
    {}

    void
    touch(uint32_t set, uint32_t way) override
    {
        stamp[static_cast<size_t>(set) * assoc_ + way] = ++tick;
    }

    uint32_t
    victim(uint32_t set) override
    {
        uint32_t best = 0;
        uint64_t best_stamp = UINT64_MAX;
        for (uint32_t w = 0; w < assoc_; ++w) {
            uint64_t s = stamp[static_cast<size_t>(set) * assoc_ + w];
            if (s < best_stamp) {
                best_stamp = s;
                best = w;
            }
        }
        return best;
    }

  private:
    uint32_t assoc_;
    uint64_t tick = 0;
    std::vector<uint64_t> stamp;
};

/** Uniform random victim selection (deterministic seed). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(uint32_t sets, uint32_t assoc, uint64_t seed = 7)
        : assoc_(assoc), rng(seed)
    {
        (void)sets;
    }

    void touch(uint32_t, uint32_t) override {}

    uint32_t
    victim(uint32_t) override
    {
        return static_cast<uint32_t>(rng.below(assoc_));
    }

  private:
    uint32_t assoc_;
    trace::Rng rng;
};

/**
 * Tree pseudo-LRU. Each set keeps assoc-1 direction bits arranged as
 * a complete binary tree. @pre assoc is a power of two.
 */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    TreePlruPolicy(uint32_t sets, uint32_t assoc)
        : assoc_(assoc),
          bits(static_cast<size_t>(sets) * (assoc > 1 ? assoc - 1 : 1),
               false)
    {}

    void
    touch(uint32_t set, uint32_t way) override
    {
        if (assoc_ < 2)
            return;
        // walk root->leaf, pointing each node away from `way`
        uint32_t node = 0;
        uint32_t lo = 0, hi = assoc_;
        while (hi - lo > 1) {
            uint32_t mid = (lo + hi) / 2;
            bool right = way >= mid;
            setBit(set, node, !right);
            node = 2 * node + (right ? 2 : 1);
            if (right)
                lo = mid;
            else
                hi = mid;
        }
    }

    uint32_t
    victim(uint32_t set) override
    {
        if (assoc_ < 2)
            return 0;
        uint32_t node = 0;
        uint32_t lo = 0, hi = assoc_;
        while (hi - lo > 1) {
            uint32_t mid = (lo + hi) / 2;
            bool right = getBit(set, node);
            node = 2 * node + (right ? 2 : 1);
            if (right)
                lo = mid;
            else
                hi = mid;
        }
        return lo;
    }

  private:
    bool
    getBit(uint32_t set, uint32_t node) const
    {
        return bits[static_cast<size_t>(set) * (assoc_ - 1) + node];
    }

    void
    setBit(uint32_t set, uint32_t node, bool v)
    {
        bits[static_cast<size_t>(set) * (assoc_ - 1) + node] = v;
    }

    uint32_t assoc_;
    std::vector<bool> bits;
};

/** Factory over ReplKind. */
inline std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplKind kind, uint32_t sets, uint32_t assoc)
{
    switch (kind) {
      case ReplKind::Random:
        return std::make_unique<RandomPolicy>(sets, assoc);
      case ReplKind::TreePLRU:
        return std::make_unique<TreePlruPolicy>(sets, assoc);
      case ReplKind::LRU:
      default:
        return std::make_unique<LruPolicy>(sets, assoc);
    }
}

} // namespace stems::mem

#endif // STEMS_MEM_REPLACEMENT_HH
