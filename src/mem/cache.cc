#include "mem/cache.hh"

#include <cassert>
#include <stdexcept>

namespace stems::mem {

Cache::Cache(const CacheConfig &config, std::string name)
    : cfg(config), name_(std::move(name))
{
    if (!isPow2(cfg.blockSize))
        throw std::invalid_argument(name_ + ": block size not power of 2");
    if (cfg.assoc == 0)
        throw std::invalid_argument(name_ + ": zero associativity");
    uint64_t set_bytes = uint64_t{cfg.blockSize} * cfg.assoc;
    if (cfg.sizeBytes < set_bytes || cfg.sizeBytes % set_bytes != 0)
        throw std::invalid_argument(name_ + ": size not a multiple of "
                                            "assoc * blockSize");
    sets = static_cast<uint32_t>(cfg.sizeBytes / set_bytes);
    if (!isPow2(sets))
        throw std::invalid_argument(name_ + ": set count not power of 2");
    blockShift = log2i(cfg.blockSize);
    setShift = blockShift + log2i(sets);
    frames.reset(static_cast<size_t>(sets) * cfg.assoc);
    if (cfg.repl == ReplKind::LRU && cfg.assoc <= kMaxRankAssoc)
        resetRanks();  // in-frame LRU, no policy object
    else
        repl = makeReplacement(cfg.repl, sets, cfg.assoc);
}

void
Cache::resetRanks()
{
    // way w starts at rank assoc-1-w: the back of every LRU stack is
    // way 0, matching timestamp LRU's untouched lowest-way-first order
    for (uint32_t s = 0; s < sets; ++s) {
        Frame *base = &frames[static_cast<size_t>(s) * cfg.assoc];
        for (uint32_t w = 0; w < cfg.assoc; ++w)
            base[w] = uint64_t{cfg.assoc - 1 - w} << kRankShift;
    }
}

uint32_t
Cache::setIndex(uint64_t addr) const
{
    return static_cast<uint32_t>((addr >> blockShift) & (sets - 1));
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return addr >> setShift;
}

uint64_t
Cache::addrOf(uint32_t set, uint64_t tag) const
{
    return (tag << setShift) | (uint64_t{set} << blockShift);
}

uint32_t
Cache::findWay(const Frame *base, uint64_t tag) const
{
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        const Frame f = base[w];
        if (valid(f) && tagBits(f) == tag)
            return w;
    }
    return cfg.assoc;
}

Cache::Frame *
Cache::find(uint64_t addr)
{
    Frame *base = &frames[static_cast<size_t>(setIndex(addr)) * cfg.assoc];
    const uint32_t way = findWay(base, tagOf(addr));
    return way < cfg.assoc ? &base[way] : nullptr;
}

const Cache::Frame *
Cache::find(uint64_t addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

Cache::Frame &
Cache::allocate(uint32_t set, uint64_t tag)
{
    Frame *base = &frames[static_cast<size_t>(set) * cfg.assoc];

    // prefer an invalid way
    uint32_t way = cfg.assoc;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (!valid(base[w])) {
            way = w;
            break;
        }
    }
    if (way == cfg.assoc) {
        way = victimRepl(base, set);
        const Frame victim = base[way];
        assert(valid(victim));
        ++stats_.evictions;
        if (dirty(victim))
            ++stats_.writebacks;
        if (prefetch(victim))
            ++stats_.prefetchUnused;
        if (listener)
            listener->evicted(addrOf(set, tagBits(victim)),
                              dirty(victim), prefetch(victim));
    }

    Frame &f = base[way];
    f = (tag << kTagShift) | (f & kRankMask) | kValid;
    touchRepl(base, set, way);
    return f;
}

AccessResult
Cache::access(uint64_t addr, bool is_write, PreMissHook pre_miss,
              void *pre_miss_ctx)
{
    ++stats_.accesses;
    if (!is_write)
        ++stats_.readAccesses;

    // index math computed once for the whole access
    const uint32_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    Frame *base = &frames[static_cast<size_t>(set) * cfg.assoc];

    AccessResult r;
    const uint32_t way = findWay(base, tag);
    if (way < cfg.assoc) {
        Frame &f = base[way];
        r.hit = true;
        ++stats_.hits;
        if (prefetch(f)) {
            r.prefetchHit = true;
            ++stats_.prefetchHits;
            f &= ~kPrefetch;
        }
        if (is_write)
            f |= kDirty;
        touchRepl(base, set, way);
        return r;
    }

    if (pre_miss)
        pre_miss(pre_miss_ctx, addr);

    ++stats_.misses;
    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    Frame &f = allocate(set, tag);
    if (is_write)
        f |= kDirty;
    return r;
}

bool
Cache::fillPrefetch(uint64_t addr)
{
    const uint32_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    if (findWay(&frames[static_cast<size_t>(set) * cfg.assoc], tag) <
        cfg.assoc)
        return false;
    Frame &f = allocate(set, tag);
    f |= kPrefetch;
    ++stats_.prefetchFills;
    return true;
}

bool
Cache::fill(uint64_t addr, bool is_dirty)
{
    const uint32_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    Frame *base = &frames[static_cast<size_t>(set) * cfg.assoc];
    const uint32_t way = findWay(base, tag);
    if (way < cfg.assoc) {
        if (is_dirty)
            base[way] |= kDirty;
        return false;
    }
    Frame &f = allocate(set, tag);
    if (is_dirty)
        f |= kDirty;
    return true;
}

bool
Cache::invalidate(uint64_t addr)
{
    Frame *f = find(addr);
    if (!f)
        return false;
    ++stats_.invalidations;
    if (dirty(*f))
        ++stats_.writebacks;
    if (prefetch(*f))
        ++stats_.prefetchUnused;
    const bool was_prefetch = prefetch(*f);
    *f &= kRankMask;  // clear the frame, keep its LRU-stack position
    if (listener)
        listener->invalidated(blockBase(addr), was_prefetch);
    return true;
}

bool
Cache::contains(uint64_t addr) const
{
    return find(addr) != nullptr;
}

bool
Cache::isPrefetched(uint64_t addr) const
{
    const Frame *f = find(addr);
    return f && prefetch(*f);
}

bool
Cache::setDirty(uint64_t addr)
{
    Frame *f = find(addr);
    if (!f)
        return false;
    *f |= kDirty;
    return true;
}

bool
Cache::clearPrefetch(uint64_t addr)
{
    Frame *f = find(addr);
    if (!f || !prefetch(*f))
        return false;
    *f &= ~kPrefetch;
    ++stats_.prefetchHits;
    return true;
}

void
Cache::flush()
{
    for (auto &f : frames)
        f &= kRankMask;
}

} // namespace stems::mem
