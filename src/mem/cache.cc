#include "mem/cache.hh"

#include <cassert>
#include <stdexcept>

namespace stems::mem {

Cache::Cache(const CacheConfig &config, std::string name)
    : cfg(config), name_(std::move(name))
{
    if (!isPow2(cfg.blockSize))
        throw std::invalid_argument(name_ + ": block size not power of 2");
    if (cfg.assoc == 0)
        throw std::invalid_argument(name_ + ": zero associativity");
    uint64_t set_bytes = uint64_t{cfg.blockSize} * cfg.assoc;
    if (cfg.sizeBytes < set_bytes || cfg.sizeBytes % set_bytes != 0)
        throw std::invalid_argument(name_ + ": size not a multiple of "
                                            "assoc * blockSize");
    sets = static_cast<uint32_t>(cfg.sizeBytes / set_bytes);
    if (!isPow2(sets))
        throw std::invalid_argument(name_ + ": set count not power of 2");
    blockShift = log2i(cfg.blockSize);
    frames.resize(static_cast<size_t>(sets) * cfg.assoc);
    repl = makeReplacement(cfg.repl, sets, cfg.assoc);
}

uint32_t
Cache::setIndex(uint64_t addr) const
{
    return static_cast<uint32_t>((addr >> blockShift) & (sets - 1));
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return addr >> (blockShift + log2i(sets));
}

uint64_t
Cache::addrOf(uint32_t set, uint64_t tag) const
{
    return (tag << (blockShift + log2i(sets))) |
        (uint64_t{set} << blockShift);
}

Cache::Frame *
Cache::find(uint64_t addr)
{
    uint32_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    Frame *base = &frames[static_cast<size_t>(set) * cfg.assoc];
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Frame *
Cache::find(uint64_t addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

Cache::Frame &
Cache::allocate(uint64_t addr)
{
    uint32_t set = setIndex(addr);
    Frame *base = &frames[static_cast<size_t>(set) * cfg.assoc];

    // prefer an invalid way
    uint32_t way = cfg.assoc;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (!base[w].valid) {
            way = w;
            break;
        }
    }
    if (way == cfg.assoc) {
        way = repl->victim(set);
        Frame &victim = base[way];
        assert(victim.valid);
        ++stats_.evictions;
        if (victim.dirty)
            ++stats_.writebacks;
        if (victim.prefetch)
            ++stats_.prefetchUnused;
        if (listener)
            listener->evicted(addrOf(set, victim.tag), victim.dirty,
                              victim.prefetch);
    }

    Frame &f = base[way];
    f.tag = tagOf(addr);
    f.valid = true;
    f.dirty = false;
    f.prefetch = false;
    repl->touch(set, way);
    return f;
}

AccessResult
Cache::access(uint64_t addr, bool is_write)
{
    ++stats_.accesses;
    if (!is_write)
        ++stats_.readAccesses;

    AccessResult r;
    if (Frame *f = find(addr)) {
        r.hit = true;
        ++stats_.hits;
        if (f->prefetch) {
            r.prefetchHit = true;
            ++stats_.prefetchHits;
            f->prefetch = false;
        }
        if (is_write)
            f->dirty = true;
        repl->touch(setIndex(addr),
                    static_cast<uint32_t>(
                        f - &frames[static_cast<size_t>(setIndex(addr)) *
                                    cfg.assoc]));
        return r;
    }

    ++stats_.misses;
    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    Frame &f = allocate(addr);
    f.dirty = is_write;
    return r;
}

bool
Cache::fillPrefetch(uint64_t addr)
{
    if (find(addr))
        return false;
    Frame &f = allocate(addr);
    f.prefetch = true;
    ++stats_.prefetchFills;
    return true;
}

bool
Cache::fill(uint64_t addr, bool dirty)
{
    if (Frame *f = find(addr)) {
        f->dirty = f->dirty || dirty;
        return false;
    }
    Frame &f = allocate(addr);
    f.dirty = dirty;
    return true;
}

bool
Cache::invalidate(uint64_t addr)
{
    Frame *f = find(addr);
    if (!f)
        return false;
    ++stats_.invalidations;
    if (f->dirty)
        ++stats_.writebacks;
    if (f->prefetch)
        ++stats_.prefetchUnused;
    bool was_prefetch = f->prefetch;
    f->valid = false;
    f->dirty = false;
    f->prefetch = false;
    if (listener)
        listener->invalidated(blockBase(addr), was_prefetch);
    return true;
}

bool
Cache::contains(uint64_t addr) const
{
    return find(addr) != nullptr;
}

bool
Cache::isPrefetched(uint64_t addr) const
{
    const Frame *f = find(addr);
    return f && f->prefetch;
}

bool
Cache::setDirty(uint64_t addr)
{
    Frame *f = find(addr);
    if (!f)
        return false;
    f->dirty = true;
    return true;
}

bool
Cache::clearPrefetch(uint64_t addr)
{
    Frame *f = find(addr);
    if (!f || !f->prefetch)
        return false;
    f->prefetch = false;
    ++stats_.prefetchHits;
    return true;
}

void
Cache::flush()
{
    for (auto &f : frames) {
        f.valid = false;
        f.dirty = false;
        f.prefetch = false;
    }
}

} // namespace stems::mem
