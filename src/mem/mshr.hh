/**
 * @file
 * Miss status holding registers: bounded tracking of outstanding
 * misses with secondary-miss merging, used by the timing model to
 * limit memory-level parallelism the way real L1s do.
 */

#ifndef STEMS_MEM_MSHR_HH
#define STEMS_MEM_MSHR_HH

#include <cstdint>

#include "util/flat_map.hh"

namespace stems::mem {

/**
 * A file of MSHRs keyed by block address. Each entry carries the
 * cycle its fill completes; the owner retires entries by calling
 * completeReady().
 */
class MshrFile
{
  public:
    /** @param entries capacity (32 in the paper's L1s) */
    explicit MshrFile(uint32_t entries) : capacity(entries)
    {
        // bounded occupancy: size the table once, never rehash
        inflight.reserve(capacity);
    }

    bool full() const { return inflight.size() >= capacity; }
    size_t size() const { return inflight.size(); }
    uint32_t numEntries() const { return capacity; }

    /** @return true if a miss on @p block_addr is already outstanding. */
    bool
    outstanding(uint64_t block_addr) const
    {
        return inflight.count(block_addr) != 0;
    }

    /**
     * Allocate an entry completing at @p ready_cycle.
     * @return false if the file is full (caller must stall).
     */
    bool
    allocate(uint64_t block_addr, uint64_t ready_cycle)
    {
        // secondary misses merge into the existing entry even when the
        // file is full — they need no new register
        if (auto it = inflight.find(block_addr); it != inflight.end()) {
            ++merged;
            return true;
        }
        if (full())
            return false;
        inflight.emplace(block_addr, ready_cycle);
        ++allocations;
        return true;
    }

    /**
     * Completion cycle of the outstanding miss on @p block_addr.
     * @pre outstanding(block_addr)
     */
    uint64_t
    readyAt(uint64_t block_addr) const
    {
        return inflight.at(block_addr);
    }

    /** Retire every entry whose fill completed by @p now. */
    void
    completeReady(uint64_t now)
    {
        for (auto it = inflight.begin(); it != inflight.end();) {
            if (it->second <= now)
                it = inflight.erase(it);
            else
                ++it;
        }
    }

    /** Earliest completion among outstanding entries (or UINT64_MAX). */
    uint64_t
    nextReady() const
    {
        uint64_t best = UINT64_MAX;
        for (const auto &[a, c] : inflight)
            best = c < best ? c : best;
        return best;
    }

    void
    clear()
    {
        inflight.clear();
    }

    uint64_t mergedMisses() const { return merged; }
    uint64_t totalAllocations() const { return allocations; }

  private:
    uint32_t capacity;
    uint64_t merged = 0;
    uint64_t allocations = 0;
    util::FlatMap<uint64_t, uint64_t> inflight;
};

} // namespace stems::mem

#endif // STEMS_MEM_MSHR_HH
