/**
 * @file
 * The multiprocessor memory system: per-node private L1 and L2 caches
 * kept inclusive, glued by a full-map invalidation directory. This is
 * the substrate every trace-based experiment in the paper runs on.
 */

#ifndef STEMS_MEM_MEMSYS_HH
#define STEMS_MEM_MEMSYS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "mem/directory.hh"
#include "trace/access.hh"

namespace stems::mem {

/** Where a demand access was satisfied. */
enum class HitLevel { L1, L2, Remote, Memory };

/** Full outcome of one demand access through the hierarchy. */
struct AccessOutcome
{
    HitLevel level = HitLevel::L1;
    bool l1PrefetchHit = false;  //!< hit a prefetched L1 block (coverage)
    bool l2PrefetchHit = false;  //!< first use of an L2-prefetched block
    bool coherenceMiss = false;  //!< miss caused by a remote write
};

/**
 * Observer of the demand access stream with hierarchy outcomes.
 * Prefetchers subscribe here: SMS trains on all L1 accesses; GHB
 * filters for L1 misses.
 */
class AccessObserver
{
  public:
    virtual ~AccessObserver() = default;
    virtual void onAccess(const trace::MemAccess &a,
                          const AccessOutcome &o) = 0;
};

/** Configuration of the full memory system. */
struct MemSysConfig
{
    uint32_t ncpu = 16;
    CacheConfig l1{64 * 1024, 2, 64, ReplKind::LRU};
    CacheConfig l2{8 * 1024 * 1024, 8, 64, ReplKind::LRU};
};

/**
 * 16-node (configurable) shared-memory system. Each node has a
 * private L1 and a private L2; the L2s are kept inclusive of their
 * L1s; a directory maintains single-writer/multi-reader coherence at
 * L2 block granularity; dirty L1 victims write back into the L2.
 */
class MemorySystem : public CoherenceClient
{
  public:
    explicit MemorySystem(const MemSysConfig &config);

    /**
     * Run one demand access through node a.cpu's hierarchy, updating
     * coherence, inclusion and false-sharing bookkeeping, and
     * notifying observers.
     */
    AccessOutcome access(const trace::MemAccess &a);

    /**
     * Issue a prefetch/stream request on behalf of node @p cpu. The
     * request behaves like a read in the coherence protocol.
     *
     * @param into_l1 stream into L1 (SMS) or stop at L2 (GHB)
     * @return the level that supplied the data
     */
    HitLevel prefetch(uint32_t cpu, uint64_t addr, bool into_l1);

    /**
     * Attach an additional listener to node @p cpu's L1 (e.g., an SMS
     * trainer that must see evictions and invalidations).
     */
    void addL1Listener(uint32_t cpu, CacheListener *l);

    /** Attach an additional listener to node @p cpu's L2. */
    void addL2Listener(uint32_t cpu, CacheListener *l);

    /** Subscribe to the demand access stream. */
    void addObserver(AccessObserver *o) { observers.push_back(o); }

    Cache &l1(uint32_t cpu) { return *l1s[cpu]; }
    Cache &l2(uint32_t cpu) { return *l2s[cpu]; }
    const Cache &l1(uint32_t cpu) const { return *l1s[cpu]; }
    const Cache &l2(uint32_t cpu) const { return *l2s[cpu]; }
    Directory &directory() { return *dir; }
    uint32_t numCpus() const { return cfg.ncpu; }
    const MemSysConfig &config() const { return cfg; }

    /** Sum of demand read misses over all L1s. */
    uint64_t l1ReadMisses() const;
    /** Sum of demand read misses over all L2s (off-chip read misses). */
    uint64_t l2ReadMisses() const;
    /** Sum of demand read accesses over all L1s. */
    uint64_t l1ReadAccesses() const;

    /** Blocks written back to main memory (from L2 victims). */
    uint64_t memoryWritebacks() const { return memWritebacks; }

    // CoherenceClient
    void invalidateBlock(uint32_t cpu, uint64_t addr) override;

  private:
    /** Per-node L1 hook: forwards events, performs dirty writeback. */
    class L1Hook : public CacheListener
    {
      public:
        L1Hook(MemorySystem *s, uint32_t c) : sys(s), cpu(c) {}
        void evicted(uint64_t addr, bool dirty, bool wasPf) override;
        void invalidated(uint64_t addr, bool wasPf) override;
        void add(CacheListener *l) { extra.push_back(l); }

      private:
        MemorySystem *sys;
        uint32_t cpu;
        std::vector<CacheListener *> extra;
    };

    /** Per-node L2 hook: enforces inclusion, informs the directory. */
    class L2Hook : public CacheListener
    {
      public:
        L2Hook(MemorySystem *s, uint32_t c) : sys(s), cpu(c) {}
        void evicted(uint64_t addr, bool dirty, bool wasPf) override;
        void invalidated(uint64_t addr, bool wasPf) override;
        void add(CacheListener *l) { extra.push_back(l); }

      private:
        MemorySystem *sys;
        uint32_t cpu;
        std::vector<CacheListener *> extra;
    };

    void invalidateL1Range(uint32_t cpu, uint64_t l2_block_addr);

    MemSysConfig cfg;
    std::vector<std::unique_ptr<Cache>> l1s;
    std::vector<std::unique_ptr<Cache>> l2s;
    std::vector<std::unique_ptr<L1Hook>> l1Hooks;
    std::vector<std::unique_ptr<L2Hook>> l2Hooks;
    std::unique_ptr<Directory> dir;
    std::vector<AccessObserver *> observers;
    uint64_t memWritebacks = 0;
};

} // namespace stems::mem

#endif // STEMS_MEM_MEMSYS_HH
