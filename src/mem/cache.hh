/**
 * @file
 * Set-associative write-back cache model with per-frame prefetch bits
 * and eviction/invalidation listeners. The listener stream is what
 * defines spatial region generations for SMS trainers, so the cache
 * reports *every* departure of a valid block, clean or dirty.
 */

#ifndef STEMS_MEM_CACHE_HH
#define STEMS_MEM_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/replacement.hh"
#include "util/bits.hh"

namespace stems::mem {

/** Geometry and policy of one cache. */
struct CacheConfig
{
    uint64_t sizeBytes = 64 * 1024;  //!< total data capacity
    uint32_t assoc = 2;              //!< ways per set
    uint32_t blockSize = 64;         //!< bytes per block (power of two)
    ReplKind repl = ReplKind::LRU;   //!< replacement policy
};

/**
 * Observer of block departures. Implemented by SMS trainers (to end
 * spatial region generations) and by the memory system (to maintain
 * inclusion and coherence bookkeeping).
 */
class CacheListener
{
  public:
    virtual ~CacheListener() = default;

    /** A valid block left by replacement. @p addr is block-aligned. */
    virtual void
    evicted(uint64_t addr, bool dirty, bool was_prefetch)
    {
        (void)addr; (void)dirty; (void)was_prefetch;
    }

    /** A valid block left by external invalidation. */
    virtual void
    invalidated(uint64_t addr, bool was_prefetch)
    {
        (void)addr; (void)was_prefetch;
    }
};

/** Outcome of one demand access. */
struct AccessResult
{
    bool hit = false;          //!< block was present
    bool prefetchHit = false;  //!< present only because of a prefetch
};

/** Event counters for one cache. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t readAccesses = 0;
    uint64_t readMisses = 0;
    uint64_t writeMisses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    uint64_t invalidations = 0;
    uint64_t prefetchFills = 0;     //!< blocks inserted by a prefetcher
    uint64_t prefetchHits = 0;      //!< first demand touch of such block
    uint64_t prefetchUnused = 0;    //!< prefetched blocks dropped unused

    void
    reset()
    {
        *this = CacheStats{};
    }
};

/**
 * A single-level set-associative cache holding tags only (no data),
 * sufficient for miss/coverage studies and timing simulation.
 */
class Cache
{
  public:
    /**
     * @param config geometry/policy; size, assoc and blockSize must
     *               describe at least one full set
     * @param name   label used in assertions and debug output
     */
    explicit Cache(const CacheConfig &config, std::string name = "cache");

    /** Subscribe to eviction/invalidation events (one listener). */
    void setListener(CacheListener *l) { listener = l; }

    /**
     * Perform a demand access. Misses allocate the block, evicting a
     * victim if needed (listener notified). Demand hits on a
     * prefetched block clear the prefetch bit and report prefetchHit.
     */
    AccessResult access(uint64_t addr, bool is_write);

    /**
     * Insert a block on behalf of a prefetcher; no-op if present.
     * @return true if the block was newly inserted.
     */
    bool fillPrefetch(uint64_t addr);

    /**
     * Insert a block without counting a demand access (used by upper
     * levels maintaining inclusion). No-op if present.
     * @return true if newly inserted.
     */
    bool fill(uint64_t addr, bool dirty = false);

    /**
     * Remove a block (coherence invalidation or inclusion victim).
     * @return true if the block was present.
     */
    bool invalidate(uint64_t addr);

    /** @return true if the block holding @p addr is resident. */
    bool contains(uint64_t addr) const;

    /** @return true if resident with its prefetch bit still set. */
    bool isPrefetched(uint64_t addr) const;

    /** Mark the resident block dirty. @return false if absent. */
    bool setDirty(uint64_t addr);

    /**
     * Clear the prefetch bit of a resident block because a consumer
     * above this level made first use of the prefetched data (counts
     * as a useful prefetch here, too).
     * @return true if the block was resident with its bit set.
     */
    bool clearPrefetch(uint64_t addr);

    /** Drop all blocks without listener notification. */
    void flush();

    const CacheStats &stats() const { return stats_; }
    CacheStats &stats() { return stats_; }

    uint32_t blockSize() const { return cfg.blockSize; }
    uint32_t numSets() const { return sets; }
    uint32_t associativity() const { return cfg.assoc; }
    uint64_t capacityBytes() const { return cfg.sizeBytes; }
    const std::string &name() const { return name_; }

    /** Block-align @p addr to this cache's block size. */
    uint64_t
    blockBase(uint64_t addr) const
    {
        return addr & ~uint64_t{cfg.blockSize - 1};
    }

  private:
    struct Frame
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetch = false;
    };

    uint32_t setIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;
    uint64_t addrOf(uint32_t set, uint64_t tag) const;
    Frame *find(uint64_t addr);
    const Frame *find(uint64_t addr) const;

    /** Allocate a frame for @p addr, evicting if necessary. */
    Frame &allocate(uint64_t addr);

    CacheConfig cfg;
    std::string name_;
    uint32_t sets;
    uint32_t blockShift;
    std::vector<Frame> frames;
    std::unique_ptr<ReplacementPolicy> repl;
    CacheListener *listener = nullptr;
    CacheStats stats_;
};

} // namespace stems::mem

#endif // STEMS_MEM_CACHE_HH
