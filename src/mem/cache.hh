/**
 * @file
 * Set-associative write-back cache model with per-frame prefetch bits
 * and eviction/invalidation listeners. The listener stream is what
 * defines spatial region generations for SMS trainers, so the cache
 * reports *every* departure of a valid block, clean or dirty.
 */

#ifndef STEMS_MEM_CACHE_HH
#define STEMS_MEM_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/replacement.hh"
#include "util/bits.hh"
#include "util/hugepage.hh"

namespace stems::mem {

/** Geometry and policy of one cache. */
struct CacheConfig
{
    uint64_t sizeBytes = 64 * 1024;  //!< total data capacity
    uint32_t assoc = 2;              //!< ways per set
    uint32_t blockSize = 64;         //!< bytes per block (power of two)
    ReplKind repl = ReplKind::LRU;   //!< replacement policy
};

/**
 * Observer of block departures. Implemented by SMS trainers (to end
 * spatial region generations) and by the memory system (to maintain
 * inclusion and coherence bookkeeping).
 */
class CacheListener
{
  public:
    virtual ~CacheListener() = default;

    /** A valid block left by replacement. @p addr is block-aligned. */
    virtual void
    evicted(uint64_t addr, bool dirty, bool was_prefetch)
    {
        (void)addr; (void)dirty; (void)was_prefetch;
    }

    /** A valid block left by external invalidation. */
    virtual void
    invalidated(uint64_t addr, bool was_prefetch)
    {
        (void)addr; (void)was_prefetch;
    }
};

/** Outcome of one demand access. */
struct AccessResult
{
    bool hit = false;          //!< block was present
    bool prefetchHit = false;  //!< present only because of a prefetch
};

/** Event counters for one cache. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t readAccesses = 0;
    uint64_t readMisses = 0;
    uint64_t writeMisses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    uint64_t invalidations = 0;
    uint64_t prefetchFills = 0;     //!< blocks inserted by a prefetcher
    uint64_t prefetchHits = 0;      //!< first demand touch of such block
    uint64_t prefetchUnused = 0;    //!< prefetched blocks dropped unused

    void
    reset()
    {
        *this = CacheStats{};
    }
};

/**
 * A single-level set-associative cache holding tags only (no data),
 * sufficient for miss/coverage studies and timing simulation.
 */
class Cache
{
  public:
    /**
     * @param config geometry/policy; size, assoc and blockSize must
     *               describe at least one full set
     * @param name   label used in assertions and debug output
     */
    explicit Cache(const CacheConfig &config, std::string name = "cache");

    /** Subscribe to eviction/invalidation events (one listener). */
    void setListener(CacheListener *l) { listener = l; }

    /**
     * Called the moment a demand access is known to miss, before the
     * victim/allocate work: the owner uses it to start fetching the
     * next level's state so cold lookups overlap the eviction chain.
     */
    using PreMissHook = void (*)(void *ctx, uint64_t addr);

    /**
     * Perform a demand access. Misses allocate the block, evicting a
     * victim if needed (listener notified). Demand hits on a
     * prefetched block clear the prefetch bit and report prefetchHit.
     */
    AccessResult access(uint64_t addr, bool is_write,
                        PreMissHook pre_miss = nullptr,
                        void *pre_miss_ctx = nullptr);

    /**
     * Insert a block on behalf of a prefetcher; no-op if present.
     * @return true if the block was newly inserted.
     */
    bool fillPrefetch(uint64_t addr);

    /**
     * Insert a block without counting a demand access (used by upper
     * levels maintaining inclusion). No-op if present.
     * @return true if newly inserted.
     */
    bool fill(uint64_t addr, bool dirty = false);

    /**
     * Remove a block (coherence invalidation or inclusion victim).
     * @return true if the block was present.
     */
    bool invalidate(uint64_t addr);

    /** @return true if the block holding @p addr is resident. */
    bool contains(uint64_t addr) const;

    /** @return true if resident with its prefetch bit still set. */
    bool isPrefetched(uint64_t addr) const;

    /** Mark the resident block dirty. @return false if absent. */
    bool setDirty(uint64_t addr);

    /**
     * Clear the prefetch bit of a resident block because a consumer
     * above this level made first use of the prefetched data (counts
     * as a useful prefetch here, too).
     * @return true if the block was resident with its bit set.
     */
    bool clearPrefetch(uint64_t addr);

    /** Drop all blocks without listener notification. */
    void flush();

    /**
     * Start fetching the tag line for @p addr's set so an imminent
     * access()/fill() overlaps the latency of a cold tag array.
     */
    void
    prefetchTags(uint64_t addr) const
    {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(
            &frames[static_cast<size_t>(setIndex(addr)) * cfg.assoc]);
#else
        (void)addr;
#endif
    }

    const CacheStats &stats() const { return stats_; }
    CacheStats &stats() { return stats_; }

    uint32_t blockSize() const { return cfg.blockSize; }
    uint32_t numSets() const { return sets; }
    uint32_t associativity() const { return cfg.assoc; }
    uint64_t capacityBytes() const { return cfg.sizeBytes; }
    const std::string &name() const { return name_; }

    /** Block-align @p addr to this cache's block size. */
    uint64_t
    blockBase(uint64_t addr) const
    {
        return addr & ~uint64_t{cfg.blockSize - 1};
    }

  private:
    /**
     * One tag frame packed into a word: bit 0 valid, bit 1 dirty,
     * bit 2 prefetch, bits 3..6 the way's LRU rank (0 = MRU), tag in
     * bits 7..63. Packing shrinks the tag-array footprint (the
     * dominant resident cost of a 16-node system's L2s) to one word
     * per frame, and embedding the recency rank means a hit updates
     * LRU state on the cache line the tag probe just loaded instead
     * of touching a second array. Ranks always form a permutation of
     * the set's ways — invalidation clears a frame but keeps its rank
     * — which is exactly the classic LRU-stack semantics.
     * Tags are addr >> setShift, so addresses up to 2^57 * blockSize
     * bytes are representable — far beyond any simulated footprint.
     */
    using Frame = uint64_t;

    static constexpr uint64_t kValid = 1;
    static constexpr uint64_t kDirty = 2;
    static constexpr uint64_t kPrefetch = 4;
    static constexpr uint32_t kRankShift = 3;
    static constexpr uint64_t kRankMask = uint64_t{15} << kRankShift;
    static constexpr uint32_t kTagShift = 7;

    /** In-frame ranks need 4 bits; wider sets use a policy object. */
    static constexpr uint32_t kMaxRankAssoc = 16;

    static bool valid(Frame f) { return f & kValid; }
    static bool dirty(Frame f) { return f & kDirty; }
    static bool prefetch(Frame f) { return f & kPrefetch; }
    static uint64_t tagBits(Frame f) { return f >> kTagShift; }

    static uint32_t
    rankOf(Frame f)
    {
        return static_cast<uint32_t>((f & kRankMask) >> kRankShift);
    }

    uint32_t setIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;
    uint64_t addrOf(uint32_t set, uint64_t tag) const;
    Frame *find(uint64_t addr);
    const Frame *find(uint64_t addr) const;

    /** Way of (set, tag) in the set's frame array, or assoc if absent. */
    uint32_t findWay(const Frame *base, uint64_t tag) const;

    /** Allocate a way in @p set for @p tag, evicting if necessary. */
    Frame &allocate(uint32_t set, uint64_t tag);

    /** Move @p way to the front of its set's LRU stack. */
    void
    touchRepl(Frame *base, uint32_t set, uint32_t way)
    {
        if (repl) {
            repl->touch(set, way);
            return;
        }
        const uint64_t r = base[way] & kRankMask;
        for (uint32_t w = 0; w < cfg.assoc; ++w) {
            if ((base[w] & kRankMask) < r)
                base[w] += uint64_t{1} << kRankShift;
        }
        base[way] &= ~kRankMask;
    }

    uint32_t
    victimRepl(Frame *base, uint32_t set)
    {
        if (repl)
            return repl->victim(set);
        const uint64_t back =
            uint64_t{cfg.assoc - 1} << kRankShift;
        for (uint32_t w = 0; w < cfg.assoc; ++w) {
            if ((base[w] & kRankMask) == back)
                return w;
        }
        return 0;  // unreachable: ranks are a permutation
    }

    /** Initial LRU stack: way 0 at the back, like untouched stamps. */
    void resetRanks();

    CacheConfig cfg;
    std::string name_;
    uint32_t sets;
    uint32_t blockShift;
    uint32_t setShift;  //!< blockShift + log2(sets), hoisted
    util::HugeArray<Frame> frames;
    std::unique_ptr<ReplacementPolicy> repl;  //!< null: in-frame LRU
    CacheListener *listener = nullptr;
    CacheStats stats_;
};

} // namespace stems::mem

#endif // STEMS_MEM_CACHE_HH
