#include "mem/memsys.hh"

#include <stdexcept>

namespace stems::mem {

MemorySystem::MemorySystem(const MemSysConfig &config) : cfg(config)
{
    if (cfg.l2.blockSize < cfg.l1.blockSize)
        throw std::invalid_argument("L2 block must be >= L1 block");

    // pre-size the directory for the aggregate L2 footprint: every
    // resident L2 block keeps an entry, and workloads typically touch
    // more than fits, so this skips the costliest growth rehashes
    const uint64_t l2Blocks = uint64_t{cfg.ncpu} *
        (cfg.l2.sizeBytes / cfg.l2.blockSize);
    dir = std::make_unique<Directory>(cfg.ncpu, cfg.l2.blockSize, this,
                                      l2Blocks);

    for (uint32_t c = 0; c < cfg.ncpu; ++c) {
        l1s.push_back(std::make_unique<Cache>(
            cfg.l1, "l1." + std::to_string(c)));
        l2s.push_back(std::make_unique<Cache>(
            cfg.l2, "l2." + std::to_string(c)));
        l1Hooks.push_back(std::make_unique<L1Hook>(this, c));
        l2Hooks.push_back(std::make_unique<L2Hook>(this, c));
        l1s.back()->setListener(l1Hooks.back().get());
        l2s.back()->setListener(l2Hooks.back().get());
    }
}

void
MemorySystem::L1Hook::evicted(uint64_t addr, bool dirty, bool wasPf)
{
    if (dirty) {
        // write back into the inclusive L2 (refill if it raced out)
        if (!sys->l2s[cpu]->setDirty(addr))
            sys->l2s[cpu]->fill(addr, true);
    }
    for (auto *l : extra)
        l->evicted(addr, dirty, wasPf);
}

void
MemorySystem::L1Hook::invalidated(uint64_t addr, bool wasPf)
{
    for (auto *l : extra)
        l->invalidated(addr, wasPf);
}

void
MemorySystem::L2Hook::evicted(uint64_t addr, bool dirty, bool wasPf)
{
    // the directory entry for the victim is about to be walked; start
    // its fetch so it overlaps the L1 inclusion invalidations
    sys->dir->prefetchEntry(addr);
    sys->invalidateL1Range(cpu, addr);
    sys->dir->evicted(cpu, addr);
    if (dirty)
        ++sys->memWritebacks;
    for (auto *l : extra)
        l->evicted(addr, dirty, wasPf);
}

void
MemorySystem::L2Hook::invalidated(uint64_t addr, bool wasPf)
{
    sys->invalidateL1Range(cpu, addr);
    for (auto *l : extra)
        l->invalidated(addr, wasPf);
}

void
MemorySystem::invalidateL1Range(uint32_t cpu, uint64_t l2_block_addr)
{
    uint64_t step = cfg.l1.blockSize;
    uint64_t end = l2_block_addr + cfg.l2.blockSize;
    for (uint64_t a = l2_block_addr; a < end; a += step)
        l1s[cpu]->invalidate(a);
}

void
MemorySystem::invalidateBlock(uint32_t cpu, uint64_t addr)
{
    // directory-initiated: drop the L2 copy; inclusion cascades to L1
    if (!l2s[cpu]->invalidate(addr)) {
        // L2 never held it (e.g., pure-L1 state after a race); still
        // enforce the L1 side
        invalidateL1Range(cpu, addr);
    }
}

AccessOutcome
MemorySystem::access(const trace::MemAccess &a)
{
    const uint32_t cpu = a.cpu;
    AccessOutcome out;

    dir->noteAccess(cpu, a.addr);

    Directory::WriteOutcome wr;
    if (a.isWrite)
        wr = dir->write(cpu, a.addr);

    // on an L1 miss the L2 tags and likely the directory — both
    // footprint-sized, cold structures — get walked next: kick their
    // lines off the moment the miss is known so the fetches overlap
    // the L1 victim processing.
    struct PreMissCtx
    {
        MemorySystem *sys;
        uint32_t cpu;
    } pm{this, cpu};
    AccessResult r1 = l1s[cpu]->access(
        a.addr, a.isWrite,
        [](void *ctx, uint64_t addr) {
            auto *c = static_cast<PreMissCtx *>(ctx);
            c->sys->l2s[c->cpu]->prefetchTags(addr);
            c->sys->dir->prefetchEntry(addr);
        },
        &pm);
    out.l1PrefetchHit = r1.prefetchHit;
    if (r1.prefetchHit) {
        // the L1-prefetched block's first use also vindicates the L2
        // copy the stream brought in (off-chip coverage)
        out.l2PrefetchHit = l2s[cpu]->clearPrefetch(a.addr);
    }

    if (r1.hit) {
        out.level = HitLevel::L1;
        out.coherenceMiss = a.isWrite && wr.coherenceMiss;
    } else {
        AccessResult r2 = l2s[cpu]->access(a.addr, a.isWrite);
        out.l2PrefetchHit = out.l2PrefetchHit || r2.prefetchHit;
        if (r2.hit) {
            out.level = HitLevel::L2;
            out.coherenceMiss = a.isWrite && wr.coherenceMiss;
        } else if (a.isWrite) {
            out.level = wr.remoteTransfer ? HitLevel::Remote
                                          : HitLevel::Memory;
            out.coherenceMiss = wr.coherenceMiss;
        } else {
            Directory::ReadOutcome rd = dir->read(cpu, a.addr);
            out.level = rd.remoteTransfer ? HitLevel::Remote
                                          : HitLevel::Memory;
            out.coherenceMiss = rd.coherenceMiss;
        }
    }

    for (auto *o : observers)
        o->onAccess(a, out);
    return out;
}

HitLevel
MemorySystem::prefetch(uint32_t cpu, uint64_t addr, bool into_l1)
{
    if (l1s[cpu]->contains(addr))
        return HitLevel::L1;

    HitLevel src;
    if (l2s[cpu]->contains(addr)) {
        src = HitLevel::L2;
    } else {
        Directory::ReadOutcome rd = dir->read(cpu, addr, false);
        src = rd.remoteTransfer ? HitLevel::Remote : HitLevel::Memory;
        l2s[cpu]->fillPrefetch(addr);
    }
    if (into_l1)
        l1s[cpu]->fillPrefetch(addr);
    return src;
}

void
MemorySystem::addL1Listener(uint32_t cpu, CacheListener *l)
{
    l1Hooks[cpu]->add(l);
}

void
MemorySystem::addL2Listener(uint32_t cpu, CacheListener *l)
{
    l2Hooks[cpu]->add(l);
}

uint64_t
MemorySystem::l1ReadMisses() const
{
    uint64_t n = 0;
    for (const auto &c : l1s)
        n += c->stats().readMisses;
    return n;
}

uint64_t
MemorySystem::l2ReadMisses() const
{
    uint64_t n = 0;
    for (const auto &c : l2s)
        n += c->stats().readMisses;
    return n;
}

uint64_t
MemorySystem::l1ReadAccesses() const
{
    uint64_t n = 0;
    for (const auto &c : l1s)
        n += c->stats().readAccesses;
    return n;
}

} // namespace stems::mem
