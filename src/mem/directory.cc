#include "mem/directory.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace stems::mem {

Directory::Directory(uint32_t ncpu, uint32_t block_size,
                     CoherenceClient *client, uint64_t expected_blocks)
    : ncpu_(ncpu), client(client)
{
    if (ncpu == 0 || ncpu > 16)
        throw std::invalid_argument("directory supports 1..16 nodes");
    if (!isPow2(block_size) || block_size < 64)
        throw std::invalid_argument("coherence block must be pow2 >= 64");
    if (block_size / 64 > Bits128::kMaxBits)
        throw std::invalid_argument("coherence block too large to track");
    blockShift = log2i(block_size);
    excl.reset(static_cast<size_t>(ncpu) << kExclBits);
    if (expected_blocks) {
        // bounded so a pathological hint cannot explode memory
        constexpr uint64_t kMaxHint = uint64_t{1} << 21;
        entries.reserve(
            static_cast<size_t>(std::min(expected_blocks, kMaxHint)));
    }
}

void
Directory::noteAccess(uint32_t cpu, uint64_t addr)
{
    if (pending.empty())
        return;
    auto it = pending.find(key(addr, cpu));
    if (it == pending.end())
        return;
    if (it->second.written.test(chunkOf(addr))) {
        // the reader consumed a remotely-written sub-block: the
        // refetch was necessary, so the earlier miss was true sharing
        ++stats_.trueSharing;
        pending.erase(it);
    }
}

void
Directory::resolveAsFalse(uint64_t k)
{
    if (pending.empty())
        return;
    auto it = pending.find(k);
    if (it != pending.end()) {
        ++stats_.falseSharing;
        pending.erase(it);
    }
}

Directory::ReadOutcome
Directory::read(uint32_t cpu, uint64_t addr, bool demand)
{
    Entry &e = entries[blockIndex(addr)];
    ReadOutcome out;
    uint16_t bit = static_cast<uint16_t>(1u << cpu);

    if (e.hadCopy & bit) {
        e.hadCopy &= static_cast<uint16_t>(~bit);
        auto si = sinceInval.find(key(addr, cpu));
        Bits128 written;
        if (si != sinceInval.end()) {
            written = si->second;
            sinceInval.erase(si);
        }
        if (demand) {
            out.coherenceMiss = true;
            ++stats_.readCohMisses;
            if (written.test(chunkOf(addr))) {
                // first touched chunk was dirtied remotely: true sharing
                ++stats_.trueSharing;
            } else {
                pending[key(addr, cpu)] = Pending{written};
            }
        }
    }

    if (e.owner >= 0 && static_cast<uint32_t>(e.owner) != cpu) {
        // downgrade the modified copy; owner keeps a shared copy
        exclDrop(static_cast<uint32_t>(e.owner), blockIndex(addr));
        e.sharers |= static_cast<uint16_t>(1u << e.owner);
        e.owner = -1;
        out.remoteTransfer = true;
        ++stats_.downgrades;
    } else if (e.owner >= 0) {
        // requester already owns the block (L2 refetch after silent
        // L1-only activity); keep ownership
    }
    e.sharers |= bit;
    return out;
}

void
Directory::invalidateCopy(uint32_t cpu, uint64_t addr, Entry &e)
{
    uint16_t bit = static_cast<uint16_t>(1u << cpu);
    exclDrop(cpu, blockIndex(addr));
    e.sharers &= static_cast<uint16_t>(~bit);
    e.hadCopy |= bit;
    ++stats_.invalidationsSent;
    // a pending classification for this reader ends now: if it never
    // touched a written chunk, the earlier refetch was false sharing
    resolveAsFalse(key(addr, cpu));
    if (client)
        client->invalidateBlock(cpu, addr & ~((uint64_t{1} << blockShift)
                                              - 1));
}

Directory::WriteOutcome
Directory::write(uint32_t cpu, uint64_t addr)
{
    const uint64_t bi = blockIndex(addr);
    // exclusive-store fast path: owner == cpu and hadCopy == 0 make
    // the full write() body a provable no-op, so skip the table probe
    if (exclSlot(cpu, bi) == bi + 1)
        return WriteOutcome{};

    Entry &e = entries[bi];
    WriteOutcome out;
    uint16_t bit = static_cast<uint16_t>(1u << cpu);

    if (e.hadCopy & bit) {
        e.hadCopy &= static_cast<uint16_t>(~bit);
        sinceInval.erase(key(addr, cpu));
        out.coherenceMiss = true;
        ++stats_.writeCohMisses;
    }

    if (e.owner >= 0 && static_cast<uint32_t>(e.owner) == cpu) {
        // already exclusive: just record the dirtied chunk for absent
        // former readers
    } else {
        if (e.owner >= 0) {
            out.remoteTransfer = true;
            invalidateCopy(static_cast<uint32_t>(e.owner), addr, e);
            e.owner = -1;
        }
        uint16_t others = e.sharers & static_cast<uint16_t>(~bit);
        if (e.sharers & bit)
            out.upgrade = true, ++stats_.upgrades;
        for (uint32_t r = 0; others; ++r) {
            uint16_t rb = static_cast<uint16_t>(1u << r);
            if (others & rb) {
                invalidateCopy(r, addr, e);
                others &= static_cast<uint16_t>(~rb);
            }
        }
        e.owner = static_cast<int8_t>(cpu);
        e.sharers = bit;
    }

    // accumulate the dirtied 64 B chunk for every absent former reader
    uint16_t absent = e.hadCopy;
    for (uint32_t r = 0; absent; ++r) {
        uint16_t rb = static_cast<uint16_t>(1u << r);
        if (absent & rb) {
            sinceInval[key(addr, r)].set(chunkOf(addr));
            absent &= static_cast<uint16_t>(~rb);
        }
    }
    if (e.hadCopy == 0)
        exclSlot(cpu, bi) = bi + 1;  // future stores can skip write()
    return out;
}

void
Directory::evicted(uint32_t cpu, uint64_t addr)
{
    exclDrop(cpu, blockIndex(addr));
    auto it = entries.find(blockIndex(addr));
    if (it == entries.end())
        return;
    Entry &e = it->second;
    uint16_t bit = static_cast<uint16_t>(1u << cpu);
    e.sharers &= static_cast<uint16_t>(~bit);
    if (e.owner >= 0 && static_cast<uint32_t>(e.owner) == cpu)
        e.owner = -1;
    // voluntary departure: the next miss is capacity, not coherence
    e.hadCopy &= static_cast<uint16_t>(~bit);
    if (!sinceInval.empty())
        sinceInval.erase(key(addr, cpu));
    resolveAsFalse(key(addr, cpu));
}

const DirectoryStats &
Directory::finalize()
{
    if (!finalized) {
        stats_.falseSharing += pending.size();
        pending.clear();
        finalized = true;
    }
    return stats_;
}

} // namespace stems::mem
