/**
 * @file
 * Directory-based invalidation coherence with deferred false-sharing
 * classification.
 *
 * The directory tracks, per coherence block, the owner / sharer set
 * across nodes and fans out invalidations on writes. For block sizes
 * above the 64 B reference grain it additionally classifies coherence
 * read misses as *true* or *false* sharing: an invalidated reader's
 * next-generation miss is false sharing iff the reader never touches a
 * 64 B sub-block dirtied by the remote writer while it re-holds the
 * block (the classic Dubois/Torrellas-style deferred classification).
 * This feeds the "false sharing beyond 64B" series of Figure 4.
 */

#ifndef STEMS_MEM_DIRECTORY_HH
#define STEMS_MEM_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "util/bits.hh"
#include "util/flat_map.hh"
#include "util/hugepage.hh"

namespace stems::mem {

/** Callbacks the directory uses to reach into per-node caches. */
class CoherenceClient
{
  public:
    virtual ~CoherenceClient() = default;

    /** Remove the (block-aligned) block from node @p cpu's hierarchy. */
    virtual void invalidateBlock(uint32_t cpu, uint64_t addr) = 0;
};

/** Directory event counters. */
struct DirectoryStats
{
    uint64_t invalidationsSent = 0;  //!< copies invalidated by writes
    uint64_t downgrades = 0;         //!< M -> S transitions serving reads
    uint64_t readCohMisses = 0;      //!< read misses after invalidation
    uint64_t writeCohMisses = 0;     //!< write misses after invalidation
    uint64_t upgrades = 0;           //!< writes hitting a shared copy
    uint64_t trueSharing = 0;        //!< coherence read misses, true
    uint64_t falseSharing = 0;       //!< coherence read misses, false
};

/**
 * Full-map directory over an @p ncpu-node system at a fixed coherence
 * block size (the L2 block size in this repo's experiments).
 */
class Directory
{
  public:
    /** Outcome of a directory read request. */
    struct ReadOutcome
    {
        bool remoteTransfer = false;  //!< data sourced from a remote M copy
        bool coherenceMiss = false;   //!< requester lost its copy to a write
    };

    /** Outcome of a directory write notification. */
    struct WriteOutcome
    {
        bool coherenceMiss = false;  //!< writer lost its copy to a write
        bool upgrade = false;        //!< writer held a shared copy
        bool remoteTransfer = false; //!< ownership taken from a remote M copy
    };

    /**
     * @param ncpu            number of nodes (max 16)
     * @param block_size      coherence granularity in bytes (power of
     *                        two, >= 64)
     * @param client          invalidation sink; may be null for unit
     *                        tests, in which case invalidations are
     *                        counted only
     * @param expected_blocks footprint hint: pre-sizes the entry
     *                        table so steady-state runs skip the
     *                        biggest growth rehashes (0 = grow on
     *                        demand)
     */
    Directory(uint32_t ncpu, uint32_t block_size, CoherenceClient *client,
              uint64_t expected_blocks = 0);

    /**
     * Note a demand access by @p cpu (hit or miss, any level); resolves
     * pending false-sharing classifications. Must be called before the
     * caches process the access.
     */
    void noteAccess(uint32_t cpu, uint64_t addr);

    /**
     * Handle a read request that missed node @p cpu's L2.
     * @param demand false for prefetch/stream requests: coherence state
     *               updates happen but no miss is classified
     */
    ReadOutcome read(uint32_t cpu, uint64_t addr, bool demand = true);

    /**
     * Handle a write by @p cpu (called for every store, hit or miss,
     * so upgrades of shared copies are observed). Invalidates all
     * other copies through the CoherenceClient.
     */
    WriteOutcome write(uint32_t cpu, uint64_t addr);

    /** Node @p cpu's L2 silently dropped its copy (replacement). */
    void evicted(uint32_t cpu, uint64_t addr);

    /**
     * Start fetching the directory entry for @p addr so an imminent
     * read()/write()/evicted() overlaps the memory latency of the
     * footprint-sized entry table.
     */
    void
    prefetchEntry(uint64_t addr) const
    {
        entries.prefetchKey(blockIndex(addr));
    }

    /**
     * Resolve all still-pending classifications (as false sharing) and
     * return the stats. Call once at end of simulation.
     */
    const DirectoryStats &finalize();

    const DirectoryStats &stats() const { return stats_; }

    uint32_t blockSize() const { return uint32_t{1} << blockShift; }

  private:
    struct Entry
    {
        uint16_t sharers = 0;  //!< bit per node holding a copy
        int8_t owner = -1;     //!< node with the modified copy, or -1
        uint16_t hadCopy = 0;  //!< nodes invalidated, not yet refetched
    };

    /** Unresolved classification for one (block, reader). */
    struct Pending
    {
        Bits128 written;  //!< 64 B sub-blocks dirtied while reader absent
    };

    uint64_t blockIndex(uint64_t addr) const { return addr >> blockShift; }

    /** Key for per-(block, cpu) side tables. */
    uint64_t
    key(uint64_t addr, uint32_t cpu) const
    {
        return (blockIndex(addr) << 4) | cpu;
    }

    /** Bit index of the 64 B chunk of @p addr within its block. */
    uint32_t
    chunkOf(uint64_t addr) const
    {
        return static_cast<uint32_t>(
            (addr & ((uint64_t{1} << blockShift) - 1)) >> 6);
    }

    void invalidateCopy(uint32_t cpu, uint64_t addr, Entry &e);
    void resolveAsFalse(uint64_t k);

    /**
     * Region-locality hash for the block-indexed entry table: spatial
     * workloads touch neighbouring blocks back to back, so the low
     * bits of the block index are kept adjacent while the region part
     * is mixed. Probes for blocks of one region then share cache
     * lines instead of scattering across the footprint-sized table.
     */
    struct BlockLocalityHash
    {
        uint64_t
        operator()(uint64_t block_index) const
        {
            return util::Mix64{}(block_index >> 5) + (block_index & 31);
        }
    };

    // ---- exclusive-store filter -------------------------------------
    // Per-CPU direct-mapped cache of block indices whose directory
    // state is known to be {owner == cpu, hadCopy == 0}: for such
    // blocks write() is a no-op (no stats, no invalidations, no
    // sub-block accumulation), so repeat stores to privately-owned
    // data skip the entry-table probe entirely. Entries are dropped
    // whenever ownership leaves the CPU or an absent former reader
    // appears, which keeps the filter exact.

    static constexpr uint32_t kExclBits = 13;  //!< 8k entries per CPU

    uint64_t &
    exclSlot(uint32_t cpu, uint64_t block_index)
    {
        return excl[(static_cast<size_t>(cpu) << kExclBits) |
                    (block_index & ((uint64_t{1} << kExclBits) - 1))];
    }

    /** Drop a (cpu, block) pair from the filter if present. */
    void
    exclDrop(uint32_t cpu, uint64_t block_index)
    {
        uint64_t &s = exclSlot(cpu, block_index);
        if (s == block_index + 1)
            s = 0;
    }

    uint32_t ncpu_;
    uint32_t blockShift;
    CoherenceClient *client;
    util::FlatMap<uint64_t, Entry, BlockLocalityHash> entries;
    /** keyed by key(): writes accumulated since reader was invalidated */
    util::FlatMap<uint64_t, Bits128> sinceInval;
    /** keyed by key(): classification pending while reader re-holds */
    util::FlatMap<uint64_t, Pending> pending;
    util::HugeArray<uint64_t> excl;  //!< block_index + 1, 0 = empty
    DirectoryStats stats_;
    bool finalized = false;
};

} // namespace stems::mem

#endif // STEMS_MEM_DIRECTORY_HH
