#include "core/pht.hh"

#include <stdexcept>

#include "util/bits.hh"

namespace stems::core {

PatternHistoryTable::PatternHistoryTable(const PhtConfig &config)
    : cfg(config)
{
    if (cfg.entries == 0)
        return;  // unbounded
    if (cfg.assoc == 0 || cfg.entries % cfg.assoc != 0)
        throw std::invalid_argument("PHT entries not multiple of assoc");
    if (cfg.assoc > kRankMask + 1)
        throw std::invalid_argument("PHT assoc exceeds rank width");
    sets = cfg.entries / cfg.assoc;
    if (!isPow2(sets))
        throw std::invalid_argument("PHT set count must be a power of 2");
    setShift = log2i(sets);
    tags.resize(cfg.entries, 0);
    patterns.resize(cfg.entries);
    // invalid frames still carry ranks so every set starts as a
    // permutation (way 0 at the back, like untouched stamps)
    meta.resize(cfg.entries);
    for (uint32_t s = 0; s < sets; ++s)
        for (uint32_t w = 0; w < cfg.assoc; ++w)
            meta[static_cast<size_t>(s) * cfg.assoc + w] =
                static_cast<Meta>(cfg.assoc - 1 - w);
}

uint32_t
PatternHistoryTable::findWay(const uint64_t *tagBase,
                             const Meta *metaBase, uint64_t tag) const
{
    for (uint32_t w = 0; w < cfg.assoc; ++w)
        if (valid(metaBase[w]) && tagBase[w] == tag)
            return w;
    return cfg.assoc;
}

void
PatternHistoryTable::touchWay(Meta *metaBase, uint32_t way)
{
    const Meta r = metaBase[way] & kRankMask;
    if (r == 0)
        return;  // already MRU: repeated triggers to one key
    for (uint32_t w = 0; w < cfg.assoc; ++w)
        if ((metaBase[w] & kRankMask) < r)
            ++metaBase[w];  // rank lives in the low bits
    metaBase[way] &= static_cast<Meta>(~kRankMask);
}

void
PatternHistoryTable::update(uint64_t key, const SpatialPattern &pattern)
{
    ++stats_.updates;

    if (unbounded()) {
        auto [it, inserted] = map.try_emplace(key, pattern);
        if (inserted) {
            ++stats_.inserts;
        } else if (cfg.update == PhtUpdateMode::Union) {
            it->second |= pattern;
        } else {
            it->second = pattern;
        }
        return;
    }

    const size_t base = static_cast<size_t>(setOf(key)) * cfg.assoc;
    uint64_t *tagBase = &tags[base];
    Meta *metaBase = &meta[base];
    const uint64_t tag = tagOf(key);

    uint32_t way = findWay(tagBase, metaBase, tag);
    if (way != cfg.assoc) {
        SpatialPattern &p = patterns[base + way];
        if (cfg.update == PhtUpdateMode::Union)
            p |= pattern;
        else
            p = pattern;
        touchWay(metaBase, way);
        return;
    }

    // no tag match: fill an invalid way, else replace the set's LRU
    uint32_t victim = cfg.assoc;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (!valid(metaBase[w])) {
            victim = w;
            break;
        }
        if (rankOf(metaBase[w]) == cfg.assoc - 1)
            victim = w;
    }

    if (valid(metaBase[victim]))
        ++stats_.evictions;
    else
        ++stats_.inserts;
    tagBase[victim] = tag;
    patterns[base + victim] = pattern;
    metaBase[victim] |= kValid;
    touchWay(metaBase, victim);
}

std::optional<SpatialPattern>
PatternHistoryTable::lookup(uint64_t key)
{
    ++stats_.lookups;

    if (unbounded()) {
        auto it = map.find(key);
        if (it == map.end())
            return std::nullopt;
        ++stats_.hits;
        return it->second;
    }

    const size_t base = static_cast<size_t>(setOf(key)) * cfg.assoc;
    const uint32_t way = findWay(&tags[base], &meta[base], tagOf(key));
    if (way == cfg.assoc)
        return std::nullopt;
    touchWay(&meta[base], way);
    ++stats_.hits;
    return patterns[base + way];
}

size_t
PatternHistoryTable::occupancy() const
{
    if (unbounded())
        return map.size();
    size_t n = 0;
    for (Meta m : meta)
        n += valid(m) ? 1 : 0;
    return n;
}

} // namespace stems::core
