#include "core/pht.hh"

#include <cstdlib>
#include <stdexcept>

#include "util/bits.hh"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace stems::core {

uint32_t
phtProbeScalar(const uint64_t *tags, const uint8_t *meta,
               uint32_t assoc, uint64_t tag)
{
    for (uint32_t w = 0; w < assoc; ++w)
        if ((meta[w] & 0x80) && tags[w] == tag)
            return w;
    return assoc;
}

#if defined(__x86_64__)

/**
 * AVX2 set scan: four 64-bit tag compares per vector op over the
 * dense SoA tag run, with the per-way valid bits folded in from the
 * metadata bytes before picking the lowest set lane — the same way
 * order the scalar loop walks.
 */
__attribute__((target("avx2"))) static uint32_t
phtProbeAvx2(const uint64_t *tags, const uint8_t *meta, uint32_t assoc,
             uint64_t tag)
{
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(tag));
    uint32_t w = 0;
    for (; w + 4 <= assoc; w += 4) {
        const __m256i t = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const __m256i eq = _mm256_cmpeq_epi64(t, needle);
        uint32_t hit = static_cast<uint32_t>(
            _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
        if (!hit)
            continue;
        uint32_t valid = 0;
        for (uint32_t i = 0; i < 4; ++i)
            valid |= static_cast<uint32_t>(meta[w + i] >> 7) << i;
        hit &= valid;
        if (hit)
            return w + static_cast<uint32_t>(__builtin_ctz(hit));
    }
    for (; w < assoc; ++w)
        if ((meta[w] & 0x80) && tags[w] == tag)
            return w;
    return assoc;
}

#endif // __x86_64__

uint32_t
phtProbe(const uint64_t *tags, const uint8_t *meta, uint32_t assoc,
         uint64_t tag)
{
#if defined(__x86_64__)
    // STEMS_NO_SIMD=1 forces the scalar path (A/B measurement and
    // the bit-identity test exercise both); checked once per process
    static const bool avx2 = __builtin_cpu_supports("avx2") &&
        std::getenv("STEMS_NO_SIMD") == nullptr;
    if (avx2)
        return phtProbeAvx2(tags, meta, assoc, tag);
#endif
    return phtProbeScalar(tags, meta, assoc, tag);
}

PatternHistoryTable::PatternHistoryTable(const PhtConfig &config)
    : cfg(config)
{
    if (cfg.entries == 0)
        return;  // unbounded
    if (cfg.assoc == 0 || cfg.entries % cfg.assoc != 0)
        throw std::invalid_argument("PHT entries not multiple of assoc");
    if (cfg.assoc > kRankMask + 1)
        throw std::invalid_argument("PHT assoc exceeds rank width");
    sets = cfg.entries / cfg.assoc;
    if (!isPow2(sets))
        throw std::invalid_argument("PHT set count must be a power of 2");
    setShift = log2i(sets);
    tags.resize(cfg.entries, 0);
    patterns.resize(cfg.entries);
    // invalid frames still carry ranks so every set starts as a
    // permutation (way 0 at the back, like untouched stamps)
    meta.resize(cfg.entries);
    for (uint32_t s = 0; s < sets; ++s)
        for (uint32_t w = 0; w < cfg.assoc; ++w)
            meta[static_cast<size_t>(s) * cfg.assoc + w] =
                static_cast<Meta>(cfg.assoc - 1 - w);
}

uint32_t
PatternHistoryTable::findWay(const uint64_t *tagBase,
                             const Meta *metaBase, uint64_t tag) const
{
    return phtProbe(tagBase, metaBase, cfg.assoc, tag);
}

void
PatternHistoryTable::touchWay(Meta *metaBase, uint32_t way)
{
    const Meta r = metaBase[way] & kRankMask;
    if (r == 0)
        return;  // already MRU: repeated triggers to one key
    for (uint32_t w = 0; w < cfg.assoc; ++w)
        if ((metaBase[w] & kRankMask) < r)
            ++metaBase[w];  // rank lives in the low bits
    metaBase[way] &= static_cast<Meta>(~kRankMask);
}

void
PatternHistoryTable::update(uint64_t key, const SpatialPattern &pattern)
{
    ++stats_.updates;

    if (unbounded()) {
        auto [it, inserted] = map.try_emplace(key, pattern);
        if (inserted) {
            ++stats_.inserts;
        } else if (cfg.update == PhtUpdateMode::Union) {
            it->second |= pattern;
        } else {
            it->second = pattern;
        }
        return;
    }

    const size_t base = static_cast<size_t>(setOf(key)) * cfg.assoc;
    uint64_t *tagBase = &tags[base];
    Meta *metaBase = &meta[base];
    const uint64_t tag = tagOf(key);

    uint32_t way = findWay(tagBase, metaBase, tag);
    if (way != cfg.assoc) {
        SpatialPattern &p = patterns[base + way];
        if (cfg.update == PhtUpdateMode::Union)
            p |= pattern;
        else
            p = pattern;
        touchWay(metaBase, way);
        return;
    }

    // no tag match: fill an invalid way, else replace the set's LRU
    uint32_t victim = cfg.assoc;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (!valid(metaBase[w])) {
            victim = w;
            break;
        }
        if (rankOf(metaBase[w]) == cfg.assoc - 1)
            victim = w;
    }

    if (valid(metaBase[victim]))
        ++stats_.evictions;
    else
        ++stats_.inserts;
    tagBase[victim] = tag;
    patterns[base + victim] = pattern;
    metaBase[victim] |= kValid;
    touchWay(metaBase, victim);
}

std::optional<SpatialPattern>
PatternHistoryTable::lookup(uint64_t key)
{
    ++stats_.lookups;

    if (unbounded()) {
        auto it = map.find(key);
        if (it == map.end())
            return std::nullopt;
        ++stats_.hits;
        return it->second;
    }

    const size_t base = static_cast<size_t>(setOf(key)) * cfg.assoc;
    const uint32_t way = findWay(&tags[base], &meta[base], tagOf(key));
    if (way == cfg.assoc)
        return std::nullopt;
    touchWay(&meta[base], way);
    ++stats_.hits;
    return patterns[base + way];
}

size_t
PatternHistoryTable::occupancy() const
{
    if (unbounded())
        return map.size();
    size_t n = 0;
    for (Meta m : meta)
        n += valid(m) ? 1 : 0;
    return n;
}

} // namespace stems::core
