#include "core/pht.hh"

#include <stdexcept>

#include "util/bits.hh"

namespace stems::core {

PatternHistoryTable::PatternHistoryTable(const PhtConfig &config)
    : cfg(config)
{
    if (cfg.entries == 0)
        return;  // unbounded
    if (cfg.assoc == 0 || cfg.entries % cfg.assoc != 0)
        throw std::invalid_argument("PHT entries not multiple of assoc");
    sets = cfg.entries / cfg.assoc;
    if (!isPow2(sets))
        throw std::invalid_argument("PHT set count must be a power of 2");
    setShift = log2i(sets);
    table.resize(cfg.entries);
}

void
PatternHistoryTable::update(uint64_t key, const SpatialPattern &pattern)
{
    ++stats_.updates;
    ++tick;

    if (unbounded()) {
        auto [it, inserted] = map.try_emplace(key, pattern);
        if (inserted) {
            ++stats_.inserts;
        } else if (cfg.update == PhtUpdateMode::Union) {
            it->second |= pattern;
        } else {
            it->second = pattern;
        }
        return;
    }

    Entry *base = &table[static_cast<size_t>(setOf(key)) * cfg.assoc];
    const uint64_t tag = tagOf(key);

    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == tag) {
            if (cfg.update == PhtUpdateMode::Union)
                e.pattern |= pattern;
            else
                e.pattern = pattern;
            e.lastUse = tick;
            return;
        }
    }

    // no tag match: fill an invalid way, else replace the set's LRU
    Entry *victim = nullptr;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        Entry &e = base[w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lastUse < victim->lastUse)
            victim = &e;
    }

    if (victim->valid)
        ++stats_.evictions;
    else
        ++stats_.inserts;
    victim->valid = true;
    victim->tag = tag;
    victim->pattern = pattern;
    victim->lastUse = tick;
}

std::optional<SpatialPattern>
PatternHistoryTable::lookup(uint64_t key)
{
    ++stats_.lookups;
    ++tick;

    if (unbounded()) {
        auto it = map.find(key);
        if (it == map.end())
            return std::nullopt;
        ++stats_.hits;
        return it->second;
    }

    Entry *base = &table[static_cast<size_t>(setOf(key)) * cfg.assoc];
    const uint64_t tag = tagOf(key);
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == tag) {
            e.lastUse = tick;
            ++stats_.hits;
            return e.pattern;
        }
    }
    return std::nullopt;
}

size_t
PatternHistoryTable::occupancy() const
{
    if (unbounded())
        return map.size();
    size_t n = 0;
    for (const auto &e : table)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace stems::core
