/**
 * @file
 * Prediction registers (Section 3.2): when a trigger access hits in
 * the PHT, the region base address and predicted pattern are copied
 * into a prediction register; SMS then streams the predicted blocks,
 * clearing each bit as its request issues and freeing the register
 * when the pattern is exhausted. Multiple active registers are
 * serviced round-robin.
 */

#ifndef STEMS_CORE_PREDICTION_REGISTER_HH
#define STEMS_CORE_PREDICTION_REGISTER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/region.hh"

namespace stems::core {

/** Prediction register event counters. */
struct PrfStats
{
    uint64_t allocations = 0;   //!< registers loaded from PHT hits
    uint64_t rejections = 0;    //!< PHT hits dropped: all registers busy
    uint64_t requests = 0;      //!< stream requests issued
};

/**
 * A file of prediction registers drained round-robin. The owner calls
 * nextRequest() as downstream bandwidth allows (the trace-based
 * studies drain eagerly; the timing model paces requests).
 */
class PredictionRegisterFile
{
  public:
    /**
     * @param nregs number of registers
     * @param geom  region geometry shared with the trainer/PHT
     */
    PredictionRegisterFile(uint32_t nregs, const RegionGeometry &geom);

    /**
     * Load a register with a predicted pattern. The bit at
     * @p trigger_offset is cleared first — the trigger block is being
     * fetched by the demand access itself.
     *
     * @return false if the pattern is empty after masking or all
     *         registers are busy (the prediction is dropped).
     */
    bool allocate(uint64_t region_base, SpatialPattern pattern,
                  uint32_t trigger_offset);

    /**
     * Produce the next stream request in round-robin order across the
     * active registers.
     * @return block address to fetch, or nullopt if idle.
     */
    std::optional<uint64_t> nextRequest();

    /** True if any register still holds pending blocks. */
    bool anyPending() const;

    /** Number of busy registers. */
    uint32_t busyCount() const;

    const PrfStats &stats() const { return stats_; }

  private:
    struct Reg
    {
        uint64_t regionBase = 0;
        SpatialPattern pending;
        bool busy = false;
    };

    RegionGeometry geom;
    std::vector<Reg> regs;
    uint32_t rr = 0;  //!< round-robin cursor
    PrfStats stats_;
};

} // namespace stems::core

#endif // STEMS_CORE_PREDICTION_REGISTER_HH
