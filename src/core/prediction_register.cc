#include "core/prediction_register.hh"

#include <stdexcept>

namespace stems::core {

PredictionRegisterFile::PredictionRegisterFile(uint32_t nregs,
                                               const RegionGeometry &geom)
    : geom(geom), regs(nregs)
{
    if (nregs == 0)
        throw std::invalid_argument("need at least one prediction reg");
}

bool
PredictionRegisterFile::allocate(uint64_t region_base,
                                 SpatialPattern pattern,
                                 uint32_t trigger_offset)
{
    pattern.clear(trigger_offset);
    if (pattern.none())
        return false;

    for (auto &r : regs) {
        if (!r.busy) {
            r.busy = true;
            r.regionBase = region_base;
            r.pending = pattern;
            ++stats_.allocations;
            return true;
        }
    }
    ++stats_.rejections;
    return false;
}

std::optional<uint64_t>
PredictionRegisterFile::nextRequest()
{
    const uint32_t n = static_cast<uint32_t>(regs.size());
    for (uint32_t i = 0; i < n; ++i) {
        Reg &r = regs[(rr + i) % n];
        if (!r.busy)
            continue;
        uint32_t off = r.pending.lowestSet();
        r.pending.clear(off);
        if (r.pending.none())
            r.busy = false;
        rr = (rr + i + 1) % n;  // resume after this register
        ++stats_.requests;
        return geom.blockAddr(r.regionBase, off);
    }
    return std::nullopt;
}

bool
PredictionRegisterFile::anyPending() const
{
    for (const auto &r : regs)
        if (r.busy)
            return true;
    return false;
}

uint32_t
PredictionRegisterFile::busyCount() const
{
    uint32_t n = 0;
    for (const auto &r : regs)
        n += r.busy ? 1 : 0;
    return n;
}

} // namespace stems::core
