#include "core/agt.hh"

#include <algorithm>
#include <cassert>

namespace stems::core {

ActiveGenerationTable::ActiveGenerationTable(const RegionGeometry &geom,
                                             const AgtConfig &config)
    : geom(geom), cfg(config)
{}

void
ActiveGenerationTable::victimizeFilter()
{
    if (cfg.filterEntries == 0 || filter.size() < cfg.filterEntries)
        return;
    auto victim = filter.begin();
    for (auto it = filter.begin(); it != filter.end(); ++it) {
        if (it->second.lastUse < victim->second.lastUse)
            victim = it;
    }
    // a filter victim carries only its trigger access: drop silently
    filter.erase(victim);
    ++stats_.filterVictims;
}

void
ActiveGenerationTable::victimizeAccum()
{
    if (cfg.accumEntries == 0 || accum.size() < cfg.accumEntries)
        return;
    auto victim = accum.begin();
    for (auto it = accum.begin(); it != accum.end(); ++it) {
        if (it->second.lastUse < victim->second.lastUse)
            victim = it;
    }
    // capacity terminates the generation: transfer the pattern to the
    // PHT exactly as an eviction-triggered ending would
    TriggerInfo trigger = victim->second.trigger;
    SpatialPattern pattern = victim->second.pattern;
    accum.erase(victim);
    ++stats_.accumVictims;
    ++stats_.generationsTrained;
    if (listener)
        listener->generationEnd(trigger, pattern);
}

void
ActiveGenerationTable::onAccess(uint64_t pc, uint64_t addr)
{
    const uint64_t rid = geom.regionId(addr);
    const uint32_t off = geom.offsetOf(addr);
    ++tick;

    // 1) already accumulating: record the block (step 3 in Figure 2)
    if (auto it = accum.find(rid); it != accum.end()) {
        it->second.pattern.set(off);
        it->second.lastUse = tick;
        return;
    }

    // 2) in the filter table: second distinct block promotes the
    //    generation into the accumulation table (step 2 in Figure 2)
    if (auto it = filter.find(rid); it != filter.end()) {
        if (it->second.trigger.offset == off) {
            it->second.lastUse = tick;  // re-touching the trigger block
            return;
        }
        TriggerInfo trigger = it->second.trigger;
        filter.erase(it);
        victimizeAccum();
        AccumEntry &e = accum[rid];
        e.trigger = trigger;
        e.pattern.set(trigger.offset);
        e.pattern.set(off);
        e.lastUse = tick;
        ++stats_.promotions;
        stats_.peakAccumOccupancy =
            std::max<uint64_t>(stats_.peakAccumOccupancy, accum.size());
        return;
    }

    // 3) trigger access of a new generation (step 1 in Figure 2)
    victimizeFilter();
    TriggerInfo trigger;
    trigger.pc = pc;
    trigger.address = addr;
    trigger.regionBase = geom.regionBase(addr);
    trigger.offset = off;
    FilterEntry &e = filter[rid];
    e.trigger = trigger;
    e.lastUse = tick;
    ++stats_.generationsStarted;
    stats_.peakFilterOccupancy =
        std::max<uint64_t>(stats_.peakFilterOccupancy, filter.size());
    if (listener)
        listener->generationStart(trigger);
}

void
ActiveGenerationTable::onBlockRemoved(uint64_t block_addr, bool invalidation)
{
    (void)invalidation;  // replacements and invalidations both end here
    const uint64_t rid = geom.regionId(block_addr);

    if (auto it = filter.find(rid); it != filter.end()) {
        // only the trigger access happened: nothing worth predicting
        filter.erase(it);
        ++stats_.filterDiscards;
        return;
    }
    if (auto it = accum.find(rid); it != accum.end()) {
        TriggerInfo trigger = it->second.trigger;
        SpatialPattern pattern = it->second.pattern;
        accum.erase(it);
        ++stats_.generationsTrained;
        if (listener)
            listener->generationEnd(trigger, pattern);
    }
}

void
ActiveGenerationTable::drain()
{
    // end every live multi-block generation (end-of-run bookkeeping)
    while (!accum.empty()) {
        auto it = accum.begin();
        TriggerInfo trigger = it->second.trigger;
        SpatialPattern pattern = it->second.pattern;
        accum.erase(it);
        ++stats_.generationsTrained;
        if (listener)
            listener->generationEnd(trigger, pattern);
    }
    stats_.filterDiscards += filter.size();
    filter.clear();
}

} // namespace stems::core
