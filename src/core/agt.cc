#include "core/agt.hh"

#include <algorithm>

namespace stems::core {

ActiveGenerationTable::ActiveGenerationTable(const RegionGeometry &geom,
                                             const AgtConfig &config)
    : geom(geom), cfg(config), filterCam(config.filterEntries),
      accumCam(config.accumEntries)
{}

void
ActiveGenerationTable::victimizeFilter()
{
    if (!boundedFilter() || !filterCam.full())
        return;
    // a filter victim carries only its trigger access: drop silently
    filterCam.erase(filterCam.lruWay());
    ++stats_.filterVictims;
}

void
ActiveGenerationTable::victimizeAccum()
{
    if (!boundedAccum() || !accumCam.full())
        return;
    // capacity terminates the generation: transfer the pattern to the
    // PHT exactly as an eviction-triggered ending would
    const size_t way = accumCam.lruWay();
    TriggerInfo trigger = accumCam.payload(way).trigger;
    SpatialPattern pattern = accumCam.payload(way).pattern;
    accumCam.erase(way);
    ++stats_.accumVictims;
    ++stats_.generationsTrained;
    if (listener)
        listener->generationEnd(trigger, pattern);
}

void
ActiveGenerationTable::promote(const TriggerInfo &trigger, uint64_t rid,
                               uint32_t off)
{
    ++stats_.promotions;
    if (boundedAccum()) {
        victimizeAccum();
        const size_t way = accumCam.insert(rid, tick);
        AccumPayload &p = accumCam.payload(way);
        p.trigger = trigger;
        p.pattern.set(trigger.offset);
        p.pattern.set(off);
        stats_.peakAccumOccupancy = std::max<uint64_t>(
            stats_.peakAccumOccupancy, accumCam.size());
    } else {
        AccumEntry &e = accumMap[rid];
        e.trigger = trigger;
        e.pattern.set(trigger.offset);
        e.pattern.set(off);
        e.lastUse = tick;
        stats_.peakAccumOccupancy = std::max<uint64_t>(
            stats_.peakAccumOccupancy, accumMap.size());
    }
}

void
ActiveGenerationTable::onAccess(uint64_t pc, uint64_t addr)
{
    const uint64_t rid = geom.regionId(addr);
    const uint32_t off = geom.offsetOf(addr);
    ++tick;

    // 1) already accumulating: record the block (step 3 in Figure 2)
    if (boundedAccum()) {
        if (const size_t way = accumCam.find(rid);
            way != AgtCam<AccumPayload>::kNone) {
            accumCam.payload(way).pattern.set(off);
            accumCam.touch(way, tick);
            return;
        }
    } else if (auto it = accumMap.find(rid); it != accumMap.end()) {
        it->second.pattern.set(off);
        it->second.lastUse = tick;
        return;
    }

    // 2) in the filter table: second distinct block promotes the
    //    generation into the accumulation table (step 2 in Figure 2)
    if (boundedFilter()) {
        if (const size_t way = filterCam.find(rid);
            way != AgtCam<FilterPayload>::kNone) {
            if (filterCam.payload(way).trigger.offset == off) {
                filterCam.touch(way, tick);  // re-touch trigger block
                return;
            }
            TriggerInfo trigger = filterCam.payload(way).trigger;
            filterCam.erase(way);
            promote(trigger, rid, off);
            return;
        }
    } else if (auto it = filterMap.find(rid); it != filterMap.end()) {
        if (it->second.trigger.offset == off) {
            it->second.lastUse = tick;  // re-touching the trigger block
            return;
        }
        TriggerInfo trigger = it->second.trigger;
        filterMap.erase(it);
        promote(trigger, rid, off);
        return;
    }

    // 3) trigger access of a new generation (step 1 in Figure 2)
    TriggerInfo trigger;
    trigger.pc = pc;
    trigger.address = addr;
    trigger.regionBase = geom.regionBase(addr);
    trigger.offset = off;
    if (boundedFilter()) {
        victimizeFilter();
        const size_t way = filterCam.insert(rid, tick);
        filterCam.payload(way).trigger = trigger;
        stats_.peakFilterOccupancy = std::max<uint64_t>(
            stats_.peakFilterOccupancy, filterCam.size());
    } else {
        FilterEntry &e = filterMap[rid];
        e.trigger = trigger;
        e.lastUse = tick;
        stats_.peakFilterOccupancy = std::max<uint64_t>(
            stats_.peakFilterOccupancy, filterMap.size());
    }
    ++stats_.generationsStarted;
    if (listener)
        listener->generationStart(trigger);
}

void
ActiveGenerationTable::onBlockRemoved(uint64_t block_addr,
                                      bool invalidation)
{
    (void)invalidation;  // replacements and invalidations both end here
    const uint64_t rid = geom.regionId(block_addr);

    if (boundedFilter()) {
        if (const size_t way = filterCam.find(rid);
            way != AgtCam<FilterPayload>::kNone) {
            // only the trigger access happened: nothing to predict
            filterCam.erase(way);
            ++stats_.filterDiscards;
            return;
        }
    } else if (auto it = filterMap.find(rid); it != filterMap.end()) {
        filterMap.erase(it);
        ++stats_.filterDiscards;
        return;
    }

    if (boundedAccum()) {
        if (const size_t way = accumCam.find(rid);
            way != AgtCam<AccumPayload>::kNone) {
            TriggerInfo trigger = accumCam.payload(way).trigger;
            SpatialPattern pattern = accumCam.payload(way).pattern;
            accumCam.erase(way);
            ++stats_.generationsTrained;
            if (listener)
                listener->generationEnd(trigger, pattern);
        }
    } else if (auto it = accumMap.find(rid); it != accumMap.end()) {
        TriggerInfo trigger = it->second.trigger;
        SpatialPattern pattern = it->second.pattern;
        accumMap.erase(it);
        ++stats_.generationsTrained;
        if (listener)
            listener->generationEnd(trigger, pattern);
    }
}

void
ActiveGenerationTable::drain()
{
    // end every live multi-block generation (end-of-run bookkeeping)
    if (boundedAccum()) {
        while (!accumCam.empty()) {
            const size_t way = accumCam.firstValid();
            TriggerInfo trigger = accumCam.payload(way).trigger;
            SpatialPattern pattern = accumCam.payload(way).pattern;
            accumCam.erase(way);
            ++stats_.generationsTrained;
            if (listener)
                listener->generationEnd(trigger, pattern);
        }
    } else {
        while (!accumMap.empty()) {
            auto it = accumMap.begin();
            TriggerInfo trigger = it->second.trigger;
            SpatialPattern pattern = it->second.pattern;
            accumMap.erase(it);
            ++stats_.generationsTrained;
            if (listener)
                listener->generationEnd(trigger, pattern);
        }
    }
    if (boundedFilter()) {
        stats_.filterDiscards += filterCam.size();
        filterCam.clear();
    } else {
        stats_.filterDiscards += filterMap.size();
        filterMap.clear();
    }
}

} // namespace stems::core
