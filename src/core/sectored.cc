#include "core/sectored.hh"

#include <stdexcept>

namespace stems::core {

// ---------------------------------------------------------------------
// LogicalSectoredTags
// ---------------------------------------------------------------------

LogicalSectoredTags::LogicalSectoredTags(const RegionGeometry &geom,
                                         const SectoredTagConfig &config)
    : geom(geom), cfg(config),
      entries(static_cast<size_t>(config.sets) * config.assoc)
{
    if (!isPow2(cfg.sets) || cfg.assoc == 0)
        throw std::invalid_argument("bad sectored tag geometry");
}

LogicalSectoredTags::Entry *
LogicalSectoredTags::findEntry(uint64_t rid)
{
    const uint32_t set = static_cast<uint32_t>(rid & (cfg.sets - 1));
    Entry *base = &entries[static_cast<size_t>(set) * cfg.assoc];
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (base[w].valid && base[w].rid == rid)
            return &base[w];
    }
    return nullptr;
}

void
LogicalSectoredTags::endGeneration(Entry &e)
{
    ++trained;
    TriggerInfo trigger = e.trigger;
    SpatialPattern pattern = e.pattern;
    e.valid = false;
    if (listener)
        listener->generationEnd(trigger, pattern);
}

void
LogicalSectoredTags::onAccess(uint64_t pc, uint64_t addr)
{
    const uint64_t rid = geom.regionId(addr);
    const uint32_t off = geom.offsetOf(addr);
    ++tick;

    if (Entry *e = findEntry(rid)) {
        e->pattern.set(off);
        e->lastUse = tick;
        return;
    }

    // allocate; a valid victim's generation ends prematurely
    const uint32_t set = static_cast<uint32_t>(rid & (cfg.sets - 1));
    Entry *base = &entries[static_cast<size_t>(set) * cfg.assoc];
    Entry *victim = nullptr;
    for (uint32_t w = 0; w < cfg.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim || base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim->valid)
        endGeneration(*victim);

    victim->valid = true;
    victim->rid = rid;
    victim->trigger.pc = pc;
    victim->trigger.address = addr;
    victim->trigger.regionBase = geom.regionBase(addr);
    victim->trigger.offset = off;
    victim->pattern.reset();
    victim->pattern.set(off);
    victim->lastUse = tick;
    if (listener)
        listener->generationStart(victim->trigger);
}

void
LogicalSectoredTags::onBlockRemoved(uint64_t block_addr, bool invalidation)
{
    // the logical tags model their own (sectored) replacement, so real
    // cache evictions are invisible; coherence invalidations are not
    if (!invalidation)
        return;
    const uint64_t rid = geom.regionId(block_addr);
    if (Entry *e = findEntry(rid)) {
        if (e->pattern.test(geom.offsetOf(block_addr)))
            endGeneration(*e);
    }
}

void
LogicalSectoredTags::drain()
{
    for (auto &e : entries)
        if (e.valid)
            endGeneration(e);
}

// ---------------------------------------------------------------------
// DecoupledSectoredCache
// ---------------------------------------------------------------------

DecoupledSectoredCache::DecoupledSectoredCache(const DsConfig &config)
    : cfg(config), geom(config.sectorSize, config.blockSize)
{
    if (cfg.dataBytes % (uint64_t{cfg.blockSize} * cfg.dataAssoc) != 0)
        throw std::invalid_argument("bad DS data geometry");
    dataSets = static_cast<uint32_t>(
        cfg.dataBytes / (uint64_t{cfg.blockSize} * cfg.dataAssoc));
    uint64_t capacity_sectors = cfg.dataBytes / cfg.sectorSize;
    if (capacity_sectors == 0 || capacity_sectors % cfg.dataAssoc != 0)
        throw std::invalid_argument("bad DS sector geometry");
    tagSets = static_cast<uint32_t>(capacity_sectors / cfg.dataAssoc);
    tagAssoc = cfg.dataAssoc * cfg.tagMult;
    if (!isPow2(dataSets) || !isPow2(tagSets))
        throw std::invalid_argument("DS set counts must be powers of 2");
    sectors.resize(static_cast<size_t>(tagSets) * tagAssoc);
    frames.resize(static_cast<size_t>(dataSets) * cfg.dataAssoc);
}

DecoupledSectoredCache::SectorEntry *
DecoupledSectoredCache::findSector(uint64_t rid)
{
    const uint32_t set = static_cast<uint32_t>(rid & (tagSets - 1));
    SectorEntry *base = &sectors[static_cast<size_t>(set) * tagAssoc];
    for (uint32_t w = 0; w < tagAssoc; ++w) {
        if (base[w].valid && base[w].rid == rid)
            return &base[w];
    }
    return nullptr;
}

void
DecoupledSectoredCache::dropSectorBlocks(uint64_t rid)
{
    const uint32_t bpr = geom.blocksPerRegion();
    for (uint32_t off = 0; off < bpr; ++off) {
        uint64_t block_idx = rid * bpr + off;
        if (DataFrame *f = findBlock(block_idx)) {
            ++stats_.evictions;
            if (f->prefetch)
                ++stats_.prefetchUnused;
            f->valid = false;
            f->prefetch = false;
        }
    }
}

void
DecoupledSectoredCache::endSector(SectorEntry &e)
{
    TriggerInfo trigger = e.trigger;
    SpatialPattern pattern = e.accessed;
    uint64_t rid = e.rid;
    e.valid = false;
    dropSectorBlocks(rid);
    if (listener)
        listener->generationEnd(trigger, pattern);
}

DecoupledSectoredCache::SectorEntry &
DecoupledSectoredCache::allocSector(uint64_t rid)
{
    const uint32_t set = static_cast<uint32_t>(rid & (tagSets - 1));
    SectorEntry *base = &sectors[static_cast<size_t>(set) * tagAssoc];
    SectorEntry *victim = nullptr;
    for (uint32_t w = 0; w < tagAssoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim || base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim->valid)
        endSector(*victim);
    victim->valid = true;
    victim->rid = rid;
    victim->accessed.reset();
    return *victim;
}

DecoupledSectoredCache::DataFrame *
DecoupledSectoredCache::findBlock(uint64_t block_idx)
{
    const uint32_t set = static_cast<uint32_t>(block_idx & (dataSets - 1));
    DataFrame *base = &frames[static_cast<size_t>(set) * cfg.dataAssoc];
    for (uint32_t w = 0; w < cfg.dataAssoc; ++w) {
        if (base[w].valid && base[w].blockIdx == block_idx)
            return &base[w];
    }
    return nullptr;
}

void
DecoupledSectoredCache::fillBlock(uint64_t block_idx, bool prefetch)
{
    const uint32_t set = static_cast<uint32_t>(block_idx & (dataSets - 1));
    DataFrame *base = &frames[static_cast<size_t>(set) * cfg.dataAssoc];
    DataFrame *victim = nullptr;
    for (uint32_t w = 0; w < cfg.dataAssoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim || base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim->valid) {
        ++stats_.evictions;
        if (victim->prefetch)
            ++stats_.prefetchUnused;
    }
    victim->valid = true;
    victim->blockIdx = block_idx;
    victim->prefetch = prefetch;
    victim->lastUse = ++tick;
}

mem::AccessResult
DecoupledSectoredCache::access(uint64_t pc, uint64_t addr, bool is_write)
{
    const uint64_t rid = geom.regionId(addr);
    const uint32_t off = geom.offsetOf(addr);
    const uint64_t block_idx = addr >> log2i(cfg.blockSize);
    ++tick;
    ++stats_.accesses;
    if (!is_write)
        ++stats_.readAccesses;

    SectorEntry *sec = findSector(rid);
    bool new_generation = false;
    if (!sec) {
        sec = &allocSector(rid);
        sec->trigger.pc = pc;
        sec->trigger.address = addr;
        sec->trigger.regionBase = geom.regionBase(addr);
        sec->trigger.offset = off;
        new_generation = true;
    }
    sec->accessed.set(off);
    sec->lastUse = tick;

    mem::AccessResult r;
    if (DataFrame *f = findBlock(block_idx)) {
        r.hit = true;
        ++stats_.hits;
        if (f->prefetch) {
            r.prefetchHit = true;
            ++stats_.prefetchHits;
            f->prefetch = false;
        }
        f->lastUse = tick;
    } else {
        ++stats_.misses;
        if (is_write)
            ++stats_.writeMisses;
        else
            ++stats_.readMisses;
        fillBlock(block_idx, false);
    }

    // fire the trigger event after the access's own state settles so
    // streamed fills observe the new generation
    if (new_generation && listener)
        listener->generationStart(sec->trigger);
    return r;
}

bool
DecoupledSectoredCache::fillPrefetch(uint64_t addr)
{
    const uint64_t rid = geom.regionId(addr);
    if (!findSector(rid))
        return false;  // blocks cannot live without their sector tag
    const uint64_t block_idx = addr >> log2i(cfg.blockSize);
    if (findBlock(block_idx))
        return false;
    fillBlock(block_idx, true);
    ++stats_.prefetchFills;
    return true;
}

void
DecoupledSectoredCache::invalidateBlock(uint64_t addr)
{
    const uint64_t block_idx = addr >> log2i(cfg.blockSize);
    if (DataFrame *f = findBlock(block_idx)) {
        ++stats_.invalidations;
        if (f->prefetch)
            ++stats_.prefetchUnused;
        f->valid = false;
        f->prefetch = false;
    }
    const uint64_t rid = geom.regionId(addr);
    if (SectorEntry *sec = findSector(rid)) {
        if (sec->accessed.test(geom.offsetOf(addr)))
            endSector(*sec);
    }
}

void
DecoupledSectoredCache::drain()
{
    for (auto &s : sectors)
        if (s.valid)
            endSector(s);
}

} // namespace stems::core
