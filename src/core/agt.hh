/**
 * @file
 * The Active Generation Table (Section 3.1): SMS's decoupled training
 * structure. Logically one table, implemented as two CAMs — a filter
 * table holding generations that have seen only their trigger access,
 * and an accumulation table recording the spatial pattern of
 * generations with two or more distinct blocks. Decoupling training
 * from the cache organization is the paper's second contribution: it
 * tolerates interleaved accesses to independent regions that fragment
 * sectored training structures.
 */

#ifndef STEMS_CORE_AGT_HH
#define STEMS_CORE_AGT_HH

#include <cstdint>
#include <unordered_map>

#include "core/region.hh"
#include "core/trainer.hh"

namespace stems::core {

/** AGT capacities. Zero means unbounded (for limit studies). */
struct AgtConfig
{
    uint32_t filterEntries = 32;
    uint32_t accumEntries = 64;
};

/** AGT event counters. */
struct AgtStats
{
    uint64_t generationsStarted = 0;  //!< trigger accesses observed
    uint64_t promotions = 0;          //!< filter -> accumulation moves
    uint64_t filterDiscards = 0;      //!< single-access generations ended
    uint64_t filterVictims = 0;       //!< filter entries lost to capacity
    uint64_t accumVictims = 0;        //!< generations ended by capacity
    uint64_t generationsTrained = 0;  //!< patterns sent to the PHT
    uint64_t peakFilterOccupancy = 0;
    uint64_t peakAccumOccupancy = 0;
};

/**
 * The AGT. Observes every L1 demand access plus the L1's
 * eviction/invalidation stream, and reports generation lifecycles to
 * a GenerationListener.
 */
class ActiveGenerationTable : public PatternTrainer
{
  public:
    ActiveGenerationTable(const RegionGeometry &geom,
                          const AgtConfig &config);

    void onAccess(uint64_t pc, uint64_t addr) override;
    void onBlockRemoved(uint64_t block_addr, bool invalidation) override;
    void drain() override;

    const AgtStats &stats() const { return stats_; }
    size_t filterOccupancy() const { return filter.size(); }
    size_t accumOccupancy() const { return accum.size(); }
    const RegionGeometry &geometry() const { return geom; }

  private:
    struct FilterEntry
    {
        TriggerInfo trigger;
        uint64_t lastUse = 0;
    };

    struct AccumEntry
    {
        TriggerInfo trigger;
        SpatialPattern pattern;
        uint64_t lastUse = 0;
    };

    /** Make room in the filter table if at capacity. */
    void victimizeFilter();
    /** Make room in the accumulation table, training the victim. */
    void victimizeAccum();

    RegionGeometry geom;
    AgtConfig cfg;
    std::unordered_map<uint64_t, FilterEntry> filter;
    std::unordered_map<uint64_t, AccumEntry> accum;
    uint64_t tick = 0;
    AgtStats stats_;
};

} // namespace stems::core

#endif // STEMS_CORE_AGT_HH
