/**
 * @file
 * The Active Generation Table (Section 3.1): SMS's decoupled training
 * structure. Logically one table, implemented as two CAMs — a filter
 * table holding generations that have seen only their trigger access,
 * and an accumulation table recording the spatial pattern of
 * generations with two or more distinct blocks. Decoupling training
 * from the cache organization is the paper's second contribution: it
 * tolerates interleaved accesses to independent regions that fragment
 * sectored training structures.
 *
 * Bounded tables are modelled as what they are in hardware: small
 * fully-associative CAMs, stored struct-of-arrays so the region-id
 * match and LRU victim scans stream through a few L1 cache lines.
 * Unbounded tables (the figure benches' limit studies) fall back to a
 * FlatMap.
 */

#ifndef STEMS_CORE_AGT_HH
#define STEMS_CORE_AGT_HH

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "core/region.hh"
#include "core/trainer.hh"
#include "util/flat_map.hh"

namespace stems::core {

/** AGT capacities. Zero means unbounded (for limit studies). */
struct AgtConfig
{
    uint32_t filterEntries = 32;
    uint32_t accumEntries = 64;
};

/** AGT event counters. */
struct AgtStats
{
    uint64_t generationsStarted = 0;  //!< trigger accesses observed
    uint64_t promotions = 0;          //!< filter -> accumulation moves
    uint64_t filterDiscards = 0;      //!< single-access generations ended
    uint64_t filterVictims = 0;       //!< filter entries lost to capacity
    uint64_t accumVictims = 0;        //!< generations ended by capacity
    uint64_t generationsTrained = 0;  //!< patterns sent to the PHT
    uint64_t peakFilterOccupancy = 0;
    uint64_t peakAccumOccupancy = 0;
};

/**
 * A fixed-capacity fully-associative table with LRU victimization,
 * keyed by region id. Keys, use stamps and payloads live in parallel
 * arrays; a zero stamp marks a free way (stamps issued by the AGT
 * start at 1). Match, free-way and victim scans are linear over
 * at most `capacity` contiguous words — L1-resident for the paper's
 * 32/64-entry tables.
 */
template <typename Payload>
class AgtCam
{
  public:
    static constexpr size_t kNone = static_cast<size_t>(-1);

    explicit AgtCam(uint32_t capacity)
        : cap(capacity), rids(capacity, 0), last(capacity, 0),
          pay(capacity)
    {}

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ >= cap; }

    size_t
    find(uint64_t rid) const
    {
        // spatial streams touch the same region many times in a row:
        // a one-entry memo short-circuits the associative scan
        if (lastWay != kNone && rids[lastWay] == rid &&
            last[lastWay] != 0)
            return lastWay;
        // counting presence filter: most remaining lookups come from
        // the L1's eviction stream and miss, so reject them without
        // scanning
        const uint64_t h = util::Mix64{}(rid);
        if (presence[h & kPresenceMask] == 0 ||
            presence[(h >> 8) & kPresenceMask] == 0)
            return kNone;
        for (size_t i = 0; i < cap; ++i) {
            if (rids[i] == rid && last[i] != 0) {
                lastWay = i;
                return i;
            }
        }
        return kNone;
    }

    /** @pre !full() and rid absent */
    size_t
    insert(uint64_t rid, uint64_t tick)
    {
        const uint64_t h = util::Mix64{}(rid);
        ++presence[h & kPresenceMask];
        ++presence[(h >> 8) & kPresenceMask];
        for (size_t i = 0; i < cap; ++i) {
            if (last[i] == 0) {
                rids[i] = rid;
                last[i] = tick;
                pay[i] = Payload{};
                ++size_;
                lastWay = i;
                return i;
            }
        }
        assert(false && "AgtCam::insert on full table");
        return kNone;
    }

    void
    erase(size_t i)
    {
        const uint64_t h = util::Mix64{}(rids[i]);
        --presence[h & kPresenceMask];
        --presence[(h >> 8) & kPresenceMask];
        last[i] = 0;
        --size_;
        if (lastWay == i)
            lastWay = kNone;
    }

    /** Way holding the least-recently-used entry. @pre !empty() */
    size_t
    lruWay() const
    {
        size_t best = kNone;
        uint64_t bestUse = UINT64_MAX;
        for (size_t i = 0; i < cap; ++i) {
            if (last[i] != 0 && last[i] < bestUse) {
                bestUse = last[i];
                best = i;
            }
        }
        return best;
    }

    /** Any valid way (drain loops). @pre !empty() */
    size_t
    firstValid() const
    {
        for (size_t i = 0; i < cap; ++i)
            if (last[i] != 0)
                return i;
        return kNone;
    }

    uint64_t rid(size_t i) const { return rids[i]; }
    uint64_t lastUse(size_t i) const { return last[i]; }
    void touch(size_t i, uint64_t tick) { last[i] = tick; }
    Payload &payload(size_t i) { return pay[i]; }

    void
    clear()
    {
        std::fill(last.begin(), last.end(), 0);
        presence.fill(0);
        size_ = 0;
        lastWay = kNone;
    }

  private:
    static constexpr size_t kPresenceMask = 255;

    uint32_t cap;
    std::vector<uint64_t> rids;
    std::vector<uint64_t> last;  //!< LRU stamp; 0 = way free
    std::vector<Payload> pay;
    std::array<uint16_t, 256> presence{};  //!< 2-hash counting filter
    mutable size_t lastWay = kNone;        //!< one-entry find() memo
    size_t size_ = 0;
};

/**
 * The AGT. Observes every L1 demand access plus the L1's
 * eviction/invalidation stream, and reports generation lifecycles to
 * a GenerationListener.
 */
class ActiveGenerationTable : public PatternTrainer
{
  public:
    ActiveGenerationTable(const RegionGeometry &geom,
                          const AgtConfig &config);

    void onAccess(uint64_t pc, uint64_t addr) override;
    void onBlockRemoved(uint64_t block_addr, bool invalidation) override;
    void drain() override;

    const AgtStats &stats() const { return stats_; }

    size_t
    filterOccupancy() const
    {
        return boundedFilter() ? filterCam.size() : filterMap.size();
    }

    size_t
    accumOccupancy() const
    {
        return boundedAccum() ? accumCam.size() : accumMap.size();
    }

    const RegionGeometry &geometry() const { return geom; }

  private:
    struct FilterPayload
    {
        TriggerInfo trigger;
    };

    struct AccumPayload
    {
        TriggerInfo trigger;
        SpatialPattern pattern;
    };

    /** Unbounded-mode entries carry the LRU stamp inline. */
    struct FilterEntry
    {
        TriggerInfo trigger;
        uint64_t lastUse = 0;
    };

    struct AccumEntry
    {
        TriggerInfo trigger;
        SpatialPattern pattern;
        uint64_t lastUse = 0;
    };

    bool boundedFilter() const { return cfg.filterEntries != 0; }
    bool boundedAccum() const { return cfg.accumEntries != 0; }

    /** Make room in the filter table if at capacity. */
    void victimizeFilter();
    /** Make room in the accumulation table, training the victim. */
    void victimizeAccum();

    /** Move a trigger into the accumulation table with @p off set. */
    void promote(const TriggerInfo &trigger, uint64_t rid, uint32_t off);

    RegionGeometry geom;
    AgtConfig cfg;
    AgtCam<FilterPayload> filterCam;
    AgtCam<AccumPayload> accumCam;
    util::FlatMap<uint64_t, FilterEntry> filterMap;  //!< unbounded mode
    util::FlatMap<uint64_t, AccumEntry> accumMap;    //!< unbounded mode
    uint64_t tick = 0;
    AgtStats stats_;
};

} // namespace stems::core

#endif // STEMS_CORE_AGT_HH
