/**
 * @file
 * Common vocabulary for spatial-pattern training structures. The AGT
 * and the prior-work sectored organizations (decoupled / logical
 * sectored) all emit the same two events: a *generation start* (the
 * trigger access, when a prediction may be made) and a *generation
 * end* (when the observed pattern is handed to the pattern history
 * table).
 */

#ifndef STEMS_CORE_TRAINER_HH
#define STEMS_CORE_TRAINER_HH

#include <cstdint>

#include "core/region.hh"

namespace stems::core {

/** Identity of a spatial region generation's trigger access. */
struct TriggerInfo
{
    uint64_t pc = 0;          //!< code site of the trigger access
    uint64_t address = 0;     //!< full byte address of the trigger
    uint64_t regionBase = 0;  //!< base address of the spatial region
    uint32_t offset = 0;      //!< spatial region offset (in blocks)
};

/** Receiver of generation lifecycle events from a trainer. */
class GenerationListener
{
  public:
    virtual ~GenerationListener() = default;

    /**
     * A new spatial region generation began with @p trigger. The
     * predictor consults the PHT here and may start streaming.
     */
    virtual void generationStart(const TriggerInfo &trigger) = 0;

    /**
     * A generation ended; @p pattern records the blocks accessed over
     * its lifetime (the trigger's bit included). Only generations with
     * two or more distinct blocks are reported — single-access
     * generations carry no predictive value (Section 3.1).
     */
    virtual void generationEnd(const TriggerInfo &trigger,
                               const SpatialPattern &pattern) = 0;
};

/** Interface shared by the AGT and the sectored training structures. */
class PatternTrainer
{
  public:
    virtual ~PatternTrainer() = default;

    /** Observe one demand access (hits included). */
    virtual void onAccess(uint64_t pc, uint64_t addr) = 0;

    /**
     * A block left the primary cache.
     * @param invalidation true for coherence invalidations, false for
     *        replacements. The AGT ends generations on both; the
     *        logical sectored organization models its own replacement
     *        and only reacts to invalidations.
     */
    virtual void onBlockRemoved(uint64_t block_addr, bool invalidation) = 0;

    /** Flush every live generation (end-of-simulation bookkeeping). */
    virtual void drain() = 0;

    void setListener(GenerationListener *l) { listener = l; }

  protected:
    GenerationListener *listener = nullptr;
};

} // namespace stems::core

#endif // STEMS_CORE_TRAINER_HH
