/**
 * @file
 * The Pattern History Table (Section 3.2): long-term storage of
 * spatial patterns, consulted at the start of every generation. A
 * set-associative structure (paper default 16k entries, 16-way), with
 * an unbounded mode for the "infinite PHT" limit studies of
 * Sections 4.2-4.4.
 */

#ifndef STEMS_CORE_PHT_HH
#define STEMS_CORE_PHT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/region.hh"
#include "util/flat_map.hh"

namespace stems::core {

/** How an update merges with an existing entry for the same key. */
enum class PhtUpdateMode
{
    Replace,  //!< store the latest observed pattern (paper behaviour)
    Union     //!< OR new bits into the stored pattern (ablation)
};

/** PHT shape. entries == 0 selects the unbounded (infinite) mode. */
struct PhtConfig
{
    uint32_t entries = 16384;
    uint32_t assoc = 16;
    PhtUpdateMode update = PhtUpdateMode::Replace;
};

/** PHT event counters. */
struct PhtStats
{
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t updates = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
};

/**
 * Set-associative (or unbounded) pattern store keyed by a 64-bit
 * prediction index (see core/indexing.hh). LRU within each set.
 */
class PatternHistoryTable
{
  public:
    explicit PatternHistoryTable(const PhtConfig &config);

    /** Record @p pattern under @p key at generation end. */
    void update(uint64_t key, const SpatialPattern &pattern);

    /**
     * Predict the pattern for @p key at a trigger access.
     * @return the stored pattern, or nullopt on a PHT miss.
     */
    std::optional<SpatialPattern> lookup(uint64_t key);

    const PhtStats &stats() const { return stats_; }
    bool unbounded() const { return cfg.entries == 0; }
    size_t occupancy() const;

  private:
    struct Entry
    {
        uint64_t tag = 0;
        SpatialPattern pattern;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    uint32_t setOf(uint64_t key) const { return key & (sets - 1); }
    uint64_t tagOf(uint64_t key) const { return key >> setShift; }

    PhtConfig cfg;
    uint32_t sets = 1;
    uint32_t setShift = 0;
    uint64_t tick = 0;
    std::vector<Entry> table;                            //!< bounded mode
    util::FlatMap<uint64_t, SpatialPattern> map;         //!< unbounded mode
    PhtStats stats_;
};

} // namespace stems::core

#endif // STEMS_CORE_PHT_HH
