/**
 * @file
 * The Pattern History Table (Section 3.2): long-term storage of
 * spatial patterns, consulted at the start of every generation. A
 * set-associative structure (paper default 16k entries, 16-way), with
 * an unbounded mode for the "infinite PHT" limit studies of
 * Sections 4.2-4.4.
 */

#ifndef STEMS_CORE_PHT_HH
#define STEMS_CORE_PHT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/region.hh"
#include "util/flat_map.hh"

namespace stems::core {

/**
 * Scalar reference probe over one set's packed SoA arrays: the first
 * way in [0, assoc) whose metadata byte has the valid bit (0x80) set
 * and whose tag equals @p tag, or assoc when absent.
 */
uint32_t phtProbeScalar(const uint64_t *tags, const uint8_t *meta,
                        uint32_t assoc, uint64_t tag);

/**
 * The probe the PHT set scan uses: on x86-64 hosts with AVX2 it
 * compares four ways per vector op (runtime-dispatched, so the binary
 * stays baseline-ISA portable); elsewhere it is the scalar loop.
 * Bit-identical to phtProbeScalar by construction — both return the
 * lowest matching way.
 */
uint32_t phtProbe(const uint64_t *tags, const uint8_t *meta,
                  uint32_t assoc, uint64_t tag);

/** How an update merges with an existing entry for the same key. */
enum class PhtUpdateMode
{
    Replace,  //!< store the latest observed pattern (paper behaviour)
    Union     //!< OR new bits into the stored pattern (ablation)
};

/** PHT shape. entries == 0 selects the unbounded (infinite) mode. */
struct PhtConfig
{
    uint32_t entries = 16384;
    uint32_t assoc = 16;
    PhtUpdateMode update = PhtUpdateMode::Replace;
};

/** PHT event counters. */
struct PhtStats
{
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t updates = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
};

/**
 * Set-associative (or unbounded) pattern store keyed by a 64-bit
 * prediction index (see core/indexing.hh). LRU within each set.
 *
 * The bounded mode stores entries the way cache frames are packed
 * (mem/cache.hh): structure-of-arrays with full 64-bit tags, the
 * 16-byte patterns, and one metadata byte per way holding the valid
 * bit and the way's in-set LRU rank (0 = MRU). That is 25 bytes per
 * entry against the 40 of the former tag/pattern/lastUse/valid
 * struct, and a set probe scans a dense 8-byte-stride tag run (two
 * cache lines at 16 ways) plus one metadata line instead of striding
 * 40-byte records. Ranks always form a permutation of the set's
 * ways — classic LRU-stack semantics, victim selection identical to
 * the former global-timestamp scheme.
 */
class PatternHistoryTable
{
  public:
    explicit PatternHistoryTable(const PhtConfig &config);

    /** Record @p pattern under @p key at generation end. */
    void update(uint64_t key, const SpatialPattern &pattern);

    /**
     * Predict the pattern for @p key at a trigger access.
     * @return the stored pattern, or nullopt on a PHT miss.
     */
    std::optional<SpatialPattern> lookup(uint64_t key);

    const PhtStats &stats() const { return stats_; }
    bool unbounded() const { return cfg.entries == 0; }
    size_t occupancy() const;

  private:
    /** Way metadata: bit 7 valid, bits 0..6 LRU rank (assoc <= 128). */
    using Meta = uint8_t;

    static constexpr Meta kValid = 0x80;
    static constexpr Meta kRankMask = 0x7f;

    static bool valid(Meta m) { return m & kValid; }
    static uint32_t rankOf(Meta m) { return m & kRankMask; }

    uint32_t setOf(uint64_t key) const { return key & (sets - 1); }
    uint64_t tagOf(uint64_t key) const { return key >> setShift; }

    /** Way holding @p tag in the set at @p base, or assoc if absent. */
    uint32_t findWay(const uint64_t *tagBase, const Meta *metaBase,
                     uint64_t tag) const;

    /** Move @p way to the front of its set's LRU stack. */
    void touchWay(Meta *metaBase, uint32_t way);

    PhtConfig cfg;
    uint32_t sets = 1;
    uint32_t setShift = 0;
    std::vector<uint64_t> tags;                  //!< bounded mode (SoA)
    std::vector<SpatialPattern> patterns;
    std::vector<Meta> meta;
    util::FlatMap<uint64_t, SpatialPattern> map; //!< unbounded mode
    PhtStats stats_;
};

} // namespace stems::core

#endif // STEMS_CORE_PHT_HH
