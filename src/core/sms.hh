/**
 * @file
 * Spatial Memory Streaming: the paper's primary contribution, packaged
 * as per-CPU units (AGT + PHT + prediction registers) and a controller
 * that wires the units into a MemorySystem. On each trigger access the
 * unit consults the PHT and streams the predicted blocks toward the
 * primary cache; at each generation end it trains the PHT.
 */

#ifndef STEMS_CORE_SMS_HH
#define STEMS_CORE_SMS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/agt.hh"
#include "core/indexing.hh"
#include "core/pht.hh"
#include "core/prediction_register.hh"
#include "core/trainer.hh"
#include "mem/memsys.hh"

namespace stems::core {

/** Full configuration of one SMS prefetcher. */
struct SmsConfig
{
    RegionGeometry geometry{2048, 64};    //!< 2 kB regions (Section 4.4)
    AgtConfig agt{32, 64};                //!< practical AGT (Section 4.5)
    PhtConfig pht{16384, 16,
                  PhtUpdateMode::Replace};//!< 16k x 16-way (Section 4.6)
    IndexKind index = IndexKind::PcOffset;
    uint32_t predictionRegisters = 16;
    bool intoL1 = true;                   //!< stream into L1 (SMS) or L2
};

/** Aggregated SMS counters (one unit or summed over a controller). */
struct SmsStats
{
    uint64_t triggers = 0;       //!< generation starts observed
    uint64_t phtHits = 0;        //!< triggers that produced a prediction
    uint64_t streamRequests = 0; //!< blocks requested
    uint64_t trained = 0;        //!< patterns written to the PHT

    SmsStats &
    operator+=(const SmsStats &o)
    {
        triggers += o.triggers;
        phtHits += o.phtHits;
        streamRequests += o.streamRequests;
        trained += o.trained;
        return *this;
    }
};

/**
 * Sink for SMS stream requests. Bound to MemorySystem::prefetch by
 * the controller; bound to shadow caches by the trace studies.
 */
using IssueFn =
    std::function<void(uint32_t cpu, uint64_t block_addr, bool into_l1)>;

/**
 * One per-CPU SMS engine. It is a GenerationListener on its own
 * trainer and a CacheListener on its CPU's L1 (generations end on
 * eviction or invalidation of an accessed block).
 */
class SmsUnit : public GenerationListener, public mem::CacheListener
{
  public:
    /**
     * @param cpu     owning processor
     * @param config  SMS parameters
     * @param issue   where stream requests go
     * @param trainer optional external trainer (sectored studies);
     *                defaults to an AGT built from @p config
     */
    SmsUnit(uint32_t cpu, const SmsConfig &config, IssueFn issue,
            std::unique_ptr<PatternTrainer> trainer = nullptr);

    /** Observe one demand access on this CPU's L1 (hits included). */
    void onAccess(uint64_t pc, uint64_t addr);

    /** End every live generation and train the PHT with them. */
    void drain();

    // GenerationListener
    void generationStart(const TriggerInfo &trigger) override;
    void generationEnd(const TriggerInfo &trigger,
                       const SpatialPattern &pattern) override;

    // mem::CacheListener (the owning L1's departures)
    void
    evicted(uint64_t addr, bool, bool) override
    {
        trainer_->onBlockRemoved(addr, false);
    }

    void
    invalidated(uint64_t addr, bool) override
    {
        trainer_->onBlockRemoved(addr, true);
    }

    const SmsStats &stats() const { return stats_; }
    PatternHistoryTable &pht() { return pht_; }
    PredictionRegisterFile &predictionRegisters() { return prf; }
    PatternTrainer &trainer() { return *trainer_; }

  private:
    uint32_t cpu;
    SmsConfig cfg;
    std::unique_ptr<PatternTrainer> trainer_;
    PatternHistoryTable pht_;
    PredictionRegisterFile prf;
    IssueFn issue;
    SmsStats stats_;
};

/**
 * SMS for a whole multiprocessor: one unit per CPU, subscribed to the
 * memory system's demand stream and L1 listener hooks, issuing stream
 * requests through MemorySystem::prefetch (which behave as reads in
 * the coherence protocol, per Section 3.2).
 *
 * The controller is deployed through the generic attach seam
 * (prefetch::AttachedPrefetcher, wrapped by the driver registry's
 * SmsDeployment): the trace studies and the timing model host it the
 * same way they host GHB or stride — SMS holds no privileged code
 * path anywhere in the pipelines.
 */
class SmsController : public mem::AccessObserver
{
  public:
    SmsController(mem::MemorySystem &sys, const SmsConfig &config);

    void
    onAccess(const trace::MemAccess &a,
             const mem::AccessOutcome &) override
    {
        units[a.cpu]->onAccess(a.pc, a.addr);
    }

    /** Drain all units (end-of-run). */
    void drainAll();

    SmsUnit &unit(uint32_t cpu) { return *units[cpu]; }

    /** Sum of per-unit counters. */
    SmsStats totalStats() const;

  private:
    std::vector<std::unique_ptr<SmsUnit>> units;
};

} // namespace stems::core

#endif // STEMS_CORE_SMS_HH
