#include "core/sms.hh"

namespace stems::core {

SmsUnit::SmsUnit(uint32_t cpu, const SmsConfig &config, IssueFn issue,
                 std::unique_ptr<PatternTrainer> trainer)
    : cpu(cpu), cfg(config),
      trainer_(trainer ? std::move(trainer)
                       : std::make_unique<ActiveGenerationTable>(
                             config.geometry, config.agt)),
      pht_(config.pht),
      prf(config.predictionRegisters, config.geometry),
      issue(std::move(issue))
{
    trainer_->setListener(this);
}

void
SmsUnit::onAccess(uint64_t pc, uint64_t addr)
{
    trainer_->onAccess(pc, addr);
}

void
SmsUnit::generationStart(const TriggerInfo &trigger)
{
    ++stats_.triggers;
    const uint64_t key = makeIndex(cfg.index, trigger, cfg.geometry);
    auto pattern = pht_.lookup(key);
    if (!pattern)
        return;
    ++stats_.phtHits;

    if (!prf.allocate(trigger.regionBase, *pattern, trigger.offset))
        return;

    // trace-mode draining: stream every predicted block now; the
    // timing model paces this loop through its bandwidth limits
    while (auto req = prf.nextRequest()) {
        ++stats_.streamRequests;
        if (issue)
            issue(cpu, *req, cfg.intoL1);
    }
}

void
SmsUnit::generationEnd(const TriggerInfo &trigger,
                       const SpatialPattern &pattern)
{
    ++stats_.trained;
    const uint64_t key = makeIndex(cfg.index, trigger, cfg.geometry);
    pht_.update(key, pattern);
}

void
SmsUnit::drain()
{
    trainer_->drain();
}

SmsController::SmsController(mem::MemorySystem &sys, const SmsConfig &config)
{
    IssueFn fn = [&sys](uint32_t cpu, uint64_t addr, bool into_l1) {
        sys.prefetch(cpu, addr, into_l1);
    };
    for (uint32_t c = 0; c < sys.numCpus(); ++c) {
        units.push_back(std::make_unique<SmsUnit>(c, config, fn));
        sys.addL1Listener(c, units.back().get());
    }
    sys.addObserver(this);
}

void
SmsController::drainAll()
{
    for (auto &u : units)
        u->drain();
}

SmsStats
SmsController::totalStats() const
{
    SmsStats s;
    for (const auto &u : units)
        s += u->stats();
    return s;
}

} // namespace stems::core
