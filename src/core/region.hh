/**
 * @file
 * Spatial region geometry: fixed-size, aligned portions of the address
 * space consisting of multiple consecutive cache blocks (Section 2.1
 * of the paper). Default: 2 kB regions of 64 B blocks (32 blocks).
 */

#ifndef STEMS_CORE_REGION_HH
#define STEMS_CORE_REGION_HH

#include <cstdint>
#include <stdexcept>

#include "util/bits.hh"

namespace stems::core {

/** A spatial pattern: one bit per block of a region (Section 2.1). */
using SpatialPattern = Bits128;

/** Address arithmetic for one (region size, block size) choice. */
class RegionGeometry
{
  public:
    /**
     * @param region_size bytes per spatial region (power of two)
     * @param block_size  bytes per cache block (power of two)
     */
    explicit RegionGeometry(uint32_t region_size = 2048,
                            uint32_t block_size = 64)
        : regionSize_(region_size), blockSize_(block_size)
    {
        if (!isPow2(region_size) || !isPow2(block_size) ||
            region_size < block_size) {
            throw std::invalid_argument("bad region geometry");
        }
        regionShift = log2i(region_size);
        blockShift = log2i(block_size);
        if (blocksPerRegion() > Bits128::kMaxBits)
            throw std::invalid_argument("region too large for pattern");
    }

    uint32_t regionSize() const { return regionSize_; }
    uint32_t blockSize() const { return blockSize_; }

    /** Number of blocks (pattern bits) per region. */
    uint32_t
    blocksPerRegion() const
    {
        return regionSize_ / blockSize_;
    }

    /** Base byte address of the region containing @p addr. */
    uint64_t
    regionBase(uint64_t addr) const
    {
        return addr & ~uint64_t{regionSize_ - 1};
    }

    /** Dense region identifier (the "spatial region tag"). */
    uint64_t
    regionId(uint64_t addr) const
    {
        return addr >> regionShift;
    }

    /** Spatial region offset: block distance from the region start. */
    uint32_t
    offsetOf(uint64_t addr) const
    {
        return static_cast<uint32_t>(
            (addr & (regionSize_ - 1)) >> blockShift);
    }

    /** Block-aligned address of block @p offset in @p region_base. */
    uint64_t
    blockAddr(uint64_t region_base, uint32_t offset) const
    {
        return region_base + (uint64_t{offset} << blockShift);
    }

    /** Bits needed to encode a spatial region offset. */
    uint32_t
    offsetBits() const
    {
        return regionShift - blockShift;
    }

    bool
    operator==(const RegionGeometry &o) const
    {
        return regionSize_ == o.regionSize_ && blockSize_ == o.blockSize_;
    }

  private:
    uint32_t regionSize_;
    uint32_t blockSize_;
    uint32_t regionShift;
    uint32_t blockShift;
};

} // namespace stems::core

#endif // STEMS_CORE_REGION_HH
