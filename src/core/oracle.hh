/**
 * @file
 * The opportunity oracle of Figure 4: a predictor that incurs exactly
 * one miss per spatial region generation. Tracking the generations a
 * cache's actual access/eviction behaviour defines yields the maximum
 * miss reduction any spatial predictor at that region size could
 * achieve.
 */

#ifndef STEMS_CORE_ORACLE_HH
#define STEMS_CORE_ORACLE_HH

#include <cstdint>

#include "core/region.hh"
#include "util/flat_map.hh"

namespace stems::core {

/**
 * Counts spatial region generations over an access + departure event
 * stream at one cache level. A generation begins with a trigger
 * access to a quiescent region and ends when any block *accessed
 * during the generation* leaves the cache.
 */
class OracleTracker
{
  public:
    explicit OracleTracker(const RegionGeometry &geom) : geom(geom) {}

    /** Observe a demand access at this level. */
    void
    onAccess(uint64_t addr)
    {
        const uint64_t rid = geom.regionId(addr);
        auto [it, inserted] = active.try_emplace(rid);
        if (inserted)
            ++gens;
        it->second.set(geom.offsetOf(addr));
    }

    /** Observe a block departure (replacement or invalidation). */
    void
    onBlockRemoved(uint64_t block_addr)
    {
        const uint64_t rid = geom.regionId(block_addr);
        auto it = active.find(rid);
        if (it == active.end())
            return;
        if (it->second.test(geom.offsetOf(block_addr)))
            active.erase(it);  // an accessed block left: generation over
    }

    /** Oracle miss count: one per generation started. */
    uint64_t generations() const { return gens; }

    /** Live generations (for tests). */
    size_t activeCount() const { return active.size(); }

  private:
    RegionGeometry geom;
    util::FlatMap<uint64_t, SpatialPattern> active;
    uint64_t gens = 0;
};

} // namespace stems::core

#endif // STEMS_CORE_ORACLE_HH
