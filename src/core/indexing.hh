/**
 * @file
 * Prediction index construction (Section 2.2 / 4.2). The index chosen
 * to look up and update the PHT determines what the predictor can
 * correlate on: data address, code, or both. PC+offset is the paper's
 * headline result — code-correlated, cheap, and able to predict
 * previously-unvisited data.
 */

#ifndef STEMS_CORE_INDEXING_HH
#define STEMS_CORE_INDEXING_HH

#include <cstdint>
#include <string>

#include "core/region.hh"
#include "core/trainer.hh"

namespace stems::core {

/** The four prediction indices compared in Figure 6. */
enum class IndexKind
{
    Address,    //!< spatial region address only
    PcAddress,  //!< PC combined with the region address
    Pc,         //!< trigger PC only
    PcOffset    //!< PC combined with the spatial region offset
};

/** Human-readable label matching the paper's figure axes. */
inline const char *
indexName(IndexKind k)
{
    switch (k) {
      case IndexKind::Address: return "Addr";
      case IndexKind::PcAddress: return "PC+addr";
      case IndexKind::Pc: return "PC";
      case IndexKind::PcOffset: return "PC+off";
    }
    return "?";
}

/**
 * Build the 64-bit prediction key for @p trigger under index scheme
 * @p kind. Keys feed the PHT's set index (low bits) and tag.
 */
inline uint64_t
makeIndex(IndexKind kind, const TriggerInfo &trigger,
          const RegionGeometry &geom)
{
    switch (kind) {
      case IndexKind::Address:
        return geom.regionId(trigger.regionBase);
      case IndexKind::PcAddress:
        // mix so unrelated (pc, region) pairs spread over PHT sets
        return trigger.pc * 0x9e3779b97f4a7c15ULL ^
            geom.regionId(trigger.regionBase);
      case IndexKind::Pc:
        return trigger.pc;
      case IndexKind::PcOffset:
        return (trigger.pc << geom.offsetBits()) | trigger.offset;
    }
    return 0;
}

} // namespace stems::core

#endif // STEMS_CORE_INDEXING_HH
