/**
 * @file
 * Prior-work training structures compared against the AGT in
 * Section 4.3 / Figures 8-9:
 *
 *  - LogicalSectoredTags models the spatial pattern predictor's [4]
 *    logical sectored-cache tag array: a sector-granularity tag
 *    structure maintained beside a traditional cache. It observes
 *    accesses and defines generations by its own tag residency, so
 *    interleaved regions conflict in its sets and fragment
 *    generations, but it does not constrain the real cache.
 *
 *  - DecoupledSectoredCache models the spatial footprint predictor's
 *    [17] decoupled sectored cache [22]: the cache itself is sectored,
 *    with a decoupled tag array holding several times more sector tags
 *    than sectors of data capacity. A block may only reside while its
 *    sector tag does, so sector conflicts evict unrelated blocks and
 *    raise the miss rate — the effect Figure 8 quantifies.
 */

#ifndef STEMS_CORE_SECTORED_HH
#define STEMS_CORE_SECTORED_HH

#include <cstdint>
#include <vector>

#include "core/region.hh"
#include "core/trainer.hh"
#include "mem/cache.hh"

namespace stems::core {

/** Geometry of a sectored tag array. */
struct SectoredTagConfig
{
    uint32_t sets = 16;   //!< power of two
    uint32_t assoc = 2;
};

/**
 * Logical sectored-cache tag array (trainer only). Trains every ended
 * generation — including single-block ones, which is part of why it
 * needs roughly twice the PHT capacity of the AGT (Figure 9).
 */
class LogicalSectoredTags : public PatternTrainer
{
  public:
    LogicalSectoredTags(const RegionGeometry &geom,
                        const SectoredTagConfig &config);

    void onAccess(uint64_t pc, uint64_t addr) override;
    void onBlockRemoved(uint64_t block_addr, bool invalidation) override;
    void drain() override;

    uint64_t generationsTrained() const { return trained; }

  private:
    struct Entry
    {
        uint64_t rid = 0;  //!< region id (full; set derived from it)
        TriggerInfo trigger;
        SpatialPattern pattern;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    Entry *findEntry(uint64_t rid);
    void endGeneration(Entry &e);

    RegionGeometry geom;
    SectoredTagConfig cfg;
    std::vector<Entry> entries;
    uint64_t tick = 0;
    uint64_t trained = 0;
};

/** Geometry of the decoupled sectored cache. */
struct DsConfig
{
    uint64_t dataBytes = 64 * 1024;
    uint32_t dataAssoc = 2;
    uint32_t blockSize = 64;
    uint32_t sectorSize = 2048;
    uint32_t tagMult = 4;  //!< decoupling: tag entries per data sector
};

/**
 * Decoupled sectored cache: a complete L1 model (its misses are the
 * experiment's misses) that also emits generation events from sector
 * residency. Implements PatternTrainer so an SmsUnit can drive it
 * directly; onAccess performs the cache access.
 */
class DecoupledSectoredCache : public PatternTrainer
{
  public:
    explicit DecoupledSectoredCache(const DsConfig &config);

    /** Demand access; updates miss statistics and generation state. */
    mem::AccessResult access(uint64_t pc, uint64_t addr, bool is_write);

    /** Insert a streamed block; requires the sector tag be present. */
    bool fillPrefetch(uint64_t addr);

    /** Coherence invalidation of one block. */
    void invalidateBlock(uint64_t addr);

    // PatternTrainer (onAccess loses the read/write split; the study
    // calls access() directly when it needs the AccessResult)
    void
    onAccess(uint64_t pc, uint64_t addr) override
    {
        access(pc, addr, false);
    }

    void
    onBlockRemoved(uint64_t block_addr, bool invalidation) override
    {
        if (invalidation)
            invalidateBlock(block_addr);
    }

    void drain() override;

    const mem::CacheStats &stats() const { return stats_; }
    const RegionGeometry &geometry() const { return geom; }

  private:
    struct SectorEntry
    {
        uint64_t rid = 0;
        TriggerInfo trigger;
        SpatialPattern accessed;  //!< demand-touched blocks (pattern)
        uint64_t lastUse = 0;
        bool valid = false;
    };

    struct DataFrame
    {
        uint64_t blockIdx = 0;  //!< addr >> blockShift
        uint64_t lastUse = 0;
        bool valid = false;
        bool prefetch = false;
    };

    SectorEntry *findSector(uint64_t rid);
    /** Allocate a sector entry, ending the victim's generation. */
    SectorEntry &allocSector(uint64_t rid);
    void endSector(SectorEntry &e);
    /** Drop every resident data block of sector @p rid. */
    void dropSectorBlocks(uint64_t rid);

    DataFrame *findBlock(uint64_t block_idx);
    void fillBlock(uint64_t block_idx, bool prefetch);

    DsConfig cfg;
    RegionGeometry geom;
    uint32_t dataSets;
    uint32_t tagSets;
    uint32_t tagAssoc;
    std::vector<SectorEntry> sectors;
    std::vector<DataFrame> frames;
    uint64_t tick = 0;
    mem::CacheStats stats_;
};

} // namespace stems::core

#endif // STEMS_CORE_SECTORED_HH
