#include "fault/fault.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <mutex>
#include <stdexcept>
#include <unistd.h>

#include "obs/counters.hh"
#include "obs/obs.hh"

namespace stems::fault {

namespace {

Plan gPlan;
bool gActive = false;

// worker-context site identity (set around each cell execution; the
// worker loop is single-threaded, so plain globals suffice)
bool gHaveCell = false;
uint32_t gCellId = 0;
uint32_t gAttempt = 1;

// per-path spill-write ordinals so a regenerated spill rolls a fresh
// deterministic decision; guarded — runner pool threads spill
// concurrently
std::mutex gSpillMu;
std::map<std::string, uint64_t> gSpillWrites;

/** splitmix64 finalizer: the one mixing primitive every site shares. */
uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

uint64_t
hashBytes(const std::string &s)
{
    // FNV-1a 64
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
baseName(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

Kind
parseKind(const std::string &name)
{
    if (name == "crash")
        return Kind::Crash;
    if (name == "hang")
        return Kind::Hang;
    if (name == "garbage")
        return Kind::Garbage;
    if (name == "truncate")
        return Kind::Truncate;
    if (name == "corrupt-spill")
        return Kind::CorruptSpill;
    if (name == "enospc")
        return Kind::Enospc;
    throw std::invalid_argument("fault-plan: unknown fault kind \"" +
                                name + "\"");
}

/** Parse "P[:always]" or "cell:ID[:always]" into @p c. */
void
parseSelector(Clause &c, const std::string &sel)
{
    std::string body = sel;
    if (body.size() >= 7 &&
        body.compare(body.size() - 7, 7, ":always") == 0) {
        c.everyAttempt = true;
        body.erase(body.size() - 7);
    }
    if (body.rfind("cell:", 0) == 0) {
        const std::string id = body.substr(5);
        char *end = nullptr;
        errno = 0;
        const unsigned long long v = std::strtoull(id.c_str(), &end, 10);
        if (id.empty() || errno != 0 || end != id.c_str() + id.size())
            throw std::invalid_argument(
                "fault-plan: bad cell id \"" + id + "\"");
        c.cell = static_cast<int64_t>(v);
        c.prob = 1.0;
        return;
    }
    char *end = nullptr;
    errno = 0;
    const double p = std::strtod(body.c_str(), &end);
    if (body.empty() || errno != 0 || end != body.c_str() + body.size() ||
        !(p >= 0.0 && p <= 1.0))
        throw std::invalid_argument(
            "fault-plan: probability \"" + body +
            "\" must be in [0,1] (or cell:ID)");
    c.prob = p;
}

/**
 * Legacy hook parser: "ID[:MARKER]" (crash) or "ID:MS[:MARKER]"
 * (hang). A marker-less legacy hook fires on every attempt — the old
 * semantics tests depend on.
 */
Clause
parseLegacyHook(Kind kind, const std::string &raw, bool withSleep)
{
    Clause c;
    c.kind = kind;
    c.prob = 1.0;
    size_t colon = raw.find(':');
    c.cell = static_cast<int64_t>(
        std::strtoul(raw.c_str(), nullptr, 10));
    if (withSleep) {
        if (colon == std::string::npos)
            throw std::invalid_argument(
                "STEMS_DISPATCH_SLEEP: expected ID:MS[:MARKER]");
        c.hangMs = static_cast<uint32_t>(
            std::strtoul(raw.c_str() + colon + 1, nullptr, 10));
        colon = raw.find(':', colon + 1);
    }
    if (colon != std::string::npos)
        c.marker = raw.substr(colon + 1);
    else
        c.everyAttempt = true;
    return c;
}

/**
 * Whether a legacy marker-file clause fires: only the attempt that
 * creates the marker does, so the re-queued attempt runs clean even
 * across worker processes.
 */
bool
markerFires(const Clause &c)
{
    const int fd = ::open(c.marker.c_str(),
                          O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;  // marker exists: a previous attempt fired
    ::close(fd);
    return true;
}

bool
clauseFires(const Clause &c, uint64_t a, uint64_t b)
{
    if (!c.marker.empty())
        return markerFires(c);
    if (!c.everyAttempt && b > 1)
        return false;
    if (c.cell >= 0)
        return static_cast<uint64_t>(c.cell) == a;
    return unitValue(gPlan.seed, c.kind, a, b) < c.prob;
}

} // anonymous namespace

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Crash: return "crash";
      case Kind::Hang: return "hang";
      case Kind::Garbage: return "garbage";
      case Kind::Truncate: return "truncate";
      case Kind::CorruptSpill: return "corrupt-spill";
      case Kind::Enospc: return "enospc";
    }
    return "?";
}

Plan
parsePlan(const std::string &spec)
{
    Plan plan;
    size_t pos = 0;
    while (pos <= spec.size()) {
        const size_t comma = spec.find(',', pos);
        const std::string clause = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (clause.empty())
            continue;
        const size_t eq = clause.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "fault-plan: expected KIND=SELECTOR, got \"" + clause +
                "\"");
        const std::string key = clause.substr(0, eq);
        std::string value = clause.substr(eq + 1);
        if (key == "seed") {
            char *end = nullptr;
            errno = 0;
            plan.seed = std::strtoull(value.c_str(), &end, 10);
            if (value.empty() || errno != 0 ||
                end != value.c_str() + value.size())
                throw std::invalid_argument(
                    "fault-plan: bad seed \"" + value + "\"");
            continue;
        }
        Clause c;
        c.kind = parseKind(key);
        if (c.kind == Kind::Hang) {
            const size_t slash = value.find('/');
            if (slash == std::string::npos)
                throw std::invalid_argument(
                    "fault-plan: hang needs SEL/MS, got \"" + value +
                    "\"");
            const std::string ms = value.substr(slash + 1);
            char *end = nullptr;
            errno = 0;
            const unsigned long v =
                std::strtoul(ms.c_str(), &end, 10);
            if (ms.empty() || errno != 0 ||
                end != ms.c_str() + ms.size())
                throw std::invalid_argument(
                    "fault-plan: bad hang duration \"" + ms + "\"");
            c.hangMs = static_cast<uint32_t>(v);
            value.erase(slash);
        }
        if (c.kind == Kind::CorruptSpill || c.kind == Kind::Enospc) {
            // spill faults have no cell identity: probability only
            char *end = nullptr;
            errno = 0;
            const double p = std::strtod(value.c_str(), &end);
            if (value.empty() || errno != 0 ||
                end != value.c_str() + value.size() ||
                !(p >= 0.0 && p <= 1.0))
                throw std::invalid_argument(
                    "fault-plan: " + key + " probability \"" + value +
                    "\" must be in [0,1]");
            c.prob = p;
            c.everyAttempt = true;
        } else {
            parseSelector(c, value);
        }
        plan.clauses.push_back(std::move(c));
    }
    return plan;
}

void
installPlan(Plan plan)
{
    gPlan = std::move(plan);
    gActive = !gPlan.empty();
    {
        std::lock_guard<std::mutex> lock(gSpillMu);
        gSpillWrites.clear();
    }
}

void
installFromEnv()
{
    Plan plan;
    if (const char *spec = std::getenv("STEMS_FAULTS"))
        plan = parsePlan(spec);
    if (const char *raw = std::getenv("STEMS_DISPATCH_CRASH"))
        plan.clauses.push_back(
            parseLegacyHook(Kind::Crash, raw, false));
    if (const char *raw = std::getenv("STEMS_DISPATCH_SLEEP"))
        plan.clauses.push_back(
            parseLegacyHook(Kind::Hang, raw, true));
    if (!plan.empty())
        installPlan(std::move(plan));
}

bool
active()
{
    return gActive;
}

const Plan &
currentPlan()
{
    return gPlan;
}

void
setCellContext(uint32_t cellId, uint32_t attempt)
{
    gHaveCell = true;
    gCellId = cellId;
    gAttempt = attempt ? attempt : 1;
}

void
clearCellContext()
{
    gHaveCell = false;
}

const Clause *
cellFault(Kind kind)
{
    if (!gActive || !gHaveCell)
        return nullptr;
    for (const Clause &c : gPlan.clauses) {
        if (c.kind != kind)
            continue;
        if (clauseFires(c, gCellId, gAttempt)) {
            obs::count(&obs::Counters::faultsInjected);
            obs::instant("fault_fired",
                         {{"kind", kindName(kind)},
                          {"cell", std::to_string(gCellId)},
                          {"attempt", std::to_string(gAttempt)}});
            return &c;
        }
    }
    return nullptr;
}

bool
spillFault(Kind kind, const std::string &path)
{
    if (!gActive)
        return false;
    const Clause *match = nullptr;
    for (const Clause &c : gPlan.clauses)
        if (c.kind == kind) {
            match = &c;
            break;
        }
    if (!match)
        return false;
    const std::string base = baseName(path);
    uint64_t nth = 0;
    {
        std::lock_guard<std::mutex> lock(gSpillMu);
        nth = ++gSpillWrites[kindName(kind) + (":" + base)];
    }
    if (unitValue(gPlan.seed, kind, hashBytes(base), nth) >=
        match->prob)
        return false;
    obs::count(&obs::Counters::faultsInjected);
    obs::instant("fault_fired",
                 {{"kind", kindName(kind)}, {"path", base}});
    return true;
}

double
unitValue(uint64_t seed, Kind kind, uint64_t a, uint64_t b)
{
    uint64_t h = mix64(seed + 0x9e3779b97f4a7c15ULL);
    h = mix64(h ^ (static_cast<uint64_t>(kind) + 1));
    h = mix64(h ^ a);
    h = mix64(h ^ b);
    // 53 high bits → [0,1)
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
corruptFileByte(const std::string &path, uint64_t seed, size_t skip)
{
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0)
        return false;
    const off_t size = ::lseek(fd, 0, SEEK_END);
    if (size <= static_cast<off_t>(skip)) {
        ::close(fd);
        return false;
    }
    const uint64_t span = static_cast<uint64_t>(size) - skip;
    const off_t off = static_cast<off_t>(
        skip + mix64(seed ^ static_cast<uint64_t>(size)) % span);
    unsigned char byte = 0;
    bool ok = ::pread(fd, &byte, 1, off) == 1;
    byte ^= 0xFF;
    ok = ok && ::pwrite(fd, &byte, 1, off) == 1;
    ::close(fd);
    return ok;
}

} // namespace stems::fault
