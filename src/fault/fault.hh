/**
 * @file
 * Deterministic, seeded fault injection for chaos-testing the
 * dispatch and trace-spill paths. A declarative plan — from
 * `--fault-plan=SPEC` or the `STEMS_FAULTS` environment variable —
 * names which failure modes to inject and how often; every firing
 * decision is a pure hash of (plan seed, fault kind, site identity),
 * so a given plan replays the exact same faults run after run and CI
 * chaos jobs are reproducible.
 *
 * Plan grammar (comma-separated clauses):
 *
 *   seed=N              hash seed shared by every clause (default 1)
 *   crash=SEL           worker _exit(137)s before executing the cell
 *   hang=SEL/MS         worker wedges (wire lock held) for MS ms
 *   garbage=SEL         worker frames unparseable bytes as the result
 *   truncate=SEL        worker writes half the result frame, then dies
 *   corrupt-spill=P     flip one byte of a just-committed .stmt spill
 *   enospc=P            .stmt spill writes fail as if the disk is full
 *
 *   SEL := P                  probability in [0,1], evaluated per
 *                             (cell, attempt); fires only on a cell's
 *                             first attempt so retries run clean
 *        | P:always           ... on every attempt (defeats retry)
 *        | cell:ID            exactly that cell, first attempt only
 *        | cell:ID:always     exactly that cell, every attempt
 *
 * Worker-context faults (crash/hang/garbage/truncate) fire only when
 * a cell context has been set (i.e. inside `stems worker`); the spill
 * faults fire in any process with a plan installed. The legacy
 * STEMS_DISPATCH_CRASH / STEMS_DISPATCH_SLEEP test hooks parse into
 * the same clause representation (with their fire-once marker files),
 * so the old instrumentation is a special case of the plan.
 *
 * Injection sites are all on cold paths (per cell, per spill write);
 * with no plan installed each site is a single branch on a bool.
 */

#ifndef STEMS_FAULT_FAULT_HH
#define STEMS_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace stems::fault {

/** The injectable failure modes. */
enum class Kind
{
    Crash,         //!< worker exits mid-cell (simulated SIGKILL)
    Hang,          //!< worker wedges: no progress, no heartbeats
    Garbage,       //!< worker ships an unparseable result frame
    Truncate,      //!< worker dies mid-frame (torn wire write)
    CorruptSpill,  //!< one byte of a committed .stmt spill flipped
    Enospc         //!< .stmt spill write fails (disk-full model)
};

const char *kindName(Kind k);

/** One parsed plan clause. */
struct Clause
{
    Kind kind = Kind::Crash;
    double prob = 0;          //!< firing probability (cell < 0)
    int64_t cell = -1;        //!< targeted cell id (-1 = probabilistic)
    bool everyAttempt = false; //!< fire on retries too
    uint32_t hangMs = 0;      //!< wedge duration (Kind::Hang)
    std::string marker;       //!< legacy fire-once marker file path
};

/** A full fault plan: shared hash seed plus clauses. */
struct Plan
{
    uint64_t seed = 1;
    std::vector<Clause> clauses;

    bool empty() const { return clauses.empty(); }
};

/**
 * Parse a plan spec (see the grammar above). Throws
 * std::invalid_argument on unknown kinds, malformed selectors, or
 * probabilities outside [0,1].
 */
Plan parsePlan(const std::string &spec);

/**
 * Install @p plan process-wide, enabling the injection sites.
 * Not thread-safe against concurrent injection queries — install
 * before any worker/runner threads start (tests may re-install
 * between runs).
 */
void installPlan(Plan plan);

/**
 * Install from the environment: STEMS_FAULTS (plan grammar) plus the
 * legacy STEMS_DISPATCH_CRASH="ID[:MARKER]" and
 * STEMS_DISPATCH_SLEEP="ID:MS[:MARKER]" hooks, folded into equivalent
 * clauses. No-op when none are set. Called by `stems worker` at
 * startup and by `stems run` (whose --fault-plan= is exported as
 * STEMS_FAULTS so forked workers inherit it).
 */
void installFromEnv();

/** Whether a non-empty plan is installed. */
bool active();

/** The installed plan (empty when none). */
const Plan &currentPlan();

/**
 * Set the worker-context site identity before executing a cell;
 * attempts count from 1. Worker-context clauses never fire while no
 * context is set.
 */
void setCellContext(uint32_t cellId, uint32_t attempt);
void clearCellContext();

/**
 * First clause of @p kind that fires for the current cell context,
 * or nullptr. A firing clause bumps the faults_injected counter.
 */
const Clause *cellFault(Kind kind);

/**
 * Whether a spill fault of @p kind fires for this write of @p path.
 * Keyed on (seed, kind, path basename, per-path write ordinal), so a
 * regenerated spill rolls a fresh decision. Thread-safe.
 */
bool spillFault(Kind kind, const std::string &path);

/**
 * The deterministic per-site hash in [0,1) that firing decisions
 * compare against their probability (exposed for tests).
 */
double unitValue(uint64_t seed, Kind kind, uint64_t a, uint64_t b);

/**
 * Flip one deterministically-chosen byte of @p path past @p skip
 * header bytes (the CorruptSpill payload corruptor). Returns false
 * when the file cannot be opened or has no payload bytes.
 */
bool corruptFileByte(const std::string &path, uint64_t seed,
                     size_t skip);

} // namespace stems::fault

#endif // STEMS_FAULT_FAULT_HH
