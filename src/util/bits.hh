/**
 * @file
 * Fixed-capacity 128-bit bit vector used for spatial patterns (up to
 * 8 kB regions of 64 B blocks) and directory sub-block write masks.
 */

#ifndef STEMS_UTIL_BITS_HH
#define STEMS_UTIL_BITS_HH

#include <bit>
#include <cassert>
#include <cstdint>
#include <string>

namespace stems {

/**
 * A dense bit vector of up to 128 bits with value semantics.
 * Bit 0 is the least-significant bit of word 0.
 */
class Bits128
{
  public:
    static constexpr uint32_t kMaxBits = 128;

    constexpr Bits128() = default;

    /** Construct from a low word (bits 0-63). */
    explicit constexpr Bits128(uint64_t low) : w{low, 0} {}

    constexpr Bits128(uint64_t low, uint64_t high) : w{low, high} {}

    void
    set(uint32_t i)
    {
        assert(i < kMaxBits);
        w[i >> 6] |= (uint64_t{1} << (i & 63));
    }

    void
    clear(uint32_t i)
    {
        assert(i < kMaxBits);
        w[i >> 6] &= ~(uint64_t{1} << (i & 63));
    }

    bool
    test(uint32_t i) const
    {
        assert(i < kMaxBits);
        return (w[i >> 6] >> (i & 63)) & 1;
    }

    void reset() { w[0] = w[1] = 0; }

    bool any() const { return (w[0] | w[1]) != 0; }
    bool none() const { return !any(); }

    uint32_t
    count() const
    {
        return std::popcount(w[0]) + std::popcount(w[1]);
    }

    /** Index of the lowest set bit. @pre any() */
    uint32_t
    lowestSet() const
    {
        assert(any());
        if (w[0])
            return std::countr_zero(w[0]);
        return 64 + std::countr_zero(w[1]);
    }

    Bits128
    operator&(const Bits128 &o) const
    {
        return {w[0] & o.w[0], w[1] & o.w[1]};
    }

    Bits128
    operator|(const Bits128 &o) const
    {
        return {w[0] | o.w[0], w[1] | o.w[1]};
    }

    Bits128 &
    operator|=(const Bits128 &o)
    {
        w[0] |= o.w[0];
        w[1] |= o.w[1];
        return *this;
    }

    Bits128 &
    operator&=(const Bits128 &o)
    {
        w[0] &= o.w[0];
        w[1] &= o.w[1];
        return *this;
    }

    bool
    operator==(const Bits128 &o) const
    {
        return w[0] == o.w[0] && w[1] == o.w[1];
    }

    bool intersects(const Bits128 &o) const { return ((*this) & o).any(); }

    uint64_t low() const { return w[0]; }
    uint64_t high() const { return w[1]; }

    /** Render the lowest @p nbits as a 0/1 string, bit 0 first. */
    std::string
    toString(uint32_t nbits) const
    {
        std::string s;
        s.reserve(nbits);
        for (uint32_t i = 0; i < nbits; ++i)
            s.push_back(test(i) ? '1' : '0');
        return s;
    }

  private:
    uint64_t w[2] = {0, 0};
};

/** Integer log2 for powers of two. @pre x is a nonzero power of two */
constexpr uint32_t
log2i(uint64_t x)
{
    return static_cast<uint32_t>(std::countr_zero(x));
}

/** True iff @p x is a nonzero power of two. */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace stems

#endif // STEMS_UTIL_BITS_HH
