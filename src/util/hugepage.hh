/**
 * @file
 * Huge-page-backed array storage for the simulator's big flat tables
 * (directory entry maps, L2 tag arrays). Their probes are uniformly
 * random over tens of megabytes, so with 4 KiB pages nearly every
 * probe adds a dTLB miss on top of the data-cache miss; backing the
 * arrays with 2 MiB transparent huge pages drops the page count by
 * 512x. Falls back to plain allocation when THP or the platform
 * support is unavailable — behaviour is identical either way.
 */

#ifndef STEMS_UTIL_HUGEPAGE_HH
#define STEMS_UTIL_HUGEPAGE_HH

#include <cstdlib>
#include <memory>
#include <new>
#include <type_traits>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace stems::util {

/**
 * A fixed-size value-initialized array allocated on 2 MiB-aligned
 * storage with MADV_HUGEPAGE when the request is large enough to
 * benefit.
 */
template <typename T>
class HugeArray
{
  public:
    HugeArray() = default;

    explicit HugeArray(size_t count) { reset(count); }

    HugeArray(HugeArray &&o) noexcept { swap(o); }

    HugeArray &
    operator=(HugeArray &&o) noexcept
    {
        if (this != &o) {
            release();
            swap(o);
        }
        return *this;
    }

    HugeArray(const HugeArray &) = delete;
    HugeArray &operator=(const HugeArray &) = delete;

    ~HugeArray() { release(); }

    /** Drop the current storage and allocate @p count elements. */
    void
    reset(size_t count)
    {
        release();
        if (count == 0)
            return;
        n = count;
        const size_t bytes = count * sizeof(T);
        if (bytes >= kHugeThreshold) {
            const size_t rounded =
                (bytes + kHugePage - 1) & ~(kHugePage - 1);
            void *raw = std::aligned_alloc(kHugePage, rounded);
            if (raw) {
#if defined(__linux__)
                ::madvise(raw, rounded, MADV_HUGEPAGE);
#endif
                p = static_cast<T *>(raw);
                aligned = true;
            }
        }
        if (!p) {
            p = static_cast<T *>(
                ::operator new(bytes, std::align_val_t{64}));
            aligned = false;
        }
        std::uninitialized_value_construct_n(p, n);
    }

    /** Release storage (empty state). */
    void
    release()
    {
        if (!p)
            return;
        std::destroy_n(p, n);
        if (aligned)
            std::free(p);
        else
            ::operator delete(p, std::align_val_t{64});
        p = nullptr;
        n = 0;
    }

    T *get() const { return p; }
    T &operator[](size_t i) const { return p[i]; }
    size_t size() const { return n; }
    explicit operator bool() const { return p != nullptr; }
    T *begin() const { return p; }
    T *end() const { return p + n; }

  private:
    static constexpr size_t kHugePage = size_t{2} << 20;
    static constexpr size_t kHugeThreshold = size_t{1} << 20;

    void
    swap(HugeArray &o) noexcept
    {
        std::swap(p, o.p);
        std::swap(n, o.n);
        std::swap(aligned, o.aligned);
    }

    T *p = nullptr;
    size_t n = 0;
    bool aligned = false;
};

} // namespace stems::util

#endif // STEMS_UTIL_HUGEPAGE_HH
