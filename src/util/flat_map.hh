/**
 * @file
 * Open-addressing hash map for the simulation hot path. The
 * per-reference loop models fixed-capacity hardware tables (AGT,
 * MSHRs, directory state, PHT) that the seed implemented as
 * node-allocating std::unordered_maps; FlatMap stores key/value pairs
 * in one contiguous power-of-two array with linear probing and
 * backward-shift deletion, with occupancy flags held in a separate
 * dense byte array so probes over footprint-sized tables (the
 * directory) stream through memory at maximum density and the flag
 * checks stay cache-resident.
 *
 * Semantics match the subset of std::unordered_map the call sites
 * use (find/erase/operator[]/try_emplace/iteration), with three
 * deliberate differences: iteration order is slot order (deterministic
 * for a given operation history, but not the standard container's
 * order), references are invalidated by erase of *any* key and by any
 * insert that triggers a rehash, and erase-during-iteration may
 * revisit a relocated entry (it never skips one). No caller may hold
 * a reference or iterator across a mutation of the same map, except
 * through erase(iterator)'s return value.
 */

#ifndef STEMS_UTIL_FLAT_MAP_HH
#define STEMS_UTIL_FLAT_MAP_HH

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <cstring>
#include <memory>
#include <utility>

#include "util/hugepage.hh"

namespace stems::util {

/** splitmix64 finalizer: full-avalanche mixing for integer keys. */
struct Mix64
{
    uint64_t
    operator()(uint64_t x) const
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }
};

/**
 * Linear-probe open-addressing map from an integer-like key to V.
 * Capacity is always a power of two; max load factor 0.7.
 */
template <typename K, typename V, typename Hash = Mix64>
class FlatMap
{
  public:
    using value_type = std::pair<K, V>;

    class iterator
    {
      public:
        iterator() = default;
        iterator(value_type *p, value_type *end, const uint8_t *flag)
            : p(p), end(end), flag(flag)
        {
            skip();
        }

        value_type &operator*() const { return *p; }
        value_type *operator->() const { return p; }

        iterator &
        operator++()
        {
            ++p;
            ++flag;
            skip();
            return *this;
        }

        bool operator==(const iterator &o) const { return p == o.p; }
        bool operator!=(const iterator &o) const { return p != o.p; }

      private:
        friend class FlatMap;

        void
        skip()
        {
            while (p != end && !*flag) {
                ++p;
                ++flag;
            }
        }

        value_type *p = nullptr;
        value_type *end = nullptr;
        const uint8_t *flag = nullptr;
    };

    using const_iterator = iterator;  //!< values mutable, keys are not
                                      //!< to be written through iterators

    FlatMap() = default;

    explicit FlatMap(size_t expected) { reserve(expected); }

    FlatMap(const FlatMap &o) { *this = o; }

    FlatMap &
    operator=(const FlatMap &o)
    {
        if (this == &o)
            return *this;
        slots.release();
        full.release();
        cap = 0;
        size_ = 0;
        if (o.size_) {
            rehash(capacityFor(o.size_));
            for (size_t i = 0; i < o.cap; ++i)
                if (o.full[i])
                    insertFresh(o.slots[i].first)->second =
                        o.slots[i].second;
        }
        return *this;
    }

    // moved-from maps must stay usable (empty), like unordered_map:
    // the defaulted moves would leave cap/size_ dangling past the
    // stolen arrays
    FlatMap(FlatMap &&o) noexcept
        : slots(std::move(o.slots)), full(std::move(o.full)),
          cap(o.cap), size_(o.size_)
    {
        o.cap = 0;
        o.size_ = 0;
    }

    FlatMap &
    operator=(FlatMap &&o) noexcept
    {
        if (this != &o) {
            slots = std::move(o.slots);
            full = std::move(o.full);
            cap = o.cap;
            size_ = o.size_;
            o.cap = 0;
            o.size_ = 0;
        }
        return *this;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Slots currently allocated (for tests / footprint accounting). */
    size_t capacity() const { return cap; }

    void
    clear()
    {
        if (cap)
            std::memset(full.get(), 0, cap);
        size_ = 0;
    }

    /** Pre-size so @p expected entries insert without rehashing. */
    void
    reserve(size_t expected)
    {
        const size_t want = capacityFor(expected);
        if (want > cap)
            rehash(want);
    }

    iterator
    begin()
    {
        return iterator(slots.get(), slotsEnd(), full.get());
    }

    iterator
    end()
    {
        return iterator(slotsEnd(), slotsEnd(), full.get() + cap);
    }

    const_iterator
    begin() const
    {
        return const_cast<FlatMap *>(this)->begin();
    }

    const_iterator
    end() const
    {
        return const_cast<FlatMap *>(this)->end();
    }

    /**
     * Hint that @p key will be probed shortly: start fetching its
     * home slot so the probe overlaps other work. No-op when the
     * compiler lacks __builtin_prefetch.
     */
    void
    prefetchKey(const K &key) const
    {
#if defined(__GNUC__) || defined(__clang__)
        if (!cap)
            return;
        const size_t i = Hash{}(key) & (cap - 1);
        __builtin_prefetch(&full[i]);
        __builtin_prefetch(&slots[i]);
#else
        (void)key;
#endif
    }

    iterator
    find(const K &key)
    {
        const size_t i = findIndex(key);
        return i != kNone
            ? iterator(slots.get() + i, slotsEnd(), full.get() + i)
            : end();
    }

    const_iterator
    find(const K &key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    bool
    contains(const K &key) const
    {
        return const_cast<FlatMap *>(this)->findIndex(key) != kNone;
    }

    size_t count(const K &key) const { return contains(key) ? 1 : 0; }

    V &
    at(const K &key)
    {
        const size_t i = findIndex(key);
        assert(i != kNone && "FlatMap::at: key not present");
        return slots[i].second;
    }

    const V &
    at(const K &key) const
    {
        return const_cast<FlatMap *>(this)->at(key);
    }

    V &
    operator[](const K &key)
    {
        return slots[tryEmplaceIndex(key)].second;
    }

    template <typename... Args>
    std::pair<iterator, bool>
    try_emplace(const K &key, Args &&...args)
    {
        const size_t before = size_;
        const size_t i = tryEmplaceIndex(key, std::forward<Args>(args)...);
        return {iterator(slots.get() + i, slotsEnd(), full.get() + i),
                size_ != before};
    }

    std::pair<iterator, bool>
    emplace(const K &key, V value)
    {
        return try_emplace(key, std::move(value));
    }

    std::pair<iterator, bool>
    insert(value_type kv)
    {
        return try_emplace(kv.first, std::move(kv.second));
    }

    size_t
    erase(const K &key)
    {
        const size_t i = findIndex(key);
        if (i == kNone)
            return 0;
        eraseIndex(i);
        return 1;
    }

    /**
     * Erase the pointed-to entry. The returned iterator re-examines
     * the erased slot, because the backward shift may have relocated
     * a not-yet-visited entry into it.
     */
    iterator
    erase(iterator it)
    {
        const size_t i = static_cast<size_t>(it.p - slots.get());
        assert(i < cap && full[i]);
        eraseIndex(i);
        it.skip();
        return it;
    }

  private:
    static constexpr size_t kNone = static_cast<size_t>(-1);

    static size_t
    capacityFor(size_t entries)
    {
        // smallest power of two keeping load (incl. headroom) <= 0.7
        size_t want = 16;
        while (entries * 10 > want * 7)
            want <<= 1;
        return want;
    }

    value_type *slotsEnd() const { return slots.get() + cap; }

    size_t
    findIndex(const K &key)
    {
        if (!cap)
            return kNone;
        const size_t mask = cap - 1;
        size_t i = Hash{}(key) & mask;
        for (;;) {
            if (!full[i])
                return kNone;
            if (slots[i].first == key)
                return i;
            i = (i + 1) & mask;
        }
    }

    /** Insert @p key into a table known not to contain it (rehash). */
    value_type *
    insertFresh(const K &key)
    {
        const size_t mask = cap - 1;
        size_t i = Hash{}(key) & mask;
        while (full[i])
            i = (i + 1) & mask;
        full[i] = 1;
        slots[i].first = key;
        ++size_;
        return &slots[i];
    }

    template <typename... Args>
    size_t
    tryEmplaceIndex(const K &key, Args &&...args)
    {
        // probe before any growth: looking up a present key must never
        // rehash (references stay valid unless an actual insert grows)
        if (cap) {
            const size_t mask = cap - 1;
            size_t i = Hash{}(key) & mask;
            while (full[i]) {
                if (slots[i].first == key)
                    return i;
                i = (i + 1) & mask;
            }
            if ((size_ + 1) * 10 <= cap * 7) {
                full[i] = 1;
                slots[i].first = key;
                slots[i].second = V(std::forward<Args>(args)...);
                ++size_;
                return i;
            }
        }
        grow();
        // key known absent; claim the first free probe slot
        const size_t mask = cap - 1;
        size_t i = Hash{}(key) & mask;
        while (full[i])
            i = (i + 1) & mask;
        full[i] = 1;
        slots[i].first = key;
        slots[i].second = V(std::forward<Args>(args)...);
        ++size_;
        return i;
    }

    /**
     * Backward-shift deletion: close the hole by sliding back every
     * subsequent cluster entry whose probe path covers it, so probe
     * chains stay tombstone-free no matter how heavy the churn.
     */
    void
    eraseIndex(size_t hole)
    {
        const size_t mask = cap - 1;
        size_t i = hole;
        for (;;) {
            i = (i + 1) & mask;
            if (!full[i])
                break;
            const size_t ideal = Hash{}(slots[i].first) & mask;
            // slots[i] may move back iff the hole lies on its probe
            // path, i.e. within (ideal .. i) cyclically
            if (((i - ideal) & mask) >= ((i - hole) & mask)) {
                slots[hole] = std::move(slots[i]);
                hole = i;
            }
        }
        slots[hole].second = V();  // drop held resources eagerly
        full[hole] = 0;
        --size_;
    }

    void
    grow()
    {
        rehash(capacityFor(size_ + 1));
    }

    void
    rehash(size_t newCap)
    {
        HugeArray<value_type> oldSlots = std::move(slots);
        HugeArray<uint8_t> oldFull = std::move(full);
        const size_t oldCap = cap;
        slots.reset(newCap);
        full.reset(newCap);
        cap = newCap;
        size_ = 0;
        for (size_t i = 0; i < oldCap; ++i) {
            if (oldFull[i])
                insertFresh(oldSlots[i].first)->second =
                    std::move(oldSlots[i].second);
        }
    }

    HugeArray<value_type> slots;
    HugeArray<uint8_t> full;
    size_t cap = 0;
    size_t size_ = 0;
};

} // namespace stems::util

#endif // STEMS_UTIL_FLAT_MAP_HH
