/**
 * @file
 * Fixed-capacity containers for the timing model's per-reference
 * loop: a ring buffer (ROB window, store buffer) and a binary min-heap
 * (MSHR completion times). Both are sized once from CoreConfig and
 * never allocate afterwards, replacing the std::deque / std::multiset
 * structures whose node churn dominated the phase-2 core model.
 */

#ifndef STEMS_UTIL_RING_HH
#define STEMS_UTIL_RING_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace stems::util {

/**
 * FIFO ring buffer over a power-of-two array. Capacity is fixed at
 * construction; pushing past it is a programming error (the callers
 * bound occupancy by robEntries / storeBuffer before pushing).
 */
template <typename T>
class FixedRing
{
  public:
    explicit FixedRing(size_t capacity)
    {
        size_t cap = 2;
        while (cap < capacity + 1)
            cap <<= 1;
        buf.resize(cap);
        mask = cap - 1;
    }

    bool empty() const { return head == tail; }
    size_t size() const { return (tail - head) & mask; }

    T &front() { assert(!empty()); return buf[head]; }
    const T &front() const { assert(!empty()); return buf[head]; }
    T &back() { assert(!empty()); return buf[(tail - 1) & mask]; }
    const T &back() const
    {
        assert(!empty());
        return buf[(tail - 1) & mask];
    }

    void
    push_back(T v)
    {
        // the ring distinguishes full from empty by one spare slot, so
        // at most `mask` entries may be resident before a push
        assert(size() < mask && "FixedRing overflow");
        buf[tail] = std::move(v);
        tail = (tail + 1) & mask;
    }

    void
    pop_front()
    {
        assert(!empty());
        head = (head + 1) & mask;
    }

    void
    clear()
    {
        head = tail = 0;
    }

  private:
    std::vector<T> buf;
    size_t mask = 0;
    size_t head = 0;
    size_t tail = 0;
};

/**
 * Binary min-heap over a preallocated array. Replaces a
 * std::multiset used only for smallest-element access: push, top and
 * pop-min, with identical value semantics (duplicates permitted).
 */
template <typename T>
class FixedMinHeap
{
  public:
    explicit FixedMinHeap(size_t capacity) { buf.reserve(capacity + 1); }

    bool empty() const { return buf.empty(); }
    size_t size() const { return buf.size(); }

    const T &top() const { assert(!empty()); return buf[0]; }

    void
    push(T v)
    {
        buf.push_back(std::move(v));
        size_t i = buf.size() - 1;
        while (i > 0) {
            size_t parent = (i - 1) / 2;
            if (!(buf[i] < buf[parent]))
                break;
            std::swap(buf[i], buf[parent]);
            i = parent;
        }
    }

    void
    pop()
    {
        assert(!empty());
        buf[0] = std::move(buf.back());
        buf.pop_back();
        size_t i = 0;
        const size_t n = buf.size();
        for (;;) {
            size_t smallest = i;
            const size_t l = 2 * i + 1, r = 2 * i + 2;
            if (l < n && buf[l] < buf[smallest])
                smallest = l;
            if (r < n && buf[r] < buf[smallest])
                smallest = r;
            if (smallest == i)
                break;
            std::swap(buf[i], buf[smallest]);
            i = smallest;
        }
    }

    void clear() { buf.clear(); }

  private:
    std::vector<T> buf;
};

} // namespace stems::util

#endif // STEMS_UTIL_RING_HH
