#include "serve/daemon.hh"

#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>

#include "dispatch/coordinator.hh"
#include "driver/options.hh"
#include "driver/report.hh"
#include "obs/obs.hh"
#include "serve/proto.hh"
#include "serve/socket.hh"

namespace stems::serve {

Daemon::Daemon(Config config)
    : cfg(std::move(config)), service(cfg.service)
{
    std::signal(SIGPIPE, SIG_IGN);
    listenFd = listenOn(cfg.listen);
    if (!cfg.quiet)
        std::cerr << "stems serve: listening on " << cfg.listen
                  << " (fleet=" << cfg.service.fleet
                  << " max-active=" << cfg.service.maxActive
                  << " max-queue=" << cfg.service.maxQueued << ")\n";
    acceptor = std::thread([this] { acceptLoop(); });
}

Daemon::~Daemon()
{
    stop();
}

void
Daemon::stop()
{
    {
        std::lock_guard<std::mutex> lk(connMu);
        if (stopped)
            return;
        stopped = true;
    }
    // shutdown() unblocks a blocked accept() even where close() alone
    // would not
    ::shutdown(listenFd, SHUT_RDWR);
    ::close(listenFd);
    if (acceptor.joinable())
        acceptor.join();
    // drain in-flight requests before stopping the fleet, so a
    // graceful shutdown never fails a request it already admitted
    std::vector<std::thread> drain;
    {
        std::lock_guard<std::mutex> lk(connMu);
        drain.swap(connections);
    }
    for (auto &t : drain)
        t.join();
    service.stop();
}

void
Daemon::acceptLoop()
{
    obs::setThreadName("serve-accept");
    for (;;) {
        const int fd = acceptOn(listenFd);
        if (fd < 0)
            return;  // listener closed: shutting down
        std::lock_guard<std::mutex> lk(connMu);
        if (stopped) {
            ::close(fd);
            return;
        }
        connections.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
}

void
Daemon::serveConnection(int fd)
{
    obs::setThreadName("serve-conn");
    dispatch::FrameDecoder decoder;

    // the versioned handshake gates everything: a peer speaking a
    // different protocol (or an oversized/hostile first frame) gets
    // one clean error frame, never a partial request
    Hello peer;
    std::string err;
    if (!readHello(fd, decoder, "client", peer, err)) {
        if (!cfg.quiet)
            std::cerr << "stems serve: rejected connection: " << err
                      << "\n";
        sendFrame(fd, encodeError(err));
        ::close(fd);
        return;
    }
    if (!sendFrame(fd, encodeHello("serve"))) {
        ::close(fd);
        return;
    }

    std::string payload;
    std::vector<std::string> tokens;
    try {
        if (!recvFrame(fd, decoder, payload)) {
            ::close(fd);
            return;  // client went away before submitting
        }
        const dispatch::JsonValue msg = dispatch::parseJson(payload);
        if (dispatch::messageType(msg) != "submit")
            throw std::invalid_argument(
                "expected submit, got \"" +
                dispatch::messageType(msg) + "\"");
        tokens = decodeSubmit(msg);
    } catch (const std::exception &e) {
        sendFrame(fd, encodeError(e.what()));
        ::close(fd);
        return;
    }

    const ExperimentService::Outcome outcome = service.submit(
        tokens,
        [fd](uint64_t id) { sendFrame(fd, encodeAdmitted(id)); });
    using Status = ExperimentService::Outcome::Status;
    switch (outcome.status) {
    case Status::Done:
        sendFrame(fd, encodeReport(outcome));
        break;
    case Status::Rejected:
        sendFrame(fd, encodeRejected(outcome.reason));
        break;
    default:
        sendFrame(fd, encodeError(outcome.reason));
        break;
    }
    ::close(fd);
}

namespace {

/** Self-pipe signal delivery: handlers only write a byte. */
int gStopPipe[2] = {-1, -1};

void
onStopSignal(int)
{
    const char byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(gStopPipe[1], &byte, 1);
}

} // anonymous namespace

int
cmdServe(const std::vector<std::string> &args)
{
    // the cmdRun --key sugar, so `stems serve --listen=...` works
    std::vector<std::string> tokens;
    for (const auto &arg : args) {
        if (arg.rfind("--", 0) == 0)
            tokens.push_back(arg.find('=') != std::string::npos
                                 ? arg.substr(2)
                                 : arg.substr(2) + "=1");
        else
            tokens.push_back(arg);
    }

    Daemon::Config cfg;
    std::string traceOut;
    std::string telemetryOut;
    try {
        for (const auto &tok : tokens) {
            const auto [key, value] = driver::parseKeyValue(tok);
            if (key == "listen")
                cfg.listen = value;
            else if (key == "fleet")
                cfg.service.fleet = static_cast<uint32_t>(
                    std::stoul(value));
            else if (key == "max-active")
                cfg.service.maxActive = static_cast<uint32_t>(
                    std::stoul(value));
            else if (key == "max-queue")
                cfg.service.maxQueued = static_cast<uint32_t>(
                    std::stoul(value));
            else if (key == "journal-dir")
                cfg.service.journalDir = value;
            else if (key == "trace-dir")
                cfg.service.traceDir = value;
            else if (key == "steal")
                cfg.service.steal = value != "0";
            else if (key == "pipeline")
                cfg.service.pipeline = value != "0";
            else if (key == "quiet")
                cfg.quiet = value != "0";
            else if (key == "trace-out")
                traceOut = value;
            else if (key == "telemetry-out")
                telemetryOut = value;
            else
                throw std::invalid_argument(
                    "unknown serve key \"" + key + "\"");
        }
        if (cfg.listen.empty())
            throw std::invalid_argument(
                "stems serve needs listen=ADDR (unix:/path or "
                "host:port)");
        if (cfg.service.maxActive == 0)
            throw std::invalid_argument(
                "max-active must be positive");
    } catch (const std::exception &e) {
        std::cerr << "stems serve: " << e.what() << "\n";
        return 2;
    }

    if (!traceOut.empty()) {
        obs::Recorder::get().enable();
        obs::setThreadName("serve-main");
    }

    if (::pipe(gStopPipe) != 0) {
        std::cerr << "stems serve: pipe failed: "
                  << std::strerror(errno) << "\n";
        return 1;
    }
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);

    const bool quiet = cfg.quiet;
    const auto startedAt = std::chrono::steady_clock::now();
    try {
        Daemon daemon(std::move(cfg));
        // block until a stop signal lands
        char byte;
        while (::read(gStopPipe[0], &byte, 1) < 0 && errno == EINTR) {
        }
        if (!quiet)
            std::cerr << "stems serve: shutting down\n";
        daemon.stop();
    } catch (const std::exception &e) {
        std::cerr << "stems serve: " << e.what() << "\n";
        return 1;
    }

    // lifetime artifacts: same formats as stems run, so check_trace
    // and stems analyze consume them unchanged
    const double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - startedAt)
            .count();
    if (!traceOut.empty())
        driver::writeReport(traceOut,
                            obs::Recorder::get().chromeJson());
    if (!telemetryOut.empty())
        driver::writeReport(telemetryOut,
                            dispatch::telemetryJson(wallMs, {}));
    return 0;
}

} // namespace stems::serve
