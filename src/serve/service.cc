#include "serve/service.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <unistd.h>

#include "dispatch/journal.hh"
#include "driver/costmodel.hh"
#include "driver/report.hh"
#include "obs/counters.hh"
#include "obs/obs.hh"

namespace stems::serve {

namespace fs = std::filesystem;

/** One submission's full lifetime: queued → active → done. */
struct ExperimentService::Request
{
    uint64_t id = 0;
    driver::ExperimentSpec spec;
    std::vector<driver::RunCell> cells;
    std::vector<size_t> order;    //!< schedule order (spec-driven)
    size_t nextSlot = 0;          //!< first unclaimed schedule slot
    std::vector<driver::CellResult> results;  //!< by expansion index
    std::vector<char> claimed;    //!< by expansion index
    std::vector<char> completed;
    std::vector<char> stolenOnce; //!< at most one duplicate per cell
    size_t done = 0;
    uint64_t stolenCells = 0;
    driver::CellExecutor *executor = nullptr;

    dispatch::RunJournal journal;
    std::mutex journalMu;         //!< serializes appends off the lock
    std::string journalFile;
    uint64_t replayed = 0;

    bool activeNow = false;
    uint64_t enqueuedNs = 0;
    uint64_t activatedNs = 0;
    double queueMs = 0;
    std::string failure;          //!< "service stopped" style abort
};

ExperimentService::ExperimentService(Config config)
    : cfg(std::move(config))
{
    if (cfg.traceDir.empty()) {
        // one shared spill dir for every executor: a workload's trace
        // is generated once per daemon lifetime, not once per request
        std::string tmpl = fs::temp_directory_path() /
                           "stems-serve-XXXXXX";
        if (::mkdtemp(tmpl.data()) != nullptr) {
            ownedTraceDir = tmpl;
            cfg.traceDir = tmpl;
        }
    }
    if (!cfg.journalDir.empty()) {
        std::error_code ec;
        fs::create_directories(cfg.journalDir, ec);
    }

    uint32_t n = cfg.fleet;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    cfg.fleet = n;
    for (uint32_t k = 0; k < n; ++k)
        fleet.emplace_back([this, k] { fleetLoop(k); });
    if (cfg.pipeline)
        prefetcher = std::thread([this] { prefetchLoop(); });
}

ExperimentService::~ExperimentService()
{
    stop();
    if (!ownedTraceDir.empty()) {
        std::error_code ec;
        fs::remove_all(ownedTraceDir, ec);
    }
}

size_t
ExperimentService::activeRequests() const
{
    std::lock_guard<std::mutex> lk(mu);
    return active.size();
}

driver::CellExecutor &
ExperimentService::executorLocked(const driver::ExperimentSpec &spec)
{
    driver::CellExecutor::Config ecfg = driver::executorConfig(spec);
    ecfg.traceDir = cfg.traceDir;
    std::string key;
    for (uint32_t s : ecfg.oracleRegionSizes) {
        key += std::to_string(s);
        key += ',';
    }
    auto it = executors.find(key);
    if (it == executors.end())
        it = executors
                 .emplace(key, std::make_unique<driver::CellExecutor>(
                                   std::move(ecfg)))
                 .first;
    return *it->second;
}

void
ExperimentService::activateLocked()
{
    while (!stopping && !queued.empty() &&
           active.size() < cfg.maxActive) {
        std::shared_ptr<Request> req = queued.front();
        queued.pop_front();
        req->activeNow = true;
        req->activatedNs = obs::monotonicNs();
        req->queueMs =
            static_cast<double>(req->activatedNs - req->enqueuedNs) /
            1e6;
        obs::count(&obs::Counters::serveRequestsAdmitted);

        // warm restart: splice this spec's surviving journal before
        // any cell is claimed (resume-style open creates the file
        // fresh when there is nothing to replay)
        if (!cfg.journalDir.empty()) {
            const uint64_t fp = dispatch::specFingerprint(req->cells);
            char hex[24];
            std::snprintf(hex, sizeof(hex), "%016llx",
                          static_cast<unsigned long long>(fp));
            req->journalFile =
                cfg.journalDir + "/req-" + hex + ".journal";
            try {
                req->journal.open(req->journalFile, fp,
                                  req->cells.size(), true);
            } catch (const std::exception &e) {
                std::cerr << "stems serve: journal disabled for "
                             "request "
                          << req->id << ": " << e.what() << "\n";
            }
            for (size_t i = 0; i < req->cells.size(); ++i) {
                const auto it =
                    req->journal.replayed().find(req->cells[i].id);
                if (it == req->journal.replayed().end())
                    continue;
                driver::CellResult r;
                r.cell = req->cells[i];
                r.metrics = it->second.metrics;
                r.telemetry = it->second.telemetry;
                req->results[i] = std::move(r);
                req->claimed[i] = 1;
                req->completed[i] = 1;
                ++req->done;
                ++req->replayed;
            }
        }

        // warm-cache visibility: cells whose trace is already built
        // (a prior request generated or mapped it) are warm hits
        for (size_t i = 0; i < req->cells.size(); ++i)
            if (!req->completed[i] &&
                req->executor->prepared(req->cells[i]))
                obs::count(&obs::Counters::serveCacheWarmHits);

        active.push_back(std::move(req));
    }
}

bool
ExperimentService::claimableLocked() const
{
    for (const auto &req : active) {
        size_t slot = req->nextSlot;
        while (slot < req->order.size() &&
               req->claimed[req->order[slot]])
            ++slot;
        if (slot < req->order.size())
            return true;
    }
    if (cfg.steal)
        for (const auto &req : active)
            for (size_t i = 0; i < req->cells.size(); ++i)
                if (req->claimed[i] && !req->completed[i] &&
                    !req->stolenOnce[i])
                    return true;
    return false;
}

void
ExperimentService::fleetLoop(uint32_t index)
{
    obs::setThreadName("serve-" + std::to_string(index));
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        workCv.wait(lk, [this] {
            return stopping || claimableLocked();
        });
        if (stopping)
            return;

        // claim the first unclaimed cell (schedule order) of the
        // earliest-admitted active request
        std::shared_ptr<Request> req;
        size_t idx = 0;
        bool isStolen = false;
        for (const auto &r : active) {
            while (r->nextSlot < r->order.size() &&
                   r->claimed[r->order[r->nextSlot]])
                ++r->nextSlot;
            if (r->nextSlot < r->order.size()) {
                req = r;
                idx = r->order[r->nextSlot];
                ++r->nextSlot;
                break;
            }
        }
        if (!req && cfg.steal) {
            // nothing unclaimed anywhere: duplicate a straggler from
            // the in-flight request with the most work remaining
            // (its tail is the service's critical path)
            std::shared_ptr<Request> victim;
            size_t remaining = 0;
            for (const auto &r : active) {
                const size_t rem = r->cells.size() - r->done;
                bool stealable = false;
                for (size_t i = 0; i < r->cells.size(); ++i)
                    if (r->claimed[i] && !r->completed[i] &&
                        !r->stolenOnce[i]) {
                        stealable = true;
                        break;
                    }
                if (stealable && rem > remaining) {
                    victim = r;
                    remaining = rem;
                }
            }
            if (victim) {
                for (size_t k = 0; k < victim->order.size(); ++k) {
                    const size_t i = victim->order[k];
                    if (victim->claimed[i] && !victim->completed[i] &&
                        !victim->stolenOnce[i]) {
                        req = victim;
                        idx = i;
                        isStolen = true;
                        victim->stolenOnce[i] = 1;
                        ++victim->stolenCells;
                        obs::count(&obs::Counters::cellsStolen);
                        break;
                    }
                }
            }
        }
        if (!req)
            continue;  // raced another thread; re-evaluate
        if (!isStolen)
            req->claimed[idx] = 1;

        // pipeline hint: the request's next unclaimed cell warms in
        // the background while this one simulates
        if (cfg.pipeline) {
            size_t slot = req->nextSlot;
            while (slot < req->order.size() &&
                   req->claimed[req->order[slot]])
                ++slot;
            if (slot < req->order.size()) {
                std::lock_guard<std::mutex> plk(prefetchMu);
                if (prefetchQueue.size() < 8)
                    prefetchQueue.emplace_back(
                        req->executor, req->cells[req->order[slot]]);
                prefetchCv.notify_one();
            }
        }

        lk.unlock();
        driver::CellResult result;
        {
            const driver::RunCell &cell = req->cells[idx];
            obs::Span span(
                isStolen ? "steal" : "serve_cell",
                {{"request", std::to_string(req->id)},
                 {"cell", std::to_string(cell.id)},
                 {"workload", cell.workload},
                 {"engine", cell.engine.kind}});
            result = req->executor->execute(cell);
        }
        lk.lock();

        // first result wins — the executor is deterministic, so when
        // a stolen copy loses the race nothing observable changes
        if (!req->completed[idx]) {
            req->completed[idx] = 1;
            req->results[idx] = std::move(result);
            const bool needAppend = req->journal.isOpen();
            if (needAppend) {
                // append outside the service lock; completed slots
                // are never rewritten, so reading results[idx]
                // unlocked is safe
                lk.unlock();
                {
                    std::lock_guard<std::mutex> jlk(req->journalMu);
                    req->journal.append(req->results[idx]);
                }
                lk.lock();
            }
            ++req->done;
            if (req->done == req->cells.size())
                stateCv.notify_all();
            workCv.notify_all();  // the steal frontier moved
        }
    }
}

void
ExperimentService::prefetchLoop()
{
    obs::setThreadName("serve-prefetch");
    std::unique_lock<std::mutex> lk(prefetchMu);
    for (;;) {
        prefetchCv.wait(lk, [this] {
            return stopping || !prefetchQueue.empty();
        });
        if (stopping && prefetchQueue.empty())
            return;
        auto [executor, cell] = std::move(prefetchQueue.front());
        prefetchQueue.pop_front();
        lk.unlock();
        executor->prefetch(cell);
        lk.lock();
        if (stopping)
            return;
    }
}

ExperimentService::Outcome
ExperimentService::submit(
    const std::vector<std::string> &tokens,
    const std::function<void(uint64_t)> &onAdmitted)
{
    Outcome out;

    std::shared_ptr<Request> req = std::make_shared<Request>();
    try {
        req->spec = driver::parseSpec(tokens);
        // mirror cmdRun's defaulting so report bytes cannot depend
        // on which side applied it
        if (req->spec.jsonPath.empty() && req->spec.csvPath.empty() &&
            !req->spec.table)
            req->spec.jsonPath = "-";
        req->cells = driver::selectedCells(req->spec);
        req->order = driver::scheduleOrder(req->spec, req->cells);
    } catch (const std::exception &e) {
        out.status = Outcome::Status::Error;
        out.reason = e.what();
        return out;
    }
    if (req->cells.empty()) {
        out.status = Outcome::Status::Error;
        out.reason = "spec selects no cells";
        return out;
    }
    req->results.resize(req->cells.size());
    req->claimed.assign(req->cells.size(), 0);
    req->completed.assign(req->cells.size(), 0);
    req->stolenOnce.assign(req->cells.size(), 0);

    {
        std::unique_lock<std::mutex> lk(mu);
        if (stopping) {
            out.status = Outcome::Status::Error;
            out.reason = "service stopped";
            return out;
        }
        if (active.size() >= cfg.maxActive &&
            queued.size() >= cfg.maxQueued) {
            obs::count(&obs::Counters::serveRequestsRejected);
            out.status = Outcome::Status::Rejected;
            out.reason = "admission queue full (" +
                         std::to_string(active.size()) + " active, " +
                         std::to_string(queued.size()) +
                         " queued; max-active=" +
                         std::to_string(cfg.maxActive) +
                         " max-queue=" +
                         std::to_string(cfg.maxQueued) + ")";
            return out;
        }
        req->id = ++nextId;
        req->executor = &executorLocked(req->spec);
        req->enqueuedNs = obs::monotonicNs();
        if (active.size() >= cfg.maxActive)
            obs::count(&obs::Counters::serveRequestsQueued);
        queued.push_back(req);
        activateLocked();
        workCv.notify_all();
        stateCv.wait(lk, [&] {
            return req->activeNow || !req->failure.empty();
        });
        if (onAdmitted && req->failure.empty()) {
            lk.unlock();
            onAdmitted(req->id);
            lk.lock();
        }
        stateCv.wait(lk, [&] {
            return req->done == req->cells.size() ||
                   !req->failure.empty();
        });
        if (!req->failure.empty()) {
            out.status = Outcome::Status::Error;
            out.reason = req->failure;
            out.id = req->id;
            return out;
        }
        active.erase(
            std::remove(active.begin(), active.end(), req),
            active.end());
        activateLocked();
        workCv.notify_all();
    }

    // the request span covers activation → completion; queue_ms is
    // the admission wait (stems analyze attributes both)
    if (obs::Recorder::get().enabled()) {
        obs::Event e;
        e.name = "serve_request";
        e.phase = 'X';
        e.tsNs = req->activatedNs;
        e.durNs = obs::monotonicNs() - req->activatedNs;
        e.args = {{"request", std::to_string(req->id)},
                  {"queue_ms", std::to_string(req->queueMs)},
                  {"cells", std::to_string(req->cells.size())},
                  {"stolen", std::to_string(req->stolenCells)},
                  {"replayed", std::to_string(req->replayed)}};
        obs::Recorder::get().record(std::move(e));
    }

    // the report is durable once built; drop the journal so a future
    // identical submission starts clean
    req->journal.close();
    if (!req->journalFile.empty()) {
        std::error_code ec;
        fs::remove(req->journalFile, ec);
    }

    out.status = Outcome::Status::Done;
    out.id = req->id;
    out.replayed = req->replayed;
    out.stolen = req->stolenCells;
    for (const auto &r : req->results)
        if (!r.error.empty())
            ++out.failed;
    // the same sinks stems run would write, built from the same spec
    // and the same ordered results — byte-identity by construction
    if (!req->spec.jsonPath.empty())
        out.json = driver::toJson(req->spec, req->results);
    if (!req->spec.csvPath.empty())
        out.csv = driver::toCsv(req->spec, req->results);
    if (req->spec.table)
        out.table = driver::toTable(req->spec, req->results);
    return out;
}

void
ExperimentService::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        if (stopping)
            return;
        stopping = true;
        for (const auto &req : queued)
            req->failure = "service stopped";
        for (const auto &req : active)
            req->failure = "service stopped";
        queued.clear();
    }
    workCv.notify_all();
    stateCv.notify_all();
    {
        std::lock_guard<std::mutex> plk(prefetchMu);
        prefetchCv.notify_all();
    }
    for (auto &t : fleet)
        t.join();
    fleet.clear();
    if (prefetcher.joinable())
        prefetcher.join();
}

} // namespace stems::serve
