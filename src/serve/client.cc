#include "serve/client.hh"

#include <csignal>
#include <iostream>
#include <stdexcept>
#include <unistd.h>

#include "driver/options.hh"
#include "driver/report.hh"
#include "serve/proto.hh"
#include "serve/socket.hh"

namespace stems::serve {

ExperimentService::Outcome
submitToServer(const std::string &server,
               const std::vector<std::string> &tokens,
               uint32_t connectTimeoutMs)
{
    std::signal(SIGPIPE, SIG_IGN);
    const int fd = connectTo(server, connectTimeoutMs);
    dispatch::FrameDecoder decoder;
    try {
        if (!sendFrame(fd, encodeHello("client")))
            throw std::runtime_error(
                "serve: daemon closed during hello");
        Hello peer;
        std::string err;
        if (!readHello(fd, decoder, "serve", peer, err))
            throw std::runtime_error("serve: " + err);
        if (!sendFrame(fd, encodeSubmit(tokens)))
            throw std::runtime_error(
                "serve: daemon closed during submit");

        std::string payload;
        for (;;) {
            if (!recvFrame(fd, decoder, payload))
                throw std::runtime_error(
                    "serve: daemon closed before replying "
                    "(crashed mid-request?)");
            const ExperimentService::Outcome outcome =
                decodeResponse(dispatch::parseJson(payload));
            if (outcome.status !=
                ExperimentService::Outcome::Status::Admitted) {
                ::close(fd);
                return outcome;
            }
        }
    } catch (...) {
        ::close(fd);
        throw;
    }
}

int
cmdSubmit(const std::vector<std::string> &args)
{
    // the cmdRun --key sugar, then peel off the client-only server=
    // key; everything else ships to the daemon untouched
    std::string server;
    std::vector<std::string> tokens;
    for (const auto &arg : args) {
        std::string tok = arg;
        if (tok.rfind("--", 0) == 0)
            tok = tok.find('=') != std::string::npos
                      ? tok.substr(2)
                      : tok.substr(2) + "=1";
        if (tok.rfind("server=", 0) == 0) {
            server = tok.substr(7);
            continue;
        }
        tokens.push_back(std::move(tok));
    }
    if (server.empty()) {
        std::cerr << "stems submit: needs server=ADDR "
                     "(unix:/path or host:port)\n";
        return 2;
    }

    // parse locally first: a bad spec fails here with the usual
    // message, and the sink paths below come from the same parse the
    // daemon will do
    driver::ExperimentSpec spec;
    try {
        spec = driver::parseSpec(tokens);
    } catch (const std::exception &e) {
        std::cerr << "stems submit: " << e.what() << "\n";
        return 2;
    }
    if (spec.jsonPath.empty() && spec.csvPath.empty() && !spec.table)
        spec.jsonPath = "-";

    ExperimentService::Outcome outcome;
    try {
        outcome = submitToServer(server, tokens);
    } catch (const std::exception &e) {
        std::cerr << "stems submit: " << e.what() << "\n";
        return 2;
    }

    using Status = ExperimentService::Outcome::Status;
    if (outcome.status == Status::Rejected) {
        std::cerr << "stems submit: rejected: " << outcome.reason
                  << "\n";
        return 3;
    }
    if (outcome.status != Status::Done) {
        std::cerr << "stems submit: " << outcome.reason << "\n";
        return 2;
    }

    // the daemon's sink texts, written verbatim where stems run
    // would have written them
    if (!spec.jsonPath.empty())
        driver::writeReport(spec.jsonPath, outcome.json);
    if (!spec.csvPath.empty())
        driver::writeReport(spec.csvPath, outcome.csv);
    if (spec.table) {
        // keep stdout clean for machine-readable sinks
        if (spec.jsonPath == "-" || spec.csvPath == "-")
            std::cerr << outcome.table;
        else
            std::cout << outcome.table;
    }
    if (!spec.quiet) {
        std::cerr << "stems submit: request " << outcome.id
                  << " done";
        if (outcome.replayed)
            std::cerr << " (" << outcome.replayed
                      << " cells replayed from journal)";
        if (outcome.stolen)
            std::cerr << " (" << outcome.stolen << " cells stolen)";
        std::cerr << "\n";
    }
    return outcome.failed ? 1 : 0;
}

} // namespace stems::serve
