/**
 * @file
 * ExperimentService: the long-lived heart of `stems serve`. One
 * process-resident fleet of executor threads serves spec submissions
 * for as long as the daemon lives, with everything a batch run would
 * have to rebuild kept warm between requests:
 *
 *  - Shared executors. Requests with the same oracle-region config
 *    share one driver::CellExecutor — its TraceCache, baseline memos
 *    and timing memos survive across requests, so resubmitting a spec
 *    (or submitting a sibling that shares workloads) skips trace
 *    generation and baseline passes entirely. Warm reuse is visible
 *    as serve_cache_warm_hits (cells whose trace was already
 *    prepared at admission time). All executors share one spill dir.
 *
 *  - Admission queuing. At most maxActive requests execute at once;
 *    up to maxQueued more wait FIFO; beyond that submissions are
 *    rejected immediately with a reason (bounded backlog — a burst
 *    degrades to fast rejections, never to an unbounded queue).
 *    Within a request cells run in driver::scheduleOrder (FIFO or
 *    schedule=cost LPT ordering from the spec).
 *
 *  - Work stealing. An idle fleet thread with no unclaimed cell
 *    duplicates a claimed-but-unfinished cell from the in-flight
 *    request with the most work remaining (first result wins, at
 *    most one copy per cell) — the serve-side analogue of
 *    dispatch-speculate, reusing the executor's determinism: both
 *    copies compute identical results, so report bytes cannot depend
 *    on who wins.
 *
 *  - Per-request journals. With journalDir set, each request appends
 *    to a crash-safe journal named by its spec fingerprint; a killed
 *    daemon warm-restarts by replaying completed cells through the
 *    existing resume splice when the same spec is resubmitted. The
 *    journal is deleted once its report has been built.
 *
 *  - Pipelining. A background thread warms the next scheduled cell's
 *    trace (CellExecutor::prefetch) while fleet threads simulate,
 *    mirroring the runner's stream=1 discipline.
 *
 * Reports are built with the same driver::toJson/toCsv/toTable the
 * CLI uses, on the spec parsed from the submitted tokens — so a
 * report fetched through `stems submit` is byte-identical to
 * `stems run` on the same spec, whatever mix of stealing, warm
 * caches and journal replay produced the results.
 *
 * Execution-policy keys in a submitted spec (dispatch=, workers=,
 * journal=, fault-plan=, stream=, threads=) are ignored: the daemon
 * owns its fleet shape and durability. Output-path keys are honoured
 * client-side.
 */

#ifndef STEMS_SERVE_SERVICE_HH
#define STEMS_SERVE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "driver/executor.hh"
#include "driver/spec.hh"

namespace stems::serve {

class ExperimentService
{
  public:
    struct Config
    {
        uint32_t fleet = 0;      //!< executor threads (0 = all cores)
        uint32_t maxActive = 2;  //!< concurrently executing requests
        uint32_t maxQueued = 8;  //!< waiting requests before rejection
        std::string journalDir;  //!< per-request journals ("" = off)
        std::string traceDir;    //!< shared spill dir ("" = temp dir)
        bool steal = true;       //!< idle-thread cell duplication
        bool pipeline = true;    //!< background trace prefetch
    };

    /** One submission's outcome, shipped back over the wire. */
    struct Outcome
    {
        enum class Status
        {
            Done,      //!< report built (individual cells may error)
            Rejected,  //!< admission queue full — reason says so
            Error,     //!< bad spec or service shutdown
            Admitted   //!< wire-only interim ack (id assigned)
        };
        Status status = Status::Error;
        std::string reason;  //!< rejection/error detail
        std::string json;    //!< report texts ("" = sink not requested)
        std::string csv;
        std::string table;
        uint32_t failed = 0;     //!< cells that ended with an error
        uint64_t replayed = 0;   //!< cells spliced from a journal
        uint64_t stolen = 0;     //!< cells that ran as stolen copies
        uint64_t id = 0;         //!< request id (admission order)
    };

    explicit ExperimentService(Config config);
    ~ExperimentService();

    /**
     * Submit one experiment (the raw key=value tokens of a spec) and
     * block until its report is built, it is rejected, or the
     * service stops. Safe to call from many threads — that IS the
     * multi-client case.
     * @param onAdmitted invoked (on this thread, outside the service
     *        lock) with the request id once it leaves the queue and
     *        starts executing — the daemon's "admitted" ack
     */
    Outcome submit(const std::vector<std::string> &tokens,
                   const std::function<void(uint64_t)> &onAdmitted =
                       {});

    /** Requests currently executing (tests poll this). */
    size_t activeRequests() const;

    /**
     * Stop the fleet. Queued and in-flight requests fail with
     * "service stopped"; their journals survive for warm restart.
     */
    void stop();

  private:
    struct Request;

    driver::CellExecutor &executorLocked(
        const driver::ExperimentSpec &spec);
    void activateLocked();
    bool claimableLocked() const;
    void fleetLoop(uint32_t index);
    void prefetchLoop();

    Config cfg;
    std::string ownedTraceDir;  //!< temp spill dir we created

    mutable std::mutex mu;
    std::condition_variable workCv;   //!< fleet: work may exist
    std::condition_variable stateCv;  //!< submitters: request state
    /** Atomic: the prefetch loop reads it under its own mutex. */
    std::atomic<bool> stopping{false};
    uint64_t nextId = 0;
    std::deque<std::shared_ptr<Request>> queued;
    std::vector<std::shared_ptr<Request>> active;
    /** Executors keyed by oracle-region config, never evicted. */
    std::map<std::string, std::unique_ptr<driver::CellExecutor>>
        executors;

    std::mutex prefetchMu;
    std::condition_variable prefetchCv;
    std::deque<std::pair<driver::CellExecutor *, driver::RunCell>>
        prefetchQueue;

    std::vector<std::thread> fleet;
    std::thread prefetcher;
};

} // namespace stems::serve

#endif // STEMS_SERVE_SERVICE_HH
