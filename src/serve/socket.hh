/**
 * @file
 * Socket plumbing for the experiment service: Unix-domain and TCP
 * endpoints, counted framed IO on the dispatch wire format, and the
 * versioned hello handshake every serve-layer connection opens with.
 *
 * Endpoint syntax (everywhere an address is accepted):
 *   unix:/path/to.sock   Unix-domain stream socket
 *   host:port            TCP (resolved with getaddrinfo)
 *
 * Handshake: the connecting side writes a hello frame first —
 * `{"type":"hello","protocol":N,"role":"...","pid":P}` — and the
 * accepting side validates it before anything else rides the
 * connection: the protocol number must match dispatch::
 * kProtocolVersion exactly, the role must be the expected one, and
 * the frame must fit kHelloMaxBytes (a hostile length prefix cannot
 * make the acceptor buffer an arbitrary frame before version
 * agreement). On success the acceptor replies with its own hello;
 * on any violation it sends a best-effort error frame and closes.
 *
 * All bytes moved here count into the socket_bytes_sent/received
 * telemetry families (distinct from wire_bytes_*, which count the
 * dispatch protocol regardless of transport).
 */

#ifndef STEMS_SERVE_SOCKET_HH
#define STEMS_SERVE_SOCKET_HH

#include <cstdint>
#include <string>

#include "dispatch/wire.hh"

namespace stems::serve {

/** Hello frames larger than this are rejected before buffering. */
constexpr size_t kHelloMaxBytes = 4096;

/** A validated peer hello. */
struct Hello
{
    uint32_t protocol = 0;
    std::string role;
    int64_t pid = 0;
};

/**
 * Bind + listen on @p addr (`unix:/path` or `host:port`). A stale
 * Unix socket path is unlinked first. Throws std::runtime_error.
 */
int listenOn(const std::string &addr);

/** Blocking accept; returns -1 when the listener was closed. */
int acceptOn(int listenFd);

/**
 * Connect to @p addr, retrying every ~50 ms until @p deadlineMs (a
 * just-spawned listener needs a beat to bind). Throws on timeout.
 */
int connectTo(const std::string &addr, uint32_t deadlineMs = 5000);

/** Write one frame; false when the peer is gone. Counts bytes. */
bool sendFrame(int fd, const std::string &payload);

/** Blocking read of the next frame; false on EOF. Counts bytes. */
bool recvFrame(int fd, dispatch::FrameDecoder &decoder,
               std::string &out);

/** This side's hello frame payload. */
std::string encodeHello(const std::string &role);

/**
 * Read and validate the peer's hello — the first frame on a fresh
 * connection (pass the connection's decoder so trailing bytes are
 * kept for later frames).
 * @return false with @p err describing the violation: oversized
 *         frame, corrupt prefix, unparsable JSON, wrong message
 *         type, protocol mismatch, or unexpected role.
 */
bool readHello(int fd, dispatch::FrameDecoder &decoder,
               const std::string &expectRole, Hello &out,
               std::string &err);

/** `{"type":"error","message":...}` (also the daemon's NACK). */
std::string encodeError(const std::string &message);

} // namespace stems::serve

#endif // STEMS_SERVE_SOCKET_HH
