/**
 * @file
 * SocketTransport: the machine-list worker launcher behind the
 * dispatch::Transport seam. Where LocalProcessTransport forks
 * `stems worker` with stdin/stdout pipes, this transport connects to
 * worker endpoints (`workers=unix:/path,host:port,...`) that run
 * `stems worker --listen=ADDR` — processes the coordinator did not
 * fork — and hands the coordinator the same fd pair it gets from a
 * pipe worker. The dispatch protocol bytes on the socket are
 * identical to the pipe bytes; only the serve-layer hello handshake
 * precedes them.
 *
 * An optional spawn-command template (`spawn-cmd=`) launches each
 * worker on demand: the template runs under /bin/sh -c with `{addr}`
 * replaced by the endpoint (e.g. `exec stems worker --listen={addr}`,
 * or an ssh/container wrapper). The shell child's pid rides in
 * WorkerProcess.pid so the coordinator's reap/respawn machinery —
 * kill, waitpid, backoff, respawn budget — works unchanged; use
 * `exec` in the template so the signal reaches the worker itself.
 * Without a template pid stays -1: reap closes the socket (the
 * listening worker sees EOF and recycles) and respawn reconnects.
 *
 * Endpoints are assigned round-robin across spawn() calls, so
 * respawns rotate through the fleet and a dead endpoint does not
 * capture every retry.
 */

#ifndef STEMS_SERVE_TRANSPORT_HH
#define STEMS_SERVE_TRANSPORT_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "dispatch/coordinator.hh"

namespace stems::serve {

class SocketTransport : public dispatch::Transport
{
  public:
    struct Config
    {
        std::vector<std::string> endpoints;  //!< unix:/p or host:port
        std::string spawnCmd;     //!< "" = endpoints already listening
        uint32_t connectTimeoutMs = 10000;
    };

    explicit SocketTransport(Config config);

    dispatch::WorkerProcess spawn() override;

  private:
    Config cfg;
    std::mutex mu;
    size_t next = 0;  //!< round-robin endpoint cursor
};

/**
 * `stems worker --listen=ADDR`: bind @p addr and serve dispatch
 * sessions — accept, validate the coordinator's hello, then run the
 * standard worker loop on the connection (each session on its own
 * thread, so a respawning coordinator can reconnect while an old
 * session drains). Returns only on listener failure, or after one
 * session when @p once is set.
 */
int runListenWorker(const std::string &addr, bool once);

} // namespace stems::serve

#endif // STEMS_SERVE_TRANSPORT_HH
