/**
 * @file
 * `stems submit`: the client side of the experiment service. Parses
 * the spec locally (fail fast, and learn the output sinks), ships the
 * raw tokens to the daemon named by `server=ADDR`, and writes the
 * returned report texts verbatim to the spec's sinks — byte-identical
 * to running `stems run` with the same tokens.
 *
 * Exit codes: 0 report written (1 when any cell errored), 2 protocol
 * or spec error, 3 rejected by the admission queue.
 */

#ifndef STEMS_SERVE_CLIENT_HH
#define STEMS_SERVE_CLIENT_HH

#include <string>
#include <vector>

#include "serve/service.hh"

namespace stems::serve {

/**
 * Submit @p tokens (a spec, without the server= key) to the daemon
 * at @p server and block for the outcome. Throws std::runtime_error
 * on connect/handshake/transport failure.
 */
ExperimentService::Outcome
submitToServer(const std::string &server,
               const std::vector<std::string> &tokens,
               uint32_t connectTimeoutMs = 5000);

/** `stems submit server=ADDR SPEC...` */
int cmdSubmit(const std::vector<std::string> &args);

} // namespace stems::serve

#endif // STEMS_SERVE_CLIENT_HH
