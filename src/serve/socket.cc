#include "serve/socket.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "dispatch/json.hh"
#include "driver/report.hh"
#include "obs/counters.hh"

namespace stems::serve {

namespace {

[[noreturn]] void
fail(const std::string &what)
{
    throw std::runtime_error("serve: " + what + ": " +
                             std::strerror(errno));
}

bool
isUnix(const std::string &addr)
{
    return addr.rfind("unix:", 0) == 0;
}

/** host:port → {host, port}; throws on a missing port. */
std::pair<std::string, std::string>
splitHostPort(const std::string &addr)
{
    const size_t colon = addr.rfind(':');
    if (colon == std::string::npos || colon + 1 == addr.size())
        throw std::runtime_error(
            "serve: bad endpoint \"" + addr +
            "\" (want unix:/path or host:port)");
    return {addr.substr(0, colon), addr.substr(colon + 1)};
}

sockaddr_un
unixAddr(const std::string &addr)
{
    const std::string path = addr.substr(5);
    sockaddr_un sa = {};
    sa.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(sa.sun_path))
        throw std::runtime_error("serve: unix socket path \"" + path +
                                 "\" empty or too long");
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    return sa;
}

int
tcpConnectOnce(const std::string &host, const std::string &port)
{
    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    if (getaddrinfo(host.empty() ? nullptr : host.c_str(),
                    port.c_str(), &hints, &res) != 0)
        return -1;
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    freeaddrinfo(res);
    if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    return fd;
}

} // anonymous namespace

int
listenOn(const std::string &addr)
{
    if (isUnix(addr)) {
        const sockaddr_un sa = unixAddr(addr);
        ::unlink(sa.sun_path);  // stale socket from a killed daemon
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fail("socket(" + addr + ")");
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&sa),
                   sizeof(sa)) != 0) {
            ::close(fd);
            fail("bind(" + addr + ")");
        }
        if (::listen(fd, 64) != 0) {
            ::close(fd);
            fail("listen(" + addr + ")");
        }
        return fd;
    }

    const auto [host, port] = splitHostPort(addr);
    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo *res = nullptr;
    if (getaddrinfo(host.empty() ? nullptr : host.c_str(),
                    port.c_str(), &hints, &res) != 0)
        throw std::runtime_error("serve: cannot resolve \"" + addr +
                                 "\"");
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 64) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    freeaddrinfo(res);
    if (fd < 0)
        fail("bind/listen(" + addr + ")");
    return fd;
}

int
acceptOn(int listenFd)
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd >= 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            return fd;
        }
        if (errno == EINTR)
            continue;
        return -1;  // listener closed (daemon shutdown)
    }
}

int
connectTo(const std::string &addr, uint32_t deadlineMs)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(deadlineMs);
    for (;;) {
        int fd = -1;
        if (isUnix(addr)) {
            const sockaddr_un sa = unixAddr(addr);
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd >= 0 &&
                ::connect(fd,
                          reinterpret_cast<const sockaddr *>(&sa),
                          sizeof(sa)) != 0) {
                ::close(fd);
                fd = -1;
            }
        } else {
            const auto [host, port] = splitHostPort(addr);
            fd = tcpConnectOnce(host, port);
        }
        if (fd >= 0)
            return fd;
        if (Clock::now() >= deadline)
            throw std::runtime_error("serve: cannot connect to \"" +
                                     addr + "\"");
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

bool
sendFrame(int fd, const std::string &payload)
{
    std::string frame = std::to_string(payload.size());
    frame += '\n';
    frame += payload;
    frame += '\n';
    size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n =
            ::write(fd, frame.data() + off, frame.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
        obs::count(&obs::Counters::socketBytesSent,
                   static_cast<uint64_t>(n));
    }
    return true;
}

bool
recvFrame(int fd, dispatch::FrameDecoder &decoder, std::string &out)
{
    char buf[1 << 16];
    for (;;) {
        if (decoder.next(out))
            return true;
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        decoder.feed(buf, static_cast<size_t>(n));
        obs::count(&obs::Counters::socketBytesReceived,
                   static_cast<uint64_t>(n));
    }
}

std::string
encodeHello(const std::string &role)
{
    driver::JsonWriter j;
    j.beginObject();
    j.key("type").value("hello");
    j.key("protocol").value(uint64_t{dispatch::kProtocolVersion});
    j.key("role").value(role);
    j.key("pid").value(static_cast<uint64_t>(::getpid()));
    j.endObject();
    return j.str();
}

bool
readHello(int fd, dispatch::FrameDecoder &decoder,
          const std::string &expectRole, Hello &out, std::string &err)
{
    // the hello is the first frame on a fresh connection, so every
    // byte fed before it completes belongs to it — capping the fed
    // total rejects oversized frames without ever buffering them
    std::string payload;
    size_t fed = 0;
    char buf[1024];
    for (;;) {
        try {
            if (decoder.next(payload))
                break;
        } catch (const std::exception &e) {
            err = std::string("corrupt hello frame: ") + e.what();
            return false;
        }
        if (fed >= kHelloMaxBytes) {
            err = "hello frame exceeds " +
                  std::to_string(kHelloMaxBytes) + " bytes";
            return false;
        }
        const size_t want =
            std::min(sizeof(buf), kHelloMaxBytes - fed + 1);
        const ssize_t n = ::read(fd, buf, want);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            err = "peer closed before hello";
            return false;
        }
        decoder.feed(buf, static_cast<size_t>(n));
        fed += static_cast<size_t>(n);
        obs::count(&obs::Counters::socketBytesReceived,
                   static_cast<uint64_t>(n));
    }
    if (payload.size() > kHelloMaxBytes) {
        err = "hello frame exceeds " +
              std::to_string(kHelloMaxBytes) + " bytes";
        return false;
    }
    try {
        const dispatch::JsonValue msg = dispatch::parseJson(payload);
        if (dispatch::messageType(msg) != "hello") {
            err = "expected hello, got \"" +
                  dispatch::messageType(msg) + "\"";
            return false;
        }
        out.protocol =
            static_cast<uint32_t>(msg.at("protocol").asU64());
        out.role = msg.at("role").asString();
        if (const dispatch::JsonValue *pid = msg.find("pid"))
            out.pid = static_cast<int64_t>(pid->asU64());
    } catch (const std::exception &e) {
        err = std::string("bad hello: ") + e.what();
        return false;
    }
    if (out.protocol != dispatch::kProtocolVersion) {
        err = "protocol mismatch (peer " +
              std::to_string(out.protocol) + ", local " +
              std::to_string(dispatch::kProtocolVersion) + ")";
        return false;
    }
    if (out.role != expectRole) {
        err = "unexpected peer role \"" + out.role + "\" (want \"" +
              expectRole + "\")";
        return false;
    }
    return true;
}

std::string
encodeError(const std::string &message)
{
    driver::JsonWriter j;
    j.beginObject();
    j.key("type").value("error");
    j.key("message").value(message);
    j.endObject();
    return j.str();
}

} // namespace stems::serve
