/**
 * @file
 * Request/response messages between `stems submit` and the serve
 * daemon, riding the same length-prefixed JSON framing as the
 * dispatch wire (after the hello handshake in serve/socket.hh):
 *
 *   client -> daemon:  submit        (the spec's raw key=value tokens)
 *   daemon -> client:  admitted      (request id; queueing may follow)
 *                      report        (the run's sink texts, verbatim)
 *                   |  rejected      (admission queue full + reason)
 *                   |  error         (bad spec / shutdown)
 *
 * The report carries the exact bytes `stems run` would have written
 * to each requested sink (json/csv/table) — the client writes them
 * out verbatim, so byte-identity survives the transport.
 */

#ifndef STEMS_SERVE_PROTO_HH
#define STEMS_SERVE_PROTO_HH

#include <string>
#include <vector>

#include "dispatch/json.hh"
#include "serve/service.hh"

namespace stems::serve {

std::string encodeSubmit(const std::vector<std::string> &tokens);
std::vector<std::string> decodeSubmit(const dispatch::JsonValue &msg);

std::string encodeAdmitted(uint64_t id);

std::string encodeRejected(const std::string &reason);

std::string encodeReport(const ExperimentService::Outcome &outcome);

/**
 * Decode any daemon response frame (admitted/report/rejected/error)
 * into an Outcome. "admitted" only fills id — the caller keeps
 * waiting for the terminal frame.
 */
ExperimentService::Outcome decodeResponse(
    const dispatch::JsonValue &msg);

} // namespace stems::serve

#endif // STEMS_SERVE_PROTO_HH
