#include "serve/transport.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include "dispatch/worker.hh"
#include "serve/socket.hh"

namespace stems::serve {

namespace {

std::string
substituteAddr(const std::string &tmpl, const std::string &addr)
{
    std::string out = tmpl;
    for (size_t pos = 0; (pos = out.find("{addr}", pos)) !=
                         std::string::npos;) {
        out.replace(pos, 6, addr);
        pos += addr.size();
    }
    return out;
}

} // anonymous namespace

SocketTransport::SocketTransport(Config config)
    : cfg(std::move(config))
{
    if (cfg.endpoints.empty())
        throw std::runtime_error(
            "serve: SocketTransport needs at least one endpoint");
}

static dispatch::WorkerProcess
spawnOnEndpoint(const SocketTransport::Config &cfg,
                const std::string &addr)
{
    pid_t child = -1;
    if (!cfg.spawnCmd.empty()) {
        const std::string cmd = substituteAddr(cfg.spawnCmd, addr);
        child = ::fork();
        if (child < 0)
            throw std::runtime_error("serve: fork failed: " +
                                     std::string(strerror(errno)));
        if (child == 0) {
            ::execl("/bin/sh", "sh", "-c", cmd.c_str(),
                    static_cast<char *>(nullptr));
            ::_exit(127);
        }
    }

    int fd = -1;
    try {
        fd = connectTo(addr, cfg.connectTimeoutMs);

        // hello handshake before any dispatch frames: both sides
        // agree on the protocol version or the connection dies here
        dispatch::FrameDecoder decoder;
        if (!sendFrame(fd, encodeHello("coordinator")))
            throw std::runtime_error(
                "serve: worker at " + addr + " closed during hello");
        Hello peer;
        std::string err;
        if (!readHello(fd, decoder, "worker", peer, err))
            throw std::runtime_error("serve: " + addr + ": " + err);
    } catch (...) {
        if (fd >= 0)
            ::close(fd);
        if (child > 0) {
            ::kill(child, SIGKILL);
            ::waitpid(child, nullptr, 0);
        }
        throw;
    }

    // the coordinator's reap closes both fds independently, so hand
    // it two descriptors for the one socket
    dispatch::WorkerProcess proc;
    proc.pid = child;
    proc.toWorker = fd;
    proc.fromWorker = ::dup(fd);
    if (proc.fromWorker < 0) {
        ::close(fd);
        if (child > 0) {
            ::kill(child, SIGKILL);
            ::waitpid(child, nullptr, 0);
        }
        throw std::runtime_error("serve: dup failed");
    }
    return proc;
}

dispatch::WorkerProcess
SocketTransport::spawn()
{
    std::string addr;
    {
        std::lock_guard<std::mutex> lk(mu);
        addr = cfg.endpoints[next % cfg.endpoints.size()];
        ++next;
    }
    return spawnOnEndpoint(cfg, addr);
}

int
runListenWorker(const std::string &addr, bool once)
{
    std::signal(SIGPIPE, SIG_IGN);
    int listenFd = -1;
    try {
        listenFd = listenOn(addr);
    } catch (const std::exception &e) {
        std::cerr << "stems worker: " << e.what() << "\n";
        return 1;
    }
    std::cerr << "stems worker: listening on " << addr << "\n";

    std::vector<std::thread> sessions;
    for (;;) {
        const int fd = acceptOn(listenFd);
        if (fd < 0)
            break;

        // validate the coordinator before entering the worker loop;
        // a mismatched or hostile peer gets a clean error frame
        dispatch::FrameDecoder decoder;
        Hello peer;
        std::string err;
        if (!readHello(fd, decoder, "coordinator", peer, err)) {
            std::cerr << "stems worker: rejected connection: " << err
                      << "\n";
            sendFrame(fd, encodeError(err));
            ::close(fd);
            continue;
        }
        if (!sendFrame(fd, encodeHello("worker"))) {
            ::close(fd);
            continue;
        }

        if (once) {
            const int rc = dispatch::runWorker(fd, fd);
            ::close(fd);
            ::close(listenFd);
            for (auto &t : sessions)
                t.join();
            return rc;
        }
        // session per thread: a coordinator respawning onto this
        // endpoint can start a fresh session while the dead one's
        // thread drains out on EOF
        sessions.emplace_back([fd] {
            dispatch::runWorker(fd, fd);
            ::close(fd);
        });
    }
    ::close(listenFd);
    for (auto &t : sessions)
        t.join();
    return 0;
}

} // namespace stems::serve
