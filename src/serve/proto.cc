#include "serve/proto.hh"

#include <stdexcept>

#include "dispatch/wire.hh"
#include "driver/report.hh"

namespace stems::serve {

using dispatch::JsonValue;
using driver::JsonWriter;

std::string
encodeSubmit(const std::vector<std::string> &tokens)
{
    JsonWriter j;
    j.beginObject();
    j.key("type").value("submit");
    j.key("tokens").beginArray();
    for (const auto &t : tokens)
        j.value(t);
    j.endArray();
    j.endObject();
    return j.str();
}

std::vector<std::string>
decodeSubmit(const JsonValue &msg)
{
    std::vector<std::string> tokens;
    for (const auto &t : msg.at("tokens").items)
        tokens.push_back(t.asString());
    return tokens;
}

std::string
encodeAdmitted(uint64_t id)
{
    JsonWriter j;
    j.beginObject();
    j.key("type").value("admitted");
    j.key("request").value(id);
    j.endObject();
    return j.str();
}

std::string
encodeRejected(const std::string &reason)
{
    JsonWriter j;
    j.beginObject();
    j.key("type").value("rejected");
    j.key("reason").value(reason);
    j.endObject();
    return j.str();
}

std::string
encodeReport(const ExperimentService::Outcome &outcome)
{
    JsonWriter j;
    j.beginObject();
    j.key("type").value("report");
    j.key("request").value(outcome.id);
    j.key("failed").value(uint64_t{outcome.failed});
    j.key("replayed").value(outcome.replayed);
    j.key("stolen").value(outcome.stolen);
    j.key("json").value(outcome.json);
    j.key("csv").value(outcome.csv);
    j.key("table").value(outcome.table);
    j.endObject();
    return j.str();
}

ExperimentService::Outcome
decodeResponse(const JsonValue &msg)
{
    using Outcome = ExperimentService::Outcome;
    Outcome out;
    const std::string &type = dispatch::messageType(msg);
    if (type == "admitted") {
        out.status = Outcome::Status::Admitted;
        out.id = msg.at("request").asU64();
    } else if (type == "report") {
        out.status = Outcome::Status::Done;
        out.id = msg.at("request").asU64();
        out.failed =
            static_cast<uint32_t>(msg.at("failed").asU64());
        out.replayed = msg.at("replayed").asU64();
        out.stolen = msg.at("stolen").asU64();
        out.json = msg.at("json").asString();
        out.csv = msg.at("csv").asString();
        out.table = msg.at("table").asString();
    } else if (type == "rejected") {
        out.status = Outcome::Status::Rejected;
        out.reason = msg.at("reason").asString();
    } else if (type == "error") {
        out.status = Outcome::Status::Error;
        out.reason = msg.at("message").asString();
    } else {
        throw std::invalid_argument(
            "serve: unexpected response \"" + type + "\"");
    }
    return out;
}

} // namespace stems::serve
