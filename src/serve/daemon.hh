/**
 * @file
 * The `stems serve` daemon: a listening socket in front of
 * ExperimentService. Each client connection is one request — hello
 * handshake, a submit frame, an admitted ack, then the terminal
 * report/rejected/error frame — handled on its own thread so
 * concurrent clients map onto the service's admission queue.
 *
 * Shutdown (SIGINT/SIGTERM in cmdServe, or stop()) closes the
 * listener, drains connection threads, then stops the fleet; with
 * --trace-out/--telemetry-out the daemon dumps its lifetime
 * observability artifacts on the way out (the same formats
 * `stems run` writes, so `stems analyze` reads them unchanged). A
 * SIGKILLed daemon instead leaves its per-request journals behind —
 * the warm-restart path the tests exercise.
 */

#ifndef STEMS_SERVE_DAEMON_HH
#define STEMS_SERVE_DAEMON_HH

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hh"

namespace stems::serve {

class Daemon
{
  public:
    struct Config
    {
        std::string listen;  //!< unix:/path or host:port
        ExperimentService::Config service;
        bool quiet = false;
    };

    /** Binds and starts accepting; throws on bind failure. */
    explicit Daemon(Config config);
    ~Daemon();

    /** Close the listener, drain connections, stop the fleet. */
    void stop();

    const std::string &address() const { return cfg.listen; }

  private:
    void acceptLoop();
    void serveConnection(int fd);

    Config cfg;
    ExperimentService service;
    int listenFd = -1;
    std::thread acceptor;
    std::mutex connMu;
    std::vector<std::thread> connections;
    bool stopped = false;
};

/** `stems serve LISTEN=... [keys]` (see usage/README). */
int cmdServe(const std::vector<std::string> &args);

} // namespace stems::serve

#endif // STEMS_SERVE_DAEMON_HH
