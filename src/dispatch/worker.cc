#include "dispatch/worker.hh"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fcntl.h>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unistd.h>

#include "dispatch/wire.hh"
#include "driver/executor.hh"
#include "obs/counters.hh"
#include "obs/obs.hh"

namespace stems::dispatch {

namespace {

/** One parsed fault-injection hook (test instrumentation). */
struct FaultHook
{
    uint32_t cellId = 0;
    uint32_t sleepMs = 0;     //!< 0 = crash instead of stalling
    std::string markerPath;   //!< "" = fire on every attempt
};

/**
 * Parse "ID[:MS][:MARKER]" from @p env. @p withSleep selects the
 * STEMS_DISPATCH_SLEEP shape (which carries the MS field).
 */
std::optional<FaultHook>
parseHook(const char *env, bool withSleep)
{
    const char *raw = std::getenv(env);
    if (!raw)
        return std::nullopt;
    FaultHook hook;
    std::string s(raw);
    size_t colon = s.find(':');
    hook.cellId =
        static_cast<uint32_t>(std::strtoul(s.c_str(), nullptr, 10));
    if (withSleep) {
        if (colon == std::string::npos)
            return std::nullopt;
        hook.sleepMs = static_cast<uint32_t>(
            std::strtoul(s.c_str() + colon + 1, nullptr, 10));
        colon = s.find(':', colon + 1);
    }
    if (colon != std::string::npos)
        hook.markerPath = s.substr(colon + 1);
    return hook;
}

/**
 * Whether the hook fires for this attempt: without a marker it always
 * fires; with one, only the attempt that creates the marker file does
 * (so the re-queued attempt runs clean).
 */
bool
hookFires(const FaultHook &hook, uint32_t cellId)
{
    if (cellId != hook.cellId)
        return false;
    if (hook.markerPath.empty())
        return true;
    const int fd = ::open(hook.markerPath.c_str(),
                          O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;  // marker exists: a previous attempt already fired
    ::close(fd);
    return true;
}

void
applyTestHooks(uint32_t cellId)
{
    static const auto crash = parseHook("STEMS_DISPATCH_CRASH", false);
    static const auto stall = parseHook("STEMS_DISPATCH_SLEEP", true);
    if (crash && hookFires(*crash, cellId))
        ::_exit(137);  // simulate a SIGKILLed/crashed worker mid-cell
    if (stall && hookFires(*stall, cellId))
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stall->sleepMs));
}

} // anonymous namespace

int
runWorker(int inFd, int outFd)
{
    // a dying coordinator must surface as a failed write, not SIGPIPE
    std::signal(SIGPIPE, SIG_IGN);

    FrameDecoder decoder;
    std::string payload;

    // handshake: the first frame carries the spec-global settings
    if (!readFrame(inFd, decoder, payload))
        return 0;  // coordinator went away before init
    std::unique_ptr<driver::CellExecutor> executor;
    try {
        const JsonValue msg = parseJson(payload);
        if (messageType(msg) != "init") {
            std::cerr << "stems worker: expected init, got "
                      << messageType(msg) << "\n";
            return 2;
        }
        const WorkerInit init = decodeInit(msg);
        driver::CellExecutor::Config cfg;
        cfg.traceDir = init.traceDir;
        cfg.oracleRegionSizes = init.oracleRegionSizes;
        executor = std::make_unique<driver::CellExecutor>(cfg);
        if (init.trace) {
            obs::Recorder::get().enable();
            obs::setThreadName("worker");
        }
    } catch (const std::exception &e) {
        std::cerr << "stems worker: bad init: " << e.what() << "\n";
        return 2;
    }
    if (!writeFrame(outFd, encodeReady(::getpid())))
        return 0;

    while (readFrame(inFd, decoder, payload)) {
        try {
            const JsonValue msg = parseJson(payload);
            const std::string &type = messageType(msg);
            if (type == "shutdown")
                return 0;
            if (type != "cell") {
                std::cerr << "stems worker: unexpected message \""
                          << type << "\"\n";
                return 2;
            }
            const driver::RunCell cell = decodeCellJob(msg);
            applyTestHooks(cell.id);
            driver::CellResult result;
            {
                obs::Span span("worker_cell",
                               {{"cell", std::to_string(cell.id)},
                                {"workload", cell.workload}});
                result = executor->execute(cell);
            }
            // the v4 telemetry sidecar: this process's counter
            // snapshot + peak RSS, and (when tracing) the spans
            // buffered since the last result
            result.telemetry.counters = obs::snapshotCounters();
            result.telemetry.rssKb = obs::peakRssKb();
            if (obs::Recorder::get().enabled())
                result.telemetry.spans = obs::Recorder::get().drain();
            if (!writeFrame(outFd, encodeResult(result)))
                return 0;  // coordinator went away
        } catch (const std::exception &e) {
            // a malformed frame is a protocol failure, not a cell
            // error — die loudly and let the coordinator re-queue
            std::cerr << "stems worker: protocol error: " << e.what()
                      << "\n";
            return 2;
        }
    }
    return 0;  // EOF: coordinator closed our stdin
}

} // namespace stems::dispatch
