#include "dispatch/worker.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "dispatch/wire.hh"
#include "driver/executor.hh"
#include "fault/fault.hh"
#include "obs/counters.hh"
#include "obs/obs.hh"

namespace stems::dispatch {

namespace {

/**
 * Liveness heartbeats: a background thread frames "heartbeat" onto the
 * worker's stdout every period, sharing @p wireMu with result writes so
 * frames never interleave. The fault injector's Hang clause wedges the
 * worker *holding* that mutex — heartbeats stop exactly like they would
 * for a real deadlock, which is what the coordinator's liveness check
 * keys on (a merely slow cell keeps beating).
 */
class HeartbeatThread
{
  public:
    HeartbeatThread(int outFd, uint32_t periodMs, std::mutex &wireMu)
        : outFd(outFd), periodMs(periodMs), wireMu(wireMu)
    {
        if (periodMs > 0)
            thread = std::thread([this] { run(); });
    }

    ~HeartbeatThread()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            stop = true;
        }
        cv.notify_all();
        if (thread.joinable())
            thread.join();
    }

  private:
    void run()
    {
        const std::string beat = encodeHeartbeat();
        std::unique_lock<std::mutex> lk(mu);
        for (;;) {
            cv.wait_for(lk, std::chrono::milliseconds(periodMs),
                        [this] { return stop; });
            if (stop)
                return;
            std::lock_guard<std::mutex> wire(wireMu);
            if (!writeFrame(outFd, beat))
                return;  // coordinator went away; the main loop exits
        }
    }

    int outFd;
    uint32_t periodMs;
    std::mutex &wireMu;
    std::mutex mu;
    std::condition_variable cv;
    bool stop = false;
    std::thread thread;
};

/**
 * Lookahead pipelining (protocol v6): "prefetch" frames queue here
 * and a background thread warms each hinted cell's trace through
 * CellExecutor::prefetch while the main loop simulates the current
 * cell. prefetch() never throws and never counts a cache lookup, so
 * results are byte-identical whether hints arrive or not. The queue
 * keeps only the most recent hints — stale lookahead is worthless
 * once the coordinator has moved on.
 */
class PrefetchThread
{
  public:
    explicit PrefetchThread(driver::CellExecutor &executor)
        : executor(executor), thread([this] { run(); })
    {
    }

    ~PrefetchThread()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            stop = true;
        }
        cv.notify_all();
        if (thread.joinable())
            thread.join();
    }

    void
    hint(driver::RunCell cell)
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            if (queue.size() >= 4)
                queue.erase(queue.begin());
            queue.push_back(std::move(cell));
        }
        cv.notify_all();
    }

  private:
    void run()
    {
        obs::setThreadName("prefetch");
        std::unique_lock<std::mutex> lk(mu);
        for (;;) {
            cv.wait(lk, [this] { return stop || !queue.empty(); });
            if (stop)
                return;
            driver::RunCell cell = std::move(queue.front());
            queue.erase(queue.begin());
            lk.unlock();
            executor.prefetch(cell);
            lk.lock();
        }
    }

    driver::CellExecutor &executor;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<driver::RunCell> queue;
    bool stop = false;
    std::thread thread;
};

/** The raw on-pipe bytes of one frame (for the Truncate fault). */
std::string
frameBytes(const std::string &payload)
{
    std::string frame = std::to_string(payload.size());
    frame += '\n';
    frame += payload;
    frame += '\n';
    return frame;
}

/** Best-effort raw write of @p bytes (torn-frame injection only). */
void
writeRaw(int fd, const char *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        const ssize_t n = ::write(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        off += static_cast<size_t>(n);
    }
}

} // anonymous namespace

int
runWorker(int inFd, int outFd)
{
    // a dying coordinator must surface as a failed write, not SIGPIPE
    std::signal(SIGPIPE, SIG_IGN);

    // chaos plan (STEMS_FAULTS and/or the legacy crash/sleep hooks);
    // worker-context clauses fire at the injection sites below, spill
    // clauses inside the .stmt writer
    fault::installFromEnv();

    FrameDecoder decoder;
    std::string payload;

    // handshake: the first frame carries the spec-global settings
    if (!readFrame(inFd, decoder, payload))
        return 0;  // coordinator went away before init
    std::unique_ptr<driver::CellExecutor> executor;
    uint32_t heartbeatMs = 0;
    bool pipeline = false;
    try {
        const JsonValue msg = parseJson(payload);
        if (messageType(msg) != "init") {
            std::cerr << "stems worker: expected init, got "
                      << messageType(msg) << "\n";
            return 2;
        }
        const WorkerInit init = decodeInit(msg);
        driver::CellExecutor::Config cfg;
        cfg.traceDir = init.traceDir;
        cfg.oracleRegionSizes = init.oracleRegionSizes;
        executor = std::make_unique<driver::CellExecutor>(cfg);
        heartbeatMs = init.heartbeatMs;
        pipeline = init.pipeline;
        if (init.trace) {
            obs::Recorder::get().enable();
            obs::setThreadName("worker");
        }
    } catch (const std::exception &e) {
        std::cerr << "stems worker: bad init: " << e.what() << "\n";
        return 2;
    }

    std::mutex wireMu;  //!< serializes result and heartbeat frames
    {
        std::lock_guard<std::mutex> wire(wireMu);
        if (!writeFrame(outFd, encodeReady(::getpid())))
            return 0;
    }
    HeartbeatThread heartbeats(outFd, heartbeatMs, wireMu);
    std::unique_ptr<PrefetchThread> prefetcher;
    if (pipeline)
        prefetcher = std::make_unique<PrefetchThread>(*executor);

    while (readFrame(inFd, decoder, payload)) {
        try {
            const JsonValue msg = parseJson(payload);
            const std::string &type = messageType(msg);
            if (type == "shutdown")
                return 0;
            if (type == "prefetch") {
                // advisory lookahead: warm the hinted cell's trace in
                // the background; never answered, never fatal
                if (prefetcher)
                    prefetcher->hint(decodeCellJob(msg));
                continue;
            }
            if (type != "cell") {
                std::cerr << "stems worker: unexpected message \""
                          << type << "\"\n";
                return 2;
            }
            const driver::RunCell cell = decodeCellJob(msg);
            fault::setCellContext(cell.id, decodeCellAttempt(msg));

            if (fault::cellFault(fault::Kind::Crash))
                ::_exit(137);  // simulated SIGKILL mid-cell
            if (const fault::Clause *hang =
                    fault::cellFault(fault::Kind::Hang)) {
                // wedge with the wire lock held: heartbeats stop too,
                // exactly like a real deadlock would look
                std::lock_guard<std::mutex> wire(wireMu);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(hang->hangMs));
            }

            driver::CellResult result;
            {
                obs::Span span("worker_cell",
                               {{"cell", std::to_string(cell.id)},
                                {"workload", cell.workload}});
                result = executor->execute(cell);
            }
            // the v4 telemetry sidecar: this process's counter
            // snapshot + peak RSS, and (when tracing) the spans
            // buffered since the last result
            result.telemetry.counters = obs::snapshotCounters();
            result.telemetry.rssKb = obs::peakRssKb();
            if (obs::Recorder::get().enabled())
                result.telemetry.spans = obs::Recorder::get().drain();

            if (fault::cellFault(fault::Kind::Garbage)) {
                // a validly-framed but unparseable payload: exercises
                // the coordinator's decode-hardening path
                std::lock_guard<std::mutex> wire(wireMu);
                writeFrame(outFd, "{\"type\":\"result\",!garbage!");
                fault::clearCellContext();
                continue;  // coordinator reaps us; nothing else to do
            }
            if (fault::cellFault(fault::Kind::Truncate)) {
                // torn wire write: half a frame, then death
                const std::string frame =
                    frameBytes(encodeResult(result));
                std::lock_guard<std::mutex> wire(wireMu);
                writeRaw(outFd, frame.data(), frame.size() / 2);
                ::_exit(137);
            }

            fault::clearCellContext();
            std::lock_guard<std::mutex> wire(wireMu);
            if (!writeFrame(outFd, encodeResult(result)))
                return 0;  // coordinator went away
        } catch (const std::exception &e) {
            // a malformed frame is a protocol failure, not a cell
            // error — die loudly and let the coordinator re-queue
            std::cerr << "stems worker: protocol error: " << e.what()
                      << "\n";
            return 2;
        }
    }
    return 0;  // EOF: coordinator closed our stdin
}

} // namespace stems::dispatch
