#include "dispatch/coordinator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <filesystem>
#include <iostream>
#include <poll.h>
#include <stdexcept>
#include <sys/wait.h>
#include <unistd.h>

#include <sstream>

#include "dispatch/wire.hh"
#include "obs/counters.hh"
#include "obs/obs.hh"
#include "study/table.hh"

namespace stems::dispatch {

using driver::CellResult;
using driver::ProgressFn;
using driver::RunCell;

namespace {

using Clock = std::chrono::steady_clock;

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // anonymous namespace

// ---------------------------------------------------------------------
// transport
// ---------------------------------------------------------------------

std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "stems";  // fall back to PATH lookup
    buf[n] = '\0';
    return buf;
}

LocalProcessTransport::LocalProcessTransport(std::string exe)
    : exe(std::move(exe))
{
}

WorkerProcess
LocalProcessTransport::spawn()
{
    int toChild[2], fromChild[2];
    if (::pipe(toChild) != 0)
        throw std::runtime_error("dispatch: pipe: " +
                                 std::string(std::strerror(errno)));
    if (::pipe(fromChild) != 0) {
        ::close(toChild[0]);
        ::close(toChild[1]);
        throw std::runtime_error("dispatch: pipe: " +
                                 std::string(std::strerror(errno)));
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(toChild[0]);
        ::close(toChild[1]);
        ::close(fromChild[0]);
        ::close(fromChild[1]);
        throw std::runtime_error("dispatch: fork: " +
                                 std::string(std::strerror(errno)));
    }
    if (pid == 0) {
        // child: wire the pipes onto stdin/stdout and become a worker
        ::dup2(toChild[0], STDIN_FILENO);
        ::dup2(fromChild[1], STDOUT_FILENO);
        ::close(toChild[0]);
        ::close(toChild[1]);
        ::close(fromChild[0]);
        ::close(fromChild[1]);
        ::execlp(exe.c_str(), exe.c_str(), "worker",
                 static_cast<char *>(nullptr));
        std::cerr << "stems dispatch: exec " << exe << ": "
                  << std::strerror(errno) << "\n";
        ::_exit(127);
    }

    ::close(toChild[0]);
    ::close(fromChild[1]);
    WorkerProcess proc;
    proc.pid = pid;
    proc.toWorker = toChild[1];
    proc.fromWorker = fromChild[0];
    return proc;
}

// ---------------------------------------------------------------------
// coordinator
// ---------------------------------------------------------------------

/** One pool slot's connection, decode state and in-flight assignment. */
struct Coordinator::Worker
{
    WorkerProcess proc;
    FrameDecoder decoder;
    bool alive = false;
    bool ready = false;     //!< handshake complete, can take cells
    int cell = -1;          //!< index into cells_ (-1 = idle)
    Clock::time_point deadline{};  //!< valid when cell != -1
    uint64_t assignedAtNs = 0;     //!< round-trip start (monotonic)
    int stats = -1;         //!< index into workerStats_ (-1 = none)
};

Coordinator::Coordinator(const driver::ExperimentSpec &spec,
                         DispatchConfig config,
                         std::unique_ptr<Transport> transport)
    : spec(spec), cfg(std::move(config)), transport(std::move(transport)),
      cells_(driver::selectedCells(spec))
{
    if (cfg.workerExe.empty())
        cfg.workerExe = selfExePath();
    if (!this->transport)
        this->transport =
            std::make_unique<LocalProcessTransport>(cfg.workerExe);
    if (cfg.workers == 0)
        cfg.workers = 1;
    cfg.workers = std::min<uint32_t>(
        cfg.workers, static_cast<uint32_t>(cells_.size()));
    if (cfg.maxAttempts == 0)
        cfg.maxAttempts = 1;

    // workers share one trace spill dir so each workload's trace is
    // generated once per sweep; provision a temp dir when the spec
    // does not pin one (cleaned up in the destructor)
    if (this->spec.traceDir.empty()) {
        std::string tmpl =
            (std::filesystem::temp_directory_path() /
             "stems-dispatch-XXXXXX")
                .string();
        if (::mkdtemp(tmpl.data()) == nullptr)
            throw std::runtime_error("dispatch: mkdtemp: " +
                                     std::string(std::strerror(errno)));
        ownedTraceDir = tmpl;
        this->spec.traceDir = ownedTraceDir;
    }
}

Coordinator::~Coordinator()
{
    if (!ownedTraceDir.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(ownedTraceDir, ec);  // best effort
    }
}

std::vector<CellResult>
Coordinator::run(const ProgressFn &progress)
{
    std::vector<CellResult> results(cells_.size());
    workerStats_.clear();
    wallMs_ = 0;
    if (cells_.empty())
        return results;
    const auto runStart = Clock::now();

    // a worker dying mid-write must surface as EPIPE, not SIGPIPE
    std::signal(SIGPIPE, SIG_IGN);

    WorkerInit init;
    init.traceDir = spec.traceDir;
    init.oracleRegionSizes = spec.oracleRegionSizes;
    init.trace = cfg.trace;
    const std::string initFrame = encodeInit(init);

    std::deque<int> pending;  //!< cell indices awaiting a worker
    for (size_t i = 0; i < cells_.size(); ++i)
        pending.push_back(static_cast<int>(i));
    std::vector<uint32_t> attempts(cells_.size(), 0);
    size_t done = 0;

    // enough respawns that the per-cell attempt cap is the real
    // limiter, yet bounded so a fork-bomb failure mode cannot loop
    uint32_t respawnBudget = cfg.workers +
        2 * static_cast<uint32_t>(cells_.size()) *
            std::max<uint32_t>(cfg.maxAttempts, 1);

    std::vector<Worker> pool(cfg.workers);

    auto reap = [](Worker &w) {
        closeFd(w.proc.toWorker);
        closeFd(w.proc.fromWorker);
        if (w.proc.pid > 0) {
            ::kill(w.proc.pid, SIGKILL);
            ::waitpid(w.proc.pid, nullptr, 0);
            w.proc.pid = -1;
        }
        w.alive = false;
        w.ready = false;
        w.decoder = FrameDecoder();
    };

    auto failCell = [&](int cell, const std::string &reason) {
        results[cell].cell = cells_[cell];
        results[cell].error = "dispatch: " + reason + " after " +
            std::to_string(attempts[cell]) + " attempt(s)";
        ++done;
        if (progress)
            progress(results[cell], done, cells_.size());
    };

    // a worker died (crash, timeout, protocol error): re-queue its
    // in-flight cell or, past the attempt cap, record the failure
    // through the cell-error path
    auto workerLost = [&](Worker &w, const std::string &reason) {
        const int cell = w.cell;
        obs::instant("worker_lost",
                     {{"pid", std::to_string(w.proc.pid)},
                      {"reason", reason}});
        if (w.stats >= 0)
            ++workerStats_[w.stats].lost;
        w.cell = -1;
        reap(w);
        if (cell < 0)
            return;
        if (attempts[cell] >=
            std::max<uint32_t>(cfg.maxAttempts, 1)) {
            failCell(cell, reason);
        } else {
            pending.push_front(cell);  // retry promptly, other worker
            obs::count(&obs::Counters::cellsRequeued);
            obs::instant("cell_requeued",
                         {{"cell",
                           std::to_string(cells_[cell].id)}});
        }
    };

    auto trySpawn = [&](Worker &w) -> bool {
        if (respawnBudget == 0)
            return false;
        --respawnBudget;
        try {
            w.proc = transport->spawn();
        } catch (const std::exception &e) {
            std::cerr << "stems dispatch: spawn failed: " << e.what()
                      << "\n";
            return false;
        }
        w.alive = true;
        w.ready = false;
        w.cell = -1;
        w.decoder = FrameDecoder();
        WorkerStats stats;
        stats.pid = w.proc.pid;
        w.stats = static_cast<int>(workerStats_.size());
        workerStats_.push_back(std::move(stats));
        obs::instant("worker_spawn",
                     {{"pid", std::to_string(w.proc.pid)}});
        if (!writeFrame(w.proc.toWorker, initFrame)) {
            reap(w);
            return false;
        }
        return true;
    };

    auto assign = [&](Worker &w) {
        if (!w.alive || !w.ready || w.cell != -1 || pending.empty())
            return;
        const int cell = pending.front();
        pending.pop_front();
        ++attempts[cell];
        if (attempts[cell] > 1)
            obs::count(&obs::Counters::dispatchRetries);
        w.cell = cell;
        w.assignedAtNs = obs::monotonicNs();
        if (cfg.timeoutMs > 0)
            w.deadline = Clock::now() +
                std::chrono::milliseconds(cfg.timeoutMs);
        std::string job;
        {
            obs::Span span("encode_cell",
                           {{"cell",
                             std::to_string(cells_[cell].id)}});
            job = encodeCellJob(cells_[cell]);
        }
        if (!writeFrame(w.proc.toWorker, job))
            workerLost(w, "worker rejected cell " +
                              std::to_string(cells_[cell].id));
    };

    // drain every complete frame buffered for one worker
    auto handleFrames = [&](Worker &w) {
        std::string payload;
        for (;;) {
            try {
                if (!w.decoder.next(payload))
                    return;
                const JsonValue msg = parseJson(payload);
                const std::string &type = messageType(msg);
                if (type == "ready") {
                    w.ready = true;
                } else if (type == "result") {
                    CellResult wire;
                    {
                        obs::Span span("decode_result");
                        wire = decodeResult(msg);
                    }
                    const int cell = w.cell;
                    if (cell < 0 ||
                        wire.cell.id != cells_[cell].id) {
                        workerLost(w, "worker answered for the wrong "
                                      "cell");
                        return;
                    }
                    // the coordinator's cell is authoritative for the
                    // report; the wire carries measurements only
                    results[cell].cell = cells_[cell];
                    results[cell].metrics = std::move(wire.metrics);
                    results[cell].error = std::move(wire.error);

                    // fold the v4 telemetry sidecar into this
                    // incarnation's health stats and merge any worker
                    // spans (re-tagged with the worker pid) into the
                    // coordinator's trace timeline
                    const double rtMs =
                        static_cast<double>(obs::monotonicNs() -
                                            w.assignedAtNs) /
                        1e6;
                    if (w.stats >= 0) {
                        WorkerStats &ws = workerStats_[w.stats];
                        ++ws.cellsDone;
                        ws.busyMs += rtMs;
                        for (const auto &[name, ms] :
                             wire.telemetry.phases) {
                            auto it = std::find_if(
                                ws.phaseMs.begin(), ws.phaseMs.end(),
                                [&](const auto &p) {
                                    return p.first == name;
                                });
                            if (it == ws.phaseMs.end())
                                ws.phaseMs.emplace_back(name, ms);
                            else
                                it->second += ms;
                        }
                        if (!wire.telemetry.counters.empty())
                            ws.counters = wire.telemetry.counters;
                        ws.rssKb =
                            std::max(ws.rssKb, wire.telemetry.rssKb);
                    }
                    obs::Recorder &rec = obs::Recorder::get();
                    if (rec.enabled()) {
                        obs::Event e;
                        e.name = "dispatch_cell";
                        e.tsNs = w.assignedAtNs;
                        e.durNs = obs::monotonicNs() - w.assignedAtNs;
                        e.args.emplace_back(
                            "cell", std::to_string(cells_[cell].id));
                        e.args.emplace_back(
                            "pid", std::to_string(w.proc.pid));
                        rec.record(std::move(e));
                        if (!wire.telemetry.spans.empty()) {
                            for (auto &s : wire.telemetry.spans)
                                s.pid = w.proc.pid;
                            rec.ingest(
                                std::move(wire.telemetry.spans));
                            wire.telemetry.spans.clear();
                        }
                    }
                    results[cell].telemetry =
                        std::move(wire.telemetry);

                    w.cell = -1;
                    ++done;
                    if (progress)
                        progress(results[cell], done, cells_.size());
                } else {
                    workerLost(w, "unexpected message \"" + type +
                                      "\"");
                    return;
                }
            } catch (const std::exception &e) {
                workerLost(w, std::string("protocol error (") +
                                  e.what() + ")");
                return;
            }
            assign(w);
        }
    };

    for (auto &w : pool)
        trySpawn(w);

    while (done < cells_.size()) {
        // refill dead slots only while un-assigned work exists — a
        // respawned worker with nothing pending would idle until
        // shutdown and waste respawn budget
        size_t alive = 0;
        for (auto &w : pool) {
            if (!w.alive && !pending.empty() && trySpawn(w))
                obs::count(&obs::Counters::workerRespawns);
            if (w.alive) {
                ++alive;
                assign(w);
            }
        }
        if (alive == 0) {
            // pool unrecoverable (spawn failures / budget exhausted):
            // fail whatever is left through the cell-error path
            while (!pending.empty()) {
                const int cell = pending.front();
                pending.pop_front();
                if (attempts[cell] == 0)
                    ++attempts[cell];
                failCell(cell, "no workers available");
            }
            break;
        }

        std::vector<pollfd> fds;
        std::vector<Worker *> fdOwner;
        for (auto &w : pool) {
            if (!w.alive)
                continue;
            fds.push_back({w.proc.fromWorker, POLLIN, 0});
            fdOwner.push_back(&w);
        }

        int timeout = -1;
        if (cfg.timeoutMs > 0) {
            const auto now = Clock::now();
            for (auto &w : pool) {
                if (!w.alive || w.cell < 0)
                    continue;
                const auto left =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(w.deadline - now)
                        .count();
                const int ms =
                    left < 0 ? 0 : static_cast<int>(left) + 1;
                if (timeout < 0 || ms < timeout)
                    timeout = ms;
            }
        }

        const int n = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()), timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error("dispatch: poll: " +
                                     std::string(std::strerror(errno)));
        }

        for (size_t i = 0; i < fds.size(); ++i) {
            Worker &w = *fdOwner[i];
            if (!w.alive || fds[i].revents == 0)
                continue;
            char chunk[65536];
            const ssize_t r =
                ::read(w.proc.fromWorker, chunk, sizeof(chunk));
            if (r > 0) {
                obs::count(&obs::Counters::wireBytesReceived,
                           static_cast<uint64_t>(r));
                w.decoder.feed(chunk, static_cast<size_t>(r));
                handleFrames(w);
            } else if (r == 0 || errno != EINTR) {
                workerLost(w, "worker exited");
            }
        }

        if (cfg.timeoutMs > 0) {
            const auto now = Clock::now();
            for (auto &w : pool) {
                if (w.alive && w.cell >= 0 && now >= w.deadline)
                    workerLost(w, "cell " +
                                      std::to_string(
                                          cells_[w.cell].id) +
                                      " timed out");
            }
        }
    }

    for (auto &w : pool) {
        if (w.alive && w.proc.toWorker >= 0)
            writeFrame(w.proc.toWorker, encodeShutdown());
        reap(w);
    }
    wallMs_ = std::chrono::duration<double, std::milli>(
                  Clock::now() - runStart)
                  .count();
    return results;
}

std::string
workerSummary(const std::vector<WorkerStats> &stats, double wallMs)
{
    study::TablePrinter t({"Worker", "Cells", "Busy ms", "Util",
                           "Trace ms", "Study ms", "Timing ms",
                           "RSS MB", "Lost"});
    auto phaseTotal = [](const WorkerStats &ws, const char *a,
                         const char *b) {
        double ms = 0;
        for (const auto &[name, v] : ws.phaseMs)
            if (name == a || (b && name == b))
                ms += v;
        return ms;
    };
    for (const auto &ws : stats) {
        const double util = wallMs > 0 ? ws.busyMs / wallMs : 0;
        t.addRow({std::to_string(ws.pid),
                  std::to_string(ws.cellsDone),
                  study::TablePrinter::fixed(ws.busyMs, 1),
                  study::TablePrinter::pct(util),
                  study::TablePrinter::fixed(
                      phaseTotal(ws, "trace", nullptr), 1),
                  study::TablePrinter::fixed(
                      phaseTotal(ws, "system_study", "l1_study") +
                          phaseTotal(ws, "baseline", nullptr),
                      1),
                  study::TablePrinter::fixed(
                      phaseTotal(ws, "timing", nullptr), 1),
                  study::TablePrinter::fixed(
                      static_cast<double>(ws.rssKb) / 1024.0, 1),
                  std::to_string(ws.lost)});
    }
    std::ostringstream os;
    os << "stems dispatch: worker summary (wall "
       << study::TablePrinter::fixed(wallMs, 1) << " ms)\n";
    t.print(os);
    return os.str();
}

std::vector<CellResult>
runDispatched(const driver::ExperimentSpec &spec,
              const ProgressFn &progress,
              std::vector<WorkerStats> *statsOut, double *wallMsOut)
{
    DispatchConfig cfg;
    cfg.workers = spec.dispatch ? spec.dispatch : 1;
    cfg.timeoutMs = spec.dispatchTimeoutMs;
    cfg.maxAttempts = spec.dispatchRetries;
    cfg.trace = !spec.traceOut.empty();
    Coordinator coord(spec, cfg);
    auto results = coord.run(progress);
    if (statsOut)
        *statsOut = coord.workerStats();
    if (wallMsOut)
        *wallMsOut = coord.wallMs();
    return results;
}

} // namespace stems::dispatch
