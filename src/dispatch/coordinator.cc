#include "dispatch/coordinator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <filesystem>
#include <iostream>
#include <poll.h>
#include <stdexcept>
#include <sys/wait.h>
#include <unistd.h>

#include <sstream>

#include "dispatch/wire.hh"
#include "driver/costmodel.hh"
#include "driver/executor.hh"
#include "driver/report.hh"
#include "obs/counters.hh"
#include "obs/histogram.hh"
#include "obs/obs.hh"
#include "obs/sampler.hh"
#include "study/table.hh"

namespace stems::dispatch {

using driver::CellResult;
using driver::ProgressFn;
using driver::RunCell;

namespace {

using Clock = std::chrono::steady_clock;

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // anonymous namespace

// ---------------------------------------------------------------------
// transport
// ---------------------------------------------------------------------

std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "stems";  // fall back to PATH lookup
    buf[n] = '\0';
    return buf;
}

LocalProcessTransport::LocalProcessTransport(std::string exe)
    : exe(std::move(exe))
{
}

WorkerProcess
LocalProcessTransport::spawn()
{
    int toChild[2], fromChild[2];
    if (::pipe(toChild) != 0)
        throw std::runtime_error("dispatch: pipe: " +
                                 std::string(std::strerror(errno)));
    if (::pipe(fromChild) != 0) {
        ::close(toChild[0]);
        ::close(toChild[1]);
        throw std::runtime_error("dispatch: pipe: " +
                                 std::string(std::strerror(errno)));
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(toChild[0]);
        ::close(toChild[1]);
        ::close(fromChild[0]);
        ::close(fromChild[1]);
        throw std::runtime_error("dispatch: fork: " +
                                 std::string(std::strerror(errno)));
    }
    if (pid == 0) {
        // child: wire the pipes onto stdin/stdout and become a worker
        ::dup2(toChild[0], STDIN_FILENO);
        ::dup2(fromChild[1], STDOUT_FILENO);
        ::close(toChild[0]);
        ::close(toChild[1]);
        ::close(fromChild[0]);
        ::close(fromChild[1]);
        ::execlp(exe.c_str(), exe.c_str(), "worker",
                 static_cast<char *>(nullptr));
        std::cerr << "stems dispatch: exec " << exe << ": "
                  << std::strerror(errno) << "\n";
        ::_exit(127);
    }

    ::close(toChild[0]);
    ::close(fromChild[1]);
    WorkerProcess proc;
    proc.pid = pid;
    proc.toWorker = toChild[1];
    proc.fromWorker = fromChild[0];
    return proc;
}

// ---------------------------------------------------------------------
// coordinator
// ---------------------------------------------------------------------

/** One pool slot's connection, decode state and in-flight assignment. */
struct Coordinator::Worker
{
    WorkerProcess proc;
    FrameDecoder decoder;
    bool alive = false;
    bool ready = false;     //!< handshake complete, can take cells
    int cell = -1;          //!< index into cells_ (-1 = idle)
    Clock::time_point deadline{};  //!< valid when cell != -1
    uint64_t assignedAtNs = 0;     //!< round-trip start (monotonic)
    int stats = -1;         //!< index into workerStats_ (-1 = none)
    Clock::time_point lastHeardAt{};  //!< any bytes read (liveness)
    uint32_t failStreak = 0;    //!< consecutive losses (backoff input)
    Clock::time_point nextSpawnAt{};  //!< backoff gate for respawn
};

namespace {

/** Consecutive heartbeat periods a worker may miss before it is
 *  declared wedged and killed. */
constexpr uint32_t kHeartbeatMissBudget = 4;

/** Respawn backoff ceiling. */
constexpr uint32_t kBackoffCapMs = 5000;

/** Minimum straggler round trip before speculation may fire. */
constexpr double kSpeculateFloorMs = 2000;

/** Deterministic backoff with jitter for the Nth consecutive loss. */
uint32_t
backoffDelayMs(uint32_t baseMs, uint32_t streak, uint64_t salt)
{
    if (baseMs == 0 || streak == 0)
        return 0;
    const uint32_t shift = std::min<uint32_t>(streak - 1, 6);
    const uint64_t exp =
        std::min<uint64_t>(uint64_t{baseMs} << shift, kBackoffCapMs);
    // jitter in [0, baseMs) desynchronizes a pool crashing in lockstep
    uint64_t h = salt * 0x9e3779b97f4a7c15ULL + streak;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return static_cast<uint32_t>(
        std::min<uint64_t>(exp + h % baseMs, kBackoffCapMs));
}

} // anonymous namespace

Coordinator::Coordinator(const driver::ExperimentSpec &spec,
                         DispatchConfig config,
                         std::unique_ptr<Transport> transport)
    : spec(spec), cfg(std::move(config)), transport(std::move(transport)),
      cells_(driver::selectedCells(spec))
{
    if (cfg.workerExe.empty())
        cfg.workerExe = selfExePath();
    if (!this->transport)
        this->transport =
            std::make_unique<LocalProcessTransport>(cfg.workerExe);
    if (cfg.workers == 0)
        cfg.workers = 1;
    cfg.workers = std::min<uint32_t>(
        cfg.workers, static_cast<uint32_t>(cells_.size()));
    if (cfg.maxAttempts == 0)
        cfg.maxAttempts = 1;

    // workers share one trace spill dir so each workload's trace is
    // generated once per sweep; provision a temp dir when the spec
    // does not pin one (cleaned up in the destructor)
    if (this->spec.traceDir.empty()) {
        std::string tmpl =
            (std::filesystem::temp_directory_path() /
             "stems-dispatch-XXXXXX")
                .string();
        if (::mkdtemp(tmpl.data()) == nullptr)
            throw std::runtime_error("dispatch: mkdtemp: " +
                                     std::string(std::strerror(errno)));
        ownedTraceDir = tmpl;
        this->spec.traceDir = ownedTraceDir;
    }
}

Coordinator::~Coordinator()
{
    if (!ownedTraceDir.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(ownedTraceDir, ec);  // best effort
    }
}

std::vector<CellResult>
Coordinator::run(const ProgressFn &progress)
{
    std::vector<CellResult> results(cells_.size());
    workerStats_.clear();
    wallMs_ = 0;
    if (cells_.empty())
        return results;
    const auto runStart = Clock::now();

    // a worker dying mid-write must surface as EPIPE, not SIGPIPE
    std::signal(SIGPIPE, SIG_IGN);

    WorkerInit init;
    init.traceDir = spec.traceDir;
    init.oracleRegionSizes = spec.oracleRegionSizes;
    init.trace = cfg.trace;
    init.heartbeatMs = cfg.heartbeatMs;
    init.pipeline = cfg.pipeline;
    const std::string initFrame = encodeInit(init);

    // schedule=cost queues cells longest-estimated-first (LPT);
    // results are placed by cell index either way, so the report is
    // byte-identical to fifo order
    std::deque<int> pending;  //!< cell indices awaiting a worker
    for (size_t i : driver::scheduleOrder(spec, cells_))
        pending.push_back(static_cast<int>(i));
    obs::Gauges::get().reset();
    std::vector<uint32_t> attempts(cells_.size(), 0);
    // speculation bookkeeping: a cell may be in flight on two workers
    // at once (original + one speculative copy); the first result
    // wins and the loser's is discarded
    std::vector<char> completed(cells_.size(), 0);
    std::vector<uint32_t> running(cells_.size(), 0);
    std::vector<char> speculated(cells_.size(), 0);
    std::vector<double> doneRttMs;  //!< completed round trips (median)
    size_t done = 0;

    // enough respawns that the per-cell attempt cap is the real
    // limiter, yet bounded so a fork-bomb failure mode cannot loop
    uint32_t respawnBudget = cfg.workers +
        2 * static_cast<uint32_t>(cells_.size()) *
            std::max<uint32_t>(cfg.maxAttempts, 1);

    std::vector<Worker> pool(cfg.workers);

    auto reap = [](Worker &w) {
        closeFd(w.proc.toWorker);
        closeFd(w.proc.fromWorker);
        if (w.proc.pid > 0) {
            ::kill(w.proc.pid, SIGKILL);
            ::waitpid(w.proc.pid, nullptr, 0);
            w.proc.pid = -1;
        }
        w.alive = false;
        w.ready = false;
        w.decoder = FrameDecoder();
    };

    auto failCell = [&](int cell, const std::string &reason) {
        if (completed[cell])
            return;
        completed[cell] = 1;
        results[cell].cell = cells_[cell];
        results[cell].error = "dispatch: " + reason + " after " +
            std::to_string(attempts[cell]) + " attempt(s)";
        ++done;
        if (progress)
            progress(results[cell], done, cells_.size());
    };

    // a worker died (crash, heartbeat loss, timeout, protocol error):
    // re-queue its in-flight cell or, past the attempt cap, record
    // the failure through the cell-error path; the slot backs off
    // exponentially before it may respawn
    auto workerLost = [&](Worker &w, const std::string &reason) {
        const int cell = w.cell;
        obs::instant("worker_lost",
                     {{"pid", std::to_string(w.proc.pid)},
                      {"reason", reason}});
        if (w.stats >= 0)
            ++workerStats_[w.stats].lost;
        w.cell = -1;
        reap(w);
        ++w.failStreak;
        const uint32_t delay = backoffDelayMs(
            cfg.backoffMs, w.failStreak,
            static_cast<uint64_t>(&w - pool.data()) + 1);
        if (delay > 0)
            w.nextSpawnAt =
                Clock::now() + std::chrono::milliseconds(delay);
        if (cell < 0)
            return;
        if (running[cell] > 0)
            --running[cell];
        if (completed[cell])
            return;  // a speculative twin already delivered
        if (running[cell] > 0)
            return;  // the other in-flight copy is still running
        if (attempts[cell] >=
            std::max<uint32_t>(cfg.maxAttempts, 1)) {
            failCell(cell, reason);
        } else {
            pending.push_front(cell);  // retry promptly, other worker
            obs::count(&obs::Counters::cellsRequeued);
            obs::instant("cell_requeued",
                         {{"cell",
                           std::to_string(cells_[cell].id)}});
        }
    };

    auto trySpawn = [&](Worker &w) -> bool {
        if (respawnBudget == 0)
            return false;
        if (Clock::now() < w.nextSpawnAt)
            return false;  // still backing off; budget not consumed
        --respawnBudget;
        try {
            w.proc = transport->spawn();
        } catch (const std::exception &e) {
            std::cerr << "stems dispatch: spawn failed: " << e.what()
                      << "\n";
            return false;
        }
        w.alive = true;
        w.ready = false;
        w.cell = -1;
        w.decoder = FrameDecoder();
        w.lastHeardAt = Clock::now();
        WorkerStats stats;
        stats.pid = w.proc.pid;
        w.stats = static_cast<int>(workerStats_.size());
        workerStats_.push_back(std::move(stats));
        obs::instant("worker_spawn",
                     {{"pid", std::to_string(w.proc.pid)}});
        if (!writeFrame(w.proc.toWorker, initFrame)) {
            reap(w);
            return false;
        }
        return true;
    };

    // hand @p cell to @p w; the attempt number rides the wire so the
    // fault injector can key first-attempt-only chaos deterministically
    auto dispatchCell = [&](Worker &w, int cell) {
        ++attempts[cell];
        if (attempts[cell] > 1)
            obs::count(&obs::Counters::dispatchRetries);
        w.cell = cell;
        ++running[cell];
        w.assignedAtNs = obs::monotonicNs();
        if (cfg.timeoutMs > 0)
            w.deadline = Clock::now() +
                std::chrono::milliseconds(cfg.timeoutMs);
        std::string job;
        {
            obs::Span span("encode_cell",
                           {{"cell",
                             std::to_string(cells_[cell].id)}});
            job = encodeCellJob(cells_[cell], attempts[cell]);
        }
        if (!writeFrame(w.proc.toWorker, job))
            workerLost(w, "worker rejected cell " +
                              std::to_string(cells_[cell].id));
    };

    auto assign = [&](Worker &w) {
        if (!w.alive || !w.ready || w.cell != -1 || pending.empty())
            return;
        const int cell = pending.front();
        pending.pop_front();
        dispatchCell(w, cell);
        // lookahead pipelining: hint the queue head so the worker
        // warms its trace while the just-assigned cell simulates.
        // Advisory only — a lost hint is silently absorbed (a dead
        // worker surfaces on the next real write)
        if (cfg.pipeline && w.alive && !pending.empty())
            writeFrame(w.proc.toWorker,
                       encodePrefetch(cells_[pending.front()]));
    };

    // drain every complete frame buffered for one worker
    auto handleFrames = [&](Worker &w) {
        std::string payload;
        for (;;) {
            try {
                if (!w.decoder.next(payload))
                    return;
                const JsonValue msg = parseJson(payload);
                const std::string &type = messageType(msg);
                if (type == "ready") {
                    w.ready = true;
                } else if (type == "heartbeat") {
                    // liveness only; lastHeardAt was already bumped
                    // when the bytes arrived
                } else if (type == "result") {
                    CellResult wire;
                    {
                        obs::Span span("decode_result");
                        wire = decodeResult(msg);
                    }
                    const int cell = w.cell;
                    if (cell < 0 ||
                        wire.cell.id != cells_[cell].id) {
                        workerLost(w, "worker answered for the wrong "
                                      "cell");
                        return;
                    }
                    w.cell = -1;
                    w.failStreak = 0;
                    if (running[cell] > 0)
                        --running[cell];
                    if (completed[cell]) {
                        // a speculative twin already delivered this
                        // cell; discard the straggler's copy
                        assign(w);
                        continue;
                    }
                    // the coordinator's cell is authoritative for the
                    // report; the wire carries measurements only
                    results[cell].cell = cells_[cell];
                    results[cell].metrics = std::move(wire.metrics);
                    results[cell].error = std::move(wire.error);

                    // fold the v4 telemetry sidecar into this
                    // incarnation's health stats and merge any worker
                    // spans (re-tagged with the worker pid) into the
                    // coordinator's trace timeline
                    const double rtMs =
                        static_cast<double>(obs::monotonicNs() -
                                            w.assignedAtNs) /
                        1e6;
                    doneRttMs.push_back(rtMs);
                    obs::recordHist(
                        &obs::Histograms::dispatchRttUs,
                        static_cast<uint64_t>(rtMs * 1000.0));
                    {
                        // the worker's own wall is the sum of its
                        // phase timings; the RTT above additionally
                        // carries wire + queue overhead
                        double phaseSumMs = 0;
                        for (const auto &[name, ms] :
                             wire.telemetry.phases)
                            phaseSumMs += ms;
                        if (phaseSumMs > 0)
                            obs::recordHist(
                                &obs::Histograms::cellWallUs,
                                static_cast<uint64_t>(phaseSumMs *
                                                      1000.0));
                    }
                    if (w.stats >= 0) {
                        WorkerStats &ws = workerStats_[w.stats];
                        ++ws.cellsDone;
                        ws.busyMs += rtMs;
                        for (const auto &[name, ms] :
                             wire.telemetry.phases) {
                            auto it = std::find_if(
                                ws.phaseMs.begin(), ws.phaseMs.end(),
                                [&](const auto &p) {
                                    return p.first == name;
                                });
                            if (it == ws.phaseMs.end())
                                ws.phaseMs.emplace_back(name, ms);
                            else
                                it->second += ms;
                        }
                        if (!wire.telemetry.counters.empty())
                            ws.counters = wire.telemetry.counters;
                        ws.rssKb =
                            std::max(ws.rssKb, wire.telemetry.rssKb);
                    }
                    obs::Recorder &rec = obs::Recorder::get();
                    if (rec.enabled()) {
                        obs::Event e;
                        e.name = "dispatch_cell";
                        e.tsNs = w.assignedAtNs;
                        e.durNs = obs::monotonicNs() - w.assignedAtNs;
                        e.args.emplace_back(
                            "cell", std::to_string(cells_[cell].id));
                        e.args.emplace_back(
                            "pid", std::to_string(w.proc.pid));
                        rec.record(std::move(e));
                        if (!wire.telemetry.spans.empty()) {
                            for (auto &s : wire.telemetry.spans)
                                s.pid = w.proc.pid;
                            rec.ingest(
                                std::move(wire.telemetry.spans));
                            wire.telemetry.spans.clear();
                        }
                    }
                    results[cell].telemetry =
                        std::move(wire.telemetry);

                    completed[cell] = 1;
                    ++done;
                    if (progress)
                        progress(results[cell], done, cells_.size());
                } else {
                    workerLost(w, "unexpected message \"" + type +
                                      "\"");
                    return;
                }
            } catch (const std::exception &e) {
                workerLost(w, std::string("protocol error (") +
                                  e.what() + ")");
                return;
            }
            assign(w);
        }
    };

    // the straggler tail: when no pending work remains, duplicate the
    // slowest in-flight cell onto an idle worker once its round trip
    // exceeds 3x the median completed round trip (first result wins)
    auto speculate = [&]() {
        if (!cfg.speculate || !pending.empty() ||
            doneRttMs.size() < 3)
            return;
        std::vector<double> rtts = doneRttMs;
        std::nth_element(rtts.begin(),
                         rtts.begin() + rtts.size() / 2, rtts.end());
        const double threshold = std::max(
            3.0 * rtts[rtts.size() / 2], kSpeculateFloorMs);
        for (auto &idle : pool) {
            if (!idle.alive || !idle.ready || idle.cell != -1)
                continue;
            Worker *straggler = nullptr;
            double worstMs = threshold;
            for (auto &busy : pool) {
                if (!busy.alive || busy.cell < 0)
                    continue;
                const int c = busy.cell;
                if (completed[c] || speculated[c])
                    continue;
                const double elapsedMs =
                    static_cast<double>(obs::monotonicNs() -
                                        busy.assignedAtNs) /
                    1e6;
                if (elapsedMs > worstMs) {
                    worstMs = elapsedMs;
                    straggler = &busy;
                }
            }
            if (!straggler)
                return;
            const int c = straggler->cell;
            speculated[c] = 1;
            obs::count(&obs::Counters::speculativeRedispatches);
            obs::instant("speculative_redispatch",
                         {{"cell", std::to_string(cells_[c].id)},
                          {"stuck_pid",
                           std::to_string(straggler->proc.pid)}});
            dispatchCell(idle, c);
        }
    };

    for (auto &w : pool)
        trySpawn(w);

    while (done < cells_.size()) {
        // refill dead slots only while there is un-assigned work no
        // live worker could absorb — a respawned worker with nothing
        // pending would idle until shutdown and waste respawn budget
        size_t unassigned = 0;
        for (const auto &w : pool)
            if (w.alive && w.cell == -1)
                ++unassigned;
        for (auto &w : pool) {
            if (w.alive || pending.size() <= unassigned)
                continue;
            if (trySpawn(w)) {
                ++unassigned;
                obs::count(&obs::Counters::workerRespawns);
            }
        }
        size_t alive = 0;
        {
            // with schedule=cost, fill idle workers fastest-first so
            // the longest pending cells (the LPT queue front) land on
            // the fastest incarnations and the slowest worker takes
            // work last
            std::vector<Worker *> idle;
            for (auto &w : pool) {
                if (!w.alive)
                    continue;
                ++alive;
                if (w.ready && w.cell == -1)
                    idle.push_back(&w);
            }
            if (spec.scheduleCost && idle.size() > 1) {
                auto meanCellMs = [&](const Worker *w) {
                    if (w->stats < 0)
                        return 0.0;
                    const WorkerStats &ws = workerStats_[w->stats];
                    return ws.cellsDone
                        ? ws.busyMs /
                              static_cast<double>(ws.cellsDone)
                        : 0.0;
                };
                std::stable_sort(
                    idle.begin(), idle.end(),
                    [&](const Worker *a, const Worker *b) {
                        return meanCellMs(a) < meanCellMs(b);
                    });
            }
            for (Worker *w : idle)
                assign(*w);
        }
        obs::gaugeSet(&obs::Gauges::cellsPending,
                      static_cast<int64_t>(pending.size()));
        {
            int64_t busy = 0;
            for (const auto &w : pool)
                if (w.alive && w.cell != -1)
                    ++busy;
            obs::gaugeSet(&obs::Gauges::workersBusy, busy);
        }
        obs::gaugeSet(&obs::Gauges::cellsDone,
                      static_cast<int64_t>(done));
        if (alive == 0) {
            // every slot is dead; if any may still respawn (budget
            // left, backoff pending) wait for the earliest gate
            if (respawnBudget > 0 && !pending.empty()) {
                const auto now = Clock::now();
                Clock::time_point earliest{};
                bool waiting = false;
                for (const auto &w : pool) {
                    if (w.nextSpawnAt <= now)
                        continue;
                    if (!waiting || w.nextSpawnAt < earliest)
                        earliest = w.nextSpawnAt;
                    waiting = true;
                }
                if (waiting) {
                    const auto ms = std::chrono::duration_cast<
                        std::chrono::milliseconds>(earliest - now)
                        .count();
                    ::poll(nullptr, 0, static_cast<int>(ms) + 1);
                    continue;
                }
                // no slot is gated yet spawning keeps failing: fall
                // through and burn the remaining budget next rounds
                if (respawnBudget > 0)
                    continue;
            }
            // pool unrecoverable (spawn failures / budget exhausted):
            // degrade to in-process execution of whatever is left
            // instead of erroring the cells — slower, never wrong
            if (!pending.empty()) {
                std::cerr << "stems dispatch: worker pool "
                             "unrecoverable; running "
                          << pending.size()
                          << " remaining cell(s) in-process\n";
                driver::CellExecutor exec(
                    driver::executorConfig(spec));
                while (!pending.empty()) {
                    const int cell = pending.front();
                    pending.pop_front();
                    if (completed[cell])
                        continue;
                    if (attempts[cell] == 0)
                        ++attempts[cell];
                    obs::count(&obs::Counters::degradedCells);
                    results[cell] = exec.execute(cells_[cell]);
                    results[cell].cell = cells_[cell];
                    completed[cell] = 1;
                    ++done;
                    if (progress)
                        progress(results[cell], done, cells_.size());
                }
            }
            break;
        }

        speculate();

        std::vector<pollfd> fds;
        std::vector<Worker *> fdOwner;
        for (auto &w : pool) {
            if (!w.alive)
                continue;
            fds.push_back({w.proc.fromWorker, POLLIN, 0});
            fdOwner.push_back(&w);
        }

        int timeout = -1;
        auto wakeAt = [&timeout](Clock::time_point tp,
                                 Clock::time_point now) {
            const auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(tp - now)
                .count();
            const int ms = left < 0 ? 0 : static_cast<int>(left) + 1;
            if (timeout < 0 || ms < timeout)
                timeout = ms;
        };
        {
            const auto now = Clock::now();
            for (auto &w : pool) {
                if (!w.alive)
                    continue;
                if (cfg.timeoutMs > 0 && w.cell >= 0)
                    wakeAt(w.deadline, now);
                if (cfg.heartbeatMs > 0)
                    wakeAt(w.lastHeardAt +
                               std::chrono::milliseconds(
                                   kHeartbeatMissBudget *
                                   cfg.heartbeatMs),
                           now);
            }
            // dead slots gated by backoff must wake the loop too
            for (auto &w : pool)
                if (!w.alive && !pending.empty() &&
                    w.nextSpawnAt > now)
                    wakeAt(w.nextSpawnAt, now);
            // while speculation is armed, re-evaluate stragglers on
            // a coarse cadence
            if (cfg.speculate && pending.empty() &&
                doneRttMs.size() >= 3 &&
                (timeout < 0 || timeout > 100))
                timeout = 100;
        }

        const int n = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()), timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error("dispatch: poll: " +
                                     std::string(std::strerror(errno)));
        }

        for (size_t i = 0; i < fds.size(); ++i) {
            Worker &w = *fdOwner[i];
            if (!w.alive || fds[i].revents == 0)
                continue;
            char chunk[65536];
            const ssize_t r =
                ::read(w.proc.fromWorker, chunk, sizeof(chunk));
            if (r > 0) {
                obs::count(&obs::Counters::wireBytesReceived,
                           static_cast<uint64_t>(r));
                w.lastHeardAt = Clock::now();
                w.decoder.feed(chunk, static_cast<size_t>(r));
                handleFrames(w);
            } else if (r == 0 || errno != EINTR) {
                workerLost(w, "worker exited");
            }
        }

        if (cfg.timeoutMs > 0) {
            const auto now = Clock::now();
            for (auto &w : pool) {
                if (w.alive && w.cell >= 0 && now >= w.deadline)
                    workerLost(w, "cell " +
                                      std::to_string(
                                          cells_[w.cell].id) +
                                      " timed out");
            }
        }

        // liveness, distinct from the per-cell timeout: a wedged
        // worker (no frames at all — a slow cell still heartbeats)
        // is killed fast and its cell re-queued
        if (cfg.heartbeatMs > 0) {
            const auto now = Clock::now();
            const auto budget = std::chrono::milliseconds(
                kHeartbeatMissBudget * cfg.heartbeatMs);
            for (auto &w : pool) {
                if (w.alive && now - w.lastHeardAt > budget) {
                    obs::count(&obs::Counters::heartbeatsMissed);
                    workerLost(w, "worker missed " +
                                      std::to_string(
                                          kHeartbeatMissBudget) +
                                      " heartbeats");
                }
            }
        }
    }

    for (auto &w : pool) {
        if (w.alive && w.proc.toWorker >= 0)
            writeFrame(w.proc.toWorker, encodeShutdown());
        reap(w);
    }
    wallMs_ = std::chrono::duration<double, std::milli>(
                  Clock::now() - runStart)
                  .count();
    return results;
}

std::string
workerSummary(const std::vector<WorkerStats> &stats, double wallMs)
{
    study::TablePrinter t({"Worker", "Cells", "Busy ms", "Util",
                           "Trace ms", "Study ms", "Timing ms",
                           "RSS MB", "Lost"});
    auto phaseTotal = [](const WorkerStats &ws, const char *a,
                         const char *b) {
        double ms = 0;
        for (const auto &[name, v] : ws.phaseMs)
            if (name == a || (b && name == b))
                ms += v;
        return ms;
    };
    for (const auto &ws : stats) {
        const double util = wallMs > 0 ? ws.busyMs / wallMs : 0;
        t.addRow({std::to_string(ws.pid),
                  std::to_string(ws.cellsDone),
                  study::TablePrinter::fixed(ws.busyMs, 1),
                  study::TablePrinter::pct(util),
                  study::TablePrinter::fixed(
                      phaseTotal(ws, "trace", nullptr), 1),
                  study::TablePrinter::fixed(
                      phaseTotal(ws, "system_study", "l1_study") +
                          phaseTotal(ws, "baseline", nullptr),
                      1),
                  study::TablePrinter::fixed(
                      phaseTotal(ws, "timing", nullptr), 1),
                  study::TablePrinter::fixed(
                      static_cast<double>(ws.rssKb) / 1024.0, 1),
                  std::to_string(ws.lost)});
    }
    std::ostringstream os;
    os << "stems dispatch: worker summary (wall "
       << study::TablePrinter::fixed(wallMs, 1) << " ms)\n";
    t.print(os);

    // fault-tolerance footer: only the families that actually fired,
    // so a clean run's summary stays unchanged
    static const char *const kFtFamilies[] = {
        "faults_injected",          "heartbeats_missed",
        "journal_cells_written",    "journal_cells_replayed",
        "speculative_redispatches", "degraded_cells"};
    std::string ft;
    for (const auto &[name, value] : obs::snapshotCounters()) {
        if (value == 0)
            continue;
        for (const char *family : kFtFamilies) {
            if (name == family) {
                if (!ft.empty())
                    ft += ", ";
                ft += name;
                ft += '=';
                ft += std::to_string(value);
            }
        }
    }
    if (!ft.empty())
        os << "stems dispatch: fault tolerance: " << ft << "\n";
    return os.str();
}

std::string
telemetryJson(double wallMs, const std::vector<WorkerStats> &workers)
{
    auto counters = obs::snapshotCounters();
    for (const auto &ws : workers)
        for (const auto &[name, count] : ws.counters)
            for (auto &[localName, total] : counters)
                if (localName == name)
                    total += count;

    driver::JsonWriter j;
    j.beginObject();
    j.key("telemetry").beginObject();
    j.key("schema").value(uint64_t{2});
    j.key("wall_ms").value(wallMs);
    j.key("peak_rss_kb").value(obs::peakRssKb());
    j.key("counters").beginObject();
    for (const auto &[name, count] : counters)
        j.key(name).value(count);
    j.endObject();
    // schema 2: log2-bucketed latency distributions (bucket index is
    // bit_width of the µs sample; sparse — zero buckets omitted)
    j.key("histograms").beginObject();
    for (const auto &h : obs::snapshotHistograms()) {
        j.key(h.name).beginObject();
        j.key("count").value(h.count);
        j.key("sum_us").value(h.sum);
        j.key("buckets").beginObject();
        for (const auto &[idx, n] : h.buckets)
            j.key(std::to_string(idx)).value(n);
        j.endObject();
        j.endObject();
    }
    j.endObject();
    j.key("workers").beginArray();
    for (const auto &ws : workers) {
        j.beginObject();
        j.key("pid").value(static_cast<uint64_t>(ws.pid));
        j.key("cells").value(ws.cellsDone);
        j.key("busy_ms").value(ws.busyMs);
        j.key("lost").value(ws.lost);
        j.key("peak_rss_kb").value(ws.rssKb);
        j.key("phases").beginObject();
        for (const auto &[name, ms] : ws.phaseMs)
            j.key(name).value(ms);
        j.endObject();
        j.endObject();
    }
    j.endArray();
    j.endObject();
    j.endObject();
    return j.str() + "\n";
}

std::vector<CellResult>
runDispatched(const driver::ExperimentSpec &spec,
              const ProgressFn &progress,
              std::vector<WorkerStats> *statsOut, double *wallMsOut)
{
    DispatchConfig cfg;
    cfg.workers = spec.dispatch ? spec.dispatch : 1;
    cfg.timeoutMs = spec.dispatchTimeoutMs;
    cfg.maxAttempts = spec.dispatchRetries;
    cfg.trace = !spec.traceOut.empty();
    cfg.heartbeatMs = spec.dispatchHeartbeatMs;
    cfg.backoffMs = spec.dispatchBackoffMs;
    cfg.speculate = spec.dispatchSpeculate;
    cfg.pipeline = spec.dispatchPipeline;
    Coordinator coord(spec, cfg);
    auto results = coord.run(progress);
    if (statsOut)
        *statsOut = coord.workerStats();
    if (wallMsOut)
        *wallMsOut = coord.wallMs();
    return results;
}

} // namespace stems::dispatch
