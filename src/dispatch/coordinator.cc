#include "dispatch/coordinator.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <filesystem>
#include <iostream>
#include <poll.h>
#include <stdexcept>
#include <sys/wait.h>
#include <unistd.h>

#include "dispatch/wire.hh"

namespace stems::dispatch {

using driver::CellResult;
using driver::ProgressFn;
using driver::RunCell;

namespace {

using Clock = std::chrono::steady_clock;

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // anonymous namespace

// ---------------------------------------------------------------------
// transport
// ---------------------------------------------------------------------

std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "stems";  // fall back to PATH lookup
    buf[n] = '\0';
    return buf;
}

LocalProcessTransport::LocalProcessTransport(std::string exe)
    : exe(std::move(exe))
{
}

WorkerProcess
LocalProcessTransport::spawn()
{
    int toChild[2], fromChild[2];
    if (::pipe(toChild) != 0)
        throw std::runtime_error("dispatch: pipe: " +
                                 std::string(std::strerror(errno)));
    if (::pipe(fromChild) != 0) {
        ::close(toChild[0]);
        ::close(toChild[1]);
        throw std::runtime_error("dispatch: pipe: " +
                                 std::string(std::strerror(errno)));
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(toChild[0]);
        ::close(toChild[1]);
        ::close(fromChild[0]);
        ::close(fromChild[1]);
        throw std::runtime_error("dispatch: fork: " +
                                 std::string(std::strerror(errno)));
    }
    if (pid == 0) {
        // child: wire the pipes onto stdin/stdout and become a worker
        ::dup2(toChild[0], STDIN_FILENO);
        ::dup2(fromChild[1], STDOUT_FILENO);
        ::close(toChild[0]);
        ::close(toChild[1]);
        ::close(fromChild[0]);
        ::close(fromChild[1]);
        ::execlp(exe.c_str(), exe.c_str(), "worker",
                 static_cast<char *>(nullptr));
        std::cerr << "stems dispatch: exec " << exe << ": "
                  << std::strerror(errno) << "\n";
        ::_exit(127);
    }

    ::close(toChild[0]);
    ::close(fromChild[1]);
    WorkerProcess proc;
    proc.pid = pid;
    proc.toWorker = toChild[1];
    proc.fromWorker = fromChild[0];
    return proc;
}

// ---------------------------------------------------------------------
// coordinator
// ---------------------------------------------------------------------

/** One pool slot's connection, decode state and in-flight assignment. */
struct Coordinator::Worker
{
    WorkerProcess proc;
    FrameDecoder decoder;
    bool alive = false;
    bool ready = false;     //!< handshake complete, can take cells
    int cell = -1;          //!< index into cells_ (-1 = idle)
    Clock::time_point deadline{};  //!< valid when cell != -1
};

Coordinator::Coordinator(const driver::ExperimentSpec &spec,
                         DispatchConfig config,
                         std::unique_ptr<Transport> transport)
    : spec(spec), cfg(std::move(config)), transport(std::move(transport)),
      cells_(driver::selectedCells(spec))
{
    if (cfg.workerExe.empty())
        cfg.workerExe = selfExePath();
    if (!this->transport)
        this->transport =
            std::make_unique<LocalProcessTransport>(cfg.workerExe);
    if (cfg.workers == 0)
        cfg.workers = 1;
    cfg.workers = std::min<uint32_t>(
        cfg.workers, static_cast<uint32_t>(cells_.size()));
    if (cfg.maxAttempts == 0)
        cfg.maxAttempts = 1;

    // workers share one trace spill dir so each workload's trace is
    // generated once per sweep; provision a temp dir when the spec
    // does not pin one (cleaned up in the destructor)
    if (this->spec.traceDir.empty()) {
        std::string tmpl =
            (std::filesystem::temp_directory_path() /
             "stems-dispatch-XXXXXX")
                .string();
        if (::mkdtemp(tmpl.data()) == nullptr)
            throw std::runtime_error("dispatch: mkdtemp: " +
                                     std::string(std::strerror(errno)));
        ownedTraceDir = tmpl;
        this->spec.traceDir = ownedTraceDir;
    }
}

Coordinator::~Coordinator()
{
    if (!ownedTraceDir.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(ownedTraceDir, ec);  // best effort
    }
}

std::vector<CellResult>
Coordinator::run(const ProgressFn &progress)
{
    std::vector<CellResult> results(cells_.size());
    if (cells_.empty())
        return results;

    // a worker dying mid-write must surface as EPIPE, not SIGPIPE
    std::signal(SIGPIPE, SIG_IGN);

    WorkerInit init;
    init.traceDir = spec.traceDir;
    init.oracleRegionSizes = spec.oracleRegionSizes;
    const std::string initFrame = encodeInit(init);

    std::deque<int> pending;  //!< cell indices awaiting a worker
    for (size_t i = 0; i < cells_.size(); ++i)
        pending.push_back(static_cast<int>(i));
    std::vector<uint32_t> attempts(cells_.size(), 0);
    size_t done = 0;

    // enough respawns that the per-cell attempt cap is the real
    // limiter, yet bounded so a fork-bomb failure mode cannot loop
    uint32_t respawnBudget = cfg.workers +
        2 * static_cast<uint32_t>(cells_.size()) *
            std::max<uint32_t>(cfg.maxAttempts, 1);

    std::vector<Worker> pool(cfg.workers);

    auto reap = [](Worker &w) {
        closeFd(w.proc.toWorker);
        closeFd(w.proc.fromWorker);
        if (w.proc.pid > 0) {
            ::kill(w.proc.pid, SIGKILL);
            ::waitpid(w.proc.pid, nullptr, 0);
            w.proc.pid = -1;
        }
        w.alive = false;
        w.ready = false;
        w.decoder = FrameDecoder();
    };

    auto failCell = [&](int cell, const std::string &reason) {
        results[cell].cell = cells_[cell];
        results[cell].error = "dispatch: " + reason + " after " +
            std::to_string(attempts[cell]) + " attempt(s)";
        ++done;
        if (progress)
            progress(results[cell], done, cells_.size());
    };

    // a worker died (crash, timeout, protocol error): re-queue its
    // in-flight cell or, past the attempt cap, record the failure
    // through the cell-error path
    auto workerLost = [&](Worker &w, const std::string &reason) {
        const int cell = w.cell;
        w.cell = -1;
        reap(w);
        if (cell < 0)
            return;
        if (attempts[cell] >=
            std::max<uint32_t>(cfg.maxAttempts, 1)) {
            failCell(cell, reason);
        } else {
            pending.push_front(cell);  // retry promptly, other worker
        }
    };

    auto trySpawn = [&](Worker &w) -> bool {
        if (respawnBudget == 0)
            return false;
        --respawnBudget;
        try {
            w.proc = transport->spawn();
        } catch (const std::exception &e) {
            std::cerr << "stems dispatch: spawn failed: " << e.what()
                      << "\n";
            return false;
        }
        w.alive = true;
        w.ready = false;
        w.cell = -1;
        w.decoder = FrameDecoder();
        if (!writeFrame(w.proc.toWorker, initFrame)) {
            reap(w);
            return false;
        }
        return true;
    };

    auto assign = [&](Worker &w) {
        if (!w.alive || !w.ready || w.cell != -1 || pending.empty())
            return;
        const int cell = pending.front();
        pending.pop_front();
        ++attempts[cell];
        w.cell = cell;
        if (cfg.timeoutMs > 0)
            w.deadline = Clock::now() +
                std::chrono::milliseconds(cfg.timeoutMs);
        if (!writeFrame(w.proc.toWorker,
                        encodeCellJob(cells_[cell])))
            workerLost(w, "worker rejected cell " +
                              std::to_string(cells_[cell].id));
    };

    // drain every complete frame buffered for one worker
    auto handleFrames = [&](Worker &w) {
        std::string payload;
        for (;;) {
            try {
                if (!w.decoder.next(payload))
                    return;
                const JsonValue msg = parseJson(payload);
                const std::string &type = messageType(msg);
                if (type == "ready") {
                    w.ready = true;
                } else if (type == "result") {
                    CellResult wire = decodeResult(msg);
                    const int cell = w.cell;
                    if (cell < 0 ||
                        wire.cell.id != cells_[cell].id) {
                        workerLost(w, "worker answered for the wrong "
                                      "cell");
                        return;
                    }
                    // the coordinator's cell is authoritative for the
                    // report; the wire carries measurements only
                    results[cell].cell = cells_[cell];
                    results[cell].metrics = std::move(wire.metrics);
                    results[cell].error = std::move(wire.error);
                    w.cell = -1;
                    ++done;
                    if (progress)
                        progress(results[cell], done, cells_.size());
                } else {
                    workerLost(w, "unexpected message \"" + type +
                                      "\"");
                    return;
                }
            } catch (const std::exception &e) {
                workerLost(w, std::string("protocol error (") +
                                  e.what() + ")");
                return;
            }
            assign(w);
        }
    };

    for (auto &w : pool)
        trySpawn(w);

    while (done < cells_.size()) {
        // refill dead slots only while un-assigned work exists — a
        // respawned worker with nothing pending would idle until
        // shutdown and waste respawn budget
        size_t alive = 0;
        for (auto &w : pool) {
            if (!w.alive && !pending.empty())
                trySpawn(w);
            if (w.alive) {
                ++alive;
                assign(w);
            }
        }
        if (alive == 0) {
            // pool unrecoverable (spawn failures / budget exhausted):
            // fail whatever is left through the cell-error path
            while (!pending.empty()) {
                const int cell = pending.front();
                pending.pop_front();
                if (attempts[cell] == 0)
                    ++attempts[cell];
                failCell(cell, "no workers available");
            }
            break;
        }

        std::vector<pollfd> fds;
        std::vector<Worker *> fdOwner;
        for (auto &w : pool) {
            if (!w.alive)
                continue;
            fds.push_back({w.proc.fromWorker, POLLIN, 0});
            fdOwner.push_back(&w);
        }

        int timeout = -1;
        if (cfg.timeoutMs > 0) {
            const auto now = Clock::now();
            for (auto &w : pool) {
                if (!w.alive || w.cell < 0)
                    continue;
                const auto left =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(w.deadline - now)
                        .count();
                const int ms =
                    left < 0 ? 0 : static_cast<int>(left) + 1;
                if (timeout < 0 || ms < timeout)
                    timeout = ms;
            }
        }

        const int n = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()), timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error("dispatch: poll: " +
                                     std::string(std::strerror(errno)));
        }

        for (size_t i = 0; i < fds.size(); ++i) {
            Worker &w = *fdOwner[i];
            if (!w.alive || fds[i].revents == 0)
                continue;
            char chunk[65536];
            const ssize_t r =
                ::read(w.proc.fromWorker, chunk, sizeof(chunk));
            if (r > 0) {
                w.decoder.feed(chunk, static_cast<size_t>(r));
                handleFrames(w);
            } else if (r == 0 || errno != EINTR) {
                workerLost(w, "worker exited");
            }
        }

        if (cfg.timeoutMs > 0) {
            const auto now = Clock::now();
            for (auto &w : pool) {
                if (w.alive && w.cell >= 0 && now >= w.deadline)
                    workerLost(w, "cell " +
                                      std::to_string(
                                          cells_[w.cell].id) +
                                      " timed out");
            }
        }
    }

    for (auto &w : pool) {
        if (w.alive && w.proc.toWorker >= 0)
            writeFrame(w.proc.toWorker, encodeShutdown());
        reap(w);
    }
    return results;
}

std::vector<CellResult>
runDispatched(const driver::ExperimentSpec &spec,
              const ProgressFn &progress)
{
    DispatchConfig cfg;
    cfg.workers = spec.dispatch ? spec.dispatch : 1;
    cfg.timeoutMs = spec.dispatchTimeoutMs;
    cfg.maxAttempts = spec.dispatchRetries;
    Coordinator coord(spec, cfg);
    return coord.run(progress);
}

} // namespace stems::dispatch
