/**
 * @file
 * The dispatch worker: `stems worker` runs this loop in a spawned
 * subprocess. It receives an init message followed by self-contained
 * cell jobs on stdin and writes results to stdout (see wire.hh),
 * executing each cell through the same driver::CellExecutor the
 * in-process runner uses — so a cell's metrics are identical no matter
 * where it ran. One worker executes one cell at a time; parallelism
 * comes from the coordinator's pool, crash isolation from the process
 * boundary.
 */

#ifndef STEMS_DISPATCH_WORKER_HH
#define STEMS_DISPATCH_WORKER_HH

namespace stems::dispatch {

/**
 * Serve cell jobs from @p inFd until a shutdown message or EOF.
 *
 * Fault-injection hooks for the dispatcher's own tests (no effect
 * unless set in the environment):
 *   STEMS_DISPATCH_CRASH=ID[:MARKER]   _exit(137) when cell ID
 *     arrives; with MARKER, only the attempt that creates the marker
 *     file crashes, so a re-queued attempt succeeds.
 *   STEMS_DISPATCH_SLEEP=ID:MS[:MARKER] stall cell ID for MS
 *     milliseconds (same marker semantics), to exercise timeouts.
 *
 * @return process exit status (0 on orderly shutdown/EOF).
 */
int runWorker(int inFd, int outFd);

} // namespace stems::dispatch

#endif // STEMS_DISPATCH_WORKER_HH
