#include "dispatch/json.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace stems::dispatch {

namespace {

/** Recursive-descent parser over one source string. */
class Parser
{
  public:
    explicit Parser(const std::string &src) : src(src) {}

    JsonValue
    document()
    {
        JsonValue v = value(0);
        skipWs();
        if (pos != src.size())
            fail("trailing bytes after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::invalid_argument("json: " + what + " at offset " +
                                    std::to_string(pos));
    }

    void
    skipWs()
    {
        while (pos < src.size() &&
               (src[pos] == ' ' || src[pos] == '\t' ||
                src[pos] == '\n' || src[pos] == '\r'))
            ++pos;
    }

    char
    peek() const
    {
        return pos < src.size() ? src[pos] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consume(const char *lit)
    {
        size_t n = 0;
        while (lit[n])
            ++n;
        if (src.compare(pos, n, lit) != 0)
            return false;
        pos += n;
        return true;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos < src.size()) {
            char c = src[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= src.size())
                fail("unterminated escape");
            char e = src[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > src.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = src[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // the engine only emits \u00xx control escapes; encode
                // anything else as UTF-8 so nothing is lost
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
        fail("unterminated string");
    }

    JsonValue
    value(int depth)
    {
        if (depth > 64)
            fail("nesting too deep");
        skipWs();
        JsonValue v;
        v.rawBegin = pos;
        char c = peek();
        if (c == '{') {
            ++pos;
            v.kind = JsonValue::Kind::Object;
            skipWs();
            if (peek() == '}') {
                ++pos;
            } else {
                for (;;) {
                    skipWs();
                    std::string key = string();
                    skipWs();
                    expect(':');
                    v.members.emplace_back(std::move(key),
                                           value(depth + 1));
                    skipWs();
                    if (peek() == ',') {
                        ++pos;
                        continue;
                    }
                    expect('}');
                    break;
                }
            }
        } else if (c == '[') {
            ++pos;
            v.kind = JsonValue::Kind::Array;
            skipWs();
            if (peek() == ']') {
                ++pos;
            } else {
                for (;;) {
                    v.items.push_back(value(depth + 1));
                    skipWs();
                    if (peek() == ',') {
                        ++pos;
                        continue;
                    }
                    expect(']');
                    break;
                }
            }
        } else if (c == '"') {
            v.kind = JsonValue::Kind::String;
            v.text = string();
        } else if (c == 't') {
            if (!consume("true"))
                fail("bad literal");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
        } else if (c == 'f') {
            if (!consume("false"))
                fail("bad literal");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
        } else if (c == 'n') {
            if (!consume("null"))
                fail("bad literal");
            v.kind = JsonValue::Kind::Null;
        } else if (c == '-' || (c >= '0' && c <= '9')) {
            v.kind = JsonValue::Kind::Number;
            const size_t start = pos;
            if (peek() == '-')
                ++pos;
            while (pos < src.size() &&
                   ((src[pos] >= '0' && src[pos] <= '9') ||
                    src[pos] == '.' || src[pos] == 'e' ||
                    src[pos] == 'E' || src[pos] == '+' ||
                    src[pos] == '-'))
                ++pos;
            v.text = src.substr(start, pos - start);
            if (v.text.empty() || v.text == "-")
                fail("bad number");
        } else {
            fail("unexpected byte");
        }
        v.rawEnd = pos;
        return v;
    }

    const std::string &src;
    size_t pos = 0;
};

} // anonymous namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throw std::invalid_argument("json: missing key \"" + key + "\"");
    return *v;
}

uint64_t
JsonValue::asU64() const
{
    // strict: a malformed wire value must throw (the coordinator maps
    // that to a worker protocol error and a cell-error past the retry
    // cap) rather than silently decode as zero or a wrapped negative
    if (kind != Kind::Number)
        throw std::invalid_argument("json: expected number");
    if (text.empty() || text[0] == '-')
        throw std::invalid_argument("json: expected unsigned integer, "
                                    "got \"" + text + "\"");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE)
        throw std::invalid_argument("json: integer overflow in \"" +
                                    text + "\"");
    if (end != text.c_str() + text.size())
        throw std::invalid_argument("json: trailing bytes in integer \""
                                    + text + "\"");
    return v;
}

double
JsonValue::asDouble() const
{
    if (kind != Kind::Number && kind != Kind::String)
        throw std::invalid_argument("json: expected number");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size())
        throw std::invalid_argument("json: malformed number \"" + text +
                                    "\"");
    // NaN/inf (including hexfloat overflow) must not enter the metric
    // fold: a NaN uIPC would propagate into the report as null and
    // silently corrupt aggregates
    if (!std::isfinite(v))
        throw std::invalid_argument("json: non-finite number \"" + text +
                                    "\"");
    return v;
}

const std::string &
JsonValue::asString() const
{
    if (kind != Kind::String)
        throw std::invalid_argument("json: expected string");
    return text;
}

bool
JsonValue::asBool() const
{
    if (kind != Kind::Bool)
        throw std::invalid_argument("json: expected bool");
    return boolean;
}

JsonValue
parseJson(const std::string &src)
{
    return Parser(src).document();
}

} // namespace stems::dispatch
