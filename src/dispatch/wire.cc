#include "dispatch/wire.hh"

#include <cerrno>
#include <cstdio>
#include <stdexcept>
#include <unistd.h>

#include "driver/report.hh"
#include "obs/counters.hh"

namespace stems::dispatch {

namespace {

using driver::JsonWriter;

/** Bit-exact double encoding (C99 hexfloat; strtod round-trips it). */
std::string
hexDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

void
writeOptions(JsonWriter &j, const driver::Options &opts)
{
    j.beginObject();
    for (const auto &[k, v] : opts)
        j.key(k).value(v);
    j.endObject();
}

driver::Options
readOptions(const JsonValue &v)
{
    driver::Options out;
    for (const auto &[k, val] : v.members)
        out[k] = val.asString();
    return out;
}

void
writeCacheConfig(JsonWriter &j, const mem::CacheConfig &c)
{
    j.beginArray();
    j.value(c.sizeBytes);
    j.value(uint64_t{c.assoc});
    j.value(uint64_t{c.blockSize});
    j.value(static_cast<uint64_t>(c.repl));
    j.endArray();
}

mem::CacheConfig
readCacheConfig(const JsonValue &v)
{
    if (v.kind != JsonValue::Kind::Array || v.items.size() != 4)
        throw std::invalid_argument("wire: bad cache config");
    mem::CacheConfig c;
    c.sizeBytes = v.items[0].asU64();
    c.assoc = static_cast<uint32_t>(v.items[1].asU64());
    c.blockSize = static_cast<uint32_t>(v.items[2].asU64());
    c.repl = static_cast<mem::ReplKind>(v.items[3].asU64());
    return c;
}

void
writeU64Array(JsonWriter &j, const std::vector<uint64_t> &values)
{
    j.beginArray();
    for (uint64_t v : values)
        j.value(v);
    j.endArray();
}

std::vector<uint64_t>
readU64Array(const JsonValue &v)
{
    std::vector<uint64_t> out;
    out.reserve(v.items.size());
    for (const auto &item : v.items)
        out.push_back(item.asU64());
    return out;
}

/**
 * One timing pass as [cycles, user_instr, sys_instr, 6x breakdown];
 * doubles ride as hexfloat strings for bit-exact round trips.
 */
void
writeTimingResult(JsonWriter &j, const sim::TimingResult &t)
{
    j.beginArray();
    j.value(hexDouble(t.cycles));
    j.value(t.userInstructions);
    j.value(t.systemInstructions);
    j.value(hexDouble(t.breakdown.userBusy));
    j.value(hexDouble(t.breakdown.systemBusy));
    j.value(hexDouble(t.breakdown.offChipRead));
    j.value(hexDouble(t.breakdown.onChipRead));
    j.value(hexDouble(t.breakdown.storeBuffer));
    j.value(hexDouble(t.breakdown.other));
    j.endArray();
}

/**
 * The v4 result telemetry sidecar: phase wall times (hexfloat ms),
 * a worker counter snapshot, peak RSS, and the worker's buffered
 * spans as [name, ph, ts_ns, dur_ns, tid, {args}] tuples.
 */
void
writeTelemetry(JsonWriter &j, const obs::CellTelemetry &t)
{
    j.beginObject();
    j.key("phases").beginArray();
    for (const auto &[name, ms] : t.phases) {
        j.beginArray();
        j.value(name);
        j.value(hexDouble(ms));
        j.endArray();
    }
    j.endArray();
    j.key("counters").beginArray();
    for (const auto &[name, count] : t.counters) {
        j.beginArray();
        j.value(name);
        j.value(count);
        j.endArray();
    }
    j.endArray();
    j.key("rss_kb").value(t.rssKb);
    j.key("spans").beginArray();
    for (const auto &e : t.spans) {
        j.beginArray();
        j.value(e.name);
        j.value(std::string(1, e.phase));
        j.value(e.tsNs);
        j.value(e.durNs);
        j.value(uint64_t{e.tid});
        j.beginObject();
        for (const auto &[k, v] : e.args)
            j.key(k).value(v);
        j.endObject();
        j.endArray();
    }
    j.endArray();
    j.endObject();
}

obs::CellTelemetry
readTelemetry(const JsonValue &v)
{
    obs::CellTelemetry t;
    if (const JsonValue *phases = v.find("phases"))
        for (const auto &pair : phases->items) {
            if (pair.items.size() != 2)
                throw std::invalid_argument("wire: bad phase pair");
            t.phases.emplace_back(pair.items[0].asString(),
                                  pair.items[1].asDouble());
        }
    if (const JsonValue *counters = v.find("counters"))
        for (const auto &pair : counters->items) {
            if (pair.items.size() != 2)
                throw std::invalid_argument("wire: bad counter pair");
            t.counters.emplace_back(pair.items[0].asString(),
                                    pair.items[1].asU64());
        }
    if (const JsonValue *rss = v.find("rss_kb"))
        t.rssKb = rss->asU64();
    if (const JsonValue *spans = v.find("spans"))
        for (const auto &tuple : spans->items) {
            if (tuple.items.size() != 6 ||
                tuple.items[1].asString().size() != 1)
                throw std::invalid_argument("wire: bad span tuple");
            obs::Event e;
            e.name = tuple.items[0].asString();
            e.phase = tuple.items[1].asString()[0];
            e.tsNs = tuple.items[2].asU64();
            e.durNs = tuple.items[3].asU64();
            e.tid = static_cast<uint32_t>(tuple.items[4].asU64());
            for (const auto &[k, val] : tuple.items[5].members)
                e.args.emplace_back(k, val.asString());
            t.spans.push_back(std::move(e));
        }
    return t;
}

sim::TimingResult
readTimingResult(const JsonValue &v)
{
    if (v.kind != JsonValue::Kind::Array || v.items.size() != 9)
        throw std::invalid_argument("wire: bad timing result");
    sim::TimingResult t;
    t.cycles = v.items[0].asDouble();
    t.userInstructions = v.items[1].asU64();
    t.systemInstructions = v.items[2].asU64();
    t.breakdown.userBusy = v.items[3].asDouble();
    t.breakdown.systemBusy = v.items[4].asDouble();
    t.breakdown.offChipRead = v.items[5].asDouble();
    t.breakdown.onChipRead = v.items[6].asDouble();
    t.breakdown.storeBuffer = v.items[7].asDouble();
    t.breakdown.other = v.items[8].asDouble();
    return t;
}

} // anonymous namespace

const std::string &
messageType(const JsonValue &msg)
{
    return msg.at("type").asString();
}

std::string
encodeInit(const WorkerInit &init)
{
    JsonWriter j;
    j.beginObject();
    j.key("type").value("init");
    j.key("protocol").value(uint64_t{init.protocol});
    j.key("trace_dir").value(init.traceDir);
    j.key("oracle_regions").beginArray();
    for (uint32_t s : init.oracleRegionSizes)
        j.value(uint64_t{s});
    j.endArray();
    j.key("trace").value(init.trace);
    j.key("heartbeat_ms").value(uint64_t{init.heartbeatMs});
    j.key("pipeline").value(init.pipeline);
    j.endObject();
    return j.str();
}

WorkerInit
decodeInit(const JsonValue &msg)
{
    WorkerInit init;
    init.protocol = static_cast<uint32_t>(msg.at("protocol").asU64());
    if (init.protocol != kProtocolVersion)
        throw std::invalid_argument(
            "wire: protocol mismatch (coordinator " +
            std::to_string(init.protocol) + ", worker " +
            std::to_string(kProtocolVersion) + ")");
    init.traceDir = msg.at("trace_dir").asString();
    for (const auto &s : msg.at("oracle_regions").items)
        init.oracleRegionSizes.push_back(
            static_cast<uint32_t>(s.asU64()));
    // v4/v5/v6 fields; optional so readers stay tolerant
    if (const JsonValue *trace = msg.find("trace"))
        init.trace = trace->asBool();
    if (const JsonValue *hb = msg.find("heartbeat_ms"))
        init.heartbeatMs = static_cast<uint32_t>(hb->asU64());
    if (const JsonValue *pl = msg.find("pipeline"))
        init.pipeline = pl->asBool();
    return init;
}

std::string
encodeReady(int pid)
{
    JsonWriter j;
    j.beginObject();
    j.key("type").value("ready");
    j.key("pid").value(static_cast<uint64_t>(pid));
    j.endObject();
    return j.str();
}

namespace {

/** The "cell" object shared by cell jobs and prefetch hints; its
 *  encoding doubles as the journal's spec fingerprint input and must
 *  not change across retries or message types. */
void
writeCellObject(JsonWriter &j, const driver::RunCell &cell)
{
    j.key("cell").beginObject();
    j.key("id").value(uint64_t{cell.id});
    j.key("workload").value(cell.workload);
    j.key("kind").value(cell.engine.kind);
    j.key("label").value(cell.engine.label);
    j.key("options");
    writeOptions(j, cell.engine.options);
    j.key("sweep");
    writeOptions(j, cell.sweepPoint);
    j.key("ncpu").value(uint64_t{cell.params.ncpu});
    j.key("refs").value(cell.params.refsPerCpu);
    j.key("seed").value(cell.params.seed);
    j.key("sys").beginObject();
    j.key("ncpu").value(uint64_t{cell.sys.ncpu});
    j.key("l1");
    writeCacheConfig(j, cell.sys.l1);
    j.key("l2");
    writeCacheConfig(j, cell.sys.l2);
    j.endObject();
    j.key("mode").value(driver::studyModeName(cell.mode));
    j.key("timing").value(cell.timing);
    j.key("timing_only").value(cell.timingOnly);
    j.key("density").value(uint64_t{cell.densityRegion});
    j.endObject();
}

} // anonymous namespace

std::string
encodeCellJob(const driver::RunCell &cell, uint32_t attempt)
{
    JsonWriter j;
    j.beginObject();
    j.key("type").value("cell");
    // attempt is a sibling of "cell" so fingerprints stay
    // attempt-independent
    j.key("attempt").value(uint64_t{attempt});
    writeCellObject(j, cell);
    j.endObject();
    return j.str();
}

std::string
encodePrefetch(const driver::RunCell &cell)
{
    JsonWriter j;
    j.beginObject();
    j.key("type").value("prefetch");
    writeCellObject(j, cell);
    j.endObject();
    return j.str();
}

driver::RunCell
decodeCellJob(const JsonValue &msg)
{
    const JsonValue &c = msg.at("cell");
    driver::RunCell cell;
    cell.id = static_cast<uint32_t>(c.at("id").asU64());
    cell.workload = c.at("workload").asString();
    cell.engine.kind = c.at("kind").asString();
    cell.engine.label = c.at("label").asString();
    cell.engine.options = readOptions(c.at("options"));
    cell.sweepPoint = readOptions(c.at("sweep"));
    cell.params.ncpu = static_cast<uint32_t>(c.at("ncpu").asU64());
    cell.params.refsPerCpu = c.at("refs").asU64();
    cell.params.seed = c.at("seed").asU64();
    const JsonValue &sys = c.at("sys");
    cell.sys.ncpu = static_cast<uint32_t>(sys.at("ncpu").asU64());
    cell.sys.l1 = readCacheConfig(sys.at("l1"));
    cell.sys.l2 = readCacheConfig(sys.at("l2"));
    const std::string &mode = c.at("mode").asString();
    if (mode == "system")
        cell.mode = driver::StudyMode::System;
    else if (mode == "l1")
        cell.mode = driver::StudyMode::L1;
    else
        throw std::invalid_argument("wire: bad mode \"" + mode + "\"");
    cell.timing = c.at("timing").asBool();
    cell.timingOnly = c.at("timing_only").asBool();
    cell.densityRegion = static_cast<uint32_t>(c.at("density").asU64());
    return cell;
}

uint32_t
decodeCellAttempt(const JsonValue &msg)
{
    if (const JsonValue *attempt = msg.find("attempt"))
        return static_cast<uint32_t>(attempt->asU64());
    return 1;
}

std::string
encodeHeartbeat()
{
    return "{\"type\":\"heartbeat\"}";
}

std::string
encodeResult(const driver::CellResult &result)
{
    const driver::MetricSet &m = result.metrics;
    JsonWriter j;
    j.beginObject();
    j.key("type").value("result");
    j.key("id").value(uint64_t{result.cell.id});
    j.key("error").value(result.error);
    // schema-driven: every present family travels under its canonical
    // name; ratios are derived on both ends and never ride the wire
    j.key("metrics").beginObject();
    for (const auto &f : driver::MetricSchema::builtin().families()) {
        if (!m.present(f.id) || f.kind == driver::MetricKind::Ratio)
            continue;
        j.key(f.name);
        switch (f.kind) {
          case driver::MetricKind::Counter:
            j.value(m.u64(f.id));
            break;
          case driver::MetricKind::Value:
            j.value(hexDouble(m.value(f.id)));
            break;
          case driver::MetricKind::Histogram:
          case driver::MetricKind::Vector:
            writeU64Array(j, m.vec(f.id));
            break;
          case driver::MetricKind::Timing:
            writeTimingResult(j, m.timingResult(f.id));
            break;
          case driver::MetricKind::Ratio:
            break;
        }
    }
    j.endObject();
    j.key("counters").beginArray();
    for (const auto &[name, count] : m.pfCounters) {
        j.beginArray();
        j.value(name);
        j.value(count);
        j.endArray();
    }
    j.endArray();
    j.key("telemetry");
    writeTelemetry(j, result.telemetry);
    j.endObject();
    return j.str();
}

driver::CellResult
decodeResult(const JsonValue &msg)
{
    driver::CellResult out;
    out.cell.id = static_cast<uint32_t>(msg.at("id").asU64());
    out.error = msg.at("error").asString();
    driver::MetricSet &d = out.metrics;
    const driver::MetricSchema &schema = driver::MetricSchema::builtin();
    for (const auto &[name, value] : msg.at("metrics").members) {
        const driver::MetricFamily *f = schema.find(name);
        if (!f)
            throw std::invalid_argument(
                "wire: unknown metric family \"" + name + "\"");
        switch (f->kind) {
          case driver::MetricKind::Counter:
            d.setU64(f->id, value.asU64());
            break;
          case driver::MetricKind::Value:
            d.setValue(f->id, value.asDouble());
            break;
          case driver::MetricKind::Histogram:
          case driver::MetricKind::Vector:
            d.setVec(f->id, readU64Array(value));
            break;
          case driver::MetricKind::Timing:
            d.setTimingResult(f->id, readTimingResult(value));
            break;
          case driver::MetricKind::Ratio:
            throw std::invalid_argument(
                "wire: ratio family \"" + name + "\" is derived");
        }
    }
    for (const auto &pair : msg.at("counters").items) {
        if (pair.items.size() != 2)
            throw std::invalid_argument("wire: bad counter pair");
        d.pfCounters.emplace_back(pair.items[0].asString(),
                                  pair.items[1].asU64());
    }
    // v4 observability field; optional so readers stay tolerant
    if (const JsonValue *t = msg.find("telemetry"))
        out.telemetry = readTelemetry(*t);
    return out;
}

std::string
encodeShutdown()
{
    return "{\"type\":\"shutdown\"}";
}

// ---------------------------------------------------------------------
// framing
// ---------------------------------------------------------------------

bool
FrameDecoder::next(std::string &out)
{
    const size_t nl = buf.find('\n', consumed);
    if (nl == std::string::npos)
        return false;
    size_t len = 0;
    bool any = false;
    for (size_t i = consumed; i < nl; ++i) {
        const char c = buf[i];
        if (c < '0' || c > '9')
            throw std::invalid_argument(
                "wire: corrupt frame length prefix");
        len = len * 10 + static_cast<size_t>(c - '0');
        any = true;
        if (len > (64u << 20))
            throw std::invalid_argument("wire: frame too large");
    }
    if (!any)
        throw std::invalid_argument("wire: empty frame length prefix");
    // payload plus its trailing newline must be complete
    if (buf.size() - (nl + 1) < len + 1)
        return false;
    out.assign(buf, nl + 1, len);
    if (buf[nl + 1 + len] != '\n')
        throw std::invalid_argument("wire: missing frame terminator");
    consumed = nl + 1 + len + 1;
    // periodically drop consumed bytes so the buffer stays bounded
    if (consumed > (1u << 16)) {
        buf.erase(0, consumed);
        consumed = 0;
    }
    return true;
}

bool
writeFrame(int fd, const std::string &payload)
{
    std::string frame = std::to_string(payload.size());
    frame += '\n';
    frame += payload;
    frame += '\n';
    size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n =
            ::write(fd, frame.data() + off, frame.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;  // peer gone (EPIPE with SIGPIPE ignored)
        }
        off += static_cast<size_t>(n);
    }
    obs::count(&obs::Counters::wireBytesSent, frame.size());
    return true;
}

bool
readFrame(int fd, FrameDecoder &decoder, std::string &out)
{
    for (;;) {
        if (decoder.next(out))
            return true;
        char chunk[65536];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n == 0)
            return false;  // EOF
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        obs::count(&obs::Counters::wireBytesReceived,
                   static_cast<uint64_t>(n));
        decoder.feed(chunk, static_cast<size_t>(n));
    }
}

} // namespace stems::dispatch
