/**
 * @file
 * The dispatch coordinator: farms an experiment spec's cells to a pool
 * of worker subprocesses over the wire protocol and folds their
 * results into the same ordered CellResult vector driver::Runner
 * produces — reports built from either path are byte-identical.
 *
 * Fault tolerance: a worker that crashes, returns garbage, misses its
 * liveness heartbeats, or blows a per-cell timeout is reaped and its
 * in-flight cell re-queued to another worker; after a per-cell
 * attempt cap the failure is recorded through the runner's existing
 * cell-error path (the report's "error" field) instead of taking down
 * the sweep. Dead workers are replaced as long as work remains —
 * never more replacements than there are unassigned cells — behind
 * exponential backoff with deterministic jitter, within a respawn
 * budget; when the pool is unrecoverable the remaining cells degrade
 * to in-process execution instead of erroring. Idle workers
 * speculatively re-run tail stragglers' cells (first result wins)
 * when configured.
 *
 * Workers share generated .stmt traces through the TraceCache spill
 * dir (a temp dir is provisioned when the spec has none), so each
 * workload's trace is generated once per sweep, not once per worker.
 *
 * The Transport seam is the machine-list hook: LocalProcessTransport
 * forks `stems worker` on this host; a future remote transport only
 * has to hand back the same pipe-fd triple.
 */

#ifndef STEMS_DISPATCH_COORDINATOR_HH
#define STEMS_DISPATCH_COORDINATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

#include "driver/runner.hh"
#include "driver/spec.hh"

namespace stems::dispatch {

/** A spawned worker's process handle and pipe endpoints. */
struct WorkerProcess
{
    pid_t pid = -1;
    int toWorker = -1;    //!< write end (worker stdin)
    int fromWorker = -1;  //!< read end (worker stdout)
};

/** Launches workers; the seam future machine-list transports fill. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Launch one worker; throws std::runtime_error on failure. */
    virtual WorkerProcess spawn() = 0;
};

/** Forks `<exe> worker` on this host with stdin/stdout pipes. */
class LocalProcessTransport : public Transport
{
  public:
    explicit LocalProcessTransport(std::string exe);

    WorkerProcess spawn() override;

  private:
    std::string exe;
};

/** Pool shape and failure policy. */
struct DispatchConfig
{
    uint32_t workers = 4;
    uint32_t timeoutMs = 0;     //!< per-cell timeout (0 = none)
    uint32_t maxAttempts = 3;   //!< per-cell tries before giving up
    std::string workerExe;      //!< "" = this binary (/proc/self/exe)
    bool trace = false;         //!< workers record + ship spans (v4)

    /**
     * Worker liveness heartbeat period (0 = off). Distinct from the
     * per-cell timeout: a worker that misses kHeartbeatMissBudget
     * consecutive heartbeats is wedged (hung syscall, deadlock) and
     * is killed fast, while a slow-but-heartbeating cell runs on.
     */
    uint32_t heartbeatMs = 0;

    /**
     * Base respawn backoff in ms (0 = immediate respawn). A slot's
     * delay doubles per consecutive loss (capped at 5 s) with
     * deterministic jitter, so a crash-looping worker cannot pin the
     * coordinator in a fork storm.
     */
    uint32_t backoffMs = 50;

    /**
     * Re-dispatch a tail straggler's cell to an idle worker when its
     * round trip exceeds 3x the median completed round trip (and a
     * floor); the first result wins, the loser is discarded. At most
     * one speculative copy per cell.
     */
    bool speculate = false;

    /**
     * Worker-side lookahead pipelining (protocol v6): after assigning
     * a cell, send the queue head as an advisory "prefetch" frame so
     * the worker warms the next trace while the current cell
     * simulates. Purely a latency optimization — results and report
     * bytes are identical either way.
     */
    bool pipeline = false;
};

/**
 * Health telemetry for one worker incarnation (one spawned process;
 * a respawned slot appends a fresh entry). busyMs is measured on the
 * coordinator side — assignment to result, wire time included — so
 * stragglers show up even when a worker's own clocks look healthy.
 */
struct WorkerStats
{
    pid_t pid = -1;
    uint64_t cellsDone = 0;
    uint64_t lost = 0;      //!< crash/timeout/protocol events
    double busyMs = 0;      //!< total assign→result round-trip
    /** Phase wall-ms totals folded from per-cell worker telemetry. */
    std::vector<std::pair<std::string, double>> phaseMs;
    /** Latest worker counter snapshot (v4 results only). */
    std::vector<std::pair<std::string, uint64_t>> counters;
    uint64_t rssKb = 0;     //!< worker peak RSS high-water mark
};

/**
 * The per-worker utilization/straggler summary as an ASCII table.
 * @param wallMs the dispatch run's wall time (utilization denominator)
 */
std::string workerSummary(const std::vector<WorkerStats> &stats,
                          double wallMs);

/** Multi-process analogue of driver::Runner. */
class Coordinator
{
  public:
    /**
     * @param spec       experiment to run (cells=-filter honoured)
     * @param config     pool shape; config.workers is clamped to the
     *                   cell count
     * @param transport  worker launcher; nullptr = local processes
     *                   running config.workerExe
     */
    Coordinator(const driver::ExperimentSpec &spec,
                DispatchConfig config,
                std::unique_ptr<Transport> transport = nullptr);
    ~Coordinator();

    /** Run all cells; results ordered as driver::Runner orders them. */
    std::vector<driver::CellResult>
    run(const driver::ProgressFn &progress = {});

    const std::vector<driver::RunCell> &cells() const { return cells_; }

    /** Per-incarnation worker health stats from the last run(). */
    const std::vector<WorkerStats> &workerStats() const
    {
        return workerStats_;
    }

    /** Wall time of the last run() in ms. */
    double wallMs() const { return wallMs_; }

  private:
    struct Worker;

    driver::ExperimentSpec spec;
    DispatchConfig cfg;
    std::unique_ptr<Transport> transport;
    std::vector<driver::RunCell> cells_;
    std::string ownedTraceDir;  //!< temp spill dir we created (cleaned)
    std::vector<WorkerStats> workerStats_;
    double wallMs_ = 0;
};

/** This binary's path (for spawning `stems worker` from itself). */
std::string selfExePath();

/**
 * The end-of-run telemetry document (schema 2): wall time, the
 * process counter registry (with any worker snapshots folded in by
 * name), latency histograms and peak RSS. Shared by `stems run`
 * (--telemetry-out) and the serve daemon's shutdown dump so both
 * artifacts parse identically.
 */
std::string telemetryJson(double wallMs,
                          const std::vector<WorkerStats> &workers);

/**
 * Convenience wrapper for the CLI: dispatch @p spec across
 * spec.dispatch local workers with the spec's timeout/retry policy.
 * When @p statsOut is non-null it receives the per-worker health
 * stats (and the run's wall ms in the paired double).
 */
std::vector<driver::CellResult>
runDispatched(const driver::ExperimentSpec &spec,
              const driver::ProgressFn &progress = {},
              std::vector<WorkerStats> *statsOut = nullptr,
              double *wallMsOut = nullptr);

} // namespace stems::dispatch

#endif // STEMS_DISPATCH_COORDINATOR_HH
