#include "dispatch/merge.hh"

#include <map>
#include <stdexcept>

#include "dispatch/json.hh"

namespace stems::dispatch {

ParsedReport
parseReport(const std::string &text)
{
    const JsonValue doc = parseJson(text);
    if (doc.kind != JsonValue::Kind::Object)
        throw std::invalid_argument("merge: not a report object");
    const JsonValue *engine = doc.find("engine");
    if (!engine || engine->kind != JsonValue::Kind::String ||
        engine->text != "stems")
        throw std::invalid_argument("merge: not a stems report");
    const JsonValue *cells = doc.find("cells");
    if (!cells || cells->kind != JsonValue::Kind::Array)
        throw std::invalid_argument("merge: report has no cells array");

    ParsedReport out;
    // rawBegin is the '[' of the cells array; keep it in the prefix so
    // prefix + joined cells + suffix reassembles the document
    out.prefix = text.substr(0, cells->rawBegin + 1);
    out.suffix = text.substr(cells->rawEnd - 1);
    out.cells.reserve(cells->items.size());
    for (const JsonValue &cell : cells->items) {
        if (cell.kind != JsonValue::Kind::Object)
            throw std::invalid_argument("merge: non-object cell");
        ParsedReport::Cell c;
        c.id = static_cast<uint32_t>(cell.at("id").asU64());
        c.ok = cell.find("error") == nullptr;
        c.raw = text.substr(cell.rawBegin,
                            cell.rawEnd - cell.rawBegin);
        out.cells.push_back(std::move(c));
    }
    return out;
}

std::string
mergeReports(const std::vector<std::string> &texts)
{
    if (texts.empty())
        throw std::invalid_argument("merge: no reports given");

    ParsedReport first = parseReport(texts[0]);
    // ordered by id so the merged cells array matches the expansion
    // order a full single run would emit
    std::map<uint32_t, ParsedReport::Cell> chosen;

    auto fold = [&](ParsedReport &&report) {
        for (auto &cell : report.cells) {
            // first ok occurrence wins; an ok cell repairs an earlier
            // failed one, everything else keeps the earlier
            auto it = chosen.find(cell.id);
            if (it == chosen.end())
                chosen.emplace(cell.id, std::move(cell));
            else if (!it->second.ok && cell.ok)
                it->second = std::move(cell);
        }
    };

    const std::string prefix = first.prefix;
    const std::string suffix = first.suffix;
    fold(std::move(first));
    for (size_t i = 1; i < texts.size(); ++i) {
        ParsedReport report = parseReport(texts[i]);
        if (report.prefix != prefix || report.suffix != suffix)
            throw std::invalid_argument(
                "merge: report " + std::to_string(i + 1) +
                " was built from a different spec (run the partials "
                "with identical keys apart from cells=)");
        fold(std::move(report));
    }

    std::string out = prefix;
    bool firstCell = true;
    for (const auto &[id, cell] : chosen) {
        if (!firstCell)
            out += ',';
        firstCell = false;
        out += cell.raw;
    }
    out += suffix;
    return out;
}

} // namespace stems::dispatch
