/**
 * @file
 * The dispatch wire protocol: length-prefixed newline-JSON frames over
 * pipes between the coordinator and its worker processes.
 *
 * One frame is `<decimal byte length>\n<json>\n`. The length prefix
 * makes framing trivial and the trailing newline keeps a captured
 * stream human-readable (`stems worker` under a terminal prints one
 * JSON document per line).
 *
 * Message flow:
 *   coordinator -> worker:  init, cell*, shutdown
 *   worker -> coordinator:  ready, heartbeat*, result*
 *
 * Since protocol v5, the coordinator may request liveness heartbeats
 * (init "heartbeat_ms" > 0): a worker thread then emits "heartbeat"
 * frames on that period, letting the coordinator kill a wedged worker
 * fast without any per-cell timeout — a slow cell keeps heartbeating,
 * a hung process does not. Cell jobs also carry the coordinator's
 * attempt number ("attempt", a sibling of the "cell" object so cell
 * fingerprints stay attempt-independent), which seeds deterministic
 * fault injection (src/fault/) and first-attempt-only chaos clauses.
 *
 * Doubles (uIPC, wall times) travel as C99 hexfloat strings so metric
 * values survive the round trip bit-exactly — the merged report must
 * be byte-identical to a single-process run.
 *
 * Since protocol v4, messages carry optional observability fields,
 * all read tolerantly (JsonValue::find), so readers ignore what they
 * don't know: init gains "trace" (enable the worker's span recorder)
 * and result gains "telemetry" — the worker's per-cell phase wall
 * times, a process counter snapshot, peak RSS, and (when tracing)
 * its buffered spans, which the coordinator re-tags with the worker
 * pid and merges into one machine-wide trace timeline.
 *
 * Since protocol v6, the coordinator may pipeline: after assigning a
 * cell it sends a "prefetch" frame naming the worker's likely next
 * cell, and the worker warms that cell's trace (CellExecutor::
 * prefetch on its StreamSet) on a background thread while the current
 * cell simulates. Prefetch is advisory — it never produces a result
 * frame and a worker that ignores it is still correct. The same
 * protocol constant versions the serve-layer socket hello handshake
 * (src/serve/), so a pipe coordinator and a socket daemon can never
 * silently disagree about frame contents.
 *
 * Since protocol v3, result metrics are schema-driven: the encoder
 * iterates the MetricSchema and writes every present family under its
 * canonical name with a kind-appropriate encoding (counters as
 * numbers, values as hexfloat strings, histograms/vectors as arrays,
 * timing passes as mixed arrays). Ratio families never travel — they
 * are derived from the folded operands on both ends. A new metric
 * family therefore rides the wire with no protocol edit.
 */

#ifndef STEMS_DISPATCH_WIRE_HH
#define STEMS_DISPATCH_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dispatch/json.hh"
#include "driver/executor.hh"
#include "driver/spec.hh"

namespace stems::dispatch {

/** Wire protocol version; bumped on incompatible message changes. */
constexpr uint32_t kProtocolVersion = 6;

/** Spec-global settings shipped to a worker before any cells. */
struct WorkerInit
{
    uint32_t protocol = kProtocolVersion;
    std::string traceDir;  //!< shared .stmt spill dir ("" = live gen)
    std::vector<uint32_t> oracleRegionSizes;
    bool trace = false;    //!< enable the worker's span recorder (v4)
    uint32_t heartbeatMs = 0;  //!< liveness frame period (v5; 0 = off)
    bool pipeline = false; //!< expect lookahead prefetch frames (v6)
};

// message payloads (each is one self-contained JSON document)

std::string encodeInit(const WorkerInit &init);
WorkerInit decodeInit(const JsonValue &msg);

std::string encodeReady(int pid);

/**
 * @param attempt the coordinator's 1-based try counter for this cell,
 *        shipped OUTSIDE the "cell" object so the cell encoding (and
 *        hence journal spec fingerprints) stays attempt-independent
 */
std::string encodeCellJob(const driver::RunCell &cell,
                          uint32_t attempt = 1);
driver::RunCell decodeCellJob(const JsonValue &msg);

/** The "attempt" field of a cell job (1 when absent). */
uint32_t decodeCellAttempt(const JsonValue &msg);

/**
 * Advisory lookahead hint (v6): the worker should warm @p cell's
 * trace in the background. Decoded with decodeCellJob (the "cell"
 * object layout is shared with cell jobs).
 */
std::string encodePrefetch(const driver::RunCell &cell);

std::string encodeHeartbeat();

std::string encodeResult(const driver::CellResult &result);
/** Decodes metrics/error; the cell field carries only the id. */
driver::CellResult decodeResult(const JsonValue &msg);

std::string encodeShutdown();

/** The "type" member of a decoded message. */
const std::string &messageType(const JsonValue &msg);

// framing

/**
 * Incremental frame splitter: feed() raw pipe bytes, next() yields
 * complete JSON payloads as they become available.
 */
class FrameDecoder
{
  public:
    void feed(const char *data, size_t len) { buf.append(data, len); }

    /**
     * Extract the next complete frame into @p out.
     * @return true when a frame was produced.
     * Throws std::invalid_argument on a corrupt length prefix.
     */
    bool next(std::string &out);

  private:
    std::string buf;
    size_t consumed = 0;
};

/**
 * Write one frame, handling partial writes and EINTR.
 * @return false when the peer is gone (EPIPE/closed fd).
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * Blocking read of the next frame from @p fd.
 * @return false on EOF or read error.
 */
bool readFrame(int fd, FrameDecoder &decoder, std::string &out);

} // namespace stems::dispatch

#endif // STEMS_DISPATCH_WIRE_HH
