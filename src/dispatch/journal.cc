#include "dispatch/journal.hh"

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <iostream>
#include <stdexcept>
#include <unistd.h>

#include <memory>

#include "dispatch/wire.hh"
#include "driver/options.hh"
#include "driver/report.hh"
#include "fault/fault.hh"
#include "serve/transport.hh"
#include "obs/counters.hh"
#include "obs/histogram.hh"
#include "obs/obs.hh"

namespace stems::dispatch {

using driver::CellResult;
using driver::ProgressFn;

namespace {

constexpr uint32_t kJournalVersion = 1;

std::string
hexU64(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

std::string
headerFrame(uint64_t specHash, uint64_t cellCount)
{
    driver::JsonWriter j;
    j.beginObject();
    j.key("type").value("journal");
    j.key("version").value(uint64_t{kJournalVersion});
    j.key("spec").value(hexU64(specHash));
    j.key("cells").value(cellCount);
    j.endObject();
    return j.str();
}

std::string
frameBytes(const std::string &payload)
{
    std::string frame = std::to_string(payload.size());
    frame += '\n';
    frame += payload;
    frame += '\n';
    return frame;
}

bool
writeAll(int fd, const std::string &bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/**
 * Scan one frame starting at @p off in @p buf. Returns true and
 * advances @p off past the frame, filling @p payload; false when the
 * remaining bytes do not hold a complete well-formed frame (the torn
 * tail a killed writer leaves).
 */
bool
scanFrame(const std::string &buf, size_t &off, std::string &payload)
{
    const size_t nl = buf.find('\n', off);
    if (nl == std::string::npos || nl == off)
        return false;
    size_t len = 0;
    for (size_t i = off; i < nl; ++i) {
        const char c = buf[i];
        if (c < '0' || c > '9')
            return false;
        len = len * 10 + static_cast<size_t>(c - '0');
        if (len > (64u << 20))
            return false;
    }
    if (buf.size() - (nl + 1) < len + 1)
        return false;
    if (buf[nl + 1 + len] != '\n')
        return false;
    payload.assign(buf, nl + 1, len);
    off = nl + 1 + len + 1;
    return true;
}

std::string
slurpFile(const std::string &path)
{
    std::string out;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return out;
    char chunk[65536];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        out.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
}

} // anonymous namespace

uint64_t
specFingerprint(const std::vector<driver::RunCell> &cells)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    auto fold = [&h](const std::string &s) {
        for (unsigned char c : s) {
            h ^= c;
            h *= 0x100000001b3ULL;
        }
        h ^= 0x1f;  // frame separator so encodings cannot alias
        h *= 0x100000001b3ULL;
    };
    for (const auto &cell : cells)
        fold(encodeCellJob(cell));
    return h;
}

RunJournal::~RunJournal()
{
    close();
}

void
RunJournal::open(const std::string &path, uint64_t specHash,
                 uint64_t cellCount, bool resume)
{
    close();
    replayed_.clear();
    path_ = path;

    size_t validEnd = 0;
    bool haveExisting = false;
    if (resume) {
        obs::Span span("journal_replay", {{"path", path}});
        const std::string buf = slurpFile(path);
        size_t off = 0;
        std::string payload;
        if (!buf.empty() && scanFrame(buf, off, payload)) {
            haveExisting = true;
            try {
                const JsonValue header = parseJson(payload);
                if (messageType(header) != "journal" ||
                    header.at("version").asU64() != kJournalVersion)
                    throw std::invalid_argument(
                        "journal: " + path +
                        " is not a stems run journal");
                if (header.at("spec").asString() != hexU64(specHash))
                    throw std::invalid_argument(
                        "journal: " + path +
                        " was written by a different spec (or cells= "
                        "filter) — refusing to splice unrelated "
                        "results");
            } catch (const std::invalid_argument &) {
                throw;
            } catch (const std::exception &e) {
                throw std::invalid_argument(
                    "journal: " + path + ": bad header (" + e.what() +
                    ")");
            }
            validEnd = off;
            // result frames, first-ok-wins per id; stop at the first
            // torn or unparseable frame (a killed writer's tail)
            while (scanFrame(buf, off, payload)) {
                try {
                    const JsonValue msg = parseJson(payload);
                    if (messageType(msg) != "result")
                        break;
                    CellResult r = decodeResult(msg);
                    const uint32_t id = r.cell.id;
                    if (r.error.empty() && !replayed_.count(id))
                        replayed_.emplace(id, std::move(r));
                } catch (const std::exception &) {
                    break;
                }
                validEnd = off;
            }
        }
    }

    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    if (fd_ < 0)
        throw std::runtime_error("journal: cannot open " + path + ": " +
                                 std::strerror(errno));
    if (haveExisting) {
        // drop the torn tail so appends land on a frame boundary
        if (::ftruncate(fd_, static_cast<off_t>(validEnd)) != 0 ||
            ::lseek(fd_, 0, SEEK_END) < 0) {
            const int err = errno;
            ::close(fd_);
            fd_ = -1;
            throw std::runtime_error("journal: cannot truncate " +
                                     path + ": " + std::strerror(err));
        }
        obs::count(&obs::Counters::journalCellsReplayed,
                   replayed_.size());
    } else {
        if (::ftruncate(fd_, 0) != 0 ||
            !writeAll(fd_, frameBytes(headerFrame(specHash,
                                                  cellCount))) ||
            ::fsync(fd_) != 0) {
            const int err = errno;
            ::close(fd_);
            fd_ = -1;
            throw std::runtime_error("journal: cannot write " + path +
                                     ": " + std::strerror(err));
        }
    }
}

void
RunJournal::append(const CellResult &result)
{
    if (fd_ < 0)
        return;
    obs::Span span("journal_append",
                   {{"cell", std::to_string(result.cell.id)}});
    bool ok = writeAll(fd_, frameBytes(encodeResult(result)));
    if (ok) {
        const uint64_t t0 = obs::monotonicNs();
        ok = ::fsync(fd_) == 0;
        obs::recordHist(&obs::Histograms::journalFsyncUs,
                        (obs::monotonicNs() - t0) / 1000);
    }
    if (!ok) {
        std::cerr << "stems: journal write to " << path_
                  << " failed (" << std::strerror(errno)
                  << "); continuing without durability\n";
        close();
        return;
    }
    obs::count(&obs::Counters::journalCellsWritten);
}

void
RunJournal::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::vector<CellResult>
runSpec(const driver::ExperimentSpec &spec, const ProgressFn &progress,
        std::vector<WorkerStats> *statsOut, double *wallMsOut)
{
    if (statsOut)
        statsOut->clear();
    if (wallMsOut)
        *wallMsOut = 0;

    // chaos plan: install process-wide (spill faults fire in-process
    // too) and export so forked workers inherit it; validate before
    // any work happens
    if (!spec.faultPlan.empty()) {
        fault::installPlan(fault::parsePlan(spec.faultPlan));
        ::setenv("STEMS_FAULTS", spec.faultPlan.c_str(), 1);
    }

    const std::vector<driver::RunCell> allCells =
        driver::selectedCells(spec);

    RunJournal journal;
    if (!spec.journalPath.empty())
        journal.open(spec.journalPath, specFingerprint(allCells),
                     allCells.size(), spec.resume);

    // a resumed run executes only the cells the journal does not
    // already hold; ids are preserved under cells= filters, so the
    // remaining ids form a valid sub-filter
    driver::ExperimentSpec subSpec = spec;
    bool runNeeded = true;
    if (!journal.replayed().empty()) {
        std::string remaining;
        for (const auto &cell : allCells) {
            if (journal.replayed().count(cell.id))
                continue;
            if (!remaining.empty())
                remaining += ',';
            remaining += std::to_string(cell.id);
        }
        if (remaining.empty())
            runNeeded = false;
        else
            subSpec.cellFilter = remaining;
    }

    ProgressFn journaled = progress;
    if (journal.isOpen())
        journaled = [&journal, &progress](const CellResult &r,
                                          size_t done, size_t total) {
            journal.append(r);
            if (progress)
                progress(r, done, total);
        };

    std::vector<CellResult> ran;
    if (runNeeded) {
        if (spec.dispatch > 0 || !spec.dispatchWorkers.empty()) {
            DispatchConfig dcfg;
            dcfg.workers = spec.dispatch;
            dcfg.timeoutMs = spec.dispatchTimeoutMs;
            dcfg.maxAttempts = spec.dispatchRetries;
            dcfg.trace = !spec.traceOut.empty();
            dcfg.heartbeatMs = spec.dispatchHeartbeatMs;
            dcfg.backoffMs = spec.dispatchBackoffMs;
            dcfg.speculate = spec.dispatchSpeculate;
            dcfg.pipeline = spec.dispatchPipeline;
            dcfg.workerExe = spec.dispatchWorkerExe;
            // workers= swaps the pipe transport for sockets; the
            // dispatch bytes on the wire are identical either way
            std::unique_ptr<Transport> transport;
            if (!spec.dispatchWorkers.empty()) {
                serve::SocketTransport::Config scfg;
                scfg.endpoints =
                    driver::splitList(spec.dispatchWorkers);
                scfg.spawnCmd = spec.dispatchSpawnCmd;
                transport = std::make_unique<serve::SocketTransport>(
                    std::move(scfg));
                if (dcfg.workers == 0)
                    dcfg.workers = static_cast<uint32_t>(
                        driver::splitList(spec.dispatchWorkers)
                            .size());
            }
            if (dcfg.workers == 0)
                dcfg.workers = 1;
            Coordinator coord(subSpec, dcfg, std::move(transport));
            ran = coord.run(journaled);
            if (statsOut)
                *statsOut = coord.workerStats();
            if (wallMsOut)
                *wallMsOut = coord.wallMs();
        } else {
            const auto start = std::chrono::steady_clock::now();
            driver::Runner runner(subSpec);
            ran = runner.run(journaled);
            if (wallMsOut)
                *wallMsOut =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        }
    }

    if (journal.replayed().empty())
        return ran;

    // splice journaled and fresh results back into expansion order;
    // the local expansion's cell metadata is authoritative (the
    // journal, like the wire, carries measurements plus the id)
    std::map<uint32_t, CellResult *> fresh;
    for (auto &r : ran)
        fresh.emplace(r.cell.id, &r);
    std::vector<CellResult> out;
    out.reserve(allCells.size());
    for (const auto &cell : allCells) {
        const auto joIt = journal.replayed().find(cell.id);
        if (joIt != journal.replayed().end()) {
            CellResult r;
            r.cell = cell;
            r.metrics = joIt->second.metrics;
            r.telemetry = joIt->second.telemetry;
            out.push_back(std::move(r));
            continue;
        }
        const auto frIt = fresh.find(cell.id);
        if (frIt != fresh.end()) {
            out.push_back(std::move(*frIt->second));
        } else {
            CellResult r;
            r.cell = cell;
            r.error = "resume: cell was neither journaled nor re-run";
            out.push_back(std::move(r));
        }
    }
    return out;
}

} // namespace stems::dispatch
