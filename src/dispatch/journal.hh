/**
 * @file
 * Crash-safe run durability: every completed cell's result is appended
 * to a journal file (`--journal=FILE`), and `stems run --resume` skips
 * the journaled cells and splices them into the final report
 * byte-identically to an uninterrupted run.
 *
 * The journal is a sequence of wire frames (`<len>\n<json>\n`, the
 * dispatch framing): a header frame
 *
 *   {"type":"journal","version":1,"spec":"<hex fingerprint>","cells":N}
 *
 * followed by one `encodeResult` frame per completed cell — the same
 * hexfloat encoding the dispatch wire uses, so metric values survive
 * the journal round trip bit-exactly. Appends are fsync'd, so a
 * SIGKILLed coordinator loses at most the cell in flight; a torn tail
 * frame (killed mid-write) is detected on resume and truncated away.
 *
 * The spec fingerprint hashes every selected cell's wire encoding:
 * resuming under a different spec (or a different cells= filter) is
 * rejected instead of splicing unrelated results. Duplicate frames
 * for one cell fold first-ok-wins, mirroring `stems merge`.
 */

#ifndef STEMS_DISPATCH_JOURNAL_HH
#define STEMS_DISPATCH_JOURNAL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dispatch/coordinator.hh"
#include "driver/runner.hh"
#include "driver/spec.hh"

namespace stems::dispatch {

/** FNV-1a over every cell's wire encoding (order-sensitive). */
uint64_t specFingerprint(const std::vector<driver::RunCell> &cells);

/** Append-only result journal with torn-tail recovery. */
class RunJournal
{
  public:
    RunJournal() = default;
    ~RunJournal();
    RunJournal(const RunJournal &) = delete;
    RunJournal &operator=(const RunJournal &) = delete;

    /**
     * Open @p path for appending. With @p resume, an existing file is
     * parsed first: its header must carry @p specHash (else
     * std::invalid_argument), complete result frames are recovered
     * into replayed(), and a torn tail is truncated so appends land
     * on a clean frame boundary. Without @p resume the file is
     * created fresh (truncated) with a new header frame.
     */
    void open(const std::string &path, uint64_t specHash,
              uint64_t cellCount, bool resume);

    bool isOpen() const { return fd_ >= 0; }

    /**
     * Results recovered by a resume open, keyed by cell id; only
     * error-free results are kept (errored cells re-run, first-ok-
     * wins like stems merge).
     */
    const std::map<uint32_t, driver::CellResult> &replayed() const
    {
        return replayed_;
    }

    /**
     * Append one completed cell (encodeResult frame + fsync). A write
     * failure warns and disables the journal — durability must not
     * take down the run itself.
     */
    void append(const driver::CellResult &result);

    void close();

  private:
    int fd_ = -1;
    std::string path_;
    std::map<uint32_t, driver::CellResult> replayed_;
};

/**
 * The one spec-execution entry point the CLI and tests share: honours
 * spec.faultPlan (installed process-wide and exported as STEMS_FAULTS
 * so dispatched workers inherit it), spec.journalPath / spec.resume
 * (journal + splice), and spec.dispatch (Coordinator vs in-process
 * Runner). Results are ordered like driver::Runner's, so reports are
 * byte-identical across in-process, dispatched, resumed, and merged
 * paths.
 *
 * @param progress   forwarded per completed cell (journaled cells
 *                   replayed on resume do NOT re-fire progress)
 * @param statsOut   per-worker health stats when dispatched
 * @param wallMsOut  the run's wall ms (0 when everything replayed)
 */
std::vector<driver::CellResult>
runSpec(const driver::ExperimentSpec &spec,
        const driver::ProgressFn &progress = {},
        std::vector<WorkerStats> *statsOut = nullptr,
        double *wallMsOut = nullptr);

} // namespace stems::dispatch

#endif // STEMS_DISPATCH_JOURNAL_HH
