/**
 * @file
 * Minimal dependency-free JSON reader for the dispatch layer: the
 * worker wire protocol and the report merger both consume JSON the
 * engine itself produced (driver::JsonWriter), so the parser favours
 * strictness and raw-span preservation over generality. Every parsed
 * value remembers its [begin, end) byte span in the source text, which
 * lets the merger splice cell objects between reports byte-identically
 * instead of re-serializing (and re-rounding) them.
 */

#ifndef STEMS_DISPATCH_JSON_HH
#define STEMS_DISPATCH_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stems::dispatch {

/** One parsed JSON value with its raw source span. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    /** String: decoded content; Number: the raw literal text. */
    std::string text;
    std::vector<JsonValue> items;  //!< Array elements
    /** Object members, in source order (the engine relies on order). */
    std::vector<std::pair<std::string, JsonValue>> members;
    size_t rawBegin = 0;  //!< offset of the first byte in the source
    size_t rawEnd = 0;    //!< one past the last byte

    /** Member lookup (Object); nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Member lookup that throws std::invalid_argument when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Number as unsigned integer; throws on non-numbers. */
    uint64_t asU64() const;

    /**
     * Number — or a string holding a C99 hexfloat — as double. The
     * wire protocol ships doubles as hexfloat strings so metric values
     * survive the round trip bit-exactly.
     */
    double asDouble() const;

    /** String content; throws on non-strings. */
    const std::string &asString() const;

    bool asBool() const;
};

/**
 * Parse one JSON document (the entire @p src must be consumed apart
 * from trailing whitespace). Throws std::invalid_argument with an
 * offset-bearing message on malformed input.
 */
JsonValue parseJson(const std::string &src);

} // namespace stems::dispatch

#endif // STEMS_DISPATCH_JSON_HH
