/**
 * @file
 * Report merging: fold independently produced `stems run` JSON reports
 * (cell subsets from `cells=` ranges, other machines, or re-runs that
 * repaired failed cells) into one report keyed by cell id.
 *
 * Merging splices the cells' raw JSON text between documents instead
 * of re-serializing them, so a merged report is byte-identical to the
 * single-process run that would have produced the same cell set — no
 * float re-rounding, no key reordering.
 *
 * Merge semantics per cell id: the first error-free occurrence wins
 * (argument order, then in-file order); if every occurrence failed,
 * the first occurrence wins. This makes merge associative and
 * idempotent, so partial reports can be combined in any grouping.
 */

#ifndef STEMS_DISPATCH_MERGE_HH
#define STEMS_DISPATCH_MERGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace stems::dispatch {

/** One report document split for by-id splicing. */
struct ParsedReport
{
    /** Everything before the first cell (ends with `"cells":[`). */
    std::string prefix;
    /** Everything after the last cell (starts with `]`). */
    std::string suffix;

    struct Cell
    {
        uint32_t id = 0;
        bool ok = false;    //!< no "error" member
        std::string raw;    //!< the cell object's exact source bytes
    };
    std::vector<Cell> cells;
};

/**
 * Split one report document. Throws std::invalid_argument when the
 * text is not a stems run report.
 */
ParsedReport parseReport(const std::string &text);

/**
 * Merge report documents by cell id (first-ok-wins). All inputs must
 * carry the same spec (identical prefix/suffix bytes); throws
 * std::invalid_argument otherwise or when no input is given.
 */
std::string mergeReports(const std::vector<std::string> &texts);

} // namespace stems::dispatch

#endif // STEMS_DISPATCH_MERGE_HH
