/**
 * @file
 * Trace-driven out-of-order timing model for the performance
 * experiments (Figures 12-13). A two-phase approach mirrors the
 * paper's methodology at reduced fidelity:
 *
 *  phase 1 — the interleaved trace runs through the coherent
 *  multiprocessor MemorySystem (with any attached prefetcher — see
 *  below) and each access is annotated with where it hit, including
 *  prefetched-into-L1/L2 provenance from the hierarchy's outcome
 *  bits;
 *
 *  phase 2 — each CPU's annotated stream is replayed through an
 *  analytic out-of-order core model: 8-wide dispatch/retire, a
 *  256-entry ROB bounding the overlap window, MSHR-limited
 *  memory-level parallelism, dependence distances serializing pointer
 *  chases, and a 64-entry store buffer that stalls retirement when
 *  full (the effect that gates Qry1). Head-of-ROB stall cycles are
 *  attributed to off-chip reads, on-chip reads, store-buffer-full, or
 *  other, producing the Figure 13 breakdown.
 *
 * The model is engine-agnostic: it hosts prefetchers through the
 * attach seam (prefetch::PfAttach), the same contract
 * study::runSystem uses, so every registry prefetcher — SMS, GHB
 * PC/DC, stride, next-line — gets a uIPC/speedup number. Prefetches
 * are priced uniformly from the annotation: a block streamed into L1
 * turns its read into an L1 hit; a block prefetched only to L2 turns
 * an off-chip read into an on-chip one; and a store that hits a block
 * any engine streamed read-only still pays a full
 * fetch-for-ownership round trip before the store buffer can drain
 * it (Section 4.7's Qry1 observation). No engine owns a privileged
 * code path.
 */

#ifndef STEMS_SIM_TIMING_HH
#define STEMS_SIM_TIMING_HH

#include <cstdint>
#include <vector>

#include "mem/memsys.hh"
#include "prefetch/attach.hh"
#include "sim/torus.hh"
#include "trace/access.hh"
#include "trace/stream.hh"

namespace stems::sim {

/** Core microarchitecture parameters (Table 1 values at 4 GHz). */
struct CoreConfig
{
    uint32_t width = 8;           //!< dispatch/retire width
    uint32_t robEntries = 256;
    uint32_t storeBuffer = 64;
    uint32_t mshrs = 32;
    uint32_t l1Latency = 2;       //!< load-to-use
    uint32_t l2Latency = 25;
    uint32_t memLatency = 240;    //!< 60 ns
    uint32_t hopLatency = 100;    //!< 25 ns per interconnect hop
    uint32_t upgradeLatency = 430;//!< write permission: directory
                                  //!< round-trip + invalidation acks
    double otherStallPerInstr = 0.08;  //!< branch/I-cache proxy
};

/** Time per activity category, in cycles (Figure 13's stack). */
struct TimeBreakdown
{
    double userBusy = 0;
    double systemBusy = 0;
    double offChipRead = 0;
    double onChipRead = 0;
    double storeBuffer = 0;
    double other = 0;

    double
    total() const
    {
        return userBusy + systemBusy + offChipRead + onChipRead +
            storeBuffer + other;
    }

    TimeBreakdown &
    operator+=(const TimeBreakdown &o)
    {
        userBusy += o.userBusy;
        systemBusy += o.systemBusy;
        offChipRead += o.offChipRead;
        onChipRead += o.onChipRead;
        storeBuffer += o.storeBuffer;
        other += o.other;
        return *this;
    }
};

/** Configuration of one timing run. */
struct TimingConfig
{
    CoreConfig core;
    mem::MemSysConfig sys;
};

/** Result of one timing run. */
struct TimingResult
{
    double cycles = 0;            //!< elapsed (max over CPUs)
    uint64_t userInstructions = 0;
    uint64_t systemInstructions = 0;
    TimeBreakdown breakdown;      //!< summed over CPUs

    /** Aggregate user IPC — the paper's performance metric. */
    double
    uipc() const
    {
        return cycles > 0 ? double(userInstructions) / cycles : 0.0;
    }
};

/**
 * Run the timing model over per-CPU streams (from
 * Workload::generateStreams).
 *
 * @param attach builds a prefetcher deployment onto the run's
 *               MemorySystem before the first reference (empty = no
 *               prefetcher). The returned handle is drained after the
 *               last reference, exactly as in study::runSystem.
 */
TimingResult runTiming(const std::vector<trace::Trace> &streams,
                       const TimingConfig &cfg, uint64_t seed = 1,
                       const prefetch::PfAttach &attach = {});

/**
 * Zero-materialization form: drive the fused annotate+retire pass
 * from a StreamSet, whose backing may be an mmap'd spill consumed
 * straight from the page cache. Byte-identical results to the
 * vector-of-streams overload.
 */
TimingResult runTiming(const trace::StreamSet &set,
                       const TimingConfig &cfg, uint64_t seed = 1,
                       const prefetch::PfAttach &attach = {});

} // namespace stems::sim

#endif // STEMS_SIM_TIMING_HH
