/**
 * @file
 * The 4x4 2D torus interconnect latency model of Table 1 (25 ns per
 * hop at 4 GHz = 100 cycles/hop). Off-chip requests traverse from the
 * requesting node to the block's home node and back.
 */

#ifndef STEMS_SIM_TORUS_HH
#define STEMS_SIM_TORUS_HH

#include <cstdint>

namespace stems::sim {

/** 2D torus hop/latency arithmetic. */
class Torus
{
  public:
    /**
     * @param dim_x      nodes per row
     * @param dim_y      nodes per column
     * @param hop_cycles per-hop latency in cycles
     */
    Torus(uint32_t dim_x = 4, uint32_t dim_y = 4,
          uint32_t hop_cycles = 100)
        : dimX(dim_x), dimY(dim_y), hopCycles(hop_cycles)
    {}

    /** Minimal hop count between nodes @p a and @p b. */
    uint32_t
    hops(uint32_t a, uint32_t b) const
    {
        uint32_t ax = a % dimX, ay = a / dimX % dimY;
        uint32_t bx = b % dimX, by = b / dimX % dimY;
        uint32_t dx = ax > bx ? ax - bx : bx - ax;
        uint32_t dy = ay > by ? ay - by : by - ay;
        // torus wrap-around
        if (dx > dimX / 2)
            dx = dimX - dx;
        if (dy > dimY / 2)
            dy = dimY - dy;
        return dx + dy;
    }

    /** Home node of a block (address-interleaved across nodes). */
    uint32_t
    homeNode(uint64_t block_addr) const
    {
        return static_cast<uint32_t>((block_addr >> 6) % (dimX * dimY));
    }

    /** Round-trip network latency between @p a and @p b. */
    uint32_t
    roundTrip(uint32_t a, uint32_t b) const
    {
        return 2 * hops(a, b) * hopCycles;
    }

    uint32_t nodes() const { return dimX * dimY; }
    uint32_t perHop() const { return hopCycles; }

  private:
    uint32_t dimX;
    uint32_t dimY;
    uint32_t hopCycles;
};

} // namespace stems::sim

#endif // STEMS_SIM_TORUS_HH
