#include "sim/timing.hh"

#include <algorithm>

#include "trace/interleaver.hh"
#include "util/ring.hh"

namespace stems::sim {

namespace {

enum class Cat : uint8_t { L1, OnChip, OffChip };

/**
 * One CPU's analytic out-of-order core, advanced one reference at a
 * time. Keeping the model per-CPU lets the functional annotation pass
 * feed it in place: the simulation makes a single pass over the
 * interleaved view, with no merged trace, no per-CPU re-copy, and no
 * materialised annotation buffer between the two phases.
 */
/**
 * How far back a dependence distance can reach. Completion times are
 * kept in a fixed power-of-two ring instead of an O(nrefs) vector so
 * the core model's footprint is independent of trace length — the
 * point of the streaming pipeline. Workload generators emit distances
 * of a few references; anything beyond the window (impossible today)
 * would conservatively drop the dependence edge.
 */
constexpr size_t kDepWindow = 8192;
static_assert((kDepWindow & (kDepWindow - 1)) == 0);

struct CoreModel
{
    CoreModel(const CoreConfig &cfg)
        : cfg(cfg), rob_window(cfg.robEntries + 1), mshr(cfg.mshrs + 1),
          sb(cfg.storeBuffer + 1)
    {
        complete.resize(kDepWindow, 0.0);
    }

    double &completeAt(size_t pos) { return complete[pos & (kDepWindow - 1)]; }

    const CoreConfig &cfg;
    std::vector<double> complete;  //!< ring, indexed mod kDepWindow
    size_t i = 0;  //!< per-CPU reference position
    double retire = 0.0;
    double dispatch = 0.0;
    uint64_t instr_so_far = 0;
    uint64_t userInstructions = 0;
    uint64_t systemInstructions = 0;
    util::FixedRing<std::pair<uint64_t, double>> rob_window;
    util::FixedMinHeap<double> mshr;
    util::FixedRing<double> sb;
    TimeBreakdown bd;

    void
    step(const trace::MemAccess &a, uint32_t lat, Cat cat)
    {
        const uint32_t instrs = a.ninst + 1;
        const double slot = double(instrs) / cfg.width;
        instr_so_far += instrs;

        // dispatch: bounded by fetch width and the ROB window
        dispatch += slot;
        while (!rob_window.empty() &&
               instr_so_far - rob_window.front().first >
                   cfg.robEntries) {
            dispatch = std::max(dispatch, rob_window.front().second);
            rob_window.pop_front();
        }

        double start = dispatch;
        if (a.dep != 0 && a.dep <= i && a.dep < kDepWindow)
            start = std::max(start, completeAt(i - a.dep));

        if (!a.isWrite) {
            if (cat != Cat::L1) {
                // misses occupy an MSHR until their fill returns
                while (!mshr.empty() && mshr.top() <= start)
                    mshr.pop();
                if (mshr.size() >= cfg.mshrs) {
                    start = std::max(start, mshr.top());
                    mshr.pop();
                }
                completeAt(i) = start + lat;
                mshr.push(completeAt(i));
            } else {
                completeAt(i) = start + lat;
            }
        } else {
            // stores leave the critical path at retire
            completeAt(i) = start + 1.0;
        }

        // in-order retirement at the configured width
        const double earliest = retire + slot;
        double r = earliest;
        if (!a.isWrite)
            r = std::max(r, completeAt(i));

        if (a.isWrite) {
            while (!sb.empty() && sb.front() <= r)
                sb.pop_front();
            if (sb.size() >= cfg.storeBuffer) {
                double wait = sb.front();
                sb.pop_front();
                if (wait > r) {
                    bd.storeBuffer += wait - r;
                    r = wait;
                }
            }
            const double drain_start =
                std::max(sb.empty() ? 0.0 : sb.back(), r);
            sb.push_back(drain_start + lat);
        } else if (r > earliest) {
            const double stall = r - earliest;
            switch (cat) {
              case Cat::OffChip:
                bd.offChipRead += stall;
                break;
              case Cat::OnChip:
                bd.onChipRead += stall;
                break;
              case Cat::L1:
                bd.other += stall;
                break;
            }
        }

        // busy and fixed overhead accounting
        if (a.isKernel)
            bd.systemBusy += slot;
        else
            bd.userBusy += slot;
        const double other = cfg.otherStallPerInstr * instrs;
        bd.other += other;
        retire = r + other;
        rob_window.push_back({instr_so_far, retire});

        if (a.isKernel)
            systemInstructions += instrs;
        else
            userInstructions += instrs;
        ++i;
    }
};

/** One annotated reference, staged between the two batch loops. */
struct Annotated
{
    trace::MemAccess a;
    uint32_t lat;
    Cat cat;
};

/** Accesses staged per batch; amortizes the annotate/retire switch. */
constexpr size_t kBatch = 128;

/**
 * Single fused pass over @p view: each reference is annotated by the
 * coherent memory system and retired through its CPU's core model.
 * Batched in groups of kBatch — the annotate loop (cache hierarchy +
 * latency classification) runs back to back, then the core-model
 * retire loop drains the batch. The two loops touch disjoint state
 * (annotation never reads core time), so the split is numerically
 * identical to the interleaved form while keeping each loop's
 * branches and data hot.
 */
TimingResult
runTimingView(trace::InterleavedView &view, const TimingConfig &cfg,
              const prefetch::PfAttach &attach)
{
    const uint32_t ncpu = cfg.sys.ncpu;
    Torus torus(4, 4, cfg.core.hopLatency);

    mem::MemorySystem sys(cfg.sys);
    prefetch::AttachedPrefetcher *pf = attach ? attach(sys) : nullptr;

    std::vector<CoreModel> cores;
    cores.reserve(ncpu);
    for (uint32_t c = 0; c < ncpu; ++c)
        cores.emplace_back(cfg.core);

    std::vector<Annotated> batch(kBatch);
    size_t filled = 0;
    auto drain = [&] {
        for (size_t k = 0; k < filled; ++k)
            cores[batch[k].a.cpu].step(batch[k].a, batch[k].lat,
                                       batch[k].cat);
        filled = 0;
    };

    const trace::MemAccess *span;
    uint32_t spanCpu;
    size_t spanLen;
    while ((spanLen = view.nextSpan(span, spanCpu)) != 0) {
        for (size_t k = 0; k < spanLen; ++k) {
            trace::MemAccess a = span[k];
            a.cpu = spanCpu;
            mem::AccessOutcome out = sys.access(a);
            uint32_t lat;
            Cat cat;
            switch (out.level) {
              case mem::HitLevel::L1:
                lat = cfg.core.l1Latency;
                cat = Cat::L1;
                break;
              case mem::HitLevel::L2:
                lat = cfg.core.l2Latency;
                cat = Cat::OnChip;
                break;
              case mem::HitLevel::Remote:
                lat = cfg.core.l2Latency +
                    torus.roundTrip(a.cpu, torus.homeNode(a.addr)) +
                    cfg.core.l2Latency;
                cat = Cat::OffChip;
                break;
              default:  // HitLevel::Memory
                lat = cfg.core.l2Latency +
                    torus.roundTrip(a.cpu, torus.homeNode(a.addr)) +
                    cfg.core.memLatency;
                cat = Cat::OffChip;
                break;
            }
            if (a.isWrite && out.l1PrefetchHit) {
                // the attached engine streamed this block read-only;
                // the store still pays a full fetch-for-ownership
                // round trip before the store buffer can drain it
                // (Section 4.7's Qry1 observation) — uniform for any
                // into-L1 prefetcher, not an SMS special case
                lat = std::max<uint32_t>(
                    cfg.core.upgradeLatency,
                    cfg.core.l2Latency +
                        torus.roundTrip(a.cpu, torus.homeNode(a.addr)) +
                        cfg.core.memLatency);
                cat = Cat::OffChip;
            }
            batch[filled++] = {a, lat, cat};
            if (filled == kBatch)
                drain();
        }
    }
    drain();

    if (pf)
        pf->drain();

    // harvest in CPU order (matches the former per-CPU second phase)
    TimingResult res;
    for (uint32_t c = 0; c < ncpu; ++c) {
        res.cycles = std::max(res.cycles, cores[c].retire);
        res.breakdown += cores[c].bd;
        res.userInstructions += cores[c].userInstructions;
        res.systemInstructions += cores[c].systemInstructions;
    }
    return res;
}

} // anonymous namespace

TimingResult
runTiming(const std::vector<trace::Trace> &streams,
          const TimingConfig &cfg, uint64_t seed,
          const prefetch::PfAttach &attach)
{
    trace::InterleavedView view = trace::canonicalView(streams, seed);
    return runTimingView(view, cfg, attach);
}

TimingResult
runTiming(const trace::StreamSet &set, const TimingConfig &cfg,
          uint64_t seed, const prefetch::PfAttach &attach)
{
    trace::InterleavedView view = trace::canonicalView(set, seed);
    return runTimingView(view, cfg, attach);
}

} // namespace stems::sim
