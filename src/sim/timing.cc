#include "sim/timing.hh"

#include <algorithm>
#include <deque>
#include <set>

#include "trace/interleaver.hh"

namespace stems::sim {

namespace {

enum class Cat : uint8_t { L1, OnChip, OffChip };

/** Phase-1 annotation of one reference. */
struct Ann
{
    uint32_t lat = 0;      //!< load-use / store-drain latency
    Cat cat = Cat::L1;
};

} // anonymous namespace

TimingResult
runTiming(const std::vector<trace::Trace> &streams,
          const TimingConfig &cfg, uint64_t seed)
{
    const uint32_t ncpu = cfg.sys.ncpu;
    Torus torus(4, 4, cfg.core.hopLatency);

    // ---------------- phase 1: functional annotation ----------------
    trace::Interleaver il(1, 16, seed * 977 + 13);
    trace::Trace merged = il.merge(streams);

    mem::MemorySystem sys(cfg.sys);
    std::unique_ptr<core::SmsController> sms;
    if (cfg.useSms)
        sms = std::make_unique<core::SmsController>(sys, cfg.sms);

    std::vector<std::vector<Ann>> ann(ncpu);
    for (uint32_t c = 0; c < ncpu; ++c)
        ann[c].reserve(streams[c].size());
    std::vector<trace::Trace> percpu(ncpu);
    for (uint32_t c = 0; c < ncpu; ++c)
        percpu[c].reserve(streams[c].size());

    for (const auto &a : merged) {
        mem::AccessOutcome out = sys.access(a);
        Ann an;
        const uint32_t home = torus.homeNode(a.addr);
        switch (out.level) {
          case mem::HitLevel::L1:
            an.lat = cfg.core.l1Latency;
            an.cat = Cat::L1;
            break;
          case mem::HitLevel::L2:
            an.lat = cfg.core.l2Latency;
            an.cat = Cat::OnChip;
            break;
          case mem::HitLevel::Remote:
            an.lat = cfg.core.l2Latency + torus.roundTrip(a.cpu, home) +
                cfg.core.l2Latency;
            an.cat = Cat::OffChip;
            break;
          case mem::HitLevel::Memory:
            an.lat = cfg.core.l2Latency + torus.roundTrip(a.cpu, home) +
                cfg.core.memLatency;
            an.cat = Cat::OffChip;
            break;
        }
        if (a.isWrite && out.l1PrefetchHit) {
            // SMS streamed this block read-only; the store still pays
            // a full fetch-for-ownership round trip before the store
            // buffer can drain it (Section 4.7's Qry1 observation)
            an.lat = std::max<uint32_t>(
                cfg.core.upgradeLatency,
                cfg.core.l2Latency + torus.roundTrip(a.cpu, home) +
                    cfg.core.memLatency);
            an.cat = Cat::OffChip;
        }
        ann[a.cpu].push_back(an);
        percpu[a.cpu].push_back(a);
    }

    // ---------------- phase 2: per-CPU core model -------------------
    TimingResult res;
    for (uint32_t c = 0; c < ncpu; ++c) {
        const auto &refs = percpu[c];
        const auto &as = ann[c];
        const size_t n = refs.size();
        std::vector<double> complete(n, 0.0);

        double retire = 0.0;
        double dispatch = 0.0;
        uint64_t instr_so_far = 0;
        std::deque<std::pair<uint64_t, double>> rob_window;
        std::multiset<double> mshr;
        std::deque<double> sb;
        TimeBreakdown bd;

        for (size_t i = 0; i < n; ++i) {
            const auto &a = refs[i];
            const auto &an = as[i];
            const uint32_t instrs = a.ninst + 1;
            const double slot = double(instrs) / cfg.core.width;
            instr_so_far += instrs;

            // dispatch: bounded by fetch width and the ROB window
            dispatch += slot;
            while (!rob_window.empty() &&
                   instr_so_far - rob_window.front().first >
                       cfg.core.robEntries) {
                dispatch = std::max(dispatch, rob_window.front().second);
                rob_window.pop_front();
            }

            double start = dispatch;
            if (a.dep != 0 && a.dep <= i)
                start = std::max(start, complete[i - a.dep]);

            if (!a.isWrite) {
                if (an.cat != Cat::L1) {
                    // misses occupy an MSHR until their fill returns
                    while (!mshr.empty() && *mshr.begin() <= start)
                        mshr.erase(mshr.begin());
                    if (mshr.size() >= cfg.core.mshrs) {
                        start = std::max(start, *mshr.begin());
                        mshr.erase(mshr.begin());
                    }
                    complete[i] = start + an.lat;
                    mshr.insert(complete[i]);
                } else {
                    complete[i] = start + an.lat;
                }
            } else {
                // stores leave the critical path at retire
                complete[i] = start + 1.0;
            }

            // in-order retirement at the configured width
            const double earliest = retire + slot;
            double r = earliest;
            if (!a.isWrite)
                r = std::max(r, complete[i]);

            if (a.isWrite) {
                while (!sb.empty() && sb.front() <= r)
                    sb.pop_front();
                if (sb.size() >= cfg.core.storeBuffer) {
                    double wait = sb.front();
                    sb.pop_front();
                    if (wait > r) {
                        bd.storeBuffer += wait - r;
                        r = wait;
                    }
                }
                const double drain_start =
                    std::max(sb.empty() ? 0.0 : sb.back(), r);
                sb.push_back(drain_start + an.lat);
            } else if (r > earliest) {
                const double stall = r - earliest;
                switch (an.cat) {
                  case Cat::OffChip:
                    bd.offChipRead += stall;
                    break;
                  case Cat::OnChip:
                    bd.onChipRead += stall;
                    break;
                  case Cat::L1:
                    bd.other += stall;
                    break;
                }
            }

            // busy and fixed overhead accounting
            if (a.isKernel)
                bd.systemBusy += slot;
            else
                bd.userBusy += slot;
            const double other = cfg.core.otherStallPerInstr * instrs;
            bd.other += other;
            retire = r + other;
            rob_window.emplace_back(instr_so_far, retire);

            if (a.isKernel)
                res.systemInstructions += instrs;
            else
                res.userInstructions += instrs;
        }

        res.cycles = std::max(res.cycles, retire);
        res.breakdown += bd;
    }
    return res;
}

} // namespace stems::sim
