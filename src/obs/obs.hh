/**
 * @file
 * Flight-recorder tracing for the stems engine: RAII scoped spans and
 * instant events collected into lock-free per-thread buffers and
 * emitted as Chrome trace-event JSON (loadable in Perfetto /
 * chrome://tracing).
 *
 * The recorder is compiled in but off by default: a disabled Span
 * costs one relaxed atomic load and records nothing, so
 * instrumentation stays in place on hot control paths (cell
 * execution, dispatch round-trips) at zero cost to byte-stable
 * reports. Timestamps are machine-wide CLOCK_MONOTONIC nanoseconds,
 * so events recorded in worker processes and shipped to the
 * coordinator (see dispatch/wire.hh, protocol v4) land on one aligned
 * timeline.
 *
 * Threading contract: record() appends to a buffer owned by the
 * calling thread (no locking); drain() and chromeJson() read every
 * buffer and must only run when recording threads have been joined
 * (the runner joins its pool, workers drain between cells).
 */

#ifndef STEMS_OBS_OBS_HH
#define STEMS_OBS_OBS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace stems::obs {

/** One key=value annotation on an event. */
using EventArg = std::pair<std::string, std::string>;

/** One recorded trace event (Chrome trace-event model). */
struct Event
{
    std::string name;
    char phase = 'X';   //!< 'X' complete, 'i' instant, 'M' metadata
    uint64_t tsNs = 0;  //!< CLOCK_MONOTONIC; comparable across processes
    uint64_t durNs = 0; //!< complete events only
    uint32_t tid = 0;   //!< recorder-assigned thread tag
    int64_t pid = -1;   //!< emitting process; -1 = this process
    std::vector<EventArg> args;
};

/** Machine-wide monotonic clock, nanoseconds. */
uint64_t monotonicNs();

/**
 * The process-wide event sink. Each thread owns one append-only
 * buffer (registered on first use; the buffer outlives the thread so
 * joined workers' events survive); foreign events ingested from
 * dispatch workers live in a separate mutex-guarded list.
 */
class Recorder
{
  public:
    static Recorder &get();

    void enable() { on.store(true, std::memory_order_relaxed); }
    void disable() { on.store(false, std::memory_order_relaxed); }

    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /** Append to the calling thread's buffer (no-op when disabled). */
    void record(Event e);

    /** Adopt events recorded in another process (worker spans). */
    void ingest(std::vector<Event> events);

    /**
     * Collect and clear every buffered event, thread_name metadata
     * events included. Caller must have joined recording threads.
     */
    std::vector<Event> drain();

    /** All buffered events as a Chrome trace-event JSON document. */
    std::string chromeJson();

    /** Tag the calling thread ("main", "runner-3", "worker"). */
    void setThreadName(const std::string &name);

    /** The calling thread's recorder tag (assigned on first use). */
    uint32_t threadTid();

  private:
    struct ThreadBuf
    {
        uint32_t tid = 0;
        std::string name;
        std::vector<Event> events;
    };

    ThreadBuf &threadBuf();

    std::atomic<bool> on{false};
    std::mutex mu;  //!< guards bufs shape and foreign
    std::vector<std::unique_ptr<ThreadBuf>> bufs;
    std::vector<Event> foreign;
};

/**
 * RAII scoped span: records one complete ('X') event covering its
 * lifetime. When the recorder is disabled at construction the span is
 * inert (one atomic load, no allocation).
 */
class Span
{
  public:
    explicit Span(const char *name);
    Span(const char *name, std::initializer_list<EventArg> args);
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    ~Span();

  private:
    const char *name;
    uint64_t t0 = 0;  //!< 0 = recorder was off at construction
    std::vector<EventArg> args;
};

/** Record one instant event (no-op when the recorder is disabled). */
void instant(const char *name, std::initializer_list<EventArg> args = {});

/** Shorthand for Recorder::get().setThreadName(). */
void setThreadName(const std::string &name);

/**
 * Per-cell observability payload carried alongside a CellResult: the
 * executor's phase wall times plus, for dispatch workers, a counter
 * snapshot and buffered spans shipped back over the wire (protocol
 * v4). Never reaches the report sinks — reports stay byte-identical
 * with telemetry on or off.
 */
struct CellTelemetry
{
    /** Phase name → wall ms, in execution order. */
    std::vector<std::pair<std::string, double>> phases;
    /** Worker-process counter snapshot (wire only). */
    std::vector<std::pair<std::string, uint64_t>> counters;
    uint64_t rssKb = 0;         //!< worker peak RSS (wire only)
    std::vector<Event> spans;   //!< worker-recorded events (wire only)
};

} // namespace stems::obs

#endif // STEMS_OBS_OBS_HH
