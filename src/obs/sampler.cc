#include "obs/sampler.hh"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "obs/counters.hh"
#include "obs/obs.hh"

namespace stems::obs {

Gauges &
Gauges::get()
{
    static Gauges g;
    return g;
}

void
Gauges::reset()
{
    cellsPending.store(0, std::memory_order_relaxed);
    workersBusy.store(0, std::memory_order_relaxed);
    cellsDone.store(0, std::memory_order_relaxed);
}

StatsSampler::~StatsSampler()
{
    stop();
}

void
StatsSampler::start(const std::string &path, uint32_t intervalMs)
{
    stop();
    if (path == "-") {
        file_ = stdout;
        ownsFile_ = false;
    } else {
        file_ = std::fopen(path.c_str(), "w");
        ownsFile_ = true;
        if (!file_)
            throw std::runtime_error("stats-out: cannot open " + path);
    }
    stopping_ = false;
    startNs_ = monotonicNs();
    thread_ = std::thread(
        [this, intervalMs] { loop(intervalMs ? intervalMs : 1); });
}

void
StatsSampler::stop()
{
    if (!thread_.joinable()) {
        if (file_ && ownsFile_)
            std::fclose(file_);
        file_ = nullptr;
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
    writeSample();  // final sample: short runs still get one line
    std::fflush(file_);
    if (ownsFile_)
        std::fclose(file_);
    file_ = nullptr;
}

void
StatsSampler::loop(uint32_t intervalMs)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (cv_.wait_for(lock, std::chrono::milliseconds(intervalMs),
                         [this] { return stopping_; }))
            return;
        writeSample();
    }
}

std::string
StatsSampler::sampleLine(double tsMs)
{
    const Gauges &g = Gauges::get();
    auto gv = [](const std::atomic<int64_t> &a) {
        return static_cast<long long>(
            a.load(std::memory_order_relaxed));
    };
    std::ostringstream os;
    os << "{\"schema\":1,\"ts_ms\":" << tsMs
       << ",\"rss_kb\":" << peakRssKb()
       << ",\"gauges\":{\"cells_pending\":" << gv(g.cellsPending)
       << ",\"workers_busy\":" << gv(g.workersBusy)
       << ",\"cells_done\":" << gv(g.cellsDone) << "}"
       << ",\"counters\":{";
    bool first = true;
    // counter names are fixed identifiers — no escaping needed
    for (const auto &[name, value] : snapshotCounters()) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":" << value;
    }
    os << "}}";
    return os.str();
}

void
StatsSampler::writeSample()
{
    if (!file_)
        return;
    const double tsMs =
        static_cast<double>(monotonicNs() - startNs_) / 1e6;
    const std::string line = sampleLine(tsMs) + "\n";
    std::fwrite(line.data(), 1, line.size(), file_);
}

} // namespace stems::obs
