/**
 * @file
 * Time-series sampling for the stems engine: a background thread
 * snapshots the counter registry, the scheduler gauges (pending /
 * busy / done), and the process RSS at a fixed interval and appends
 * one JSON document per line (JSONL) to a stats file.
 *
 * Off by default: nothing is allocated and no thread runs unless a
 * run asked for --stats-out=FILE. Sampling only *reads* the relaxed
 * atomics the engine already maintains, so an active sampler never
 * perturbs report bytes.
 *
 * Line schema (stable; checked by tests/golden/check_trace.py):
 *   {"schema":1,"ts_ms":<since start>,"rss_kb":N,
 *    "gauges":{"cells_pending":N,"workers_busy":N,"cells_done":N},
 *    "counters":{<every counter family, declaration order>}}
 */

#ifndef STEMS_OBS_SAMPLER_HH
#define STEMS_OBS_SAMPLER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

namespace stems::obs {

/**
 * Instantaneous scheduler state the sampler reads: unlike the
 * monotonic counters these move both ways. Writers (runner,
 * coordinator) store with relaxed ordering — a gauge is a statistical
 * signal, not a synchronization point.
 */
struct Gauges
{
    std::atomic<int64_t> cellsPending{0};  //!< queued, no executor yet
    std::atomic<int64_t> workersBusy{0};   //!< threads/workers on a cell
    std::atomic<int64_t> cellsDone{0};     //!< results delivered

    static Gauges &get();

    /** Zero every gauge (run start / tests). */
    void reset();
};

/** Shorthand: set a gauge on the process-wide registry. */
inline void
gaugeSet(std::atomic<int64_t> Gauges::*member, int64_t v)
{
    (Gauges::get().*member).store(v, std::memory_order_relaxed);
}

/** Shorthand: adjust a gauge on the process-wide registry. */
inline void
gaugeAdd(std::atomic<int64_t> Gauges::*member, int64_t delta)
{
    (Gauges::get().*member).fetch_add(delta, std::memory_order_relaxed);
}

/**
 * The background sampler thread. start() opens the stats file and
 * begins ticking; stop() (or destruction) takes one final sample so
 * short runs still produce at least one line, then joins and closes.
 */
class StatsSampler
{
  public:
    StatsSampler() = default;
    ~StatsSampler();
    StatsSampler(const StatsSampler &) = delete;
    StatsSampler &operator=(const StatsSampler &) = delete;

    /**
     * Begin sampling every @p intervalMs ms into @p path (JSONL;
     * "-" = stdout). Throws std::runtime_error when the file cannot
     * be opened. @p intervalMs 0 is clamped to 1.
     */
    void start(const std::string &path, uint32_t intervalMs);

    /** Final sample, join the thread, flush and close the file. */
    void stop();

    bool running() const { return thread_.joinable(); }

    /**
     * Compose one sample line (no trailing newline) for @p tsMs.
     * Exposed for schema round-trip tests.
     */
    static std::string sampleLine(double tsMs);

  private:
    void loop(uint32_t intervalMs);
    void writeSample();

    std::FILE *file_ = nullptr;
    bool ownsFile_ = false;
    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
    uint64_t startNs_ = 0;
};

} // namespace stems::obs

#endif // STEMS_OBS_SAMPLER_HH
