#include "obs/obs.hh"

#include <chrono>
#include <cstdio>
#include <iterator>
#include <sstream>
#include <unistd.h>

namespace stems::obs {

namespace {

/** Per-thread pointer into the recorder's registered buffer list. */
thread_local void *tlsBuf = nullptr;

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                os << hex;
            } else {
                os << c;
            }
        }
    }
}

} // anonymous namespace

uint64_t
monotonicNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Recorder &
Recorder::get()
{
    static Recorder r;
    return r;
}

Recorder::ThreadBuf &
Recorder::threadBuf()
{
    if (!tlsBuf) {
        std::lock_guard<std::mutex> lock(mu);
        auto buf = std::make_unique<ThreadBuf>();
        buf->tid = static_cast<uint32_t>(bufs.size() + 1);
        tlsBuf = buf.get();
        bufs.push_back(std::move(buf));
    }
    return *static_cast<ThreadBuf *>(tlsBuf);
}

void
Recorder::record(Event e)
{
    if (!enabled())
        return;
    ThreadBuf &buf = threadBuf();
    e.tid = buf.tid;
    buf.events.push_back(std::move(e));
}

void
Recorder::ingest(std::vector<Event> events)
{
    if (events.empty())
        return;
    std::lock_guard<std::mutex> lock(mu);
    foreign.insert(foreign.end(),
                   std::make_move_iterator(events.begin()),
                   std::make_move_iterator(events.end()));
}

void
Recorder::setThreadName(const std::string &name)
{
    threadBuf().name = name;
}

uint32_t
Recorder::threadTid()
{
    return threadBuf().tid;
}

std::vector<Event>
Recorder::drain()
{
    std::vector<Event> out;
    std::lock_guard<std::mutex> lock(mu);
    for (auto &buf : bufs) {
        if (!buf->name.empty()) {
            Event meta;
            meta.name = "thread_name";
            meta.phase = 'M';
            meta.tid = buf->tid;
            meta.args.emplace_back("name", buf->name);
            out.push_back(std::move(meta));
        }
        out.insert(out.end(),
                   std::make_move_iterator(buf->events.begin()),
                   std::make_move_iterator(buf->events.end()));
        buf->events.clear();
    }
    out.insert(out.end(),
               std::make_move_iterator(foreign.begin()),
               std::make_move_iterator(foreign.end()));
    foreign.clear();
    return out;
}

std::string
Recorder::chromeJson()
{
    std::vector<Event> events = drain();

    // normalize to the earliest timestamp so the trace opens at t=0
    uint64_t base = UINT64_MAX;
    for (const Event &e : events)
        if (e.phase != 'M' && e.tsNs < base)
            base = e.tsNs;
    if (base == UINT64_MAX)
        base = 0;

    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const Event &e : events) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"";
        jsonEscape(os, e.name);
        os << "\",\"ph\":\"" << e.phase << "\"";
        // trace-event ts is microseconds; keep sub-µs precision
        // (the fraction needs zero padding: 1005 ns is 1.005 µs)
        auto us = [&os](uint64_t ns) {
            char frac[8];
            std::snprintf(frac, sizeof(frac), "%03u",
                          static_cast<unsigned>(ns % 1000));
            os << ns / 1000 << "." << frac;
        };
        if (e.phase != 'M') {
            os << ",\"ts\":";
            us(e.tsNs - base);
        } else {
            os << ",\"ts\":0";
        }
        if (e.phase == 'X') {
            os << ",\"dur\":";
            us(e.durNs);
        }
        if (e.phase == 'i')
            os << ",\"s\":\"p\"";
        // pid -1 marks "this process": resolve at write time
        os << ",\"pid\":" << (e.pid < 0 ? ::getpid() : e.pid)
           << ",\"tid\":" << e.tid;
        if (!e.args.empty()) {
            os << ",\"args\":{";
            bool firstArg = true;
            for (const auto &[k, v] : e.args) {
                if (!firstArg)
                    os << ",";
                firstArg = false;
                os << "\"";
                jsonEscape(os, k);
                os << "\":\"";
                jsonEscape(os, v);
                os << "\"";
            }
            os << "}";
        }
        os << "}";
    }
    os << "]}\n";
    return os.str();
}

Span::Span(const char *name) : name(name)
{
    if (Recorder::get().enabled())
        t0 = monotonicNs();
}

Span::Span(const char *name, std::initializer_list<EventArg> args)
    : name(name)
{
    if (Recorder::get().enabled()) {
        t0 = monotonicNs();
        this->args.assign(args.begin(), args.end());
    }
}

Span::~Span()
{
    if (!t0)
        return;
    Recorder &r = Recorder::get();
    if (!r.enabled())
        return;
    Event e;
    e.name = name;
    e.phase = 'X';
    e.tsNs = t0;
    e.durNs = monotonicNs() - t0;
    e.args = std::move(args);
    r.record(std::move(e));
}

void
instant(const char *name, std::initializer_list<EventArg> args)
{
    Recorder &r = Recorder::get();
    if (!r.enabled())
        return;
    Event e;
    e.name = name;
    e.phase = 'i';
    e.tsNs = monotonicNs();
    e.args.assign(args.begin(), args.end());
    r.record(std::move(e));
}

void
setThreadName(const std::string &name)
{
    Recorder::get().setThreadName(name);
}

} // namespace stems::obs
