/**
 * @file
 * Process-wide named counters for engine observability: TraceCache
 * hits/misses, baseline/timing memo hits/misses, dispatch retries and
 * re-queues, wire bytes. Counting is always on (one relaxed atomic
 * increment at per-cell or per-memo granularity — never per memory
 * reference), and the registry is only *read* when a telemetry sink
 * was requested, so default runs pay nothing observable.
 *
 * Counter values are deterministic across thread counts: every
 * counted event is tied to a memoization slot (std::call_once) or a
 * protocol action, not to scheduling order.
 */

#ifndef STEMS_OBS_COUNTERS_HH
#define STEMS_OBS_COUNTERS_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stems::obs {

/** The fixed set of engine counters. */
struct Counters
{
    std::atomic<uint64_t> traceCacheHits{0};
    std::atomic<uint64_t> traceCacheMisses{0};
    std::atomic<uint64_t> traceSpillReplays{0};
    std::atomic<uint64_t> baselineMemoHits{0};
    std::atomic<uint64_t> baselineMemoMisses{0};
    std::atomic<uint64_t> timingMemoHits{0};
    std::atomic<uint64_t> timingMemoMisses{0};
    std::atomic<uint64_t> cellsExecuted{0};
    std::atomic<uint64_t> dispatchRetries{0};
    std::atomic<uint64_t> cellsRequeued{0};
    std::atomic<uint64_t> workerRespawns{0};
    std::atomic<uint64_t> wireBytesSent{0};
    std::atomic<uint64_t> wireBytesReceived{0};
    // fault-tolerance families (PR 7): chaos injection, liveness,
    // run durability and straggler mitigation
    std::atomic<uint64_t> faultsInjected{0};
    std::atomic<uint64_t> heartbeatsMissed{0};
    std::atomic<uint64_t> journalCellsWritten{0};
    std::atomic<uint64_t> journalCellsReplayed{0};
    std::atomic<uint64_t> speculativeRedispatches{0};
    std::atomic<uint64_t> degradedCells{0};
    // streaming trace pipeline (PR 9). Bytes mapped and spill replays
    // stay slot-tied (deterministic); prefetch-ahead and stream stalls
    // depend on scheduling and are only meaningful as rates.
    std::atomic<uint64_t> traceBytesMapped{0};
    std::atomic<uint64_t> tracePrefetchAhead{0};
    std::atomic<uint64_t> streamStalls{0};
    // experiment-service families (PR 10): admission-queue outcomes,
    // warm-cache reuse across requests, work stealing and the socket
    // control channel
    std::atomic<uint64_t> serveRequestsAdmitted{0};
    std::atomic<uint64_t> serveRequestsQueued{0};
    std::atomic<uint64_t> serveRequestsRejected{0};
    std::atomic<uint64_t> serveCacheWarmHits{0};
    std::atomic<uint64_t> cellsStolen{0};
    std::atomic<uint64_t> socketBytesSent{0};
    std::atomic<uint64_t> socketBytesReceived{0};

    static Counters &get();

    /** Zero every counter (tests only — not thread-safe vs counting). */
    void reset();

    void
    add(std::atomic<uint64_t> &c, uint64_t n = 1)
    {
        c.fetch_add(n, std::memory_order_relaxed);
    }
};

/** Shorthand: bump a counter on the process-wide registry. */
inline void
count(std::atomic<uint64_t> Counters::*member, uint64_t n = 1)
{
    (Counters::get().*member).fetch_add(n, std::memory_order_relaxed);
}

/**
 * Name → value snapshot in declaration order; zero-valued counters
 * included so the telemetry schema is stable run to run.
 */
std::vector<std::pair<std::string, uint64_t>> snapshotCounters();

/** Peak resident set size of this process in KB (getrusage). */
uint64_t peakRssKb();

} // namespace stems::obs

#endif // STEMS_OBS_COUNTERS_HH
