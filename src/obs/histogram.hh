/**
 * @file
 * Log2-bucketed latency histograms for engine observability: a fixed
 * set of process-wide distribution families (dispatch round-trip,
 * per-cell wall, journal fsync) recorded with relaxed atomics — one
 * increment plus one add per sample, at per-cell / per-append
 * granularity, never on the per-reference hot path.
 *
 * A sample of value v (microseconds) lands in bucket bit_width(v):
 * bucket 0 holds zeros, bucket b >= 1 covers [2^(b-1), 2^b - 1]. The
 * bucket layout is value-deterministic — identical samples produce
 * identical histograms regardless of which thread recorded them —
 * while the sampled latencies themselves are wall-clock dependent, so
 * histograms ride the telemetry sinks only and never touch reports.
 */

#ifndef STEMS_OBS_HISTOGRAM_HH
#define STEMS_OBS_HISTOGRAM_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace stems::obs {

/** One log2-bucketed distribution (relaxed-atomic, thread-safe). */
struct Histogram
{
    /** Bucket 0 plus bit_width 1..64 cover the full uint64_t range. */
    static constexpr uint32_t kBuckets = 65;

    std::atomic<uint64_t> buckets[kBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};

    /** The bucket index a value lands in: 0, or bit_width(v). */
    static uint32_t
    bucketOf(uint64_t v)
    {
        return v == 0 ? 0 : static_cast<uint32_t>(std::bit_width(v));
    }

    void
    record(uint64_t v)
    {
        buckets[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
        sum.fetch_add(v, std::memory_order_relaxed);
    }
};

/** The fixed set of engine latency-distribution families. */
struct Histograms
{
    Histogram dispatchRttUs;   //!< coordinator assign→result round-trip
    Histogram cellWallUs;      //!< per-cell executor wall time
    Histogram journalFsyncUs;  //!< result-journal fsync latency

    static Histograms &get();

    /** Zero every family (tests only — not thread-safe vs recording). */
    void reset();
};

/** Shorthand: record a sample on the process-wide registry. */
inline void
recordHist(Histogram Histograms::*member, uint64_t v)
{
    (Histograms::get().*member).record(v);
}

/** One family's snapshot: non-empty buckets as (index, count). */
struct HistogramSnapshot
{
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<std::pair<uint32_t, uint64_t>> buckets;
};

/**
 * Name → snapshot in declaration order; zero-count families included
 * (with empty bucket lists) so the telemetry schema is stable run to
 * run.
 */
std::vector<HistogramSnapshot> snapshotHistograms();

} // namespace stems::obs

#endif // STEMS_OBS_HISTOGRAM_HH
