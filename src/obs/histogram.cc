#include "obs/histogram.hh"

namespace stems::obs {

Histograms &
Histograms::get()
{
    static Histograms h;
    return h;
}

namespace {

void
zero(Histogram &h)
{
    for (auto &b : h.buckets)
        b.store(0, std::memory_order_relaxed);
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0, std::memory_order_relaxed);
}

HistogramSnapshot
snap(const char *name, const Histogram &h)
{
    HistogramSnapshot out;
    out.name = name;
    out.count = h.count.load(std::memory_order_relaxed);
    out.sum = h.sum.load(std::memory_order_relaxed);
    for (uint32_t i = 0; i < Histogram::kBuckets; ++i) {
        const uint64_t n =
            h.buckets[i].load(std::memory_order_relaxed);
        if (n)
            out.buckets.emplace_back(i, n);
    }
    return out;
}

} // anonymous namespace

void
Histograms::reset()
{
    zero(dispatchRttUs);
    zero(cellWallUs);
    zero(journalFsyncUs);
}

std::vector<HistogramSnapshot>
snapshotHistograms()
{
    const Histograms &h = Histograms::get();
    return {
        snap("dispatch_rtt_us", h.dispatchRttUs),
        snap("cell_wall_us", h.cellWallUs),
        snap("journal_fsync_us", h.journalFsyncUs),
    };
}

} // namespace stems::obs
