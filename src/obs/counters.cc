#include "obs/counters.hh"

#include <sys/resource.h>

namespace stems::obs {

Counters &
Counters::get()
{
    static Counters c;
    return c;
}

void
Counters::reset()
{
    traceCacheHits = 0;
    traceCacheMisses = 0;
    traceSpillReplays = 0;
    baselineMemoHits = 0;
    baselineMemoMisses = 0;
    timingMemoHits = 0;
    timingMemoMisses = 0;
    cellsExecuted = 0;
    dispatchRetries = 0;
    cellsRequeued = 0;
    workerRespawns = 0;
    wireBytesSent = 0;
    wireBytesReceived = 0;
    faultsInjected = 0;
    heartbeatsMissed = 0;
    journalCellsWritten = 0;
    journalCellsReplayed = 0;
    speculativeRedispatches = 0;
    degradedCells = 0;
    traceBytesMapped = 0;
    tracePrefetchAhead = 0;
    streamStalls = 0;
    serveRequestsAdmitted = 0;
    serveRequestsQueued = 0;
    serveRequestsRejected = 0;
    serveCacheWarmHits = 0;
    cellsStolen = 0;
    socketBytesSent = 0;
    socketBytesReceived = 0;
}

std::vector<std::pair<std::string, uint64_t>>
snapshotCounters()
{
    const Counters &c = Counters::get();
    auto v = [](const std::atomic<uint64_t> &a) {
        return a.load(std::memory_order_relaxed);
    };
    return {
        {"trace_cache_hits", v(c.traceCacheHits)},
        {"trace_cache_misses", v(c.traceCacheMisses)},
        {"trace_spill_replays", v(c.traceSpillReplays)},
        {"baseline_memo_hits", v(c.baselineMemoHits)},
        {"baseline_memo_misses", v(c.baselineMemoMisses)},
        {"timing_memo_hits", v(c.timingMemoHits)},
        {"timing_memo_misses", v(c.timingMemoMisses)},
        {"cells_executed", v(c.cellsExecuted)},
        {"dispatch_retries", v(c.dispatchRetries)},
        {"cells_requeued", v(c.cellsRequeued)},
        {"worker_respawns", v(c.workerRespawns)},
        {"wire_bytes_sent", v(c.wireBytesSent)},
        {"wire_bytes_received", v(c.wireBytesReceived)},
        {"faults_injected", v(c.faultsInjected)},
        {"heartbeats_missed", v(c.heartbeatsMissed)},
        {"journal_cells_written", v(c.journalCellsWritten)},
        {"journal_cells_replayed", v(c.journalCellsReplayed)},
        {"speculative_redispatches", v(c.speculativeRedispatches)},
        {"degraded_cells", v(c.degradedCells)},
        {"trace_bytes_mapped", v(c.traceBytesMapped)},
        {"trace_prefetch_ahead", v(c.tracePrefetchAhead)},
        {"stream_stalls", v(c.streamStalls)},
        {"serve_requests_admitted", v(c.serveRequestsAdmitted)},
        {"serve_requests_queued", v(c.serveRequestsQueued)},
        {"serve_requests_rejected", v(c.serveRequestsRejected)},
        {"serve_cache_warm_hits", v(c.serveCacheWarmHits)},
        {"cells_stolen", v(c.cellsStolen)},
        {"socket_bytes_sent", v(c.socketBytesSent)},
        {"socket_bytes_received", v(c.socketBytesReceived)},
    };
}

uint64_t
peakRssKb()
{
    struct rusage ru = {};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // ru_maxrss is KB on Linux
    return static_cast<uint64_t>(ru.ru_maxrss);
}

} // namespace stems::obs
