/**
 * @file
 * Domain scenario 2: prefetcher bake-off. Runs one workload from each
 * class through the memory system under four prefetchers — none,
 * stride, GHB PC/DC, SMS — and prints off-chip coverage side by side.
 * Reproduces in miniature the Section 4.6 argument: delta correlation
 * works on well-ordered streams but collapses when independent
 * spatial regions interleave.
 *
 *   ./prefetcher_duel [workload ...]   (default: one per class)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "prefetch/stride.hh"
#include "study/memstudy.hh"
#include "study/suite.hh"
#include "study/table.hh"

using namespace stems;
using namespace stems::study;

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = {"OLTP-DB2", "Qry1", "Apache", "sparse"};

    auto params = defaultParams(50000);
    TraceCache traces;
    TablePrinter table({"App", "Prefetcher", "OffChipCoverage",
                        "L1Coverage", "Overpred(L2)"});

    for (const auto &name : names) {
        if (!workloads::findWorkload(name)) {
            std::printf("unknown workload: %s\n", name.c_str());
            return 1;
        }
        const trace::Trace &t = traces.get(name, params);

        SystemStudyConfig base;
        auto rb = runSystem(t, base);
        const double l2m = double(rb.l2ReadMisses) + 1e-9;
        const double l1m = double(rb.l1ReadMisses) + 1e-9;

        struct V
        {
            const char *label;
            PfKind pf;
            bool stride;
        };
        for (auto v : {V{"stride", PfKind::None, true},
                       V{"ghb-pc/dc", PfKind::Ghb, false},
                       V{"sms", PfKind::Sms, false}}) {
            SystemStudyConfig cfg;
            cfg.pf = v.pf;
            if (v.stride) {
                // bolt a stride prefetcher on via the generic
                // controller path used for custom algorithms
                mem::MemorySystem sys(cfg.sys);
                prefetch::PrefetchController pc(sys, [] {
                    return std::make_unique<prefetch::StridePrefetcher>(
                        prefetch::StrideConfig{});
                });
                SystemStudyResult r;
                for (const auto &a : t) {
                    auto out = sys.access(a);
                    if (!a.isWrite && out.l1PrefetchHit)
                        ++r.l1Covered;
                    if (!a.isWrite && out.l2PrefetchHit)
                        ++r.l2Covered;
                }
                uint64_t op = 0;
                for (uint32_t c = 0; c < sys.numCpus(); ++c)
                    op += sys.l2(c).stats().prefetchUnused;
                table.addRow({name, v.label,
                              TablePrinter::pct(r.l2Covered / l2m),
                              TablePrinter::pct(r.l1Covered / l1m),
                              TablePrinter::pct(op / l2m)});
                continue;
            }
            auto r = runSystem(t, cfg);
            table.addRow({name, v.label,
                          TablePrinter::pct(r.l2Covered / l2m),
                          TablePrinter::pct(r.l1Covered / l1m),
                          TablePrinter::pct(r.l2Overpred / l2m)});
        }
    }
    table.print();
    return 0;
}
