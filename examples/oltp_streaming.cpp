/**
 * @file
 * Domain scenario 1: the full pipeline on a commercial workload.
 * Generates the TPC-C-flavoured OLTP trace, runs it through the
 * 16-node coherent memory system twice (without and with SMS), and
 * reports miss rates, coverage at both cache levels, and the sharing
 * profile — the measurements behind the paper's OLTP columns.
 *
 *   ./oltp_streaming
 */

#include <cstdio>

#include "study/memstudy.hh"
#include "study/suite.hh"
#include "workloads/oltp.hh"

using namespace stems;
using namespace stems::study;

int
main()
{
    workloads::OltpWorkload oltp(workloads::OltpWorkload::db2());
    auto params = defaultParams(50000);
    std::printf("generating %s: %u cpus x %llu refs...\n",
                oltp.name().c_str(), params.ncpu,
                (unsigned long long)params.refsPerCpu);
    trace::Trace t = workloads::makeTrace(oltp, params);

    SystemStudyConfig base;  // Table 1 defaults: 64kB L1s, 8MB L2s
    auto rb = runSystem(t, base);

    SystemStudyConfig sms = base;
    sms.pf = PfKind::Sms;
    auto rs = runSystem(t, sms);

    std::printf("\n%-28s %12s %12s\n", "", "base", "with SMS");
    std::printf("%-28s %12llu %12llu\n", "L1 read misses",
                (unsigned long long)rb.l1ReadMisses,
                (unsigned long long)rs.l1ReadMisses);
    std::printf("%-28s %12llu %12llu\n", "off-chip read misses",
                (unsigned long long)rb.l2ReadMisses,
                (unsigned long long)rs.l2ReadMisses);
    std::printf("%-28s %12s %12.1f%%\n", "L1 coverage", "-",
                100.0 * rs.l1Covered / rb.l1ReadMisses);
    std::printf("%-28s %12s %12.1f%%\n", "off-chip coverage", "-",
                100.0 * rs.l2Covered / (rb.l2ReadMisses + 1));
    std::printf("%-28s %12llu %12llu\n", "coherence read misses",
                (unsigned long long)rb.readCohMisses,
                (unsigned long long)rs.readCohMisses);
    std::printf("%-28s %12llu %12llu\n", "true sharing",
                (unsigned long long)rb.trueSharing,
                (unsigned long long)rs.trueSharing);
    std::printf("%-28s %12llu %12llu\n", "false sharing (>64B)",
                (unsigned long long)rb.falseSharing,
                (unsigned long long)rs.falseSharing);
    std::printf("\nOLTP misses interleave many spatial regions; SMS "
                "tracks each region's\ngeneration independently in the "
                "AGT, which is why it beats delta\ncorrelation here "
                "(see fig11_ghb_vs_sms).\n");
    return 0;
}
