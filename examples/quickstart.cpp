/**
 * @file
 * Quickstart: build one SMS unit by hand, teach it a spatial pattern,
 * and watch it stream the pattern into a previously-unvisited region
 * — the paper's core claim (code-correlated prediction of cold data)
 * in thirty lines of API.
 *
 *   ./quickstart
 */

#include <cstdio>

#include "core/sms.hh"

using namespace stems;

int
main()
{
    // an SMS engine with the paper's practical configuration:
    // 2 kB regions, 32/64-entry AGT, 16k x 16-way PHT, PC+offset index
    core::SmsConfig cfg;
    core::SmsUnit sms(/*cpu=*/0, cfg,
                      [](uint32_t, uint64_t addr, bool) {
                          std::printf("  stream request -> 0x%llx\n",
                                      (unsigned long long)addr);
                      });

    // a code site (synthetic PC) walks a structure at region A:
    // header (block 0), then fields at blocks 3 and 7
    const uint64_t A = 0x10000000;
    std::printf("training on region A (blocks 0, 3, 7)...\n");
    sms.onAccess(/*pc=*/0x401000, A + 0 * 64);
    sms.onAccess(/*pc=*/0x401010, A + 3 * 64);
    sms.onAccess(/*pc=*/0x401020, A + 7 * 64);

    // the generation ends when an accessed block leaves the L1
    // (replacement or invalidation); the pattern trains the PHT
    sms.evicted(A, /*dirty=*/false, /*was_prefetch=*/false);
    std::printf("generation ended; pattern stored in the PHT\n\n");

    // the same code now touches region B, which has NEVER been
    // visited: the trigger (same PC, same spatial region offset)
    // predicts the learned pattern and streams blocks 3 and 7
    const uint64_t B = 0x7fff0000;
    std::printf("trigger access in cold region B:\n");
    sms.onAccess(0x401000, B + 0 * 64);

    const auto &s = sms.stats();
    std::printf("\ntriggers=%llu phtHits=%llu streamRequests=%llu "
                "trained=%llu\n",
                (unsigned long long)s.triggers,
                (unsigned long long)s.phtHits,
                (unsigned long long)s.streamRequests,
                (unsigned long long)s.trained);
    return 0;
}
