/**
 * @file
 * Domain scenario 3: spatial-pattern microscope. Generates a workload
 * and prints (a) its access-density histogram over 2 kB regions, and
 * (b) the most frequent learned spatial patterns per trigger code
 * site, rendered as bit strings — a direct view of the structures the
 * paper's Figure 1 describes (page header + slot index + tuples,
 * packet headers, stencil rows).
 *
 *   ./region_explorer [workload]   (default: OLTP-DB2)
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/agt.hh"
#include "study/density.hh"
#include "study/suite.hh"
#include "workloads/workload.hh"

using namespace stems;
using namespace stems::study;

namespace {

/** Collects ended generations per trigger PC. */
class PatternCensus : public core::GenerationListener
{
  public:
    void generationStart(const core::TriggerInfo &) override {}

    void
    generationEnd(const core::TriggerInfo &t,
                  const core::SpatialPattern &p) override
    {
        auto &bucket = census[t.pc];
        ++bucket[p.toString(32)];
    }

    std::map<uint64_t, std::map<std::string, uint64_t>> census;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "OLTP-DB2";
    const auto *entry = workloads::findWorkload(name);
    if (!entry) {
        std::printf("unknown workload %s; choose from:\n", name.c_str());
        for (const auto &e : workloads::paperSuite())
            std::printf("  %s\n", e.name.c_str());
        return 1;
    }

    auto params = defaultParams(40000);
    auto w = entry->make();
    trace::Trace t = workloads::makeTrace(*w, params);
    std::printf("%s: %zu references\n\n", name.c_str(), t.size());

    // density histogram over all references (structure view)
    core::RegionGeometry geom(2048, 64);
    DensityTracker density(geom);
    core::ActiveGenerationTable agt(geom, {0, 0});
    PatternCensus census;
    agt.setListener(&census);
    for (const auto &a : t) {
        if (a.cpu != 0)
            continue;  // one CPU's view keeps patterns uninterleaved
        density.onAccess(a.addr);
        agt.onAccess(a.pc, a.addr);
    }
    density.finalize();
    agt.drain();

    std::printf("access density over 2 kB regions (cpu 0):\n");
    uint64_t total = 0;
    for (auto v : density.generationHist())
        total += v;
    for (size_t b = 0; b < kDensityBuckets; ++b) {
        std::printf("  %-12s %6.1f%%\n", densityBucketName(b),
                    100.0 * density.generationHist()[b] /
                        std::max<uint64_t>(total, 1));
    }

    std::printf("\nhottest learned patterns by trigger code site"
                " (block 0 leftmost):\n");
    std::vector<std::pair<uint64_t, uint64_t>> hot;  // pc -> gens
    for (const auto &[pc, pats] : census.census) {
        uint64_t n = 0;
        for (const auto &[s, c] : pats)
            n += c;
        hot.emplace_back(n, pc);
    }
    std::sort(hot.rbegin(), hot.rend());
    int shown = 0;
    for (const auto &[n, pc] : hot) {
        if (shown++ == 6)
            break;
        std::printf("  pc 0x%llx (%llu generations):\n",
                    (unsigned long long)pc, (unsigned long long)n);
        std::vector<std::pair<uint64_t, std::string>> top;
        for (const auto &[s, c] : census.census[pc])
            top.emplace_back(c, s);
        std::sort(top.rbegin(), top.rend());
        for (size_t i = 0; i < top.size() && i < 3; ++i)
            std::printf("    %s x%llu\n", top[i].second.c_str(),
                        (unsigned long long)top[i].first);
    }
    return 0;
}
