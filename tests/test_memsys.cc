/** @file Multiprocessor memory system integration tests. */

#include <gtest/gtest.h>

#include "mem/memsys.hh"
#include "mem/mshr.hh"

using namespace stems::mem;
using stems::trace::MemAccess;

namespace {

MemSysConfig
smallSys(uint32_t ncpu = 4)
{
    MemSysConfig c;
    c.ncpu = ncpu;
    c.l1 = {4 * 1024, 2, 64, ReplKind::LRU};
    c.l2 = {64 * 1024, 8, 64, ReplKind::LRU};
    return c;
}

MemAccess
acc(uint32_t cpu, uint64_t addr, bool write = false, uint64_t pc = 0x1)
{
    MemAccess a;
    a.cpu = cpu;
    a.addr = addr;
    a.isWrite = write;
    a.pc = pc;
    return a;
}

} // anonymous namespace

TEST(MemSys, MissFillsBothLevels)
{
    MemorySystem sys(smallSys());
    auto out = sys.access(acc(0, 0x1000));
    EXPECT_EQ(out.level, HitLevel::Memory);
    EXPECT_TRUE(sys.l1(0).contains(0x1000));
    EXPECT_TRUE(sys.l2(0).contains(0x1000));
    EXPECT_EQ(sys.access(acc(0, 0x1000)).level, HitLevel::L1);
}

TEST(MemSys, L2HitAfterL1Eviction)
{
    MemorySystem sys(smallSys());
    sys.access(acc(0, 0x1000));
    sys.l1(0).invalidate(0x1000);  // drop the L1 copy only
    EXPECT_EQ(sys.access(acc(0, 0x1000)).level, HitLevel::L2);
}

TEST(MemSys, RemoteDirtyTransfer)
{
    MemorySystem sys(smallSys());
    sys.access(acc(1, 0x2000, true));  // cpu1 owns dirty copy
    auto out = sys.access(acc(0, 0x2000));
    EXPECT_EQ(out.level, HitLevel::Remote);
}

TEST(MemSys, WriteInvalidatesRemoteCopies)
{
    MemorySystem sys(smallSys());
    sys.access(acc(0, 0x3000));
    sys.access(acc(1, 0x3000));
    EXPECT_TRUE(sys.l1(0).contains(0x3000));
    sys.access(acc(2, 0x3000, true));
    EXPECT_FALSE(sys.l1(0).contains(0x3000));
    EXPECT_FALSE(sys.l2(0).contains(0x3000));
    EXPECT_FALSE(sys.l1(1).contains(0x3000));
}

TEST(MemSys, CoherenceMissFlagOnRefetch)
{
    MemorySystem sys(smallSys());
    sys.access(acc(0, 0x3000));
    sys.access(acc(1, 0x3000, true));
    auto out = sys.access(acc(0, 0x3000));
    EXPECT_TRUE(out.coherenceMiss);
}

TEST(MemSys, InclusionL2EvictionPurgesL1)
{
    // L2 64 kB 8-way: one set = 8 blocks with a 512-set stride
    MemorySystem sys(smallSys());
    const uint64_t stride = 64 * 1024 / 8 * 8;  // 64 kB (same set 0)
    for (int i = 0; i < 9; ++i)
        sys.access(acc(0, uint64_t(i) * stride));
    // the first block fell out of L2; inclusion says L1 lost it too
    EXPECT_FALSE(sys.l2(0).contains(0));
    EXPECT_FALSE(sys.l1(0).contains(0));
}

TEST(MemSys, DirtyL1EvictionWritesBackToL2)
{
    MemorySystem sys(smallSys());
    sys.access(acc(0, 0x0, true));  // dirty in L1
    // force the L1 set to turn over (4 kB 2-way -> set stride 2 kB)
    sys.access(acc(0, 0x0800));
    sys.access(acc(0, 0x1000));     // evicts dirty block 0
    EXPECT_FALSE(sys.l1(0).contains(0x0));
    EXPECT_TRUE(sys.l2(0).contains(0x0));
    // evicting it from L2 must write back to memory
    sys.l2(0).invalidate(0x0);
    EXPECT_GE(sys.l2(0).stats().writebacks, 1u);
}

TEST(MemSys, PrefetchIntoL1SetsBitsBothLevels)
{
    MemorySystem sys(smallSys());
    EXPECT_EQ(sys.prefetch(0, 0x5000, true), HitLevel::Memory);
    EXPECT_TRUE(sys.l1(0).isPrefetched(0x5000));
    EXPECT_TRUE(sys.l2(0).isPrefetched(0x5000));

    auto out = sys.access(acc(0, 0x5000));
    EXPECT_EQ(out.level, HitLevel::L1);
    EXPECT_TRUE(out.l1PrefetchHit);
    EXPECT_TRUE(out.l2PrefetchHit);  // off-chip miss was covered too
}

TEST(MemSys, PrefetchIntoL2Only)
{
    MemorySystem sys(smallSys());
    sys.prefetch(1, 0x6000, false);
    EXPECT_FALSE(sys.l1(1).contains(0x6000));
    EXPECT_TRUE(sys.l2(1).isPrefetched(0x6000));
    auto out = sys.access(acc(1, 0x6000));
    EXPECT_EQ(out.level, HitLevel::L2);
    EXPECT_TRUE(out.l2PrefetchHit);
    EXPECT_FALSE(out.l1PrefetchHit);
}

TEST(MemSys, PrefetchFindingL2CopyIsNotOffchipCoverage)
{
    MemorySystem sys(smallSys());
    sys.access(acc(0, 0x7000));        // block lands in L1+L2
    sys.l1(0).invalidate(0x7000);      // L2 retains it
    EXPECT_EQ(sys.prefetch(0, 0x7000, true), HitLevel::L2);
    auto out = sys.access(acc(0, 0x7000));
    EXPECT_TRUE(out.l1PrefetchHit);
    EXPECT_FALSE(out.l2PrefetchHit);   // there was no off-chip miss
}

TEST(MemSys, PrefetchBehavesAsReadInProtocol)
{
    MemorySystem sys(smallSys());
    sys.access(acc(1, 0x8000, true));  // cpu1 modified
    sys.prefetch(0, 0x8000, true);     // stream request downgrades
    // cpu1 keeps a shared copy; a later write by 1 re-invalidates 0
    EXPECT_TRUE(sys.l1(1).contains(0x8000));
    sys.access(acc(1, 0x8000, true));
    EXPECT_FALSE(sys.l1(0).contains(0x8000));
}

TEST(MemSys, ObserverSeesOutcome)
{
    struct Obs : AccessObserver
    {
        int calls = 0;
        HitLevel last = HitLevel::L1;
        void
        onAccess(const MemAccess &, const AccessOutcome &o) override
        {
            ++calls;
            last = o.level;
        }
    } obs;

    MemorySystem sys(smallSys());
    sys.addObserver(&obs);
    sys.access(acc(0, 0x9000));
    EXPECT_EQ(obs.calls, 1);
    EXPECT_EQ(obs.last, HitLevel::Memory);
    sys.access(acc(0, 0x9000));
    EXPECT_EQ(obs.last, HitLevel::L1);
}

TEST(MemSys, AggregateCountersSumAcrossCpus)
{
    MemorySystem sys(smallSys(2));
    sys.access(acc(0, 0x100));
    sys.access(acc(1, 0x200));
    sys.access(acc(1, 0x300));
    EXPECT_EQ(sys.l1ReadMisses(), 3u);
    EXPECT_EQ(sys.l2ReadMisses(), 3u);
    EXPECT_EQ(sys.l1ReadAccesses(), 3u);
}

TEST(MemSys, RejectsL2BlockSmallerThanL1)
{
    MemSysConfig c = smallSys();
    c.l1.blockSize = 128;
    c.l2.blockSize = 64;
    c.l1.sizeBytes = 4096;
    EXPECT_THROW(MemorySystem{c}, std::invalid_argument);
}

TEST(Mshr, MergesSecondaryMisses)
{
    MshrFile m(4);
    EXPECT_TRUE(m.allocate(0x100, 50));
    EXPECT_TRUE(m.allocate(0x100, 60));  // merged, keeps first time
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.mergedMisses(), 1u);
    EXPECT_EQ(m.readyAt(0x100), 50u);
}

TEST(Mshr, FullRejectsNewAllocations)
{
    MshrFile m(2);
    EXPECT_TRUE(m.allocate(0x100, 10));
    EXPECT_TRUE(m.allocate(0x200, 20));
    EXPECT_TRUE(m.full());
    EXPECT_FALSE(m.allocate(0x300, 30));
    // but a merge into an existing entry still succeeds
    EXPECT_TRUE(m.allocate(0x200, 25));
}

TEST(Mshr, CompleteReadyRetires)
{
    MshrFile m(4);
    m.allocate(0x100, 10);
    m.allocate(0x200, 20);
    EXPECT_EQ(m.nextReady(), 10u);
    m.completeReady(15);
    EXPECT_FALSE(m.outstanding(0x100));
    EXPECT_TRUE(m.outstanding(0x200));
    m.clear();
    EXPECT_EQ(m.size(), 0u);
}
