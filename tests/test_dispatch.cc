/**
 * @file
 * Dispatch subsystem tests: the JSON reader and wire protocol round
 * trips, multi-process runs producing reports byte-identical to the
 * in-process runner (the fig11 and abl_sms_params cell sets), worker
 * crash/timeout recovery, retry-cap error capture, report merging
 * (identity, associativity, idempotence, ok-repairs-error), the
 * timing-only cell mode, and per-cell cache-geometry sweeps.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sys/wait.h>
#include <unistd.h>

#include "dispatch/coordinator.hh"
#include "dispatch/json.hh"
#include "dispatch/journal.hh"
#include "dispatch/merge.hh"
#include "dispatch/wire.hh"
#include "driver/report.hh"
#include "driver/runner.hh"
#include "driver/spec.hh"
#include "obs/counters.hh"

using namespace stems;
using namespace stems::dispatch;
using namespace stems::driver;

namespace {

/** The stems CLI sits next to this test binary in the build tree. */
std::string
stemsBinary()
{
    return (std::filesystem::path(selfExePath()).parent_path() /
            "stems")
        .string();
}

DispatchConfig
localConfig(uint32_t workers)
{
    DispatchConfig cfg;
    cfg.workers = workers;
    cfg.workerExe = stemsBinary();
    return cfg;
}

/** Figure 11's cell matrix (SMS practical vs GHB), scaled down. */
std::vector<std::string>
fig11Tokens()
{
    return {"workloads=paper",
            "prefetchers=ghb:GHB-256,ghb:GHB-16k,sms:SMS",
            "pf.GHB-256.ghb-entries=256",
            "pf.GHB-256.it-entries=256",
            "pf.GHB-16k.ghb-entries=16384",
            "pf.GHB-16k.it-entries=1024",
            "ncpu=4", "refs=2000", "seed=3", "wall=0"};
}

/** abl_sms_params' variant matrix (mode=l1), scaled down. */
std::vector<std::string>
ablTokens()
{
    return {"mode=l1", "workloads=paper",
            "prefetchers=sms:practical,sms:pht-union,sms:1-pred-reg,"
            "sms:4-pred-regs,sms:no-filter",
            "pf.pht-union.pht-update=union",
            "pf.1-pred-reg.pred-regs=1",
            "pf.4-pred-regs.pred-regs=4",
            "pf.no-filter.agt-filter=1",
            "pf.no-filter.agt-accum=96",
            "ncpu=4", "refs=2000", "seed=3", "wall=0"};
}

std::string
inProcessJson(const ExperimentSpec &spec)
{
    Runner runner(spec);
    return toJson(spec, runner.run());
}

std::string
dispatchedJson(const ExperimentSpec &spec, uint32_t workers,
               DispatchConfig cfg = {})
{
    if (cfg.workerExe.empty())
        cfg = localConfig(workers);
    cfg.workers = workers;
    Coordinator coord(spec, cfg);
    return toJson(spec, coord.run());
}

/** Scoped environment variable for the worker fault hooks. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const std::string &value) : name(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(name); }

  private:
    const char *name;
};

std::string
tempPath(const char *tag)
{
    return (std::filesystem::temp_directory_path() /
            (std::string("stems_dispatch_") + tag + "_" +
             std::to_string(::getpid())))
        .string();
}

uint64_t
counterValue(const std::vector<std::pair<std::string, uint64_t>> &snap,
             const std::string &name)
{
    for (const auto &[k, v] : snap)
        if (k == name)
            return v;
    ADD_FAILURE() << "no counter named " << name;
    return 0;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// json reader
// ---------------------------------------------------------------------

TEST(DispatchJson, ParsesScalarsArraysObjects)
{
    const JsonValue v = parseJson(
        R"({"a":1,"b":-2.5e3,"c":"x\ny","d":[true,false,null],"e":{}})");
    ASSERT_EQ(v.kind, JsonValue::Kind::Object);
    EXPECT_EQ(v.at("a").asU64(), 1u);
    EXPECT_DOUBLE_EQ(v.at("b").asDouble(), -2500.0);
    EXPECT_EQ(v.at("c").asString(), "x\ny");
    ASSERT_EQ(v.at("d").items.size(), 3u);
    EXPECT_TRUE(v.at("d").items[0].asBool());
    EXPECT_FALSE(v.at("d").items[1].asBool());
    EXPECT_EQ(v.at("d").items[2].kind, JsonValue::Kind::Null);
    EXPECT_TRUE(v.at("e").members.empty());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(DispatchJson, RawSpansSpliceBack)
{
    const std::string src = R"({"cells":[{"id":0},{"id":1}]})";
    const JsonValue v = parseJson(src);
    const JsonValue &cells = v.at("cells");
    ASSERT_EQ(cells.items.size(), 2u);
    EXPECT_EQ(src.substr(cells.items[0].rawBegin,
                         cells.items[0].rawEnd -
                             cells.items[0].rawBegin),
              "{\"id\":0}");
    EXPECT_EQ(src.substr(cells.items[1].rawBegin,
                         cells.items[1].rawEnd -
                             cells.items[1].rawBegin),
              "{\"id\":1}");
}

TEST(DispatchJson, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{"), std::invalid_argument);
    EXPECT_THROW(parseJson("{\"a\":}"), std::invalid_argument);
    EXPECT_THROW(parseJson("[1,]"), std::invalid_argument);
    EXPECT_THROW(parseJson("{} trailing"), std::invalid_argument);
    EXPECT_THROW(parseJson("nul"), std::invalid_argument);
}

// ---------------------------------------------------------------------
// wire protocol
// ---------------------------------------------------------------------

TEST(DispatchWire, CellJobRoundTrips)
{
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse", "prefetchers=sms:variant",
         "pf.variant.pht-entries=1024", "sweep.pred-regs=4,16",
         "mode=l1", "ncpu=8", "refs=12345", "seed=42", "l1-kb=32"});
    auto cells = expandSpec(spec);
    ASSERT_EQ(cells.size(), 2u);
    for (const auto &cell : cells) {
        const RunCell back =
            decodeCellJob(parseJson(encodeCellJob(cell)));
        EXPECT_EQ(back.id, cell.id);
        EXPECT_EQ(back.workload, cell.workload);
        EXPECT_EQ(back.engine.kind, cell.engine.kind);
        EXPECT_EQ(back.engine.label, cell.engine.label);
        EXPECT_EQ(back.engine.options, cell.engine.options);
        EXPECT_EQ(back.sweepPoint, cell.sweepPoint);
        EXPECT_EQ(back.params.ncpu, cell.params.ncpu);
        EXPECT_EQ(back.params.refsPerCpu, cell.params.refsPerCpu);
        EXPECT_EQ(back.params.seed, cell.params.seed);
        EXPECT_EQ(back.sys.ncpu, cell.sys.ncpu);
        EXPECT_EQ(back.sys.l1.sizeBytes, cell.sys.l1.sizeBytes);
        EXPECT_EQ(back.sys.l1.assoc, cell.sys.l1.assoc);
        EXPECT_EQ(back.sys.l2.blockSize, cell.sys.l2.blockSize);
        EXPECT_EQ(back.mode, cell.mode);
        EXPECT_EQ(back.timing, cell.timing);
        EXPECT_EQ(back.timingOnly, cell.timingOnly);
    }
}

TEST(DispatchWire, ResultRoundTripsDoublesBitExactly)
{
    const metric::Builtin &M = metric::ids();
    CellResult r;
    r.cell.id = 7;
    r.metrics.setU64(M.instructions, 123456789);
    r.metrics.setU64(M.l1ReadMisses, 42);
    r.metrics.setU64(M.falseSharing, 17);
    r.metrics.setVec(M.oracleL1Gens, {1, 2, 3});
    r.metrics.setVec(M.oracleL2Gens, {4, 5, 6});
    r.metrics.setValue(M.uipc, 1.0 / 3.0);  // not exactly printable
    r.metrics.setValue(M.baselineUipc, 0.1234567890123456);
    r.metrics.setValue(M.speedup, 1.3333333333333333);
    r.metrics.setU64(M.peakAccumOccupancy, 77);
    r.metrics.setU64(M.peakFilterOccupancy, 11);
    sim::TimingResult t;
    t.cycles = 9876.5432101234;
    t.userInstructions = 4242;
    t.systemInstructions = 17;
    t.breakdown.offChipRead = 2.0 / 7.0;
    t.breakdown.storeBuffer = 1e-17;
    r.metrics.setTimingResult(M.timing, t);
    sim::TimingResult bt;
    bt.cycles = 12345.000001;
    bt.breakdown.userBusy = 0.3333333333333333;
    r.metrics.setTimingResult(M.baselineTiming, bt);
    r.metrics.setWallMs(0.0);
    r.metrics.pfCounters = {{"triggers", 9}, {"pht_hits", 8}};
    r.error = "";

    const CellResult back = decodeResult(parseJson(encodeResult(r)));
    EXPECT_EQ(back.cell.id, r.cell.id);
    EXPECT_EQ(back.metrics.instructions(), r.metrics.instructions());
    EXPECT_EQ(back.metrics.l1ReadMisses(), r.metrics.l1ReadMisses());
    EXPECT_EQ(back.metrics.falseSharing(), r.metrics.falseSharing());
    EXPECT_EQ(back.metrics.oracleL1Gens(), r.metrics.oracleL1Gens());
    EXPECT_EQ(back.metrics.oracleL2Gens(), r.metrics.oracleL2Gens());
    // bit-exact, not approximately equal — the report must be
    // byte-identical to a single-process run
    EXPECT_EQ(back.metrics.uipc(), r.metrics.uipc());
    EXPECT_EQ(back.metrics.baselineUipc(), r.metrics.baselineUipc());
    EXPECT_EQ(back.metrics.speedup(), r.metrics.speedup());
    EXPECT_EQ(back.metrics.peakAccumOccupancy(),
              r.metrics.peakAccumOccupancy());
    EXPECT_EQ(back.metrics.peakFilterOccupancy(),
              r.metrics.peakFilterOccupancy());
    EXPECT_EQ(back.metrics.timing().cycles, t.cycles);
    EXPECT_EQ(back.metrics.timing().userInstructions,
              t.userInstructions);
    EXPECT_EQ(back.metrics.timing().systemInstructions,
              t.systemInstructions);
    EXPECT_EQ(back.metrics.timing().breakdown.offChipRead,
              t.breakdown.offChipRead);
    EXPECT_EQ(back.metrics.timing().breakdown.storeBuffer,
              t.breakdown.storeBuffer);
    EXPECT_EQ(back.metrics.baselineTiming().cycles, bt.cycles);
    EXPECT_EQ(back.metrics.baselineTiming().breakdown.userBusy,
              bt.breakdown.userBusy);
    EXPECT_EQ(back.metrics.pfCounters, r.metrics.pfCounters);
    EXPECT_TRUE(back.error.empty());
    // absent families stay absent across the wire
    EXPECT_FALSE(back.metrics.present(M.l1Density));
    EXPECT_TRUE(back.metrics.present(M.oracleL1Gens));
}

TEST(DispatchWire, HistogramAndVectorFamiliesRoundTrip)
{
    // protocol v3: histogram/vector families ride under their schema
    // names with no per-family wire code
    const metric::Builtin &M = metric::ids();
    CellResult r;
    r.cell.id = 3;
    r.metrics.setVec(M.l1Density, {10, 20, 30, 40, 50, 60, 70});
    r.metrics.setVec(M.l2Density, {1, 0, 0, 2, 0, 0, 3});
    r.metrics.setVec(M.oracleL1Gens, {});
    const CellResult back = decodeResult(parseJson(encodeResult(r)));
    EXPECT_EQ(back.metrics.l1Density(), r.metrics.l1Density());
    EXPECT_EQ(back.metrics.l2Density(), r.metrics.l2Density());
    EXPECT_TRUE(back.metrics.present(M.oracleL1Gens));
    EXPECT_TRUE(back.metrics.oracleL1Gens().empty());
    EXPECT_FALSE(back.metrics.present(M.oracleL2Gens));
    EXPECT_FALSE(back.metrics.present(M.instructions));
}

TEST(DispatchWire, RejectsUnknownMetricFamily)
{
    EXPECT_THROW(
        decodeResult(parseJson(
            R"({"type":"result","id":1,"error":"",)"
            R"("metrics":{"no_such_family":1},"counters":[]})")),
        std::invalid_argument);
}

TEST(DispatchWire, FrameDecoderHandlesChunkedDelivery)
{
    const std::string payload = R"({"type":"ready","pid":1})";
    std::string frame = std::to_string(payload.size()) + "\n" +
        payload + "\n";
    FrameDecoder dec;
    std::string out;
    // feed one byte at a time: no frame until the terminator arrives
    for (size_t i = 0; i + 1 < frame.size(); ++i) {
        dec.feed(&frame[i], 1);
        EXPECT_FALSE(dec.next(out)) << "at byte " << i;
    }
    dec.feed(&frame[frame.size() - 1], 1);
    ASSERT_TRUE(dec.next(out));
    EXPECT_EQ(out, payload);
    // two frames in one feed
    dec.feed(frame.data(), frame.size());
    dec.feed(frame.data(), frame.size());
    ASSERT_TRUE(dec.next(out));
    ASSERT_TRUE(dec.next(out));
    EXPECT_FALSE(dec.next(out));
}

TEST(DispatchWire, FrameDecoderRejectsCorruptPrefix)
{
    FrameDecoder dec;
    std::string out;
    dec.feed("garbage\n", 8);
    EXPECT_THROW(dec.next(out), std::invalid_argument);
}

// ---------------------------------------------------------------------
// dispatched runs vs the in-process runner
// ---------------------------------------------------------------------

TEST(Dispatch, Fig11CellsByteIdenticalToInProcess)
{
    ExperimentSpec spec = parseSpec(fig11Tokens());
    const std::string inproc = inProcessJson(spec);
    const std::string dispatched = dispatchedJson(spec, 4);
    EXPECT_EQ(inproc, dispatched);
    EXPECT_EQ(inproc.find("\"error\""), std::string::npos);
}

TEST(Dispatch, AblCellsByteIdenticalToInProcess)
{
    ExperimentSpec spec = parseSpec(ablTokens());
    const std::string inproc = inProcessJson(spec);
    const std::string dispatched = dispatchedJson(spec, 4);
    EXPECT_EQ(inproc, dispatched);
    EXPECT_EQ(inproc.find("\"error\""), std::string::npos);
}

TEST(Dispatch, DensityHistogramCellsByteIdenticalToInProcess)
{
    // protocol v3 carries the l1_density/l2_density histogram families
    // (and the oracle vectors) bit-exactly: a dispatched Figure-5 run
    // must reproduce the in-process report byte for byte
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse,Apache", "prefetchers=sms,none",
         "density=2048", "oracle-regions=512,2048", "ncpu=4",
         "refs=2000", "seed=3", "wall=0"});
    const std::string inproc = inProcessJson(spec);
    const std::string dispatched = dispatchedJson(spec, 2);
    EXPECT_EQ(inproc, dispatched);
    EXPECT_NE(inproc.find("\"l1_density\""), std::string::npos);
    EXPECT_NE(inproc.find("\"oracle\""), std::string::npos);
    EXPECT_EQ(inproc.find("\"error\""), std::string::npos);
}

TEST(Dispatch, TrainerSweepCellsByteIdenticalToInProcess)
{
    // the trainer= axis (DS/LS/AGT training structures) over the wire
    ExperimentSpec spec = parseSpec(
        {"mode=l1", "workloads=sparse,Apache", "prefetchers=sms",
         "opt.pht-entries=0", "opt.agt-filter=0", "opt.agt-accum=0",
         "sweep.trainer=ds,ls,agt", "ncpu=4", "refs=2000", "seed=3",
         "wall=0"});
    const std::string inproc = inProcessJson(spec);
    const std::string dispatched = dispatchedJson(spec, 2);
    EXPECT_EQ(inproc, dispatched);
    EXPECT_EQ(inproc.find("\"error\""), std::string::npos);
}

TEST(Dispatch, GhbStrideTimingCellsByteIdenticalToInProcess)
{
    // the engine-agnostic timing pipeline over the wire: GHB and
    // stride uIPC/speedup cells dispatched to worker processes must
    // reproduce the in-process report byte for byte
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse,packet", "prefetchers=ghb,stride,sms,none",
         "timing=only", "ncpu=4", "refs=2000", "seed=9", "wall=0"});
    const std::string inproc = inProcessJson(spec);
    const std::string dispatched = dispatchedJson(spec, 4);
    EXPECT_EQ(inproc, dispatched);
    EXPECT_EQ(inproc.find("\"error\""), std::string::npos);
    // the dispatched cells really carry timing numbers
    EXPECT_NE(inproc.find("\"uipc\""), std::string::npos);
}

TEST(Dispatch, WorkerKillMidRunRecoversByteIdentically)
{
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse,graph", "prefetchers=sms,none", "ncpu=4",
         "refs=2000", "seed=13", "wall=0"});
    const std::string inproc = inProcessJson(spec);

    // cell 2 kills its first worker mid-run; the marker file makes
    // the re-queued attempt on another worker run clean
    const std::string marker = tempPath("crash_marker");
    std::filesystem::remove(marker);
    ScopedEnv crash("STEMS_DISPATCH_CRASH", "2:" + marker);
    const std::string dispatched = dispatchedJson(spec, 3);
    EXPECT_EQ(inproc, dispatched);
    EXPECT_TRUE(std::filesystem::exists(marker));  // hook actually fired
    std::filesystem::remove(marker);
}

TEST(Dispatch, RetryCapRecordsCellErrorNotCrash)
{
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse", "prefetchers=sms,none", "ncpu=4",
         "refs=1500", "wall=0", "dispatch-retries=2"});
    // no marker: cell 0 crashes its worker on every attempt
    ScopedEnv crash("STEMS_DISPATCH_CRASH", "0");
    DispatchConfig cfg = localConfig(2);
    cfg.maxAttempts = 2;
    Coordinator coord(spec, cfg);
    auto results = coord.run();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].error.empty());
    EXPECT_NE(results[0].error.find("2 attempt"), std::string::npos)
        << results[0].error;
    // the sweep survives: the other cell still ran to completion
    EXPECT_TRUE(results[1].error.empty()) << results[1].error;
    EXPECT_GT(results[1].metrics.instructions(), 0u);
}

TEST(Dispatch, CellTimeoutRequeuesToAnotherWorker)
{
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse", "prefetchers=sms,none", "ncpu=4",
         "refs=1500", "seed=5", "wall=0"});
    const std::string inproc = inProcessJson(spec);

    const std::string marker = tempPath("sleep_marker");
    std::filesystem::remove(marker);
    // cell 0 stalls 30 s on its first attempt; the 700 ms per-cell
    // timeout kills that worker and the retry completes promptly
    ScopedEnv stall("STEMS_DISPATCH_SLEEP", "0:30000:" + marker);
    DispatchConfig cfg = localConfig(2);
    cfg.timeoutMs = 700;
    Coordinator coord(spec, cfg);
    const std::string dispatched = toJson(spec, coord.run());
    EXPECT_EQ(inproc, dispatched);
    EXPECT_TRUE(std::filesystem::exists(marker));
    std::filesystem::remove(marker);
}

// ---------------------------------------------------------------------
// cells= subsets and report merging
// ---------------------------------------------------------------------

TEST(Dispatch, CellFilterKeepsIdsAndSubsets)
{
    auto tokens = fig11Tokens();
    tokens.push_back("cells=3,5-7");
    ExperimentSpec spec = parseSpec(tokens);
    Runner runner(spec);
    ASSERT_EQ(runner.cells().size(), 4u);
    EXPECT_EQ(runner.cells()[0].id, 3u);
    EXPECT_EQ(runner.cells()[1].id, 5u);
    EXPECT_EQ(runner.cells()[3].id, 7u);

    EXPECT_THROW(parseSpec({"cells=5-3"}), std::invalid_argument);
    EXPECT_THROW(parseSpec({"cells=x"}), std::invalid_argument);
    tokens.back() = "cells=900";
    EXPECT_THROW(Runner(parseSpec(tokens)), std::invalid_argument);
}

TEST(DispatchMerge, PartialRunsMergeByteIdenticallyToFullRun)
{
    ExperimentSpec full = parseSpec(fig11Tokens());
    const std::string whole = inProcessJson(full);

    auto tokens = fig11Tokens();
    tokens.push_back("cells=0-9");
    const std::string partA = inProcessJson(parseSpec(tokens));
    tokens.back() = "cells=10-32";
    const std::string partB = inProcessJson(parseSpec(tokens));

    EXPECT_EQ(mergeReports({partA, partB}), whole);
    EXPECT_EQ(mergeReports({partB, partA}), whole);  // order-free by id
}

TEST(DispatchMerge, AssociativeAndIdempotent)
{
    auto tokens = fig11Tokens();
    tokens.push_back("cells=0-9");
    const std::string a = inProcessJson(parseSpec(tokens));
    tokens.back() = "cells=10-19";
    const std::string b = inProcessJson(parseSpec(tokens));
    tokens.back() = "cells=20-32";
    const std::string c = inProcessJson(parseSpec(tokens));

    const std::string leftFirst =
        mergeReports({mergeReports({a, b}), c});
    const std::string rightFirst =
        mergeReports({a, mergeReports({b, c})});
    EXPECT_EQ(leftFirst, rightFirst);

    EXPECT_EQ(mergeReports({a}), a);
    EXPECT_EQ(mergeReports({a, a}), a);  // idempotent
    EXPECT_EQ(mergeReports({leftFirst, a}), leftFirst);
}

TEST(DispatchMerge, OkCellRepairsEarlierError)
{
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse", "prefetchers=sms,none", "ncpu=4",
         "refs=1500", "wall=0"});
    Runner runner(spec);
    auto results = runner.run();
    ASSERT_EQ(results.size(), 2u);
    const std::string good = toJson(spec, results);

    auto broken = results;
    broken[0].error = "worker crashed";
    const std::string bad = toJson(spec, broken);

    // the error-free occurrence wins regardless of argument order
    EXPECT_EQ(mergeReports({bad, good}), good);
    EXPECT_EQ(mergeReports({good, bad}), good);
    EXPECT_EQ(mergeReports({bad, bad}), bad);
}

TEST(DispatchMerge, RejectsForeignAndMismatchedReports)
{
    EXPECT_THROW(mergeReports({}), std::invalid_argument);
    EXPECT_THROW(mergeReports({"{\"engine\":\"other\",\"cells\":[]}"}),
                 std::invalid_argument);
    EXPECT_THROW(mergeReports({"not json at all"}),
                 std::invalid_argument);

    const std::string a =
        inProcessJson(parseSpec({"workloads=sparse",
                                 "prefetchers=none", "ncpu=4",
                                 "refs=1500", "wall=0"}));
    const std::string b =
        inProcessJson(parseSpec({"workloads=graph",
                                 "prefetchers=none", "ncpu=4",
                                 "refs=1500", "wall=0"}));
    EXPECT_THROW(mergeReports({a, b}), std::invalid_argument);
}

// ---------------------------------------------------------------------
// timing-only cell mode
// ---------------------------------------------------------------------

TEST(TimingOnly, MatchesFullTimingUipcExactly)
{
    std::vector<std::string> tokens{
        "workloads=sparse,Apache", "prefetchers=sms,none", "ncpu=4",
        "refs=2000", "seed=9", "timing=1"};
    auto fullResults = Runner(parseSpec(tokens)).run();
    tokens.back() = "timing=only";
    ExperimentSpec lean = parseSpec(tokens);
    EXPECT_TRUE(lean.timing);
    EXPECT_TRUE(lean.timingOnly);
    auto leanResults = Runner(lean).run();

    ASSERT_EQ(fullResults.size(), leanResults.size());
    for (size_t i = 0; i < fullResults.size(); ++i) {
        ASSERT_TRUE(fullResults[i].error.empty());
        ASSERT_TRUE(leanResults[i].error.empty());
        // same timing numbers, bit-exact
        EXPECT_EQ(fullResults[i].metrics.uipc(),
                  leanResults[i].metrics.uipc());
        EXPECT_EQ(fullResults[i].metrics.baselineUipc(),
                  leanResults[i].metrics.baselineUipc());
        EXPECT_EQ(fullResults[i].metrics.speedup(),
                  leanResults[i].metrics.speedup());
        // ... without paying for the system-study pass
        EXPECT_GT(fullResults[i].metrics.instructions(), 0u);
        EXPECT_EQ(leanResults[i].metrics.instructions(), 0u);
        EXPECT_EQ(leanResults[i].metrics.baselineL1ReadMisses(), 0u);
    }
}

TEST(TimingOnly, RequiresSystemMode)
{
    EXPECT_THROW(parseSpec({"mode=l1", "timing=only"}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// per-cell cache-geometry sweeps
// ---------------------------------------------------------------------

TEST(GeometrySweep, L2SizeAxisReshapesEachCell)
{
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse", "prefetchers=sms,none", "ncpu=4",
         "refs=2000", "sweep.l2-kb=256,1024"});
    auto cells = expandSpec(spec);
    // geometry axes apply to every engine, none included
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].sys.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(cells[1].sys.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(cells[2].sys.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(cells[3].sys.l2.sizeBytes, 1024u * 1024);
    // geometry stays out of the prefetcher's option bag
    EXPECT_EQ(cells[0].engine.options.count("l2-kb"), 0u);
    ASSERT_EQ(cells[0].sweepPoint.count("l2-kb"), 1u);

    auto results = Runner(spec).run();
    for (const auto &r : results)
        ASSERT_TRUE(r.error.empty()) << r.error;
    // each L2 size gets its own memoized baseline: a smaller L2 must
    // miss at least as often off-chip
    EXPECT_GE(results[2].metrics.l2ReadMisses(),
              results[3].metrics.l2ReadMisses());
    EXPECT_EQ(results[0].metrics.baselineL2ReadMisses(),
              results[2].metrics.l2ReadMisses());
    EXPECT_EQ(results[1].metrics.baselineL2ReadMisses(),
              results[3].metrics.l2ReadMisses());
}

TEST(GeometrySweep, GeometryKeysLegalOnlyAsSweepOrTopLevel)
{
    // an opt./pf. geometry key would land in the engine's option bag
    // where nothing reads it — the silent-default trap the option
    // check exists to prevent
    EXPECT_THROW(parseSpec({"prefetchers=sms", "opt.l2-kb=64"}),
                 std::invalid_argument);
    EXPECT_THROW(parseSpec({"prefetchers=sms", "pf.sms.l1-assoc=4"}),
                 std::invalid_argument);
    // block is a real prefetcher option (stream granularity) and a
    // top-level geometry key; both stay legal
    EXPECT_NO_THROW(parseSpec({"prefetchers=sms", "opt.block=128"}));
    EXPECT_NO_THROW(parseSpec({"l2-kb=4096", "l1-assoc=4"}));
    EXPECT_NO_THROW(parseSpec(
        {"prefetchers=none", "sweep.l2-mb=4,8"}));
}

TEST(GeometrySweep, BlockAxisAppliesToEveryEngine)
{
    // before per-cell geometry, a block sweep silently collapsed for
    // engines that did not know the option (e.g. none)
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse", "prefetchers=none",
         "sweep.block=64,128"});
    auto cells = expandSpec(spec);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].sys.l1.blockSize, 64u);
    EXPECT_EQ(cells[1].sys.l1.blockSize, 128u);
    EXPECT_EQ(cells[1].sys.l2.blockSize, 128u);
}

// ---------------------------------------------------------------------
// hardened wire decoding (adversarial frames)
// ---------------------------------------------------------------------

TEST(DispatchWireHardening, RejectsNonFiniteMetricValues)
{
    // NaN/inf — and hexfloat overflow, which strtod maps to inf —
    // must never enter the metric fold: reports would stop being
    // byte-comparable and comparisons would silently misorder
    for (const char *bad : {"nan", "inf", "-inf", "0x1.fp+20000"}) {
        const std::string payload = std::string(
            R"({"type":"result","id":1,"error":"","metrics":{"uipc":")") +
            bad + R"("},"counters":[]})";
        EXPECT_THROW(decodeResult(parseJson(payload)),
                     std::invalid_argument)
            << bad;
    }
}

TEST(DispatchWireHardening, RejectsMalformedU64Fields)
{
    // a negative, overflowing, or non-numeric id must throw, not wrap
    for (const char *bad :
         {"-1", "99999999999999999999999999", "1.5", "true", "\"7\""}) {
        const std::string payload = std::string(
            R"({"type":"result","id":)") + bad +
            R"(,"error":"","metrics":{},"counters":[]})";
        EXPECT_THROW(decodeResult(parseJson(payload)), std::exception)
            << bad;
    }
}

TEST(DispatchWireHardening, FrameDecoderCapsFrameSize)
{
    // a corrupt length prefix claiming a 17 GB frame must fail fast
    // instead of buffering until OOM
    FrameDecoder dec;
    std::string out;
    dec.feed("17179869184\n", 12);
    EXPECT_THROW(dec.next(out), std::invalid_argument);

    FrameDecoder dec2;
    dec2.feed("\n", 1);  // empty length prefix
    EXPECT_THROW(dec2.next(out), std::invalid_argument);
}

TEST(DispatchWireHardening, GarbageResultCostsTheCellNothingFinal)
{
    // a worker that frames unparseable bytes is reaped and the cell
    // retried on a clean worker — the sweep output is unaffected
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse", "prefetchers=sms,none", "ncpu=4",
         "refs=1500", "seed=11", "wall=0"});
    const std::string inproc = inProcessJson(spec);
    ScopedEnv plan("STEMS_FAULTS", "garbage=cell:1");
    const std::string dispatched = dispatchedJson(spec, 2);
    EXPECT_EQ(inproc, dispatched);
}

// ---------------------------------------------------------------------
// fault-plan chaos runs
// ---------------------------------------------------------------------

TEST(DispatchChaos, SeededFaultPlanKeepsReportsByteIdentical)
{
    // crash + hang + garbage + truncate across the fig11 cell set:
    // every fault is retried onto a clean attempt (plan faults fire
    // first-attempt-only), so the chaos run must converge to the
    // uninterrupted report byte for byte
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse,graph", "prefetchers=sms,none", "ncpu=4",
         "refs=2000", "seed=13", "wall=0"});
    const std::string inproc = inProcessJson(spec);

    ScopedEnv plan("STEMS_FAULTS",
                   "seed=5,crash=0.4,garbage=0.3,truncate=0.3,"
                   "hang=0.2/100");
    DispatchConfig cfg = localConfig(3);
    cfg.heartbeatMs = 200;
    const std::string dispatched = dispatchedJson(spec, 3, cfg);
    EXPECT_EQ(inproc, dispatched);
}

TEST(DispatchChaos, HeartbeatLivenessKillsWedgedWorker)
{
    // the hang fault wedges cell 0's worker for 30 s holding the wire
    // lock (heartbeats stop, like a real deadlock); with a 100 ms
    // heartbeat the coordinator kills it after ~4 missed beats and
    // the retry completes promptly — no per-cell timeout needed
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse", "prefetchers=sms,none", "ncpu=4",
         "refs=1500", "seed=5", "wall=0"});
    const std::string inproc = inProcessJson(spec);

    ScopedEnv plan("STEMS_FAULTS", "hang=cell:0/30000");
    DispatchConfig cfg = localConfig(2);
    cfg.heartbeatMs = 100;
    const auto start = std::chrono::steady_clock::now();
    const std::string dispatched = dispatchedJson(spec, 2, cfg);
    const double tookMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(inproc, dispatched);
    EXPECT_LT(tookMs, 25000.0) << "liveness check never fired";
}

TEST(DispatchChaos, DegradesToInProcessWhenPoolUnrecoverable)
{
    // a transport that can never spawn: the respawn budget burns out
    // and the remaining cells execute in-process instead of erroring
    class FailingTransport : public Transport
    {
      public:
        WorkerProcess spawn() override
        {
            throw std::runtime_error("induced spawn failure");
        }
    };

    ExperimentSpec spec = parseSpec(
        {"workloads=sparse", "prefetchers=sms,none", "ncpu=4",
         "refs=1500", "seed=7", "wall=0"});
    const std::string inproc = inProcessJson(spec);

    obs::Counters::get().reset();
    DispatchConfig cfg = localConfig(2);
    Coordinator coord(spec, cfg,
                      std::make_unique<FailingTransport>());
    const std::string degraded = toJson(spec, coord.run());
    EXPECT_EQ(inproc, degraded);
    EXPECT_GE(counterValue(obs::snapshotCounters(), "degraded_cells"),
              2u);
    obs::Counters::get().reset();
}

TEST(DispatchChaos, SpeculationDuplicatesTailStraggler)
{
    // cell 3 hangs 30 s on its first attempt; once the pending queue
    // drains and enough round trips are in, the idle worker gets a
    // speculative copy (attempt 2 — the hang is first-attempt-only)
    // and the run finishes long before the straggler would
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse,graph", "prefetchers=sms,none", "ncpu=4",
         "refs=1500", "seed=9", "wall=0"});
    const std::string inproc = inProcessJson(spec);

    obs::Counters::get().reset();
    ScopedEnv plan("STEMS_FAULTS", "hang=cell:3/30000");
    DispatchConfig cfg = localConfig(2);
    cfg.speculate = true;
    const auto start = std::chrono::steady_clock::now();
    const std::string dispatched = dispatchedJson(spec, 2, cfg);
    const double tookMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(inproc, dispatched);
    EXPECT_LT(tookMs, 25000.0) << "speculation never fired";
    EXPECT_GE(counterValue(obs::snapshotCounters(),
                           "speculative_redispatches"),
              1u);
    obs::Counters::get().reset();
}

// ---------------------------------------------------------------------
// crash-safe journal and resume
// ---------------------------------------------------------------------

namespace {

/** runSpec with the worker exe pointed at the real stems binary. */
ExperimentSpec
withTestWorkerExe(ExperimentSpec spec)
{
    spec.dispatchWorkerExe = stemsBinary();
    return spec;
}

/** Split a journal file into its raw frames. */
std::vector<std::string>
journalFrames(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string buf((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    std::vector<std::string> frames;
    size_t off = 0;
    while (off < buf.size()) {
        const size_t nl = buf.find('\n', off);
        if (nl == std::string::npos)
            break;
        const size_t len = std::stoul(buf.substr(off, nl - off));
        if (buf.size() < nl + 1 + len + 1)
            break;
        frames.push_back(buf.substr(off, nl + 1 + len + 1 - off));
        off = nl + 1 + len + 1;
    }
    return frames;
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

} // anonymous namespace

TEST(DispatchJournal, SpecFingerprintTracksCellsAndFilters)
{
    ExperimentSpec spec = parseSpec(fig11Tokens());
    const uint64_t full = specFingerprint(selectedCells(spec));
    EXPECT_EQ(full, specFingerprint(selectedCells(spec)));

    auto filtered = fig11Tokens();
    filtered.push_back("cells=0-9");
    EXPECT_NE(full,
              specFingerprint(selectedCells(parseSpec(filtered))));

    ExperimentSpec other = parseSpec(
        {"workloads=sparse", "prefetchers=none", "refs=1500",
         "wall=0"});
    EXPECT_NE(full, specFingerprint(selectedCells(other)));
}

TEST(DispatchJournal, ResumeSplicesByteIdenticallyInProcess)
{
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse,graph", "prefetchers=sms,none", "ncpu=4",
         "refs=1500", "seed=21", "wall=0"});
    const std::string clean = inProcessJson(spec);

    const std::string journal = tempPath("journal_inproc");
    std::filesystem::remove(journal);
    spec.journalPath = journal;
    const std::string full = toJson(spec, dispatch::runSpec(spec));
    EXPECT_EQ(clean, full);

    // keep the header + the first two results + a torn tail, as a
    // SIGKILLed writer would leave it
    auto frames = journalFrames(journal);
    ASSERT_GE(frames.size(), 4u);
    writeFileBytes(journal,
                   frames[0] + frames[1] + frames[2] +
                       frames[3].substr(0, frames[3].size() / 2));

    obs::Counters::get().reset();
    spec.resume = true;
    const std::string resumed = toJson(spec, dispatch::runSpec(spec));
    EXPECT_EQ(clean, resumed);
    EXPECT_EQ(counterValue(obs::snapshotCounters(),
                           "journal_cells_replayed"),
              2u);
    obs::Counters::get().reset();
    std::filesystem::remove(journal);
}

TEST(DispatchJournal, ResumeSplicesByteIdenticallyDispatched)
{
    ExperimentSpec spec = withTestWorkerExe(parseSpec(
        {"workloads=sparse,graph", "prefetchers=sms,none", "ncpu=4",
         "refs=1500", "seed=23", "wall=0", "dispatch=2"}));
    const std::string journal = tempPath("journal_disp");
    std::filesystem::remove(journal);
    spec.journalPath = journal;
    const std::string full = toJson(spec, dispatch::runSpec(spec));

    ExperimentSpec plain = spec;
    plain.dispatch = 0;
    plain.journalPath.clear();
    const std::string clean = inProcessJson(plain);
    EXPECT_EQ(clean, full);

    auto frames = journalFrames(journal);
    ASSERT_GE(frames.size(), 3u);
    writeFileBytes(journal, frames[0] + frames[1] + frames[2]);

    spec.resume = true;
    const std::string resumed = toJson(spec, dispatch::runSpec(spec));
    EXPECT_EQ(clean, resumed);
    std::filesystem::remove(journal);
}

TEST(DispatchJournal, ResumeCompletedRunReExecutesNothing)
{
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse", "prefetchers=sms,none", "ncpu=4",
         "refs=1500", "seed=25", "wall=0"});
    const std::string journal = tempPath("journal_done");
    std::filesystem::remove(journal);
    spec.journalPath = journal;
    const std::string full = toJson(spec, dispatch::runSpec(spec));

    spec.resume = true;
    double wallMs = -1;
    const std::string resumed = toJson(
        spec, dispatch::runSpec(spec, {}, nullptr, &wallMs));
    EXPECT_EQ(full, resumed);
    EXPECT_EQ(wallMs, 0.0) << "everything should have been replayed";
    std::filesystem::remove(journal);
}

TEST(DispatchJournal, RejectsResumeUnderDifferentSpec)
{
    ExperimentSpec spec = parseSpec(
        {"workloads=sparse", "prefetchers=sms,none", "ncpu=4",
         "refs=1500", "seed=27", "wall=0"});
    const std::string journal = tempPath("journal_mismatch");
    std::filesystem::remove(journal);
    spec.journalPath = journal;
    (void)dispatch::runSpec(spec);

    ExperimentSpec other = parseSpec(
        {"workloads=graph", "prefetchers=none", "ncpu=4",
         "refs=1500", "wall=0"});
    other.journalPath = journal;
    other.resume = true;
    EXPECT_THROW(dispatch::runSpec(other), std::invalid_argument);
    std::filesystem::remove(journal);
}

TEST(DispatchJournal, ResumeRequiresJournalKey)
{
    EXPECT_THROW(parseSpec({"workloads=sparse", "prefetchers=none",
                            "resume=1"}),
                 std::invalid_argument);
}

TEST(DispatchJournal, CoordinatorSigkillMidRunResumesByteIdentically)
{
    // the full crash-safety story, end to end on the real CLI: a
    // dispatched run is SIGKILLed mid-sweep, then --resume replays
    // the journaled cells and re-runs the rest — the final report is
    // byte-identical to a never-interrupted run
    const std::string journal = tempPath("journal_sigkill");
    const std::string outJson = tempPath("sigkill_out.json");
    const std::string cleanJson = tempPath("sigkill_clean.json");
    std::filesystem::remove(journal);

    const std::string bin = stemsBinary();
    std::vector<std::string> base{
        "run",           "workloads=sparse,graph",
        "prefetchers=sms,none", "ncpu=4",
        "refs=2000",     "seed=31",
        "wall=0",        "quiet=1",
        "dispatch=2"};

    auto spawnRun = [&](const std::vector<std::string> &extra) {
        std::vector<std::string> args = base;
        args.insert(args.end(), extra.begin(), extra.end());
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>(bin.c_str()));
        for (auto &a : args)
            argv.push_back(const_cast<char *>(a.c_str()));
        argv.push_back(nullptr);
        const pid_t pid = ::fork();
        if (pid == 0) {
            ::execv(bin.c_str(), argv.data());
            ::_exit(127);
        }
        return pid;
    };

    // clean reference run
    {
        const pid_t pid = spawnRun({"json=" + cleanJson});
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    // interrupted run: SIGKILL the coordinator once the journal holds
    // at least one completed cell
    {
        const pid_t pid = spawnRun(
            {"journal=" + journal,
             "json=" + tempPath("sigkill_scratch.json")});
        bool sawProgress = false;
        for (int i = 0; i < 600; ++i) {
            if (journalFrames(journal).size() >= 2) {
                sawProgress = true;
                break;
            }
            ::usleep(100 * 1000);
        }
        ::kill(pid, SIGKILL);
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(sawProgress) << "journal never grew";
    }

    // resumed run completes the sweep
    {
        const pid_t pid = spawnRun({"journal=" + journal, "resume=1",
                                    "json=" + outJson});
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    std::ifstream a(cleanJson, std::ios::binary), b(outJson,
                                                    std::ios::binary);
    const std::string clean((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
    const std::string resumed((std::istreambuf_iterator<char>(b)),
                              std::istreambuf_iterator<char>());
    ASSERT_FALSE(clean.empty());
    EXPECT_EQ(clean, resumed);

    std::filesystem::remove(journal);
    std::filesystem::remove(outJson);
    std::filesystem::remove(cleanJson);
    std::filesystem::remove(tempPath("sigkill_scratch.json"));
}
