/** @file Prediction index construction tests (Section 4.2). */

#include <gtest/gtest.h>

#include "core/indexing.hh"

using namespace stems::core;

namespace {

TriggerInfo
trig(uint64_t pc, uint64_t addr, const RegionGeometry &g)
{
    TriggerInfo t;
    t.pc = pc;
    t.address = addr;
    t.regionBase = g.regionBase(addr);
    t.offset = g.offsetOf(addr);
    return t;
}

} // anonymous namespace

TEST(Indexing, AddressIgnoresPc)
{
    RegionGeometry g;
    auto a = makeIndex(IndexKind::Address, trig(0x1, 0x10000, g), g);
    auto b = makeIndex(IndexKind::Address, trig(0x2, 0x10000, g), g);
    EXPECT_EQ(a, b);
}

TEST(Indexing, AddressDistinguishesRegions)
{
    RegionGeometry g;
    auto a = makeIndex(IndexKind::Address, trig(0x1, 0x10000, g), g);
    auto b = makeIndex(IndexKind::Address, trig(0x1, 0x10800, g), g);
    EXPECT_NE(a, b);
}

TEST(Indexing, PcIgnoresAddress)
{
    RegionGeometry g;
    auto a = makeIndex(IndexKind::Pc, trig(0x1, 0x10000, g), g);
    auto b = makeIndex(IndexKind::Pc, trig(0x1, 0xFF0040, g), g);
    EXPECT_EQ(a, b);
}

TEST(Indexing, PcOffsetSamePcSameOffsetMatchesAcrossRegions)
{
    // the property that lets PC+offset predict unvisited data
    RegionGeometry g;
    auto a = makeIndex(IndexKind::PcOffset, trig(0x9, 0x10000 + 192, g), g);
    auto b = makeIndex(IndexKind::PcOffset,
                       trig(0x9, 0xABCD0000 + 192, g), g);
    EXPECT_EQ(a, b);
}

TEST(Indexing, PcOffsetDistinguishesAlignment)
{
    RegionGeometry g;
    auto a = makeIndex(IndexKind::PcOffset, trig(0x9, 0x10000, g), g);
    auto b = makeIndex(IndexKind::PcOffset, trig(0x9, 0x10040, g), g);
    EXPECT_NE(a, b);
}

TEST(Indexing, PcOffsetDistinguishesPcs)
{
    RegionGeometry g;
    auto a = makeIndex(IndexKind::PcOffset, trig(0x9, 0x10000, g), g);
    auto b = makeIndex(IndexKind::PcOffset, trig(0xA, 0x10000, g), g);
    EXPECT_NE(a, b);
}

TEST(Indexing, PcAddressDistinguishesBoth)
{
    RegionGeometry g;
    auto base = makeIndex(IndexKind::PcAddress, trig(0x9, 0x10000, g), g);
    EXPECT_NE(base,
              makeIndex(IndexKind::PcAddress, trig(0xA, 0x10000, g), g));
    EXPECT_NE(base,
              makeIndex(IndexKind::PcAddress, trig(0x9, 0x20000, g), g));
    EXPECT_EQ(base,
              makeIndex(IndexKind::PcAddress, trig(0x9, 0x10008, g), g));
}

TEST(Indexing, OffsetBitsRespectRegionSize)
{
    // 128 B regions have 1 offset bit; adjacent PCs must not collide
    RegionGeometry g(128, 64);
    auto a = makeIndex(IndexKind::PcOffset, trig(0x10, 0x0, g), g);
    auto b = makeIndex(IndexKind::PcOffset, trig(0x10, 64, g), g);
    auto c = makeIndex(IndexKind::PcOffset, trig(0x11, 0x0, g), g);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(b, c);
}

TEST(Indexing, Names)
{
    EXPECT_STREQ(indexName(IndexKind::Address), "Addr");
    EXPECT_STREQ(indexName(IndexKind::PcAddress), "PC+addr");
    EXPECT_STREQ(indexName(IndexKind::Pc), "PC");
    EXPECT_STREQ(indexName(IndexKind::PcOffset), "PC+off");
}
