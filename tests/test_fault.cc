/**
 * @file
 * Fault-injection framework tests: plan-grammar parsing and rejection,
 * deterministic firing decisions, first-attempt-only vs :always
 * semantics, the legacy STEMS_DISPATCH_* hook mapping, and the spill
 * faults (enospc write failure, corrupt-spill byte flip) observed
 * through the .stmt writer/reader.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "fault/fault.hh"
#include "obs/counters.hh"
#include "trace/access.hh"
#include "trace/io.hh"

using namespace stems;
using namespace stems::fault;

namespace {

/** Scoped plan install; restores the empty plan on destruction. */
class ScopedPlan
{
  public:
    explicit ScopedPlan(const std::string &spec)
    {
        installPlan(parsePlan(spec));
    }
    ~ScopedPlan()
    {
        installPlan(Plan{});
        clearCellContext();
    }
};

class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const std::string &value) : name(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(name); }

  private:
    const char *name;
};

trace::Trace
smallTrace(size_t n)
{
    trace::Trace t;
    for (size_t i = 0; i < n; ++i) {
        trace::MemAccess a;
        a.pc = 0x400000;
        a.addr = i * 64;
        a.cpu = 0;
        a.ninst = 1;
        t.push_back(a);
    }
    return t;
}

uint64_t
counterValue(const char *name)
{
    for (const auto &[k, v] : obs::snapshotCounters())
        if (k == name)
            return v;
    ADD_FAILURE() << "no counter named " << name;
    return 0;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// plan grammar
// ---------------------------------------------------------------------

TEST(FaultPlan, ParsesEveryClauseKind)
{
    const Plan p = parsePlan(
        "seed=42,crash=0.5,hang=0.25/3000,garbage=cell:7,"
        "truncate=0.1:always,corrupt-spill=0.2,enospc=1");
    EXPECT_EQ(p.seed, 42u);
    ASSERT_EQ(p.clauses.size(), 6u);

    EXPECT_EQ(p.clauses[0].kind, Kind::Crash);
    EXPECT_DOUBLE_EQ(p.clauses[0].prob, 0.5);
    EXPECT_FALSE(p.clauses[0].everyAttempt);

    EXPECT_EQ(p.clauses[1].kind, Kind::Hang);
    EXPECT_DOUBLE_EQ(p.clauses[1].prob, 0.25);
    EXPECT_EQ(p.clauses[1].hangMs, 3000u);

    EXPECT_EQ(p.clauses[2].kind, Kind::Garbage);
    EXPECT_EQ(p.clauses[2].cell, 7);

    EXPECT_EQ(p.clauses[3].kind, Kind::Truncate);
    EXPECT_TRUE(p.clauses[3].everyAttempt);

    EXPECT_EQ(p.clauses[4].kind, Kind::CorruptSpill);
    EXPECT_EQ(p.clauses[5].kind, Kind::Enospc);
    // spill clauses have no attempt notion: always-on by construction
    EXPECT_TRUE(p.clauses[5].everyAttempt);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(parsePlan("explode=0.5"), std::invalid_argument);
    EXPECT_THROW(parsePlan("crash"), std::invalid_argument);
    EXPECT_THROW(parsePlan("crash=1.5"), std::invalid_argument);
    EXPECT_THROW(parsePlan("crash=-0.1"), std::invalid_argument);
    EXPECT_THROW(parsePlan("crash=abc"), std::invalid_argument);
    EXPECT_THROW(parsePlan("crash=cell:"), std::invalid_argument);
    EXPECT_THROW(parsePlan("hang=0.5"), std::invalid_argument)
        << "hang needs the /MS duration";
    EXPECT_THROW(parsePlan("seed=notanumber,crash=1"),
                 std::invalid_argument);
    EXPECT_NO_THROW(parsePlan(""));
    EXPECT_TRUE(parsePlan("").empty());
}

TEST(FaultPlan, UnitValueIsDeterministicAndSeedSensitive)
{
    const double a = unitValue(7, Kind::Crash, 3, 1);
    EXPECT_EQ(a, unitValue(7, Kind::Crash, 3, 1));
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 1.0);
    // different seed, kind, or site → different decision input
    EXPECT_NE(a, unitValue(8, Kind::Crash, 3, 1));
    EXPECT_NE(a, unitValue(7, Kind::Hang, 3, 1));
    EXPECT_NE(a, unitValue(7, Kind::Crash, 4, 1));
}

// ---------------------------------------------------------------------
// firing semantics
// ---------------------------------------------------------------------

TEST(FaultFire, TargetedCellFiresFirstAttemptOnly)
{
    ScopedPlan plan("crash=cell:5");
    setCellContext(5, 1);
    EXPECT_NE(cellFault(Kind::Crash), nullptr);
    setCellContext(5, 2);  // the retry runs clean
    EXPECT_EQ(cellFault(Kind::Crash), nullptr);
    setCellContext(6, 1);  // a different cell never fires
    EXPECT_EQ(cellFault(Kind::Crash), nullptr);
}

TEST(FaultFire, AlwaysSuffixDefeatsRetries)
{
    ScopedPlan plan("crash=cell:5:always");
    for (uint32_t attempt = 1; attempt <= 4; ++attempt) {
        setCellContext(5, attempt);
        EXPECT_NE(cellFault(Kind::Crash), nullptr)
            << "attempt " << attempt;
    }
}

TEST(FaultFire, NothingFiresWithoutCellContext)
{
    ScopedPlan plan("crash=1,hang=1/100,garbage=1,truncate=1");
    clearCellContext();
    EXPECT_EQ(cellFault(Kind::Crash), nullptr);
    EXPECT_EQ(cellFault(Kind::Hang), nullptr);
}

TEST(FaultFire, ProbabilisticDecisionIsDeterministicPerCell)
{
    ScopedPlan plan("seed=3,crash=0.5");
    std::vector<bool> first;
    for (uint32_t cell = 0; cell < 32; ++cell) {
        setCellContext(cell, 1);
        first.push_back(cellFault(Kind::Crash) != nullptr);
    }
    // replay: identical decisions
    for (uint32_t cell = 0; cell < 32; ++cell) {
        setCellContext(cell, 1);
        EXPECT_EQ(cellFault(Kind::Crash) != nullptr, first[cell])
            << "cell " << cell;
    }
    // p=0.5 over 32 cells: both outcomes occur
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(FaultFire, FiringBumpsTheCounter)
{
    obs::Counters::get().reset();
    ScopedPlan plan("crash=cell:1");
    setCellContext(1, 1);
    ASSERT_NE(cellFault(Kind::Crash), nullptr);
    EXPECT_EQ(counterValue("faults_injected"), 1u);
    obs::Counters::get().reset();
}

// ---------------------------------------------------------------------
// legacy hook mapping
// ---------------------------------------------------------------------

TEST(FaultLegacy, CrashHookFoldsIntoClause)
{
    ScopedEnv crash("STEMS_DISPATCH_CRASH", "3");
    installFromEnv();
    ASSERT_TRUE(active());
    setCellContext(3, 1);
    EXPECT_NE(cellFault(Kind::Crash), nullptr);
    // marker-less legacy hooks fire on every attempt (the old
    // semantics RetryCapRecordsCellErrorNotCrash depends on)
    setCellContext(3, 2);
    EXPECT_NE(cellFault(Kind::Crash), nullptr);
    setCellContext(4, 1);
    EXPECT_EQ(cellFault(Kind::Crash), nullptr);
    installPlan(Plan{});
    clearCellContext();
}

TEST(FaultLegacy, SleepHookCarriesDuration)
{
    ScopedEnv stall("STEMS_DISPATCH_SLEEP", "2:1500");
    installFromEnv();
    setCellContext(2, 1);
    const Clause *c = cellFault(Kind::Hang);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->hangMs, 1500u);
    installPlan(Plan{});
    clearCellContext();
}

TEST(FaultLegacy, EnvPlanAndHooksCompose)
{
    ScopedEnv plan("STEMS_FAULTS", "seed=9,garbage=cell:1");
    ScopedEnv crash("STEMS_DISPATCH_CRASH", "2");
    installFromEnv();
    setCellContext(1, 1);
    EXPECT_NE(cellFault(Kind::Garbage), nullptr);
    EXPECT_EQ(cellFault(Kind::Crash), nullptr);
    setCellContext(2, 1);
    EXPECT_NE(cellFault(Kind::Crash), nullptr);
    installPlan(Plan{});
    clearCellContext();
}

// ---------------------------------------------------------------------
// spill faults through the .stmt writer/reader
// ---------------------------------------------------------------------

TEST(FaultSpill, EnospcFailsTheWrite)
{
    ScopedPlan plan("enospc=1");
    const std::string path =
        ::testing::TempDir() + "/stems_fault_enospc.stmt";
    trace::Trace t = smallTrace(32);
    EXPECT_FALSE(trace::writeTrace(t, path));
    std::remove(path.c_str());
}

TEST(FaultSpill, CorruptSpillIsCaughtByTheChecksum)
{
    obs::Counters::get().reset();
    ScopedPlan plan("corrupt-spill=1");
    const std::string path =
        ::testing::TempDir() + "/stems_fault_corrupt.stmt";
    trace::Trace t = smallTrace(64);
    // the write itself succeeds — corruption happens post-commit,
    // modelling bit rot / a torn device write
    ASSERT_TRUE(trace::writeTrace(t, path));
    trace::Trace out;
    EXPECT_FALSE(trace::readTrace(path, out))
        << "corrupted spill must be rejected, not replayed";
    EXPECT_GE(counterValue("faults_injected"), 1u);
    std::remove(path.c_str());
    obs::Counters::get().reset();
}

TEST(FaultSpill, ProbabilityZeroNeverFires)
{
    ScopedPlan plan("enospc=0,corrupt-spill=0");
    const std::string path =
        ::testing::TempDir() + "/stems_fault_p0.stmt";
    trace::Trace t = smallTrace(16);
    ASSERT_TRUE(trace::writeTrace(t, path));
    trace::Trace out;
    EXPECT_TRUE(trace::readTrace(path, out));
    EXPECT_EQ(out.size(), t.size());
    std::remove(path.c_str());
}

TEST(FaultSpill, InactivePlanLeavesSpillsAlone)
{
    installPlan(Plan{});
    EXPECT_FALSE(active());
    const std::string path =
        ::testing::TempDir() + "/stems_fault_off.stmt";
    trace::Trace t = smallTrace(16);
    ASSERT_TRUE(trace::writeTrace(t, path));
    trace::Trace out;
    EXPECT_TRUE(trace::readTrace(path, out));
    std::remove(path.c_str());
}
