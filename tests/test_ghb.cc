/** @file GHB PC/DC prefetcher tests (Nesbit & Smith variant). */

#include <gtest/gtest.h>

#include <vector>

#include "prefetch/ghb.hh"

using namespace stems::prefetch;
using stems::mem::HitLevel;

namespace {

ObservedAccess
miss(uint64_t pc, uint64_t addr, HitLevel lvl = HitLevel::Memory)
{
    ObservedAccess a;
    a.pc = pc;
    a.addr = addr;
    a.level = lvl;
    return a;
}

} // anonymous namespace

TEST(Ghb, IgnoresL1Hits)
{
    GhbPcDc ghb(GhbConfig{});
    std::vector<uint64_t> out;
    for (int i = 0; i < 10; ++i)
        ghb.observe(miss(0x1, i * 64, HitLevel::L1), out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(ghb.stats().triggers, 0u);
}

TEST(Ghb, DetectsConstantStride)
{
    GhbConfig cfg;
    cfg.degree = 4;
    GhbPcDc ghb(cfg);
    std::vector<uint64_t> out;
    // constant 256 B stride from one PC
    for (int i = 0; i < 6; ++i) {
        out.clear();
        ghb.observe(miss(0x42, 0x10000 + uint64_t(i) * 256), out);
    }
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 0x10000u + 5 * 256 + 256);
    EXPECT_EQ(out[1], 0x10000u + 5 * 256 + 512);
}

TEST(Ghb, DetectsRepeatingDeltaPattern)
{
    // deltas (in blocks): +1, +3, +1, +3, ... a period-2 pattern
    GhbConfig cfg;
    cfg.degree = 2;
    GhbPcDc ghb(cfg);
    std::vector<uint64_t> out;
    uint64_t addr = 0x20000;
    const int deltas[] = {1, 3, 1, 3, 1, 3, 1};
    ghb.observe(miss(0x7, addr), out);
    for (int d : deltas) {
        addr += uint64_t(d) * 64;
        out.clear();
        ghb.observe(miss(0x7, addr), out);
    }
    // last deltas (3,1)... the pair recurs; predictions follow pattern
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], addr + 3 * 64);
    EXPECT_EQ(out[1], addr + 3 * 64 + 1 * 64);
}

TEST(Ghb, SeparatePcChainsDoNotInterfere)
{
    GhbPcDc ghb(GhbConfig{});
    std::vector<uint64_t> out;
    // interleave two streams with different PCs and strides
    for (int i = 0; i < 8; ++i) {
        out.clear();
        ghb.observe(miss(0x1, 0x100000 + uint64_t(i) * 128), out);
        if (i >= 3)
            EXPECT_FALSE(out.empty()) << "pc1 stride undetected";
        out.clear();
        ghb.observe(miss(0x2, 0x900000 + uint64_t(i) * 512), out);
        if (i >= 3)
            EXPECT_FALSE(out.empty()) << "pc2 stride undetected";
    }
}

TEST(Ghb, InterleavedIrregularStreamsDefeatIt)
{
    // the paper's Section 4.6 argument: interleaving two *irregular*
    // sequences under one PC breaks delta correlation
    GhbPcDc ghb(GhbConfig{});
    std::vector<uint64_t> out;
    stems::trace::Rng rng(3);
    size_t predictions = 0;
    for (int i = 0; i < 200; ++i) {
        out.clear();
        ghb.observe(miss(0x5, (rng.below(1 << 20)) * 64), out);
        predictions += out.size();
    }
    // random deltas should rarely correlate
    EXPECT_LT(predictions, 100u);
}

TEST(Ghb, CapacityBoundsHistory)
{
    GhbConfig cfg;
    cfg.ghbEntries = 8;
    GhbPcDc ghb(cfg);
    std::vector<uint64_t> out;
    // build a long stride history, then flush the buffer with another
    // PC; the stride chain is gone
    for (int i = 0; i < 6; ++i)
        ghb.observe(miss(0x1, 0x10000 + uint64_t(i) * 256), out);
    for (int i = 0; i < 8; ++i)
        ghb.observe(miss(0x2, 0x500000 + uint64_t(i) * 0x10000), out);
    out.clear();
    ghb.observe(miss(0x1, 0x10000 + 6 * 256), out);
    EXPECT_TRUE(out.empty()) << "stale chain must not survive wrap";
}

TEST(Ghb, StatsProgress)
{
    GhbPcDc ghb(GhbConfig{});
    std::vector<uint64_t> out;
    for (int i = 0; i < 6; ++i)
        ghb.observe(miss(0x1, 0x1000 + uint64_t(i) * 64), out);
    EXPECT_EQ(ghb.stats().triggers, 6u);
    EXPECT_GT(ghb.stats().walks, 0u);
    EXPECT_GT(ghb.stats().correlations, 0u);
    EXPECT_GT(ghb.stats().issued, 0u);
}

TEST(Ghb, RejectsZeroSizes)
{
    GhbConfig cfg;
    cfg.ghbEntries = 0;
    EXPECT_THROW(GhbPcDc{cfg}, std::invalid_argument);
}
